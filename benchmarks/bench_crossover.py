"""XOVER -- Section 6's analytic crossover claim.

The paper estimates the index pays off while the query result size
stays under roughly ``N * a / rtn`` sets (a = pages per set, rtn = 8),
~23-25% of their collections.  This bench sweeps measured result-size
fractions and reports where the scan starts winning, next to the
analytic prediction for *our* page geometry.

Paper shape to reproduce: index wins at small fractions, scan wins at
large ones, with a crossover in the same order of magnitude as the
``a / rtn`` prediction.
"""

import pytest

from repro.eval.experiments import ExperimentConfig, run_crossover


@pytest.fixture(scope="module")
def config(scale):
    return ExperimentConfig(
        n_sets=scale.n_sets,
        budget=500,
        n_queries=scale.n_queries,
        sample_pairs=scale.sample_pairs,
        k=scale.k,
    )


def test_crossover(benchmark, config, emit):
    result = benchmark.pedantic(
        run_crossover, args=("set1", config), rounds=1, iterations=1
    )
    measured = result.measured_crossover()
    emit(
        "XOVER",
        result.table()
        + f"\npredicted crossover fraction (a/rtn): {result.predicted_fraction:.3f}"
        + f"\nmeasured crossover fraction: "
        + (f"{measured:.3f}" if measured is not None else "not reached (index always wins)"),
    )
    assert result.rows, "no queries were binned"
    # Index must win somewhere at the small end...
    assert result.rows[0][2] < result.rows[0][1]
    # ...and index cost must grow with result fraction.
    index_times = [row[2] for row in result.rows]
    assert index_times[-1] > index_times[0]
