"""Tests for the pager's LRU buffer pool."""

import pytest

from repro.storage.iomodel import IOCostModel
from repro.storage.pager import PageManager


def _pager(cache_pages):
    return PageManager(IOCostModel(), cache_pages=cache_pages)


class TestBufferPool:
    def test_disabled_by_default(self):
        pager = _pager(0)
        page = pager.allocate(1)
        pager.read(page.page_id)
        pager.read(page.page_id)
        assert pager.io.stats.random_reads == 2
        assert pager.cache_hits == 0

    def test_hit_costs_nothing(self):
        pager = _pager(4)
        page = pager.allocate(1)
        pager.read(page.page_id)
        before = pager.io.snapshot()
        pager.read(page.page_id)
        delta = pager.io.snapshot() - before
        assert delta.random_reads == 0
        assert delta.sequential_reads == 0
        assert pager.cache_hits == 1
        assert pager.cache_misses == 1

    def test_lru_eviction(self):
        pager = _pager(2)
        pages = [pager.allocate(1) for _ in range(3)]
        pager.read(pages[0].page_id)  # cache: [0]
        pager.read(pages[1].page_id)  # cache: [0, 1]
        pager.read(pages[2].page_id)  # evicts 0 -> [1, 2]
        before = pager.io.snapshot()
        pager.read(pages[0].page_id)  # miss again
        assert (pager.io.snapshot() - before).random_reads == 1

    def test_lru_refresh_on_hit(self):
        pager = _pager(2)
        pages = [pager.allocate(1) for _ in range(3)]
        pager.read(pages[0].page_id)  # [0]
        pager.read(pages[1].page_id)  # [0, 1]
        pager.read(pages[0].page_id)  # hit; refreshes 0 -> [1, 0]
        pager.read(pages[2].page_id)  # evicts 1 -> [0, 2]
        before = pager.io.snapshot()
        pager.read(pages[0].page_id)  # still cached
        assert (pager.io.snapshot() - before).random_reads == 0

    def test_sequential_reads_cached_too(self):
        pager = _pager(4)
        page = pager.allocate(1)
        pager.read(page.page_id, sequential=True)
        before = pager.io.snapshot()
        pager.read(page.page_id, sequential=True)
        assert (pager.io.snapshot() - before).sequential_reads == 0

    def test_free_drops_cache_entry(self):
        pager = _pager(4)
        page = pager.allocate(1)
        pager.read(page.page_id)
        pager.free(page.page_id)
        with pytest.raises(KeyError):
            pager.read(page.page_id)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            _pager(-1)

    def test_cache_reduces_probe_cost_end_to_end(self):
        """A warm buffer pool makes repeated identical probes cheap."""
        from repro.storage.hashtable import BucketHashTable

        pager = _pager(64)
        table = BucketHashTable(pager, n_buckets=8)
        for i in range(20):
            table.insert(b"hot", i)
        table.probe(b"hot")  # warms the bucket page
        before = pager.io.snapshot()
        table.probe(b"hot")
        delta = pager.io.snapshot() - before
        assert delta.random_reads == 0


class TestHitRatio:
    def test_ratio_zero_when_never_consulted(self):
        assert _pager(4).cache_hit_ratio == 0.0
        assert _pager(0).cache_hit_ratio == 0.0

    def test_ratio_tracks_hits_and_misses(self):
        pager = _pager(4)
        page = pager.allocate(1)
        pager.read(page.page_id)  # miss
        pager.read(page.page_id)  # hit
        pager.read(page.page_id)  # hit
        assert pager.cache_hit_ratio == pytest.approx(2 / 3)

    def test_registry_counters_move_with_instance(self):
        from repro.obs import metrics

        hits = metrics.counter("pager.cache_hits")
        misses = metrics.counter("pager.cache_misses")
        base_hits, base_misses = hits.value, misses.value
        pager = _pager(4)
        page = pager.allocate(1)
        pager.read(page.page_id)
        pager.read(page.page_id)
        assert hits.value == base_hits + 1
        assert misses.value == base_misses + 1

    def test_reset_cache_cools_pool_and_zeroes_instance_counts(self):
        from repro.obs import metrics

        hits = metrics.counter("pager.cache_hits")
        base_hits = hits.value
        pager = _pager(4)
        page = pager.allocate(1)
        pager.read(page.page_id)
        pager.read(page.page_id)
        assert pager.cache_hits == 1
        pager.reset_cache()
        assert pager.cache_hits == 0
        assert pager.cache_misses == 0
        assert pager.cache_hit_ratio == 0.0
        before = pager.io.snapshot()
        pager.read(page.page_id)  # cold again: charged
        assert (pager.io.snapshot() - before).random_reads == 1
        # The registry counters are monotonic across resets.
        assert hits.value == base_hits + 1
