"""EX1 -- Example 1 of the paper, quantified.

The naive embedding (concatenated raw binary min-hash values) distorts
similarity: disagreeing signature coordinates share an uncontrolled
number of bits.  The ECC embedding is distortion-free: Hamming
similarity is exactly ``(1 + s) / 2`` for signature agreement ``s``.

Paper shape to reproduce: the ECC column sits on the expected line
(RMSE ~ 0); the naive column deviates measurably.
"""

from repro.eval.experiments import run_embedding_distortion


def test_embedding_distortion(benchmark, emit, scale):
    result = benchmark.pedantic(
        run_embedding_distortion,
        kwargs={"n_pairs": 300, "k": scale.k, "b": 6, "seed": 0},
        rounds=1,
        iterations=1,
    )
    sampled = result.rows[:: max(1, len(result.rows) // 20)]
    from repro.eval.report import format_table

    table = format_table(
        ["signature sim", "expected S_H", "ecc S_H", "naive S_H"],
        [list(row) for row in sampled],
    )
    emit(
        "EX1",
        table
        + f"\nECC RMSE from (1+s)/2:   {result.ecc_rmse:.6f}"
        + f"\nnaive RMSE from (1+s)/2: {result.naive_rmse:.6f}",
    )
    assert result.ecc_rmse < 1e-9
    assert result.naive_rmse > 10 * max(result.ecc_rmse, 1e-12)
