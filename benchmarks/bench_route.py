"""Shard routing: safe-mode equivalence, pruned QPS, replicas (BENCH-ROUTE).

Measures what build-time routing summaries buy a sharded fleet on a
**skewed range workload** -- near-disjoint planted clusters, cluster
-partitioned so each shard holds one similarity neighborhood, with the
query traffic concentrated on a couple of hot clusters.  Behind the
gate the routing layer must clear first:

* **safe-mode equivalence** (always gated, before any number is
  reported) -- at every seed in a 12-seed sweep x K in {2, 4, 8},
  ``route="safe"`` must answer **bit-identically** to both full
  fan-out and the unsharded executor: same sids, same exact D_S
  similarities, same best-first ordering, same candidate sets.  Safe
  mode only masks verification for (query, shard) pairs whose sound
  Jaccard upper bound falls below ``sigma_low``, so any deviation is a
  soundness bug.  A run that fails this gate exits non-zero regardless
  of its numbers.
* **sketch-mode throughput** -- the opt-in ``route="sketch"`` path
  skips pruned shards outright.  Reported per K: honest measured wall
  QPS on this host plus a *modeled* QPS that replaces the serialized
  sum of per-shard walls with their max (per-shard walls measured in
  isolation, serially, on each shard's **surviving sub-batch only**;
  routing overhead and measured merge added back -- the same
  convention as BENCH_shard's K-way overlap model).  Full mode gates
  modeled routed QPS at >= 1.3x modeled full fan-out at the largest K,
  and reports the shard-skip ratio and the measured recall of sketch
  mode against full fan-out alongside.
* **replica balance** (always gated) -- after ``replicate_shards`` on
  the hottest shards, repeated batches must spread dispatches across
  the crc-identical copies: max/mean dispatches <= 1.5 at 2 copies.

Run standalone (used by CI in smoke mode)::

    PYTHONPATH=src python benchmarks/bench_route.py [--smoke] [--out PATH]

Writes ``BENCH_route.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_route.json"

RANGE = (0.5, 1.0)
SEED = 17

K_LEVELS = (2, 4, 8)
EQUIV_SEEDS = 12
SMOKE_K_LEVELS = (2, 4)
SMOKE_EQUIV_SEEDS = 3


def build_route_workload(n_clusters, per_cluster, n_queries, seed,
                         hot_clusters=4, hot_frac=0.8):
    """Near-disjoint planted clusters + hot-cluster-skewed queries.

    Each cluster draws ~4-element mutations of a 60-element prototype
    over its own element range, so within-cluster Jaccard is high
    (the minhash partitioner colocates a cluster per shard) and
    across-cluster Jaccard is exactly 0 (a query's bound against a
    foreign shard is provably < sigma_low).  ``hot_frac`` of the
    queries perturb members of the first ``hot_clusters`` clusters --
    the skew that makes routing (and hot-shard replicas) pay.
    """
    rng = random.Random(seed)
    sets, members_by_cluster = [], []
    for c in range(n_clusters):
        base = list(range(c * 1_000, c * 1_000 + 120))
        proto = rng.sample(base, 60)
        off_proto = [e for e in base if e not in proto]
        members = []
        for _ in range(per_cluster):
            keep = rng.sample(proto, 56)
            members.append(frozenset(keep + rng.sample(off_proto, 4)))
        members_by_cluster.append(members)
        sets.extend(members)

    def perturb(member):
        src = sorted(member)
        rng.shuffle(src)
        base = list(range((src[0] // 1_000) * 1_000,
                          (src[0] // 1_000) * 1_000 + 120))
        fresh = rng.sample([e for e in base if e not in member], 3)
        return frozenset(src[3:] + fresh)

    queries = []
    for _ in range(n_queries):
        if rng.random() < hot_frac:
            cluster = rng.randrange(hot_clusters)
        else:
            cluster = rng.randrange(n_clusters)
        queries.append(perturb(rng.choice(members_by_cluster[cluster])))
    return sets, queries


def batches_identical(got, want) -> bool:
    if got.n_queries != want.n_queries:
        return False
    for g, w in zip(got.results, want.results):
        if g.answers != w.answers or g.candidates != w.candidates:
            return False
    return True


def run_safe_equivalence(workdir, n_seeds, k_levels):
    """12-seed x K sweep: safe == full == unsharded, bit for bit."""
    import numpy as np

    from repro.core.distribution import SimilarityDistribution
    from repro.core.index import SetSimilarityIndex
    from repro.core.optimizer import plan_index
    from repro.data.generators import planted_clusters
    from repro.exec.parallel import ParallelExecutor
    from repro.exec.shard import ShardedExecutor, build_sharded, open_sharded

    rows = []
    pruned_total = 0
    for seed in range(n_seeds):
        rng = np.random.default_rng(seed)
        sets = planted_clusters(
            n_clusters=5, per_cluster=18, base_size=16, universe=900,
            mutation_rate=0.25, seed=seed,
        )
        queries = [sets[int(rng.integers(len(sets)))] for _ in range(4)]
        queries.append(frozenset(int(x) for x in rng.integers(0, 900, 10)))
        queries.append(frozenset())
        dist = SimilarityDistribution.from_sets(
            sets, sample_pairs=1_500, seed=seed
        )
        plan = plan_index(dist, 36, recall_target=0.85, b=4)
        index = SetSimilarityIndex.from_plan(
            sets, plan, dist, k=24, b=4, seed=seed
        )
        want = ParallelExecutor(index.freeze(), workers=1).query_batch(
            queries, 0.3, 0.9
        )
        for n_shards in k_levels:
            shard_dir = workdir / f"equiv-s{seed}-k{n_shards}"
            build_sharded(
                sets, shard_dir, n_shards=n_shards, partition="cluster",
                k=24, b=4, seed=seed, plan=plan, dist=dist,
            )
            sharded = open_sharded(shard_dir)
            with ShardedExecutor(sharded, route="full") as executor:
                full = executor.query_batch(queries, 0.3, 0.9)
            with ShardedExecutor(sharded, route="safe") as executor:
                safe = executor.query_batch(queries, 0.3, 0.9)
            pruned = safe.exec_stats["route"]["subqueries_pruned"]
            pruned_total += pruned
            ok = (batches_identical(safe, want)
                  and batches_identical(safe, full))
            rows.append({
                "seed": seed,
                "n_shards": n_shards,
                "subqueries_pruned": pruned,
                "identical": ok,
            })
            if not ok:
                print(f"  seed={seed} K={n_shards}: MISMATCH")
    n_ok = sum(r["identical"] for r in rows)
    print(f"  safe == full == unsharded on {n_ok}/{len(rows)} combos "
          f"({pruned_total} subqueries pruned across the sweep)")
    return {
        "combos": rows,
        "n_ok": n_ok,
        "n_combos": len(rows),
        "subqueries_pruned_total": pruned_total,
        "all_identical": n_ok == len(rows),
        "pruning_exercised": pruned_total > 0,
    }


def run_routing_throughput(sets, queries, workdir, k_levels, repeats):
    """Full fan-out vs sketch-routed, measured and modeled, per K.

    The modeled pass times each shard's batch in isolation, serially
    (no thread interleaving inflates it): full mode runs every query
    on every shard; routed mode runs only the shard's surviving
    sub-batch and charges the routing decision's own wall on top.
    ``modeled_wall = max(isolated walls) + merge + route_seconds``.
    """
    from repro.exec.shard import ShardedExecutor, build_sharded, open_sharded

    rows = []
    for n_shards in k_levels:
        shard_dir = workdir / f"route-k{n_shards}"
        build_sharded(
            sets, shard_dir, n_shards=n_shards, partition="cluster",
            k=32, b=4, seed=SEED, budget=60, recall_target=0.85,
            sample_pairs=4_000,
        )
        sharded = open_sharded(shard_dir)
        walls = {"full": [], "sketch": []}
        modeled = {"full": [], "sketch": []}
        stats = {}
        answer_pairs = {}
        for mode in ("full", "sketch"):
            with ShardedExecutor(sharded, route=mode) as executor:
                executor.query_batch(queries[:4], *RANGE)  # warm caches
                merges, route_secs = [], []
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    batch = executor.query_batch(queries, *RANGE)
                    walls[mode].append(time.perf_counter() - t0)
                    merges.append(batch.exec_stats["merge_seconds"])
                    route_secs.append(
                        batch.exec_stats["route"]["route_seconds"]
                    )
                merge = min(merges)  # best-of, like every measured wall
                route_stats = dict(
                    batch.exec_stats["route"],
                    route_seconds=min(route_secs),
                )
                stats[mode] = route_stats
                answer_pairs[mode] = {
                    (r, sid) for r, res in enumerate(batch.results)
                    for sid, _ in res.answers
                }
                if mode == "sketch" and executor.route_active:
                    decision = executor._router.route(
                        [frozenset(q) for q in queries], RANGE[0],
                        executor._live, sketch=True,
                    )
                    kept = decision.kept
                else:
                    kept = {i: list(range(len(queries)))
                            for i in executor._live}
                for _ in range(repeats):
                    isolated = [0.0]
                    for i in executor._live:
                        sub = [queries[r] for r in kept[i]]
                        if not sub:
                            continue  # undispatched: zero wall
                        shard_exec = executor._executors[i]
                        t0 = time.perf_counter()
                        shard_exec.query_batch(sub, *RANGE)
                        isolated.append(time.perf_counter() - t0)
                    modeled[mode].append(
                        max(isolated) + merge
                        + route_stats["route_seconds"]
                    )
        n = len(queries)
        live = len(sharded.live_shards)
        want_pairs = answer_pairs["full"]
        got_pairs = answer_pairs["sketch"]
        recall = (len(got_pairs & want_pairs) / len(want_pairs)
                  if want_pairs else 1.0)
        row = {
            "n_shards": n_shards,
            "live_shards": live,
            "measured_qps_full": round(n / min(walls["full"]), 1),
            "measured_qps_sketch": round(n / min(walls["sketch"]), 1),
            "measured_speedup": round(
                min(walls["full"]) / min(walls["sketch"]), 2
            ),
            "modeled_qps_full": round(n / min(modeled["full"]), 1),
            "modeled_qps_sketch": round(n / min(modeled["sketch"]), 1),
            "modeled_speedup": round(
                min(modeled["full"]) / min(modeled["sketch"]), 2
            ),
            "subqueries_pruned": stats["sketch"]["subqueries_pruned"],
            "subquery_prune_ratio": round(
                stats["sketch"]["subqueries_pruned"] / (n * live), 3
            ),
            "shards_skipped_per_batch": stats["sketch"]["shards_skipped"],
            "shard_skip_ratio": round(
                stats["sketch"]["shards_skipped"] / live, 3
            ),
            "sketch_recall_vs_full": round(recall, 4),
            "n_full_answer_pairs": len(want_pairs),
        }
        rows.append(row)
        print(
            f"  K={n_shards}: modeled full {row['modeled_qps_full']} qps -> "
            f"sketch {row['modeled_qps_sketch']} qps "
            f"({row['modeled_speedup']}x), measured "
            f"{row['measured_speedup']}x, prune ratio "
            f"{row['subquery_prune_ratio']}, skip ratio "
            f"{row['shard_skip_ratio']}, recall {row['sketch_recall_vs_full']}"
        )
    return rows


def run_replica_balance(sets, queries, workdir, n_shards, n_batches):
    """Replicate the two hottest shards; check p2c dispatch balance."""
    from repro.exec.shard import (
        ShardedExecutor,
        build_sharded,
        open_sharded,
        replicate_shards,
    )

    shard_dir = workdir / "replicated"
    build_sharded(
        sets, shard_dir, n_shards=n_shards, partition="cluster",
        k=32, b=4, seed=SEED, budget=60, recall_target=0.85,
        sample_pairs=4_000,
    )
    manifest = replicate_shards(
        shard_dir, top=2, copies=2, workload=queries, workload_range=RANGE,
    )
    replicated = [e["dir"] for e in manifest["shards"] if e.get("replicas")]
    with ShardedExecutor(open_sharded(shard_dir), route="safe") as executor:
        t0 = time.perf_counter()
        for _ in range(n_batches):
            executor.query_batch(queries, *RANGE)
        wall = time.perf_counter() - t0
        counts = executor.replica_dispatch_counts()
    worst = 0.0
    per_shard = {}
    for i, slots in counts.items():
        mean = sum(slots) / len(slots)
        ratio = max(slots) / mean if mean > 0 else 1.0
        per_shard[str(i)] = {"dispatches": slots,
                             "max_over_mean": round(ratio, 3)}
        worst = max(worst, ratio)
    balanced = worst <= 1.5 and bool(counts)
    print(
        f"  replicated {replicated} x2; worst max/mean dispatch "
        f"{worst:.3f} over {n_batches} batches "
        f"({'balanced' if balanced else 'IMBALANCED'})"
    )
    return {
        "replicated_shards": replicated,
        "copies": 2,
        "n_batches": n_batches,
        "wall_seconds": round(wall, 4),
        "dispatches": per_shard,
        "worst_max_over_mean": round(worst, 3),
        "balanced": balanced,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep, no full-mode speedup gate")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args()

    smoke = args.smoke
    k_levels = SMOKE_K_LEVELS if smoke else K_LEVELS
    n_seeds = SMOKE_EQUIV_SEEDS if smoke else EQUIV_SEEDS
    # Twice as many clusters as shards: cluster blocks tile shards
    # with bounded straddling, so per-shard universes stay disjoint
    # enough for the bound to bite.
    n_clusters = 2 * max(k_levels)
    hot_clusters = 4
    per_cluster = 12 if smoke else 40
    n_queries = 16 if smoke else 48
    repeats = 2 if smoke else 4
    n_batches = 8 if smoke else 24
    cpu_count = os.cpu_count() or 1

    print(f"workload: {n_clusters} near-disjoint clusters x {per_cluster} "
          f"sets, {n_queries} queries (80% on {hot_clusters} hot clusters), "
          f"range {RANGE}, {'smoke' if smoke else 'full'} mode")
    sets, queries = build_route_workload(
        n_clusters, per_cluster, n_queries, SEED, hot_clusters=hot_clusters
    )

    with tempfile.TemporaryDirectory(prefix="bench_route-") as td:
        workdir = Path(td)
        print("safe-mode equivalence gate (before any number is reported):")
        equivalence = run_safe_equivalence(workdir, n_seeds, k_levels)
        if not equivalence["all_identical"]:
            args.out.write_text(json.dumps({
                "experiment": "BENCH-ROUTE",
                "equivalence": equivalence,
                "gates": {"safe_equivalence_ok": False},
            }, indent=1) + "\n")
            raise SystemExit(
                "FAIL: route='safe' is not bit-identical to full fan-out"
            )
        print("routing throughput (skewed workload, direct executors):")
        throughput = run_routing_throughput(
            sets, queries, workdir, k_levels, repeats
        )
        print("replica balance:")
        replicas = run_replica_balance(
            sets, queries, workdir, max(k_levels), n_batches
        )

    top = next(r for r in throughput if r["n_shards"] == max(k_levels))
    gates = {
        "safe_equivalence_ok": equivalence["all_identical"],
        "pruning_exercised": equivalence["pruning_exercised"],
        "routed_k": top["n_shards"],
        "routed_speedup": top["modeled_speedup"],
        "routed_speedup_basis": "modeled",
        "routed_speedup_ok": top["modeled_speedup"] >= 1.3,
        "sketch_recall": top["sketch_recall_vs_full"],
        "replica_balance_ok": replicas["balanced"],
    }

    report = {
        "experiment": "BENCH-ROUTE",
        "workload": {
            "generator": "near-disjoint prototype clusters",
            "n_clusters": n_clusters,
            "per_cluster": per_cluster,
            "n_sets": len(sets),
            "n_queries": n_queries,
            "hot_clusters": hot_clusters,
            "hot_frac": 0.8,
            "repeats": repeats,
            "seed": SEED,
            "range": list(RANGE),
            "mode": "smoke" if smoke else "full",
        },
        "host": {
            "cpu_count": cpu_count,
            "single_core_host": cpu_count == 1,
        },
        "metric_note": (
            "safe-mode equivalence compares answers (sids, exact "
            "similarities, best-first ordering) and candidate sets against "
            "both full fan-out and the unsharded executor; modeled_qps = "
            "max(per-shard walls measured in isolation, serially, on each "
            "shard's surviving sub-batch) + measured merge + routing "
            "overhead -- BENCH_shard's K-way overlap convention; "
            "measured_qps is honest single-host wall clock (threads share "
            "one core here, so routing's measured win comes from pruned "
            "probe/verify work, not concurrency); sketch recall is "
            "answer-pair recall vs full fan-out on this workload; all "
            "timings are best-of-repeats"
        ),
        "equivalence": equivalence,
        "throughput": throughput,
        "replicas": replicas,
        "gates": gates,
    }
    args.out.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {args.out}")

    if not gates["pruning_exercised"]:
        raise SystemExit("FAIL: the equivalence sweep never pruned anything")
    if not replicas["balanced"]:
        raise SystemExit(
            f"FAIL: replica dispatch max/mean "
            f"{replicas['worst_max_over_mean']} > 1.5"
        )
    if not smoke and not gates["routed_speedup_ok"]:
        raise SystemExit(
            f"FAIL: K={top['n_shards']} modeled routed speedup "
            f"{top['modeled_speedup']}x < 1.3x"
        )
    print("gates pass")


if __name__ == "__main__":
    main()
