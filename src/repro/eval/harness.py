"""Query-workload runner and result-size bucketing (Section 6 protocol).

The paper's measurement protocol: ask random queries (query sets drawn
from the collection, range bounds random), classify each query by the
size of the candidate list the index returns as a fraction of the
collection, and report precision, recall and response time averaged
per bucket.

``ExperimentHarness`` reproduces that protocol over one dataset: it
holds the built index, a sequential-scan baseline over the *same* set
store (so both pay the same I/O model), and an exact inverted-index
oracle for ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.inverted_index import InvertedIndex
from repro.baselines.sequential_scan import SequentialScan
from repro.core.index import SetSimilarityIndex
from repro.core.metrics import evaluate_query
from repro.data.queries import PAPER_BUCKETS, RangeQuery, bucket_index, bucket_label
from repro.obs.explain import filter_summaries


@dataclass
class QueryRecord:
    """Everything measured for one query.

    ``trace_summary`` is populated when the harness runs with
    ``collect_trace=True``: the per-filter probe statistics of this
    query's trace (see :func:`repro.obs.explain.filter_summaries`)
    plus the I/O breakdown, JSON-safe so benchmark drivers can attach
    it to their output files.
    """

    query: RangeQuery
    n_truth: int
    n_candidates: int
    n_answers: int
    recall: float
    precision: float
    index_io_time: float
    index_cpu_time: float
    scan_io_time: float
    scan_cpu_time: float
    trace_summary: dict | None = None

    @property
    def index_time(self) -> float:
        return self.index_io_time + self.index_cpu_time

    @property
    def scan_time(self) -> float:
        return self.scan_io_time + self.scan_cpu_time


@dataclass
class BucketSummary:
    """Per-result-size-bucket averages (one bar group in Fig. 6/7)."""

    label: str
    n_queries: int
    recall: float
    precision: float
    index_io_time: float
    index_cpu_time: float
    scan_io_time: float
    scan_cpu_time: float

    @property
    def index_time(self) -> float:
        return self.index_io_time + self.index_cpu_time

    @property
    def scan_time(self) -> float:
        return self.scan_io_time + self.scan_cpu_time


class ExperimentHarness:
    """Runs range queries against index + scan and scores them."""

    def __init__(self, sets: Sequence[frozenset], index: SetSimilarityIndex):
        self.sets = [frozenset(s) for s in sets]
        self.index = index
        self.scan = SequentialScan(index.store)
        self.oracle = InvertedIndex(self.sets)

    def build_summary(self) -> dict | None:
        """JSON-safe summary of how the harness's index was built.

        The index's :attr:`~repro.core.index.SetSimilarityIndex.build_report`
        with the per-unit detail collapsed to totals -- the build-side
        analogue of ``record.trace_summary``, attachable to benchmark
        artifacts.  None for per-insert builds and loaded indexes.
        """
        report = self.index.build_report
        if report is None:
            return None
        summary = {k: v for k, v in report.items() if k != "filters"}
        filters = report.get("filters")
        if filters is not None:
            summary["filters"] = {
                k: v for k, v in filters.items() if k != "units"
            }
        return summary

    def run_query(
        self,
        query: RangeQuery,
        measure_scan: bool = True,
        collect_trace: bool = False,
    ) -> QueryRecord:
        """Execute one query on the index (and optionally the scan).

        ``collect_trace=True`` traces the index query and attaches a
        JSON-safe per-filter summary as ``record.trace_summary``.
        """
        query_set = self.sets[query.set_index]
        result = self.index.query(
            query_set, query.sigma_low, query.sigma_high, explain=collect_trace
        )
        truth = {
            sid for sid, _ in self.oracle.query(query_set, query.sigma_low, query.sigma_high)
        }
        quality = evaluate_query(result.answer_sids, result.candidates, truth)
        if measure_scan:
            scan_result = self.scan.query(query_set, query.sigma_low, query.sigma_high)
            scan_io, scan_cpu = scan_result.io_time, scan_result.cpu_time
        else:
            scan_io = scan_cpu = 0.0
        trace_summary = None
        if collect_trace and result.trace is not None:
            trace_summary = {
                "filters": filter_summaries(result.trace),
                "io": result.io.as_dict(),
                "duration_ms": round(result.trace.duration_ms, 3),
            }
        return QueryRecord(
            query=query,
            n_truth=len(truth),
            n_candidates=result.n_candidates,
            n_answers=result.n_verified,
            recall=quality.recall,
            precision=quality.precision,
            index_io_time=result.io_time,
            index_cpu_time=result.cpu_time,
            scan_io_time=scan_io,
            scan_cpu_time=scan_cpu,
            trace_summary=trace_summary,
        )

    def run(
        self,
        queries: Sequence[RangeQuery],
        measure_scan: bool = True,
        collect_trace: bool = False,
    ) -> list[QueryRecord]:
        return [
            self.run_query(q, measure_scan, collect_trace=collect_trace)
            for q in queries
        ]

    def run_batch(
        self,
        queries: Sequence[RangeQuery],
        measure_scan: bool = True,
        collect_trace: bool = False,
        workers: int = 1,
        backend: str = "thread",
        snapshot_dir=None,
    ) -> list[QueryRecord]:
        """Execute a workload through the batched query path.

        Queries are grouped by their ``[sigma_low, sigma_high]`` range
        (a batch shares one range) and each group runs as one
        :meth:`~repro.core.index.SetSimilarityIndex.query_batch`.
        Answers, candidates, recall and precision are identical to
        :meth:`run`; response *time* is a batch-level quantity, so each
        group's simulated time is amortized evenly over its queries
        (the per-query I/O split of a shared bucket read is arbitrary).
        Records are returned in workload order.

        ``workers > 1`` freezes the index into a snapshot and serves
        every group through :class:`repro.exec.ParallelExecutor` on
        that many threads; answers and simulated costs are identical
        to the sequential path at any worker count.

        ``backend="process"`` saves the frozen snapshot to
        ``snapshot_dir`` (a temporary directory if ``None``) as a
        zero-copy :mod:`repro.exec.snapfile` image and serves every
        group from spawn worker *processes* that each map it --
        results and accounting remain identical to the sequential
        path.  Unlike the thread backend this always engages the
        executor, even at ``workers=1``.
        """
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown backend: {backend!r}")
        executor = None
        tmpdir = None
        frozen = False
        try:
            if backend == "process":
                import tempfile

                from repro.exec import ParallelExecutor, save_snapshot

                if snapshot_dir is None:
                    tmpdir = tempfile.TemporaryDirectory(prefix="repro-snap-")
                    snapshot_dir = tmpdir.name
                snapshot = self.index.freeze()
                frozen = True
                save_snapshot(snapshot, snapshot_dir)
                executor = ParallelExecutor(
                    snapshot_dir, workers=workers, backend="process"
                )
            elif workers > 1:
                from repro.exec import ParallelExecutor

                executor = ParallelExecutor(self.index.freeze(), workers=workers)
                frozen = True
            return self._run_batch_groups(
                queries, measure_scan, collect_trace, executor
            )
        finally:
            if executor is not None:
                executor.close()
            if frozen:
                self.index.thaw()
            if tmpdir is not None:
                tmpdir.cleanup()

    def _run_batch_groups(
        self,
        queries: Sequence[RangeQuery],
        measure_scan: bool,
        collect_trace: bool,
        executor,
    ) -> list[QueryRecord]:
        groups: dict[tuple[float, float], list[int]] = {}
        for i, q in enumerate(queries):
            groups.setdefault((q.sigma_low, q.sigma_high), []).append(i)
        records: list[QueryRecord | None] = [None] * len(queries)
        for (lo, hi), members in groups.items():
            query_sets = [self.sets[queries[i].set_index] for i in members]
            engine = executor if executor is not None else self.index
            batch = engine.query_batch(
                query_sets, lo, hi, explain=collect_trace
            )
            share = 1.0 / max(1, len(members))
            if measure_scan:
                scan_batch = self.scan.query_batch(query_sets, lo, hi)
                scan_io = scan_batch.io_time * share
                scan_cpu = scan_batch.cpu_time * share
            else:
                scan_io = scan_cpu = 0.0
            trace_summary = None
            if collect_trace and batch.trace is not None:
                trace_summary = {
                    "filters": filter_summaries(batch.trace),
                    "io": batch.io.as_dict(),
                    "pages_saved": batch.pages_saved,
                    "fetches_saved": batch.fetches_saved,
                    "n_queries": batch.n_queries,
                    "duration_ms": round(batch.trace.duration_ms, 3),
                }
            for i, query_set, result in zip(members, query_sets, batch.results):
                truth = {
                    sid for sid, _ in self.oracle.query(query_set, lo, hi)
                }
                quality = evaluate_query(
                    result.answer_sids, result.candidates, truth
                )
                records[i] = QueryRecord(
                    query=queries[i],
                    n_truth=len(truth),
                    n_candidates=result.n_candidates,
                    n_answers=result.n_verified,
                    recall=quality.recall,
                    precision=quality.precision,
                    index_io_time=batch.io_time * share,
                    index_cpu_time=batch.cpu_time * share,
                    scan_io_time=scan_io,
                    scan_cpu_time=scan_cpu,
                    trace_summary=trace_summary,
                )
        return [r for r in records if r is not None]

    def telemetry_summary(self) -> dict:
        """JSON-safe snapshot of the query-telemetry layer.

        Latency quantiles (every non-empty HDR histogram: end-to-end
        wall, per-phase, simulated), the candidate funnel, buffer-pool
        hit accounting and the event-log sampler statistics -- the
        numbers ``repro top`` renders, in one attachable dict.
        Registry instruments are process-wide and monotonic, so this
        describes everything recorded since the last
        ``metrics.reset()``, not only this harness's queries.
        """
        from repro.obs import events, metrics

        latency = {
            name: hist.to_dict()
            for name, hist in metrics.registry.hdr_histograms().items()
            if hist.count
        }
        counters = metrics.counter_values()
        n_candidates = counters.get("query.candidates", 0)
        n_verified = counters.get("query.verified_hits", 0)
        hits = counters.get("pager.cache_hits", 0)
        misses = counters.get("pager.cache_misses", 0)
        return {
            "latency": latency,
            "funnel": {
                "queries": counters.get("query.count", 0),
                "batches": counters.get("query.batches", 0),
                "candidates": n_candidates,
                "verified": n_verified,
                "precision": n_verified / n_candidates if n_candidates else 0.0,
            },
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_ratio": hits / (hits + misses) if hits + misses else 0.0,
            },
            "events": events.log.stats(),
        }

    def bucket_summaries(
        self,
        records: Sequence[QueryRecord],
        buckets=PAPER_BUCKETS,
    ) -> list[BucketSummary]:
        """Group records into the paper's result-size buckets.

        Classification follows the paper: by the *candidate* result
        size as a fraction of the collection.  Queries falling outside
        every bucket (e.g. > 35%) are dropped, as in the paper.
        """
        n = max(1, self.index.n_sets)
        grouped: dict[int, list[QueryRecord]] = {}
        for record in records:
            bucket = bucket_index(record.n_candidates / n, buckets)
            if bucket is not None:
                grouped.setdefault(bucket, []).append(record)
        summaries = []
        for i in range(len(buckets)):
            members = grouped.get(i, [])
            if not members:
                summaries.append(
                    BucketSummary(bucket_label(i, buckets), 0, *([float("nan")] * 6))
                )
                continue
            summaries.append(
                BucketSummary(
                    label=bucket_label(i, buckets),
                    n_queries=len(members),
                    recall=float(np.mean([r.recall for r in members])),
                    precision=float(np.mean([r.precision for r in members])),
                    index_io_time=float(np.mean([r.index_io_time for r in members])),
                    index_cpu_time=float(np.mean([r.index_cpu_time for r in members])),
                    scan_io_time=float(np.mean([r.scan_io_time for r in members])),
                    scan_cpu_time=float(np.mean([r.scan_cpu_time for r in members])),
                )
            )
        return summaries
