"""Index optimization: placement, allocation and the Fig. 4 loop.

Section 5 of the paper turns index construction into a constrained
optimization: given a budget of ``b`` hash tables and a threshold ``T``
on expected recall, choose

* the number of similarity intervals (Fig. 4 outer loop, guided by
  Lemmas 3 and 5),
* the location of the cut points (equidepth in ``D_S``; Lemma 4),
* the kind of each filter index -- DFIs below the median-mass point
  ``delta`` of Equation 15, SFIs above, both at the point nearest
  ``delta`` (Section 5.3),
* and the number of hash tables per filter index (the Greedy algorithm
  of Fig. 5; Lemma 6),

so that expected precision is maximized while expected recall stays
above ``T``.

Expectations follow the paper's workload model: query sets drawn from
the collection and similarity ranges chosen uniformly at random
(Section 6: "the bounds for each similarity range associated with a
query are chosen at random", and the index is "optimized for 90%
*average* recall").  For a candidate plan we therefore integrate the
plan's capture probability against the similarity distribution over a
canonical grid of query ranges and average; the per-interval
worst-case numbers of Lemmas 2-5 are also exposed for analysis.

All filter functions are evaluated in Hamming similarity via the
Jaccard -> Hamming conversion of Theorem 1 (including the
fixed-precision bias).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.distribution import SimilarityDistribution
from repro.core.embedding import jaccard_to_hamming
from repro.core.filter_function import FilterFunction, solve_r

#: Filter kind markers.
SFI = "sfi"
DFI = "dfi"


@dataclass
class PlannedFilter:
    """One filter index the plan calls for.

    ``point`` is the cut point in Jaccard similarity.  The actual
    structure operates in Hamming similarity: an SFI's turning point is
    ``jaccard_to_hamming(point)``; a DFI's underlying SFI sits at the
    complement of that (handled by the DFI class itself).
    """

    point: float
    kind: str
    n_tables: int = 0

    def hamming_threshold(self, b: int | None = None) -> float:
        """Turning point handed to the SFI/DFI constructor."""
        return jaccard_to_hamming(self.point, b)

    def collision_probability(self, s_grid: np.ndarray, b: int | None = None) -> np.ndarray:
        """Probability the filter's probe returns a set that is
        ``s``-Jaccard-similar to the query, for each ``s`` in the grid."""
        if self.n_tables <= 0:
            return np.zeros_like(np.asarray(s_grid, dtype=np.float64))
        ff = self._filter_function(b)
        s_h = jaccard_to_hamming(np.asarray(s_grid, dtype=np.float64), b)
        if self.kind == DFI:
            return ff(1.0 - s_h)
        return ff(s_h)

    def _filter_function(self, b: int | None = None) -> FilterFunction:
        threshold = self.hamming_threshold(b)
        if self.kind == DFI:
            threshold = 1.0 - threshold
        return FilterFunction.for_threshold(threshold, self.n_tables)

    def expected_error(
        self,
        dist: SimilarityDistribution,
        b: int | None = None,
        band: float = 0.0,
    ) -> float:
        """Expected false positives + false negatives (Defs 6 and 7).

        For an SFI the "retrieve" side is similarities above the point;
        for a DFI it is similarities below.  With no tables, everything
        on the retrieve side is a false negative.

        ``band`` excludes ``point +- band`` from the integrals.  Pair
        mass inside that band is unresolvable by construction (the
        filter crosses 1/2 exactly at the point, so neighbours are coin
        flips no matter how many tables are spent); counting it would
        swamp the allocation gradient that Fig. 5's greedy follows.
        """
        grid, mass = dist.centers, dist.mass
        retrieve = grid >= self.point if self.kind == SFI else grid <= self.point
        resolvable = np.abs(grid - self.point) > band
        if self.n_tables <= 0:
            return float(mass[retrieve & resolvable].sum())
        p = self.collision_probability(grid, b)
        fn_mask = retrieve & resolvable
        fp_mask = ~retrieve & resolvable
        false_neg = float(np.sum(mass[fn_mask] * (1.0 - p[fn_mask])))
        false_pos = float(np.sum(mass[fp_mask] * p[fp_mask]))
        return false_neg + false_pos


@dataclass
class RangeStats:
    """Expected behaviour of one query range under a plan."""

    sigma_low: float
    sigma_high: float
    recall: float
    precision: float
    expected_candidates: float
    expected_answer: float


@dataclass
class IndexPlan:
    """The optimizer's output: where filters go and how big they are."""

    cut_points: list[float]
    delta: float
    filters: list[PlannedFilter]
    expected_recall: float
    expected_precision: float
    b: int | None = None
    #: Whether the plan's expected recall met the construction target.
    #: When no plan can (the distribution is too concentrated for the
    #: budget), the most-accurate non-degenerate plan is returned with
    #: this flag False rather than silently degrading to a full scan.
    met_target: bool = True

    @property
    def tables_used(self) -> int:
        """Total hash tables the plan allocates."""
        return sum(f.n_tables for f in self.filters)

    @property
    def n_intervals(self) -> int:
        """Number of similarity intervals (cut points + 1)."""
        return len(self.cut_points) + 1

    def filters_at(self, point: float) -> list[PlannedFilter]:
        """The planned filters placed at one cut point."""
        return [f for f in self.filters if f.point == point]

    def kind_at(self, point: float) -> set[str]:
        """Which kinds (SFI/DFI) the plan places at one cut point."""
        return {f.kind for f in self.filters_at(point)}


def place_filters(cut_points: list[float], delta: float) -> list[PlannedFilter]:
    """Assign kinds to cut points per Section 5.3.

    Points below ``delta`` become DFIs, points above become SFIs, and
    the point closest to ``delta`` gets both kinds so mixed-range
    queries can pivot there.
    """
    if not cut_points:
        return []
    filters: list[PlannedFilter] = []
    pivot = min(cut_points, key=lambda c: abs(c - delta))
    for point in cut_points:
        if point == pivot:
            filters.append(PlannedFilter(point, DFI))
            filters.append(PlannedFilter(point, SFI))
        elif point < delta:
            filters.append(PlannedFilter(point, DFI))
        else:
            filters.append(PlannedFilter(point, SFI))
    return filters


def greedy_allocate(
    filters: list[PlannedFilter],
    budget: int,
    dist: SimilarityDistribution,
    b: int | None = None,
    band: float = 0.05,
    max_per_filter: int | None = None,
) -> int:
    """The Greedy algorithm of Fig. 5 (Lemma 6), mutating ``n_tables``.

    Tables go, one batch at a time, to the filter whose expected error
    per table spent drops the most.  Every filter is seeded with one
    table first (a zero-table filter cannot answer probes at all, and
    its first table removes its entire false-negative mass, so the
    paper's greedy would reach the same state).

    Because ``r`` is re-solved to an *integer* whenever ``l`` changes,
    the raw error curve ``error(l)`` jitters; a strictly one-step
    greedy would stall on the first uphill step.  We therefore
    precompute each filter's error curve, take its running-minimum
    envelope, and let the greedy jump to the next envelope drop
    (best error-reduction per table).  Tables that cannot reduce any
    filter's envelope further are withheld; the number actually
    assigned is returned.
    """
    if not filters or budget < len(filters):
        for f in filters:
            f.n_tables = 0
        return 0
    n = len(filters)
    max_tables = budget - (n - 1)
    if max_per_filter is not None:
        # A query probes every table of its enclosing filters, so this
        # bounds per-query probe cost -- an engineering guard the paper
        # (whose scans dwarfed probes at 200k sets) did not need, but
        # small collections do.
        max_tables = max(1, min(max_tables, max_per_filter))
    curves = [
        np.minimum.accumulate(_error_curve(f, dist, b, band, max_tables))
        for f in filters
    ]
    alloc, used = _greedy_over_curves(curves, budget, max_tables)
    for f, l in zip(filters, alloc):
        f.n_tables = l
    return used


def _greedy_over_curves(
    curves: list[np.ndarray], budget: int, max_tables: int
) -> tuple[list[int], int]:
    """The Fig. 5 greedy loop over precomputed error envelopes.

    Every curve is seeded with one table; the remaining budget goes,
    one envelope drop at a time, to the curve with the best error
    reduction per table.  Returns (allocation, tables used)."""
    n = len(curves)
    alloc = [1] * n
    used = n
    epsilon = 1e-12
    while used < budget:
        remaining = budget - used
        best = None  # (rate, curve index, target l, new error)
        for i, curve in enumerate(curves):
            current = curve[alloc[i] - 1]
            hi = min(max_tables, alloc[i] + remaining)
            segment = curve[alloc[i] : hi]
            if segment.size == 0:
                continue
            drops = np.flatnonzero(segment < current - epsilon)
            if drops.size == 0:
                continue
            step = int(drops[0]) + 1
            gain = current - segment[drops[0]]
            rate = gain / step
            if best is None or rate > best[0]:
                best = (rate, i, alloc[i] + step, segment[drops[0]])
        if best is None:
            break
        _, i, target, _ = best
        used += target - alloc[i]
        alloc[i] = target
    return alloc, used


def allocate_global_budget(
    shard_filters: list[list[PlannedFilter]],
    budget: int,
    dists: list[SimilarityDistribution],
    weights: list[float] | None = None,
    b: int | None = None,
    band: float = 0.05,
    max_per_filter: int | None = None,
) -> list[int]:
    """Lemma 6 lifted to a fleet of shards under one global budget.

    Each shard brings its own filter list (the global plan's cut
    points, per-shard copies), its own similarity distribution (the
    pair mass of the sets *it* holds), and a workload weight (the
    estimated fraction of query answer mass that lands on it).  All
    (shard, filter) units compete in one greedy: a table goes to the
    unit whose *weighted* expected-error drop per table is largest, so
    hot shards -- more answer mass at stake per unit of residual error
    -- soak up more of the budget.

    Every unit is seeded with one table first (a zero-table filter
    breaks its shard's probe planning), so ``budget`` must cover at
    least one table per (shard, filter) pair.  Mutates ``n_tables`` in
    place and returns the per-shard table totals.
    """
    n_shards = len(shard_filters)
    if len(dists) != n_shards:
        raise ValueError(
            f"{n_shards} shards but {len(dists)} distributions"
        )
    if weights is None:
        weights = [1.0] * n_shards
    if len(weights) != n_shards or any(w < 0 for w in weights):
        raise ValueError(f"need {n_shards} non-negative weights, got {weights}")
    units = [
        (s, f) for s, filters in enumerate(shard_filters) for f in filters
    ]
    if not units:
        return [0] * n_shards
    if budget < len(units):
        raise ValueError(
            f"global budget {budget} cannot seed one table for each of "
            f"{len(units)} (shard, filter) units"
        )
    # Relative scale is all that matters; normalize to mean 1 so `band`
    # and epsilon thresholds keep their single-shard meaning.
    total_w = sum(weights) or 1.0
    scale = [w * n_shards / total_w for w in weights]
    max_tables = budget - (len(units) - 1)
    if max_per_filter is not None:
        max_tables = max(1, min(max_tables, max_per_filter))
    curves = [
        np.minimum.accumulate(
            _error_curve(f, dists[s], b, band, max_tables)
        ) * scale[s]
        for s, f in units
    ]
    alloc, _ = _greedy_over_curves(curves, budget, max_tables)
    per_shard = [0] * n_shards
    for (s, f), l in zip(units, alloc):
        f.n_tables = l
        per_shard[s] += l
    return per_shard


@lru_cache(maxsize=4096)
def _solve_r_vector(threshold: float, max_tables: int) -> tuple[int, ...]:
    """``solve_r(threshold, l)`` for l = 1..max_tables, memoized --
    thresholds repeat across the Fig. 4 loop's iterations."""
    return tuple(solve_r(threshold, l) for l in range(1, max_tables + 1))


def _error_curve(
    f: PlannedFilter,
    dist: SimilarityDistribution,
    b: int | None,
    band: float,
    max_tables: int,
) -> np.ndarray:
    """``expected_error`` of filter ``f`` for every ``l`` in 1..max_tables.

    Vectorized over ``l``: one ``(L, bins)`` evaluation of
    ``p_{r(l),l}`` instead of ``L`` independent integrals, so the
    greedy allocator stays fast at four-digit budgets.
    """
    grid, mass = dist.centers, dist.mass
    retrieve = grid >= f.point if f.kind == SFI else grid <= f.point
    resolvable = np.abs(grid - f.point) > band
    s_h = jaccard_to_hamming(grid, b)
    x = s_h if f.kind == SFI else 1.0 - s_h
    threshold = f.hamming_threshold(b)
    if f.kind == DFI:
        threshold = 1.0 - threshold
    ls = np.arange(1, max_tables + 1, dtype=np.float64)
    rs = np.asarray(_solve_r_vector(round(threshold, 9), max_tables))
    log_x = np.log(np.clip(x, 1e-300, 1.0))
    x_pow_r = np.exp(rs[:, np.newaxis] * log_x[np.newaxis, :])  # (L, bins)
    p = 1.0 - (1.0 - x_pow_r) ** ls[:, np.newaxis]
    fn_mass = np.where(retrieve & resolvable, mass, 0.0)
    fp_mass = np.where(~retrieve & resolvable, mass, 0.0)
    return (1.0 - p) @ fn_mass + p @ fp_mass


def uniform_allocate(
    filters: list[PlannedFilter],
    budget: int,
    dist: SimilarityDistribution | None = None,
    b: int | None = None,
    band: float = 0.05,
    max_per_filter: int | None = None,
) -> int:
    """Baseline allocator for the ablation: split the budget evenly.

    ``dist`` and ``b`` are accepted (and ignored) so all allocators
    share the signature :func:`plan_index` expects.
    """
    if not filters:
        return 0
    base, extra = divmod(budget, len(filters))
    for i, f in enumerate(filters):
        f.n_tables = base + (1 if i < extra else 0)
        if max_per_filter is not None:
            f.n_tables = min(f.n_tables, max_per_filter)
    return sum(f.n_tables for f in filters)


class CaptureModel:
    """Analytic model of a plan's candidate-generation behaviour.

    Mirrors the query planner of Section 4.3: given a query range it
    selects the minimally enclosing cut points, picks the Sim/Dissim
    difference (or the mixed pivot plan), and returns the probability,
    per similarity value, that a set at that similarity enters the
    candidate list.
    """

    def __init__(
        self,
        cut_points: list[float],
        filters: list[PlannedFilter],
        b: int | None = None,
    ):
        self.cut_points = sorted(cut_points)
        self.b = b
        self._by_point: dict[float, dict[str, PlannedFilter]] = {}
        for f in filters:
            if f.n_tables > 0:
                self._by_point.setdefault(f.point, {})[f.kind] = f

    def enclosing(self, sigma_low: float, sigma_high: float) -> tuple[float | None, float | None]:
        """Cut points minimally enclosing a range (None = virtual 0/1)."""
        lo = max((c for c in self.cut_points if c <= sigma_low), default=None)
        up = min((c for c in self.cut_points if c >= sigma_high), default=None)
        return lo, up

    def _p(self, point: float, kind: str, s_grid: np.ndarray) -> np.ndarray | None:
        f = self._by_point.get(point, {}).get(kind)
        if f is None:
            return None
        return f.collision_probability(s_grid, self.b)

    def _pivot_between(self, lo: float, up: float) -> float | None:
        for point in self.cut_points:
            if lo <= point <= up:
                kinds = self._by_point.get(point, {})
                if SFI in kinds and DFI in kinds:
                    return point
        return None

    def capture(self, sigma_low: float, sigma_high: float, s_grid: np.ndarray) -> np.ndarray:
        """Capture probability over ``s_grid`` for range ``[lo, up]``."""
        s_grid = np.asarray(s_grid, dtype=np.float64)
        lo, up = self.enclosing(sigma_low, sigma_high)
        if lo is None and up is None:
            return np.ones_like(s_grid)
        if lo is None:
            p_up = self._p(up, DFI, s_grid)
            if p_up is not None:
                return p_up
            return 1.0 - self._p(up, SFI, s_grid)
        if up is None:
            p_lo = self._p(lo, SFI, s_grid)
            if p_lo is not None:
                return p_lo
            return 1.0 - self._p(lo, DFI, s_grid)
        p_lo_sfi, p_up_sfi = self._p(lo, SFI, s_grid), self._p(up, SFI, s_grid)
        if p_lo_sfi is not None and p_up_sfi is not None:
            return p_lo_sfi * (1.0 - p_up_sfi)
        p_lo_dfi, p_up_dfi = self._p(lo, DFI, s_grid), self._p(up, DFI, s_grid)
        if p_lo_dfi is not None and p_up_dfi is not None:
            return p_up_dfi * (1.0 - p_lo_dfi)
        pivot = self._pivot_between(lo, up)
        if pivot is None:
            # Inconsistent plan; model as no filtering (full scan).
            return np.ones_like(s_grid)
        low_side = self._p(pivot, DFI, s_grid) * (1.0 - p_lo_dfi)
        high_side = self._p(pivot, SFI, s_grid) * (1.0 - p_up_sfi)
        return low_side + high_side - low_side * high_side


def default_range_workload(step: float = 0.05) -> list[tuple[float, float]]:
    """The canonical query-range workload expectations are taken over:
    every pair ``sigma_low < sigma_high`` on a uniform grid, matching
    the paper's uniformly random range endpoints."""
    grid = np.round(np.arange(0.0, 1.0 + step / 2, step), 10)
    return [
        (float(a), float(b))
        for i, a in enumerate(grid)
        for b in grid[i + 1 :]
    ]


def evaluate_ranges(
    cut_points: list[float],
    filters: list[PlannedFilter],
    dist: SimilarityDistribution,
    b: int | None = None,
    ranges: list[tuple[float, float]] | None = None,
) -> list[RangeStats]:
    """Expected recall/precision of a plan for each query range.

    For each range the plan's capture probability is integrated against
    ``D_S``: recall is captured-in-range over total-in-range; precision
    is captured-in-range over total captured.  Ranges with no answer
    mass are skipped (their recall is undefined and their retrieval
    cost is captured by neighbouring ranges).
    """
    if ranges is None:
        ranges = default_range_workload()
    model = CaptureModel(cut_points, filters, b)
    grid, mass = dist.centers, dist.mass
    stats: list[RangeStats] = []
    for sigma_low, sigma_high in ranges:
        in_range = (grid >= sigma_low) & (grid <= sigma_high)
        answer = float(mass[in_range].sum())
        if answer == 0:
            continue
        capture = model.capture(sigma_low, sigma_high, grid)
        captured_in_range = float(np.sum(mass[in_range] * capture[in_range]))
        captured_total = float(np.sum(mass * capture))
        stats.append(
            RangeStats(
                sigma_low=sigma_low,
                sigma_high=sigma_high,
                recall=captured_in_range / answer,
                precision=1.0 if captured_total == 0 else captured_in_range / captured_total,
                expected_candidates=captured_total,
                expected_answer=answer,
            )
        )
    return stats


def evaluate_plan(
    cut_points: list[float],
    filters: list[PlannedFilter],
    dist: SimilarityDistribution,
    b: int | None = None,
) -> list[RangeStats]:
    """Per-interval statistics: the ranges aligned with the cut points
    themselves (the Lemma 2-5 analysis granularity)."""
    bounds = [0.0, *sorted(cut_points), 1.0]
    ranges = [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]
    return evaluate_ranges(cut_points, filters, dist, b, ranges)


def average_recall(stats: list[RangeStats]) -> float:
    """Mean per-range expected recall over a workload (Definition 8)."""
    return float(np.mean([s.recall for s in stats])) if stats else 1.0


def average_precision(stats: list[RangeStats]) -> float:
    """Mean per-range expected precision over a workload (Definition 9)."""
    return float(np.mean([s.precision for s in stats])) if stats else 1.0


def worst_recall(stats: list[RangeStats], min_answer: float = 0.0) -> float:
    """Worst-case recall over ranges with expected answer >= min_answer
    (the paper's "queries with expected answer size at least a")."""
    eligible = [s.recall for s in stats if s.expected_answer >= min_answer]
    return min(eligible) if eligible else 1.0


def worst_precision(stats: list[RangeStats], min_answer: float = 0.0) -> float:
    """Worst-case precision over ranges with answers >= ``min_answer``."""
    eligible = [s.precision for s in stats if s.expected_answer >= min_answer]
    return min(eligible) if eligible else 1.0


def plan_index(
    dist: SimilarityDistribution,
    budget: int,
    recall_target: float = 0.9,
    b: int | None = None,
    max_intervals: int | None = None,
    min_gap: float = 0.02,
    allocator=greedy_allocate,
    placement: str = "equidepth",
    ranges: list[tuple[float, float]] | None = None,
    max_per_filter: int | None = None,
) -> IndexPlan:
    """The Index Construction algorithm of Fig. 4.

    Starting from one interval (no filters: the degenerate full-scan
    plan), grow the number of equidepth intervals, allocating the
    hash-table budget at each step and evaluating expected recall and
    precision over the query-range workload.  Per Objective 2 the
    returned plan is the one with the best expected precision among
    those whose expected recall meets ``recall_target`` (Lemma 3 says
    recall only degrades and Lemma 5 that precision improves as
    intervals are added, so on smooth distributions this is the last
    passing plan, exactly the paper's loop; cut-point deduplication on
    spiky distributions makes the trend non-monotone, so we scan a few
    steps past the first miss instead of stopping dead on it).

    Parameters
    ----------
    placement:
        ``"equidepth"`` (Lemma 4, the paper's choice) or ``"uniform"``
        (equal-width intervals; the ablation baseline).
    min_gap:
        Minimum distance between cut points.  Defaults to roughly the
        embedding's resolution: with ``D ~ 6400`` bits the standard
        deviation of measured Hamming similarity is ~0.006, i.e. ~0.012
        in Jaccard -- cuts closer than that are indistinguishable by
        any filter, so equidepth quantiles inside a mass spike are
        merged and additional intervals spill into the rest of the
        range instead.
    ranges:
        Query-range workload to evaluate against; defaults to the
        uniform grid of :func:`default_range_workload`.
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    if not 0.0 < recall_target <= 1.0:
        raise ValueError(f"recall_target must be in (0, 1], got {recall_target}")
    if placement not in ("equidepth", "uniform"):
        raise ValueError(f"unknown placement: {placement!r}")
    if max_intervals is None:
        # Deep enough that an equidepth quantile can reach a thin
        # similar tail (tail fraction f needs ~1/f intervals); plans
        # whose distinct cut points repeat are skipped, so sweeping
        # high is cheap on spiky distributions.
        max_intervals = max(2, min(96, budget))
    if ranges is None:
        ranges = default_range_workload()
    delta = dist.delta_split()
    best: IndexPlan | None = None
    fallback: IndexPlan | None = None
    evaluated: set[tuple[float, ...]] = set()
    consecutive_misses = 0
    for n_intervals in range(2, max_intervals + 1):
        if placement == "equidepth":
            raw_points = dist.equidepth_points(n_intervals)
        else:
            raw_points = [i / n_intervals for i in range(1, n_intervals)]
        points = _distinct_points(raw_points, min_gap)
        # Quantize at half the resolution gap: successive n whose cuts
        # only jitter inside the unresolvable band are the same plan.
        key = tuple(int(p / (min_gap / 2)) for p in points)
        if key in evaluated:
            continue  # dedupe collapsed this step to a known plan
        evaluated.add(key)
        filters = place_filters(points, delta)
        if len(filters) > budget:
            break  # cannot give every filter even one table
        allocator(filters, budget, dist, b, max_per_filter=max_per_filter)
        stats = evaluate_ranges(points, filters, dist, b, ranges)
        recall = average_recall(stats)
        precision = average_precision(stats)
        plan = IndexPlan(
            cut_points=points,
            delta=delta,
            filters=filters,
            expected_recall=recall,
            expected_precision=precision,
            b=b,
            met_target=recall >= recall_target,
        )
        if fallback is None or recall > fallback.expected_recall:
            fallback = plan
        if recall < recall_target:
            consecutive_misses += 1
            if consecutive_misses >= 3:
                break  # Lemma 3: recall keeps degrading from here
            continue
        consecutive_misses = 0
        if best is None or precision > best.expected_precision:
            best = plan
    if best is not None:
        return best
    if fallback is not None:
        return fallback
    # Not even a 2-interval plan was constructible: degenerate scan plan.
    return IndexPlan(
        cut_points=[],
        delta=delta,
        filters=[],
        expected_recall=1.0,
        expected_precision=0.0,
        b=b,
        met_target=recall_target <= 1.0,
    )


def _distinct_points(points: list[float], min_gap: float) -> list[float]:
    """Drop near-duplicate cut points and clamp away from {0, 1}."""
    distinct: list[float] = []
    for p in sorted(points):
        p = min(1.0 - min_gap, max(min_gap, p))
        if not distinct or p - distinct[-1] >= min_gap:
            distinct.append(p)
    return distinct
