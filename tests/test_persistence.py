"""Tests for index save/load."""

import pytest

from repro.core.index import SetSimilarityIndex
from repro.core.persistence import (
    FORMAT_VERSION,
    MAGIC,
    PersistenceError,
    load_index,
    save_index,
)


@pytest.fixture(scope="module")
def small_index(clustered_sets):
    return SetSimilarityIndex.build(
        clustered_sets[:40], budget=30, recall_target=0.8, k=24, b=6, seed=3
    )


class TestSaveLoad:
    def test_roundtrip_answers_identical(self, small_index, clustered_sets, tmp_path):
        path = tmp_path / "index.ssi"
        small_index.save(path)
        loaded = SetSimilarityIndex.load(path)
        q = clustered_sets[0]
        original = small_index.query(q, 0.3, 1.0)
        restored = loaded.query(q, 0.3, 1.0)
        assert restored.answers == original.answers
        assert restored.candidates == original.candidates

    def test_loaded_index_supports_updates(self, small_index, clustered_sets, tmp_path):
        path = tmp_path / "index.ssi"
        small_index.save(path)
        loaded = SetSimilarityIndex.load(path)
        sid = loaded.insert({1, 2, 3, 4})
        assert sid in loaded.query({1, 2, 3, 4}, 0.9, 1.0).answer_sids
        loaded.delete(sid)
        assert loaded.n_sets == small_index.n_sets

    def test_plan_preserved(self, small_index, tmp_path):
        path = tmp_path / "index.ssi"
        small_index.save(path)
        loaded = SetSimilarityIndex.load(path)
        assert loaded.plan.cut_points == small_index.plan.cut_points
        assert loaded.plan.tables_used == small_index.plan.tables_used

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"NOT-AN-INDEX" + b"\x00" * 50)
        with pytest.raises(PersistenceError):
            load_index(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "future.ssi"
        path.write_bytes(MAGIC + (FORMAT_VERSION + 1).to_bytes(2, "little") + b"x")
        with pytest.raises(PersistenceError):
            load_index(path)

    def test_load_type_check(self, tmp_path):
        path = tmp_path / "notindex.ssi"
        save_index({"just": "a dict"}, path)
        with pytest.raises(TypeError):
            SetSimilarityIndex.load(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "nope.ssi")


class TestShortFiles:
    """Truncated headers raise PersistenceError, never a surprise."""

    @pytest.mark.parametrize(
        "blob",
        [
            b"",
            b"R",
            MAGIC,  # magic but no version bytes
            MAGIC + b"\x02",  # only half the version field
        ],
        ids=["empty", "one-byte", "magic-only", "half-version"],
    )
    def test_short_header(self, tmp_path, blob):
        path = tmp_path / "short.ssi"
        path.write_bytes(blob)
        with pytest.raises(PersistenceError, match="shorter|bad magic"):
            load_index(path)

    def test_truncated_payload(self, small_index, tmp_path):
        path = tmp_path / "index.ssi"
        save_index(small_index, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(MAGIC) + 2 + 10])
        with pytest.raises(PersistenceError):
            load_index(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "headeronly.ssi"
        path.write_bytes(MAGIC + FORMAT_VERSION.to_bytes(2, "little"))
        with pytest.raises(PersistenceError, match="truncated"):
            load_index(path)


class TestCrashSafety:
    """A failed save must leave a pre-existing file byte-identical."""

    def test_fsync_failure_preserves_existing_file(
        self, small_index, tmp_path, monkeypatch
    ):
        import repro.core.persistence as persistence

        path = tmp_path / "index.ssi"
        save_index(small_index, path)
        good = path.read_bytes()

        def exploding_fsync(fd):
            raise OSError("simulated device failure mid-write")

        monkeypatch.setattr(persistence, "_fsync", exploding_fsync)
        with pytest.raises(OSError, match="simulated"):
            save_index(small_index, path)
        assert path.read_bytes() == good  # untouched
        assert list(tmp_path.glob("*.tmp")) == []  # staging file removed
        loaded = SetSimilarityIndex.load(path)
        assert loaded.n_sets == small_index.n_sets

    def test_unpicklable_index_fails_before_touching_target(self, tmp_path):
        path = tmp_path / "index.ssi"
        path.write_bytes(b"precious")
        with pytest.raises(Exception):
            save_index({"bad": lambda: None}, path)  # lambdas don't pickle
        assert path.read_bytes() == b"precious"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_failed_first_save_leaves_nothing(self, small_index, tmp_path, monkeypatch):
        import repro.core.persistence as persistence

        path = tmp_path / "fresh.ssi"
        monkeypatch.setattr(
            persistence, "_fsync", lambda fd: (_ for _ in ()).throw(OSError("boom"))
        )
        with pytest.raises(OSError):
            save_index(small_index, path)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []
