"""Bulk index construction scaling (BENCH-BUILD).

Quantifies what PR 4's build pipeline buys on a 10k-set
planted-cluster workload under an explicit plan (the BENCH-BATCH
setting):

* **bulk filter loading** -- wall-clock of the vectorized
  bucket-partitioned path (:func:`repro.exec.build.bulk_load_filters`)
  against the legacy per-entry insert loop, equivalence-gated: both
  builds must agree on chains, occupancies and I/O accounting, and
  answer probe queries identically;
* **parallel planning** -- per-unit plan times measured at
  ``workers=1`` are LPT-packed onto ``W`` lanes to get the modeled
  filter-stage makespan (plan phase / W + sequential apply).  Measured
  multi-worker walls are reported too, but on GIL-bound hosts they
  cannot follow the model, so the gates bind on the modeled number
  plus equivalence (the BENCH-PARALLEL convention);
* **fast exact D_S** -- wall-clock of the co-occurrence-counting
  exact branch of ``SimilarityDistribution.from_sets`` against the
  per-pair Python loop, value-identical.

Run standalone (used by CI in smoke mode)::

    PYTHONPATH=src python benchmarks/bench_build.py [--smoke] [--out PATH]

Writes ``BENCH_build.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_build.json"

WORKER_COUNTS = (1, 2, 4, 8)


def build_workload(n_sets: int, budget: int, seed: int):
    """Planted-cluster collection + explicit plan (cuts 0.2/0.5/0.8)."""
    from repro.core.optimizer import (
        IndexPlan,
        SimilarityDistribution,
        greedy_allocate,
        place_filters,
    )
    from repro.data.generators import planted_clusters

    per_cluster = 20
    sets = planted_clusters(
        n_clusters=max(1, n_sets // per_cluster),
        per_cluster=per_cluster,
        base_size=40,
        universe=20_000,
        mutation_rate=0.15,
        seed=seed,
    )
    dist = SimilarityDistribution.from_sets(sets, sample_pairs=50_000, seed=seed)
    cuts = [0.2, 0.5, 0.8]
    filters = place_filters(cuts, delta=0.2)
    greedy_allocate(filters, budget, dist, 6)
    plan = IndexPlan(
        cut_points=cuts,
        delta=0.2,
        filters=filters,
        expected_recall=0.9,
        expected_precision=0.5,
        b=6,
        met_target=True,
    )
    return sets, dist, plan


def _build(sets, dist, plan, k, seed, method, workers=1, explain=False):
    from repro.core.index import SetSimilarityIndex

    t0 = time.perf_counter()
    index = SetSimilarityIndex.from_plan(
        sets, plan, dist, k=k, b=6, seed=seed,
        build_method=method, workers=workers, explain=explain,
    )
    return time.perf_counter() - t0, index


def _filters_of(index):
    out = []
    for kind, filters in (("sfi", index._sfis), ("dfi", index._dfis)):
        for point, fi in sorted(filters.items()):
            out.append((f"{kind}({point})", fi._sfi if hasattr(fi, "_sfi") else fi))
    return out


def _equivalent(a, a_build_io, b, sets, seed) -> bool:
    """Chains, occupancies, I/O accounting and query answers agree.

    ``a_build_io`` is the baseline's post-build I/O snapshot, taken
    before any equivalence query perturbed its counters.  The
    exhaustive page-slot / directory comparison lives in
    ``tests/test_build.py``; the bench checks the summary invariants
    plus observable behaviour so full-scale runs stay fast.
    """
    if a_build_io != b.io.snapshot().as_dict():
        return False
    for (ka, fa), (kb, fb) in zip(_filters_of(a), _filters_of(b)):
        if ka != kb:
            return False
        for ta, tb in zip(fa._tables, fb._tables):
            if ta._chains != tb._chains or ta.load_stats() != tb.load_stats():
                return False
    rng = np.random.default_rng(seed)
    for _ in range(5):
        q = sets[int(rng.integers(len(sets)))]
        lo = float(rng.uniform(0.0, 0.6))
        hi = float(rng.uniform(lo, 1.0))
        ra, rb = a.query(q, lo, hi), b.query(q, lo, hi)
        if ra.answers != rb.answers or ra.io.as_dict() != rb.io.as_dict():
            return False
    return True


def _phase_seconds(index, name) -> float:
    from repro.obs.explain import build_summaries

    for row in build_summaries(index.build_trace):
        if row["phase"] == name:
            return row["duration_ms"] / 1000.0
    return 0.0


def bench_build(sets, dist, plan, k, seed, worker_counts) -> dict:
    from repro.exec.build import lpt_makespan

    insert_total, baseline = _build(
        sets, dist, plan, k, seed, "insert", explain=True
    )
    baseline_io = baseline.io.snapshot().as_dict()
    insert_filter = insert_total - _phase_seconds(
        baseline, "store_load"
    ) - _phase_seconds(baseline, "embed_corpus")

    rows = []
    unit_seconds: list[float] = []
    for workers in worker_counts:
        total, index = _build(sets, dist, plan, k, seed, "bulk", workers)
        rep = index.build_report["filters"]
        if workers == 1:
            unit_seconds = [u["plan_seconds"] for u in rep["units"]]
        measured_filter = rep["plan_wall_seconds"] + rep["apply_wall_seconds"]
        # Modeled: the workers=1 per-unit plan times (uninflated by GIL
        # contention) LPT-packed onto W lanes, plus the sequential apply.
        modeled_filter = (
            lpt_makespan(unit_seconds, workers) + rep["apply_wall_seconds"]
        )
        rows.append({
            "workers": workers,
            "total_seconds": round(total, 4),
            "filter_seconds": round(measured_filter, 4),
            "plan_wall_seconds": rep["plan_wall_seconds"],
            "plan_busy_seconds": rep["plan_busy_seconds"],
            "apply_wall_seconds": rep["apply_wall_seconds"],
            "modeled_filter_seconds": round(modeled_filter, 4),
            "measured_speedup": round(insert_filter / measured_filter, 2),
            "modeled_speedup": round(insert_filter / modeled_filter, 2),
            "entries": rep["entries"],
            "new_pages": rep["new_pages"],
            "tail_replans": rep["tail_replans"],
            "equivalent": _equivalent(baseline, baseline_io, index, sets, seed),
        })
    return {
        "insert_total_seconds": round(insert_total, 4),
        "insert_filter_seconds": round(insert_filter, 4),
        "rows": rows,
    }


def bench_distribution(n_sets: int, seed: int) -> dict:
    from repro.core.distribution import (
        _exact_pairwise_loop,
        exact_pairwise_similarities,
    )
    from repro.data.generators import planted_clusters

    sets = planted_clusters(
        n_clusters=max(1, n_sets // 20), per_cluster=20, base_size=40,
        universe=20_000, mutation_rate=0.15, seed=seed,
    )
    t0 = time.perf_counter()
    fast = exact_pairwise_similarities(sets)
    columnar_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    slow = _exact_pairwise_loop(sets)
    loop_s = time.perf_counter() - t0
    return {
        "n_sets": len(sets),
        "pairs": int(fast.size),
        "columnar_seconds": round(columnar_s, 4),
        "loop_seconds": round(loop_s, 4),
        "speedup": round(loop_s / columnar_s, 2),
        "equal": bool(np.array_equal(fast, slow)),
    }


def run_bench(
    n_sets: int = 10_000,
    budget: int = 200,
    k: int = 64,
    seed: int = 11,
    ds_sets: int = 1000,
    worker_counts=WORKER_COUNTS,
) -> dict:
    sets, dist, plan = build_workload(n_sets, budget, seed)
    return {
        "experiment": "BENCH-BUILD",
        "workload": {
            "generator": "planted_clusters",
            "plan": "explicit cuts [0.2, 0.5, 0.8], delta 0.2",
            "n_sets": n_sets,
            "budget": budget,
            "k": k,
            "seed": seed,
        },
        "host": {
            "cpu_count": os.cpu_count(),
            "single_core_host": (os.cpu_count() or 1) <= 1,
        },
        "metric_note": (
            "filter_seconds covers the filter-load stage only (plan + "
            "apply; store/embed are shared by both methods); "
            "measured_speedup is honest wall clock; modeled_speedup "
            "LPT-packs the per-unit plan times measured at workers=1 "
            "onto W lanes plus the sequential apply -- what a W-wide "
            "pool delivers where the numpy kernels overlap, which "
            "GIL-bound hosts cannot show in wall clock"
        ),
        "build": bench_build(sets, dist, plan, k, seed, worker_counts),
        "distribution": bench_distribution(ds_sets, seed + 1),
    }


def format_table(payload: dict) -> str:
    b = payload["build"]
    lines = [
        f"per-insert build: {b['insert_total_seconds']}s total, "
        f"{b['insert_filter_seconds']}s filter stage"
    ]
    header = (
        f"  {'workers':>8} {'total(s)':>9} {'filter(s)':>10} "
        f"{'model(s)':>9} {'meas-spd':>9} {'model-spd':>10} {'equal':>6}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for r in b["rows"]:
        lines.append(
            f"  {r['workers']:>8} {r['total_seconds']:>9} "
            f"{r['filter_seconds']:>10} {r['modeled_filter_seconds']:>9} "
            f"{r['measured_speedup']:>8}x {r['modeled_speedup']:>9}x "
            f"{'yes' if r['equivalent'] else 'NO':>6}"
        )
    d = payload["distribution"]
    lines.append(
        f"exact D_S over {d['n_sets']} sets ({d['pairs']} pairs): "
        f"columnar {d['columnar_seconds']}s vs loop {d['loop_seconds']}s "
        f"({d['speedup']}x, {'equal' if d['equal'] else 'DIVERGED'})"
    )
    return "\n".join(lines)


def check(payload: dict, smoke: bool = False) -> list[str]:
    """The bench's own acceptance gates; returns failure messages."""
    failures = []
    for r in payload["build"]["rows"]:
        if not r["equivalent"]:
            failures.append(
                f"bulk build diverged from per-insert at workers={r['workers']}"
            )
        if r["tail_replans"] != 0:
            failures.append(
                f"fresh-table build needed {r['tail_replans']} tail re-plans "
                f"at workers={r['workers']}"
            )
    if not payload["distribution"]["equal"]:
        failures.append("columnar exact D_S diverged from the pairwise loop")
    if smoke:
        return failures  # smoke checks the machinery, not the numbers
    sequential = payload["build"]["rows"][0]
    if sequential["measured_speedup"] < 2.0:
        failures.append(
            f"sequential bulk filter stage only "
            f"{sequential['measured_speedup']}x over per-insert (< 2x)"
        )
    widest = payload["build"]["rows"][-1]
    if widest["modeled_speedup"] < 3.0:
        failures.append(
            f"modeled filter-stage speedup {widest['modeled_speedup']}x "
            f"< 3x at {widest['workers']} workers"
        )
    if payload["distribution"]["speedup"] < 5.0:
        failures.append(
            f"exact D_S speedup {payload['distribution']['speedup']}x < 5x"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workload for CI: checks equivalence, not the numbers",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    if args.smoke:
        payload = run_bench(
            n_sets=400, budget=80, k=32, ds_sets=120,
            worker_counts=(1, 2, 4),
        )
        payload["smoke"] = True
    else:
        payload = run_bench()
    print(format_table(payload))
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    failures = check(payload, smoke=args.smoke)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
