"""Query workloads and result-size bucketing (Section 6 methodology).

The paper evaluates with query sets "chosen at random from the set
collection" and range bounds "chosen at random as well", then groups
queries into five buckets by candidate-result size as a fraction of the
collection: < 0.5%, 0.5-5%, 5-10%, 10-25% and 25-35%.  All reported
precision/recall/response-time numbers are per-bucket averages.

``QueryWorkload`` reproduces that protocol deterministically from a
seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

#: The paper's five result-size buckets as (low, high] fractions of N.
PAPER_BUCKETS: tuple[tuple[float, float], ...] = (
    (0.0, 0.005),
    (0.005, 0.05),
    (0.05, 0.10),
    (0.10, 0.25),
    (0.25, 0.35),
)


def bucket_index(result_fraction: float, buckets=PAPER_BUCKETS) -> int | None:
    """Bucket number for a result size fraction, or None if outside all."""
    for i, (low, high) in enumerate(buckets):
        if low <= result_fraction <= high:
            return i
    return None


def bucket_label(i: int, buckets=PAPER_BUCKETS) -> str:
    """Human-readable label of bucket ``i``, e.g. ``"0.5-5%"``."""
    low, high = buckets[i]
    return f"{low * 100:g}-{high * 100:g}%"


@dataclass(frozen=True)
class RangeQuery:
    """One similarity range query: a query set index and its range."""

    set_index: int
    sigma_low: float
    sigma_high: float


class QueryWorkload:
    """Deterministic random query workload over a collection.

    Parameters
    ----------
    n_sets:
        Size of the collection queries are drawn from.
    seed:
        Workload seed; the same seed reproduces the same queries.
    min_width:
        Minimum range width; the paper's random ranges are continuous,
        and zero-width ranges have empty answers almost surely, so a
        small floor keeps every query meaningful.
    """

    def __init__(self, n_sets: int, seed: int = 0, min_width: float = 0.05):
        if n_sets <= 0:
            raise ValueError(f"n_sets must be positive, got {n_sets}")
        if not 0.0 <= min_width <= 1.0:
            raise ValueError(f"min_width must be in [0, 1], got {min_width}")
        self.n_sets = n_sets
        self.min_width = min_width
        self._rng = np.random.default_rng(seed)

    def sample(self, n_queries: int) -> list[RangeQuery]:
        """Draw ``n_queries`` random (set, range) queries."""
        queries = []
        for _ in range(n_queries):
            index = int(self._rng.integers(0, self.n_sets))
            a, b = self._rng.random(2)
            low, high = (a, b) if a <= b else (b, a)
            if high - low < self.min_width:
                high = min(1.0, low + self.min_width)
                low = max(0.0, high - self.min_width)
            queries.append(RangeQuery(index, float(low), float(high)))
        return queries

    def iter_queries(self, n_queries: int) -> Iterator[RangeQuery]:
        """Generator form of :meth:`sample`."""
        yield from self.sample(n_queries)


def ground_truth(
    sets: Sequence[frozenset],
    query: RangeQuery,
    similarities: np.ndarray | None = None,
) -> set[int]:
    """Exact answer sids for a query (brute force; used for scoring).

    Pass precomputed ``similarities`` (of the query set against every
    set) to amortize repeated scoring of one query set.
    """
    if similarities is None:
        from repro.core.similarity import jaccard

        q = sets[query.set_index]
        similarities = np.fromiter(
            (jaccard(q, s) for s in sets), dtype=np.float64, count=len(sets)
        )
    mask = (similarities >= query.sigma_low) & (similarities <= query.sigma_high)
    return set(np.flatnonzero(mask).tolist())
