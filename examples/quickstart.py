"""Quickstart: build a set-similarity index and run range queries.

Mirrors the paper's introduction: a collection of "books bought" sets,
indexed once, then queried for highly similar users (recommendations),
for moderately similar users (the sale-mailing example), and
dynamically updated.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import SetSimilarityIndex, jaccard
from repro.data import make_weblog_collection


def main() -> None:
    # A small synthetic collection (each set = pages a visitor browsed;
    # swap in any list of hashable-element sets).
    sets = make_weblog_collection(n_sets=600, seed=7)
    print(f"collection: {len(sets)} sets, avg size {np.mean([len(s) for s in sets]):.0f}")

    # Build: the optimizer spends `budget` hash tables to maximize
    # precision subject to the expected-recall floor.
    index = SetSimilarityIndex.build(sets, budget=200, recall_target=0.9, k=64, seed=1)
    plan = index.plan
    print(
        f"plan: {plan.n_intervals} intervals, {plan.tables_used} tables, "
        f"expected recall {plan.expected_recall:.2f} "
        f"(target met: {plan.met_target})"
    )

    # Query 1: "users most similar to user 0" (recommendation-style).
    query = sets[0]
    result = index.query_above(query, 0.5)
    print(f"\n>= 0.5-similar to set 0: {len(result.answers)} sets")
    for sid, sim in result.answers[:5]:
        print(f"  sid {sid}: similarity {sim:.2f}")

    # Query 2: a band query (the sale-mailing example: interested but
    # not already-owning users sit at moderate similarity).
    result = index.query(query, 0.3, 0.7)
    print(f"\nin [0.3, 0.7]: {len(result.answers)} sets, "
          f"{len(result.candidates)} candidates fetched")
    print(f"simulated response time: {result.total_time:.0f} "
          f"(I/O {result.io_time:.0f} + CPU {result.cpu_time:.0f})")

    # Dynamic maintenance: insert a near-copy, find it, delete it.
    near_copy = set(query)
    near_copy.add(10**9)
    sid = index.insert(near_copy)
    found = index.query_above(query, 0.9)
    print(f"\ninserted near-copy as sid {sid}; "
          f">= 0.9-similar now: {[s for s, _ in found.answers]}")
    index.delete(sid)
    found = index.query_above(query, 0.9)
    print(f"after delete: {[s for s, _ in found.answers]}")

    # Verification is exact, so every reported similarity is true:
    for sid, sim in found.answers:
        assert abs(jaccard(sets[sid], query) - sim) < 1e-12


if __name__ == "__main__":
    main()
