"""Tests for the set-mining layer (join, top-k, clustering)."""

import pytest

from repro.core.index import SetSimilarityIndex
from repro.core.similarity import jaccard
from repro.data.generators import planted_clusters
from repro.mining.clustering import classify_nearest, leader_clustering
from repro.mining.join import (
    JoinPair,
    exact_self_join,
    join_recall,
    similarity_self_join,
)
from repro.mining.topk import top_k_similar


@pytest.fixture(scope="module")
def mining_sets():
    return planted_clusters(
        n_clusters=8, per_cluster=8, base_size=30, universe=2000, mutation_rate=0.12, seed=9
    )


@pytest.fixture(scope="module")
def mining_index(mining_sets):
    return SetSimilarityIndex.build(
        mining_sets, budget=60, recall_target=0.8, k=48, b=6, seed=11
    )


class TestExactJoin:
    def test_small_known_case(self):
        sets = [frozenset({1, 2, 3}), frozenset({2, 3, 4}), frozenset({9, 10})]
        pairs = exact_self_join(sets, 0.4)
        assert pairs == [JoinPair(0, 1, 0.5)]

    def test_threshold_zero_excludes_disjoint(self):
        """The inverted-index join only sees overlapping pairs; at
        threshold 0 that is still every pair with any overlap."""
        sets = [frozenset({1}), frozenset({1, 2}), frozenset({5})]
        pairs = exact_self_join(sets, 0.1)
        assert {(p.low, p.high) for p in pairs} == {(0, 1)}

    def test_sorted_by_similarity(self, mining_sets):
        pairs = exact_self_join(mining_sets, 0.3)
        sims = [p.similarity for p in pairs]
        assert sims == sorted(sims, reverse=True)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            exact_self_join([], 1.5)


class TestIndexedJoin:
    def test_recall_against_exact(self, mining_index, mining_sets):
        approx = similarity_self_join(mining_index, mining_sets, 0.4)
        exact = exact_self_join(mining_sets, 0.4)
        assert exact, "planted clusters must produce joinable pairs"
        assert join_recall(approx, exact) > 0.8

    def test_no_false_pairs(self, mining_index, mining_sets):
        approx = similarity_self_join(mining_index, mining_sets, 0.4)
        for pair in approx:
            true = jaccard(mining_sets[pair.low], mining_sets[pair.high])
            assert true >= 0.4
            assert pair.similarity == pytest.approx(true)

    def test_pairs_are_canonical(self, mining_index, mining_sets):
        approx = similarity_self_join(mining_index, mining_sets, 0.5)
        assert all(p.low < p.high for p in approx)
        assert len({(p.low, p.high) for p in approx}) == len(approx)

    def test_join_recall_empty_truth(self):
        assert join_recall([], []) == 1.0

    def test_invalid_threshold(self, mining_index, mining_sets):
        with pytest.raises(ValueError):
            similarity_self_join(mining_index, mining_sets, -0.1)


class TestTopK:
    def test_self_ranked_first(self, mining_index, mining_sets):
        top = top_k_similar(mining_index, mining_sets[0], k=5)
        assert top[0][0] == 0
        assert top[0][1] == 1.0

    def test_k_results_descending(self, mining_index, mining_sets):
        top = top_k_similar(mining_index, mining_sets[0], k=6)
        assert len(top) == 6
        sims = [s for _, s in top]
        assert sims == sorted(sims, reverse=True)

    def test_exclude_self(self, mining_index, mining_sets):
        top = top_k_similar(mining_index, mining_sets[0], k=5, include_self=False)
        assert all(mining_index.store.get(sid) != mining_sets[0] for sid, _ in top)

    def test_floor_limits_results(self, mining_index, mining_sets):
        top = top_k_similar(mining_index, mining_sets[0], k=50, floor=0.5)
        assert all(sim >= 0.5 for _, sim in top)
        # The query's own cluster has 8 members; far fewer than 50
        # sets clear a 0.5 floor.
        assert len(top) < 50

    def test_neighbours_are_cluster_mates(self, mining_index, mining_sets):
        """Top-5 (excluding self) should mostly be the query's own
        planted cluster (sids 0..7 for query 0)."""
        top = top_k_similar(mining_index, mining_sets[0], k=5, include_self=False)
        in_cluster = sum(1 for sid, _ in top if sid < 8)
        assert in_cluster >= 4

    def test_invalid_arguments(self, mining_index, mining_sets):
        with pytest.raises(ValueError):
            top_k_similar(mining_index, mining_sets[0], k=0)
        with pytest.raises(ValueError):
            top_k_similar(mining_index, mining_sets[0], k=3, floor=2.0)


class TestLeaderClustering:
    def test_recovers_planted_clusters(self, mining_index, mining_sets):
        clusters = leader_clustering(mining_index, mining_sets, threshold=0.35)
        big = [c for c in clusters if len(c) >= 5]
        assert len(big) == 8  # one per planted cluster
        for cluster in big:
            # Members of one output cluster come from one planted cluster.
            origins = {sid // 8 for sid in cluster}
            assert len(origins) == 1

    def test_partition_property(self, mining_index, mining_sets):
        clusters = leader_clustering(mining_index, mining_sets, threshold=0.35)
        flat = [sid for c in clusters for sid in c]
        assert sorted(flat) == list(range(len(mining_sets)))

    def test_threshold_one_gives_singletons_or_duplicates(self, mining_index, mining_sets):
        clusters = leader_clustering(mining_index, mining_sets, threshold=1.0)
        for cluster in clusters:
            if len(cluster) > 1:
                # Only exact duplicates may co-cluster at threshold 1.
                first = mining_sets[cluster[0]]
                assert all(mining_sets[sid] == first for sid in cluster)

    def test_invalid_threshold(self, mining_index, mining_sets):
        with pytest.raises(ValueError):
            leader_clustering(mining_index, mining_sets, threshold=-1)


class TestClassifyNearest:
    def test_classifies_by_cluster(self, mining_index, mining_sets):
        labels = [sid // 8 for sid in range(len(mining_sets))]
        # Perturb a member of cluster 3 and classify it.
        probe = set(mining_sets[3 * 8])
        probe.add(10**7)
        assert classify_nearest(mining_index, labels, probe, k=5) == 3

    def test_unclassifiable_returns_none(self, mining_index, mining_sets):
        labels = [0] * len(mining_sets)
        foreign = frozenset(range(10**6, 10**6 + 20))
        assert classify_nearest(mining_index, labels, foreign, k=3, floor=0.5) is None

    def test_majority_vote(self, mining_sets):
        index = SetSimilarityIndex.build(
            mining_sets[:16], budget=30, recall_target=0.8, k=32, seed=13
        )
        labels = ["a"] * 8 + ["b"] * 8
        result = classify_nearest(index, labels, mining_sets[1], k=5)
        assert result == "a"
