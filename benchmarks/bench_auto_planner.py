"""ABL-AUTO -- per-query scan/index decisions (Section 6 operationalized).

The paper derives the scan/index crossover analytically and leaves the
choice to the DBA.  The cost-based planner makes it per query from the
similarity distribution and the plan's capture model.  A good planner
should track ``min(index, scan)`` across the whole range spectrum.

Shape to confirm: auto's average simulated cost is within a small
factor of the per-range best of the two fixed strategies, and strictly
better than each fixed strategy somewhere.
"""

import numpy as np
import pytest

from repro.core.index import SetSimilarityIndex
from repro.data.weblog import make_set1
from repro.eval.report import format_table

RANGES = [(0.0, 0.3), (0.0, 0.7), (0.2, 0.6), (0.4, 1.0), (0.6, 1.0), (0.8, 1.0)]


def test_auto_planner(benchmark, emit, scale):
    sets = make_set1(min(scale.n_sets, 1200), seed=81)

    def run():
        index = SetSimilarityIndex.build(
            sets, budget=300, recall_target=0.85, k=scale.k, seed=9,
            sample_pairs=60_000,
        )
        rng = np.random.default_rng(1)
        rows = []
        for low, high in RANGES:
            probes = [int(rng.integers(0, len(sets))) for _ in range(8)]
            costs = {}
            for strategy in ("index", "scan", "auto"):
                costs[strategy] = float(
                    np.mean(
                        [
                            index.query(sets[qi], low, high, strategy=strategy).total_time
                            for qi in probes
                        ]
                    )
                )
            choice = index.planner().choose(low, high)
            rows.append(
                [f"[{low}, {high}]", costs["index"], costs["scan"], costs["auto"], choice]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ABL-AUTO",
        format_table(
            ["range", "index cost", "scan cost", "auto cost", "planner choice"], rows
        ),
    )
    for label, index_cost, scan_cost, auto_cost, _choice in rows:
        assert auto_cost <= min(index_cost, scan_cost) * 1.25, label
    # The decision must actually flip somewhere across the spectrum.
    choices = {row[4] for row in rows}
    assert choices == {"index", "scan"}
