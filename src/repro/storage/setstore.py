"""Disk-simulated storage of the set collection itself.

Candidate verification (Section 4.3, "Query Processing") retrieves each
candidate set from disk, which in the paper costs one B-tree lookup on
the set identifier followed by reading the set's pages.  The scan
baseline instead reads the whole collection sequentially.  ``SetStore``
provides both access paths over the same heap file so their relative
cost is governed purely by the shared I/O model.

Elements are assumed to be URL-string-sized values (64 bytes, matching
the paper's HTTP-log strings), so a 4 KiB page holds 64 of them --
``page span = ceil(|S| / 64)``.  Pass ``element_bytes`` to model other
element types.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.storage.btree import BTree
from repro.storage.heapfile import HeapFile, RecordId
from repro.storage.pager import PageManager

#: Assumed on-disk size of one set element, in bytes (a short URL/log string).
ELEMENT_BYTES = 64


class SetStore:
    """Stores sets in a heap file with a B-tree index on set identifier."""

    def __init__(
        self,
        pager: PageManager,
        min_degree: int = 64,
        element_bytes: int = ELEMENT_BYTES,
        btree_cache: str = "all",
    ):
        self.pager = pager
        self._elements_per_page = pager.capacity_for(element_bytes)
        self._heap = HeapFile(pager, record_pages=self._set_pages)
        # The sid index is small and scorching hot (every candidate
        # fetch touches it); the paper's crossover estimate charges a
        # candidate lookup as one data-page random read, i.e. a fully
        # cached B-tree.  Pass btree_cache="inner"/"none" for colder
        # costings.
        self._btree = BTree(pager, min_degree=min_degree, cache=btree_cache)
        self._live: set[int] = set()
        self._next_sid = 0

    def _set_pages(self, record) -> int:
        sid, elements = record
        return max(1, -(-len(elements) // self._elements_per_page))

    def insert(self, elements: Iterable) -> int:
        """Store a set, returning its new set identifier."""
        stored = frozenset(elements)
        sid = self._next_sid
        self._next_sid += 1
        rid = self._heap.append((sid, stored))
        self._btree.insert(sid, rid)
        self._live.add(sid)
        return sid

    def insert_many(self, sets: Iterable[Iterable]) -> list[int]:
        """Bulk-load a collection, returning the assigned sids in order."""
        return [self.insert(s) for s in sets]

    def get(self, sid: int) -> frozenset:
        """Fetch one set by identifier (B-tree lookup + record read)."""
        rid: RecordId = self._btree.search(sid)
        stored_sid, elements = self._heap.get(rid)
        if stored_sid != sid:
            raise KeyError(f"sid {sid} resolved to record of sid {stored_sid}")
        return elements

    def delete(self, sid: int) -> None:
        """Remove a set identifier from the index.

        The heap record is left in place (heap files reclaim space via
        offline compaction); lookups for the sid fail afterwards.
        """
        self._btree.delete(sid)
        self._live.discard(sid)

    def scan(self) -> Iterator[tuple[int, frozenset]]:
        """Yield (sid, set) for the whole collection at sequential cost.

        Deleted sids are skipped without extra charge -- their pages
        were already paid for by the scan.
        """
        for _, (sid, elements) in self._heap.scan():
            if sid in self._live:
                yield sid, elements

    @property
    def n_sets(self) -> int:
        """Number of live (non-deleted) sets."""
        return self._btree.n_keys

    @property
    def n_pages(self) -> int:
        """Heap pages the collection occupies (the scan cost)."""
        return self._heap.n_pages
