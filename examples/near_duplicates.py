"""Near-duplicate document detection (the Min Hashing origin story).

Min-wise hashing was introduced to find mirror web pages; the paper's
index generalizes that to tunable similarity ranges.  This example
shingles synthetic documents, indexes the shingle sets, and uses the
mining layer to

1. join the collection against itself at a high threshold to surface
   near-duplicate pairs (light edits of the same page),
2. pull the top-k closest documents for an edited probe, and
3. cluster the corpus, separating duplicate groups from topical
   neighbours.

Run:  python examples/near_duplicates.py
"""

from __future__ import annotations

from repro import SetSimilarityIndex, jaccard
from repro.data import make_document_collection
from repro.mining import leader_clustering, similarity_self_join, top_k_similar

DUPLICATE_THRESHOLD = 0.7


def main() -> None:
    docs = make_document_collection(
        n_documents=300, near_duplicate_rate=0.15, seed=21
    )
    print(f"corpus: {len(docs)} documents, "
          f"avg {sum(len(d) for d in docs) // len(docs)} shingles each")

    index = SetSimilarityIndex.build(docs, budget=150, recall_target=0.85, k=64, seed=22)
    print(f"indexed with {index.plan.tables_used} hash tables "
          f"(expected recall {index.plan.expected_recall:.2f})")

    # --- 1. near-duplicate pairs via self-join ---------------------------
    pairs = similarity_self_join(index, docs, DUPLICATE_THRESHOLD)
    print(f"\nself-join at >= {DUPLICATE_THRESHOLD}: {len(pairs)} near-duplicate pairs")
    for pair in pairs[:5]:
        print(f"  docs {pair.low} ~ {pair.high}: similarity {pair.similarity:.2f}")

    # --- 2. top-k for an edited probe -------------------------------------
    probe_source = pairs[0].low if pairs else 0
    probe = set(docs[probe_source])
    probe.add(("edited", "shingle", "!"))
    top = top_k_similar(index, probe, k=3)
    print(f"\ntop-3 matches for an edited copy of doc {probe_source}:")
    for sid, sim in top:
        print(f"  doc {sid}: similarity {sim:.2f}")

    # --- 3. duplicate groups vs topical clusters -------------------------
    groups = leader_clustering(index, docs, threshold=DUPLICATE_THRESHOLD)
    dup_groups = [g for g in groups if len(g) > 1]
    print(f"\n{len(dup_groups)} duplicate groups "
          f"(largest: {max((len(g) for g in dup_groups), default=0)} documents); "
          f"{sum(1 for g in groups if len(g) == 1)} unique documents")

    # Sanity: reported pairs really are near-duplicates.
    for pair in pairs[:20]:
        assert jaccard(docs[pair.low], docs[pair.high]) >= DUPLICATE_THRESHOLD


if __name__ == "__main__":
    main()
