"""Unit tests for the similarity distribution D_S (Section 5, Lemma 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import (
    SimilarityDistribution,
    _exact_pairwise_loop,
    exact_pairwise_similarities,
    sample_pairwise_similarities,
    signature_pairwise_similarities,
)
from repro.core.minhash import MinHasher
from repro.core.similarity import jaccard


def _three_sets():
    # Pairwise similarities: (A,B) = 1/3, (A,C) = 0, (B,C) = 0.
    a = frozenset({1, 2})
    b = frozenset({2, 3})
    c = frozenset({10, 11, 12})
    return [a, b, c]


class TestConstruction:
    def test_exact_histogram(self):
        dist = SimilarityDistribution.from_sets(_three_sets(), n_bins=10)
        assert dist.total_mass == pytest.approx(3.0)  # 3 pairs
        assert dist.mass_between(0.3, 0.4) == pytest.approx(1.0)  # the 1/3 pair
        assert dist.mass[0] == pytest.approx(2.0)  # the two disjoint pairs

    def test_total_mass_is_pair_count(self):
        sets = [frozenset({i, i + 1}) for i in range(8)]
        dist = SimilarityDistribution.from_sets(sets, n_bins=20)
        assert dist.total_mass == pytest.approx(8 * 7 / 2)

    def test_sampled_scales_to_total(self):
        sets = [frozenset({i, i + 1, i + 2}) for i in range(30)]
        dist = SimilarityDistribution.from_sets(sets, n_bins=20, sample_pairs=100)
        assert dist.total_mass == pytest.approx(30 * 29 / 2)

    def test_signature_estimation_path(self):
        sets = [frozenset(range(i, i + 20)) for i in range(0, 200, 5)]
        hasher = MinHasher(k=64, seed=1)
        dist = SimilarityDistribution.from_sets(
            sets, n_bins=20, sample_pairs=200, hasher=hasher
        )
        assert dist.total_mass == pytest.approx(len(sets) * (len(sets) - 1) / 2)

    def test_single_set_collection(self):
        dist = SimilarityDistribution.from_sets([frozenset({1})], n_bins=10)
        assert dist.total_mass == 0.0

    def test_from_values(self):
        dist = SimilarityDistribution.from_values(np.array([0.1, 0.1, 0.9]), 3, n_bins=10)
        assert dist.mass[1] == pytest.approx(2.0)
        assert dist.mass[-1] == pytest.approx(1.0)

    def test_similarity_one_lands_in_last_bin(self):
        dist = SimilarityDistribution.from_values(np.array([1.0]), 2, n_bins=10)
        assert dist.mass[-1] == pytest.approx(1.0)

    def test_invalid_mass(self):
        with pytest.raises(ValueError):
            SimilarityDistribution(np.array([-1.0, 2.0]), 2)
        with pytest.raises(ValueError):
            SimilarityDistribution(np.array([]), 0)


class TestQueries:
    def test_mass_between_whole_range(self):
        dist = SimilarityDistribution.from_sets(_three_sets(), n_bins=10)
        assert dist.mass_between(0.0, 1.0) == pytest.approx(dist.total_mass)

    def test_mass_between_interpolates(self):
        dist = SimilarityDistribution(np.array([10.0]), 5)  # one bin over [0,1]
        assert dist.mass_between(0.0, 0.5) == pytest.approx(5.0)
        assert dist.mass_between(0.25, 0.75) == pytest.approx(5.0)

    def test_mass_between_invalid(self):
        dist = SimilarityDistribution(np.array([1.0]), 2)
        with pytest.raises(ValueError):
            dist.mass_between(0.8, 0.2)

    def test_quantile_bounds(self):
        dist = SimilarityDistribution.from_sets(_three_sets(), n_bins=10)
        assert dist.quantile(0.0) == pytest.approx(0.0)
        assert 0.0 <= dist.quantile(0.5) <= 1.0
        assert dist.quantile(1.0) <= 1.0

    def test_quantile_invalid(self):
        dist = SimilarityDistribution(np.array([1.0]), 2)
        with pytest.raises(ValueError):
            dist.quantile(1.5)

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=50)
    def test_quantile_monotone(self, q1, q2):
        rng = np.random.default_rng(0)
        dist = SimilarityDistribution(rng.random(50) * 10, 100)
        lo, hi = sorted((q1, q2))
        assert dist.quantile(lo) <= dist.quantile(hi) + 1e-12

    @given(st.floats(0.01, 0.99))
    @settings(max_examples=50)
    def test_quantile_inverts_cdf(self, q):
        rng = np.random.default_rng(1)
        dist = SimilarityDistribution(rng.random(40) + 0.1, 100)
        s = dist.quantile(q)
        assert dist.mass_between(0.0, s) == pytest.approx(q * dist.total_mass, rel=1e-6)


class TestEquidepth:
    def test_equidepth_masses_equal(self):
        """Definition 10: each interval holds total/k pair mass."""
        rng = np.random.default_rng(2)
        dist = SimilarityDistribution(rng.random(100) + 0.05, 200)
        k = 5
        points = dist.equidepth_points(k)
        bounds = [0.0, *points, 1.0]
        target = dist.total_mass / k
        for i in range(k):
            assert dist.mass_between(bounds[i], bounds[i + 1]) == pytest.approx(
                target, rel=1e-6
            )

    def test_equidepth_point_count(self):
        dist = SimilarityDistribution(np.ones(10), 50)
        assert len(dist.equidepth_points(4)) == 3
        assert dist.equidepth_points(1) == []

    def test_equidepth_invalid(self):
        dist = SimilarityDistribution(np.ones(10), 50)
        with pytest.raises(ValueError):
            dist.equidepth_points(0)

    def test_delta_split_balances(self):
        """Equation 15: equal mass on either side of delta."""
        rng = np.random.default_rng(3)
        dist = SimilarityDistribution(rng.random(64) + 0.01, 100)
        delta = dist.delta_split()
        left = dist.mass_between(0.0, delta)
        right = dist.mass_between(delta, 1.0)
        assert left == pytest.approx(right, rel=1e-6)

    def test_skewed_distribution_quantiles_cluster(self):
        """A point mass at zero pulls every quantile into the first bin."""
        mass = np.zeros(100)
        mass[0] = 1000.0
        mass[50] = 1.0
        dist = SimilarityDistribution(mass, 100)
        points = dist.equidepth_points(4)
        assert all(p < 0.01 for p in points)


class TestPairSampling:
    def test_sample_values_are_valid_similarities(self):
        sets = [frozenset(range(i, i + 5)) for i in range(20)]
        values = sample_pairwise_similarities(sets, 200, np.random.default_rng(0))
        assert len(values) == 200
        assert np.all((values >= 0.0) & (values <= 1.0))

    def test_sample_mean_matches_exhaustive(self):
        sets = [frozenset(range(i, i + 10)) for i in range(0, 60, 3)]
        exact = [
            jaccard(sets[i], sets[j])
            for i in range(len(sets))
            for j in range(i + 1, len(sets))
        ]
        sampled = sample_pairwise_similarities(sets, 4000, np.random.default_rng(1))
        assert abs(np.mean(sampled) - np.mean(exact)) < 0.02

    def test_too_few_sets(self):
        assert sample_pairwise_similarities([frozenset({1})], 10, np.random.default_rng(0)).size == 0

    def test_signature_sampling_tracks_exact(self):
        sets = [frozenset(range(i, i + 30)) for i in range(0, 100, 4)]
        hasher = MinHasher(k=256, seed=2)
        signatures = hasher.signature_matrix(sets)
        est = signature_pairwise_similarities(signatures, 3000, np.random.default_rng(3))
        exact = sample_pairwise_similarities(sets, 3000, np.random.default_rng(3))
        assert abs(np.mean(est) - np.mean(exact)) < 0.03


def _random_sets(n, seed, universe=60, max_size=15):
    rng = np.random.default_rng(seed)
    return [
        frozenset(
            int(e)
            for e in rng.choice(
                universe,
                size=int(rng.integers(0, max_size + 1)),
                replace=False,
            )
        )
        for _ in range(n)
    ]


class TestExactPairwise:
    """The columnar exact branch must be bit-identical to the per-pair
    Python loop, including its edge-case conventions."""

    @pytest.mark.parametrize("seed", range(5))
    def test_columnar_matches_loop(self, seed):
        sets = _random_sets(int(np.random.default_rng(seed).integers(2, 30)), seed)
        fast = exact_pairwise_similarities(sets)
        slow = _exact_pairwise_loop(sets)
        assert np.array_equal(fast, slow)

    def test_empty_sets_follow_jaccard_convention(self):
        # jaccard(empty, empty) == 1.0; empty vs non-empty == 0.0.
        sets = [frozenset(), frozenset({1, 2}), frozenset(), frozenset({2})]
        fast = exact_pairwise_similarities(sets)
        slow = _exact_pairwise_loop(sets)
        assert np.array_equal(fast, slow)
        assert fast[1] == 1.0  # (0, 2): empty vs empty
        assert fast[0] == 0.0  # (0, 1): empty vs non-empty

    @pytest.mark.parametrize("sets", [[], [frozenset({1, 2, 3})]])
    def test_degenerate_collections(self, sets):
        assert exact_pairwise_similarities(sets).size == 0
        assert _exact_pairwise_loop(sets).size == 0

    def test_singleton_element_sets(self):
        sets = [frozenset({i}) for i in range(5)] + [frozenset({0})]
        fast = exact_pairwise_similarities(sets)
        slow = _exact_pairwise_loop(sets)
        assert np.array_equal(fast, slow)
        assert fast[4] == 1.0  # (0, 5): identical singletons

    @given(st.lists(st.frozensets(st.integers(0, 40), max_size=12), max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_columnar_matches_loop_property(self, sets):
        assert np.array_equal(
            exact_pairwise_similarities(sets), _exact_pairwise_loop(sets)
        )


class TestFromSetsExactMethods:
    def test_columnar_equals_loop_histogram(self):
        sets = _random_sets(25, seed=3)
        fast = SimilarityDistribution.from_sets(sets, n_bins=40)
        slow = SimilarityDistribution.from_sets(
            sets, n_bins=40, exact_method="loop"
        )
        assert np.array_equal(fast.mass, slow.mass)

    def test_oversized_sample_falls_back_to_exact(self):
        sets = _three_sets()  # 3 pairs total
        exact = SimilarityDistribution.from_sets(sets, n_bins=10)
        sampled = SimilarityDistribution.from_sets(
            sets, n_bins=10, sample_pairs=1000
        )
        assert np.array_equal(sampled.mass, exact.mass)

    def test_unknown_exact_method_raises(self):
        with pytest.raises(ValueError, match="exact_method"):
            SimilarityDistribution.from_sets(_three_sets(), exact_method="magic")
