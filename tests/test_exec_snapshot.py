"""Freeze/thaw semantics of :class:`repro.exec.snapshot.IndexSnapshot`.

``freeze()`` pins the index's entire queryable state -- bucket
directories, ECC vectors, CSR set arrays, measured fetch costs, the
planner -- into a read-only snapshot.  The contract: the snapshot is
cached and idempotent, mutation while frozen raises
:class:`~repro.core.index.FrozenIndexError` *before* touching storage,
thaw releases the pin, and a freeze taken after mutation reflects the
new contents.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.index import FrozenIndexError, SetSimilarityIndex
from repro.data.generators import uniform_random_sets
from repro.exec import IndexSnapshot, ParallelExecutor


@pytest.fixture
def index():
    sets = uniform_random_sets(n_sets=30, set_size=12, universe=500, seed=9)
    return SetSimilarityIndex.build(
        sets, budget=30, recall_target=0.8, k=16, b=4, seed=9,
        sample_pairs=1_000,
    )


def test_freeze_idempotent_and_thaw(index):
    assert not index.frozen
    snap = index.freeze()
    assert isinstance(snap, IndexSnapshot)
    assert index.frozen
    assert index.freeze() is snap  # cached, not rebuilt
    index.thaw()
    assert not index.frozen
    assert index.freeze() is not snap  # thaw really released it
    index.thaw()


def test_mutation_while_frozen_raises_and_leaves_index_intact(index):
    sids_before = set(index.sids)
    pages_before = index.store.n_pages
    index.freeze()
    with pytest.raises(FrozenIndexError):
        index.insert(frozenset({"a", "b", "c"}))
    with pytest.raises(FrozenIndexError):
        index.delete(next(iter(sids_before)))
    # The refusal happened before any storage mutation.
    assert set(index.sids) == sids_before
    assert index.store.n_pages == pages_before
    index.thaw()


def test_freeze_after_mutation_is_fresh(index):
    """Interleaved insert -> freeze -> query sees the new set."""
    lo, hi = 0.5, 1.0
    first = index.freeze()
    index.thaw()

    new_set = frozenset({"zeta", "eta", "theta"})
    sid = index.insert(new_set)
    second = index.freeze()
    try:
        assert second is not first
        with ParallelExecutor(second, workers=2) as ex:
            batch = ex.query_batch([new_set], lo, hi)
        sequential = index.query_batch([new_set], lo, hi)
        assert batch.results[0].answers == sequential.results[0].answers
        assert any(s == sid for s, _ in batch.results[0].answers)
    finally:
        index.thaw()

    # Delete then refreeze: the set is gone from the snapshot too.
    index.delete(sid)
    third = index.freeze()
    try:
        with ParallelExecutor(third, workers=2) as ex:
            batch = ex.query_batch([new_set], lo, hi)
        assert all(s != sid for s, _ in batch.results[0].answers)
    finally:
        index.thaw()


def test_freeze_refuses_buffer_pool(index):
    """A warm LRU cache makes page charges history-dependent, which
    would break the engine's determinism guarantee -- refuse loudly."""
    index.pager.cache_pages = 4
    with pytest.raises(FrozenIndexError):
        index.freeze()
    assert not index.frozen
    index.pager.cache_pages = 0
    index.freeze()  # fine again without the cache
    index.thaw()


def test_snapshot_not_pickled_with_index(index, tmp_path):
    index.freeze()
    blob = pickle.dumps(index)
    index.thaw()
    revived = pickle.loads(blob)
    assert not revived.frozen  # snapshots never survive serialization
    # The revived index still answers queries (and can freeze anew).
    query = frozenset(index.store.get(next(iter(index.sids))))
    want = index.query_batch([query], 0.4, 1.0)
    got = revived.query_batch([query], 0.4, 1.0)
    for g, w in zip(got.results, want.results):
        assert g.answers == w.answers

    path = tmp_path / "frozen.ssi"
    index.freeze()
    try:
        index.save(path)
    finally:
        index.thaw()
    loaded = SetSimilarityIndex.load(path)
    assert not loaded.frozen


def test_loaded_legacy_state_rebuilds_columnar_arrays(index, tmp_path):
    """Old pickles without ``_chashes`` are upgraded on load, free of
    simulated I/O charges."""
    path = tmp_path / "legacy.ssi"
    index.save(path)
    loaded = SetSimilarityIndex.load(path)
    # Simulate a pre-columnar pickle by stripping the state and
    # round-tripping through __setstate__.
    state = loaded.__getstate__()
    state.pop("_chashes")
    state.pop("_cfallback", None)
    downgraded = SetSimilarityIndex.__new__(SetSimilarityIndex)
    before = state["io"].snapshot()
    downgraded.__setstate__(state)
    assert downgraded._chashes.keys() == set(downgraded.sids)
    assert downgraded.io.snapshot() == before  # rebuild charged nothing
    query = frozenset(downgraded.store.get(next(iter(downgraded.sids))))
    assert downgraded.query(query, 0.5, 1.0).answers


def test_snapshot_plan_probes_cover_all_families(index):
    """Every plan family the live planner can pick maps to probes."""
    snap = index.freeze()
    try:
        known = {
            "full_collection", "dfi(up)", "complement_sfi(up)", "sfi(lo)",
            "complement_dfi(lo)", "sfi_difference", "dfi_difference",
            "pivot_union",
        }
        seen = set()
        for lo, hi in [(0.0, 1.0), (0.5, 1.0), (0.0, 0.4), (0.2, 0.8),
                       (0.7, 0.9), (0.3, 0.6), (0.9, 1.0), (0.0, 0.1)]:
            plan_name, probes, _ = snap.plan_probes(lo, hi)
            assert plan_name in known
            seen.add(plan_name)
            for kind, point in probes:
                assert kind in ("sfi", "dfi")
                assert snap.filter_probe(kind, point) is not None
        assert len(seen) >= 2  # small plan: at least two families arise
    finally:
        index.thaw()
