"""FIG7A -- paper Fig. 7(a): average response time per result-size
bucket, sequential scan vs the index (I/O and CPU split out), Set1,
1000-table budget, k = 100 min-hash values.

Paper shape to reproduce: the index beats the scan for every bucket
with result size under ~25% of the collection; index time grows with
result size (more candidates, more random fetches) while scan time is
flat; scan CPU is a visible fraction of scan cost (it evaluates the
similarity of every set).
"""

import math

import pytest

from repro.eval.experiments import ExperimentConfig, run_fig7

BUDGET = 1000


@pytest.fixture(scope="module")
def config(scale):
    return ExperimentConfig(
        n_sets=scale.n_sets,
        budget=BUDGET,
        n_queries=scale.n_queries,
        sample_pairs=scale.sample_pairs,
        k=scale.k,
    )


def test_fig7a(benchmark, config, emit, emit_json, trace_queries):
    result = benchmark.pedantic(
        run_fig7,
        args=("set1", config),
        kwargs={"budget": BUDGET, "collect_trace": trace_queries},
        rounds=1,
        iterations=1,
    )
    from repro.eval.plots import fig7_ascii

    emit("FIG7A", result.table() + "\n\n" + fig7_ascii(result.summaries))
    if trace_queries:
        emit_json("FIG7A-traces", result.trace_summaries)
    populated = [s for s in result.summaries if s.n_queries > 0]
    assert populated
    # Scan time is flat across buckets.
    scans = [s.scan_time for s in populated]
    assert max(scans) / min(scans) < 1.2
    # The smallest populated bucket is where the index must win.
    smallest = populated[0]
    assert smallest.index_time < smallest.scan_time
    # Index time grows with result size.
    if len(populated) >= 2:
        assert populated[-1].index_time > populated[0].index_time
    for s in populated:
        assert not math.isnan(s.index_io_time)
