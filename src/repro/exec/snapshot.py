"""Frozen, thread-shareable images of a built set-similarity index.

``SetSimilarityIndex`` is single-threaded by construction: probing
lazily builds bucket-directory memos, fetches mutate shared I/O
counters, and the candidate algebra walks live dicts.  An
:class:`IndexSnapshot` (``index.freeze()``) converts all of that into
immutable, pre-computed state:

- every :class:`~repro.storage.hashtable.BucketHashTable` bucket
  directory pre-built and wrapped in a
  :class:`~repro.storage.hashtable.FrozenTableView` (pure dict lookups,
  page charges *accounted* into a caller-supplied ``IOStats``);
- stored ECC vectors packed into one contiguous ``(N, words)`` uint64
  matrix with a sid -> row map;
- stored sets materialized twice: as sorted stable-hash uint64 arrays
  in CSR ``(indptr, data)`` layout for columnar exact verification, and
  as the actual ``frozenset`` objects for the hash-collision fallback;
- per-set fetch costs and the heap scan cost *measured once* at freeze
  time, so serving a query charges exactly what the live index would
  have charged without touching the pager.

Every query-relevant charge is therefore a pure function of the query
batch, which is what lets :class:`~repro.exec.parallel.ParallelExecutor`
shard work across threads and still reproduce the sequential path's
accounting bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.core.similarity import jaccard
from repro.exec.columnar import (
    SMALL_VERIFY_CUTOFF,
    gather_csr,
    hash_set,
    in_range_answers,
    intersect_counts,
    jaccard_values,
)
from repro.storage.iomodel import IOStats


class IndexSnapshot:
    """Read-only view of one :class:`~repro.core.index.SetSimilarityIndex`.

    Construct via :meth:`from_index` (or ``index.freeze()``, which also
    pins the index against mutation).  All attributes are immutable by
    convention; probing and verification methods charge simulated I/O
    into caller-supplied :class:`~repro.storage.iomodel.IOStats` so
    concurrent callers never contend.
    """

    def __init__(self, **state):
        self.__dict__.update(state)

    @classmethod
    def from_index(cls, index) -> "IndexSnapshot":
        from repro.core.index import FrozenIndexError

        if index.pager.cache_pages > 0:
            raise FrozenIndexError(
                "cannot freeze an index with a buffer pool "
                f"(cache_pages={index.pager.cache_pages}): cached reads "
                "make page charges history-dependent, so a snapshot "
                "could not reproduce the live accounting"
            )
        sids = sorted(index._vectors)
        row_of = {sid: row for row, sid in enumerate(sids)}
        n_words = index.embedder.n_words
        vector_matrix = (
            np.stack([index._vectors[sid] for sid in sids])
            if sids else np.empty((0, n_words), dtype=np.uint64)
        )
        indptr = np.zeros(len(sids) + 1, dtype=np.int64)
        if sids:
            np.cumsum([len(index._chashes[sid]) for sid in sids], out=indptr[1:])
        data = (
            np.concatenate([index._chashes[sid] for sid in sids])
            if sids and indptr[-1]
            else np.empty(0, dtype=np.uint64)
        )
        sizes = np.fromiter(
            (index._sizes[sid] for sid in sids), dtype=np.int64, count=len(sids)
        )
        # Measure each set's fetch cost (B-tree lookup + heap record
        # read) once, capturing the actual sets along the way; the
        # charges are rolled back so freezing is cost-free.
        fetch_random = np.zeros(len(sids), dtype=np.int64)
        fetch_seq = np.zeros(len(sids), dtype=np.int64)
        sets: dict[int, frozenset] = {}
        saved = index.io.snapshot()
        try:
            for row, sid in enumerate(sids):
                before = index.io.snapshot()
                sets[sid] = index.store.get(sid)
                delta = index.io.snapshot() - before
                fetch_random[row] = delta.random_reads
                fetch_seq[row] = delta.sequential_reads
        finally:
            index.io.stats = saved
        return cls(
            embedder=index.embedder,
            plan=index.plan,
            cost=index.io,
            planner=index.planner(),
            n_bits=index.embedder.dimension,
            sfis={p: fi.freeze() for p, fi in index._sfis.items()},
            dfis={p: fi.freeze() for p, fi in index._dfis.items()},
            sids=sids,
            row_of=row_of,
            all_sids=frozenset(sids),
            vector_matrix=vector_matrix,
            set_indptr=indptr,
            set_data=data,
            set_sizes=sizes,
            fallback_sids=frozenset(index._cfallback),
            sets=sets,
            fetch_random=fetch_random,
            fetch_seq=fetch_seq,
            scan_pages=index.store.n_pages,
        )

    @property
    def n_sets(self) -> int:
        return len(self.sids)

    # -- plan selection (mirrors SetSimilarityIndex) -----------------------

    def choose_strategy(self, sigma_low: float, sigma_high: float) -> str:
        """Cost-based index-vs-scan choice, as captured at freeze time."""
        return self.planner.choose(sigma_low, sigma_high)

    def enclosing_points(
        self, sigma_low: float, sigma_high: float
    ) -> tuple[float | None, float | None]:
        lo = max((c for c in self.plan.cut_points if c <= sigma_low), default=None)
        up = min((c for c in self.plan.cut_points if c >= sigma_high), default=None)
        return lo, up

    def pivot_between(self, lo: float, up: float) -> float:
        for point in self.plan.cut_points:
            if lo <= point <= up and point in self.sfis and point in self.dfis:
                return point
        raise RuntimeError(
            f"no dual-kind pivot between cut points {lo} and {up}; "
            "the plan is inconsistent"
        )

    def plan_probes(
        self, sigma_low: float, sigma_high: float
    ) -> tuple[str, list[tuple[str, float]], float | None]:
        """The Section 4.3 plan family for a range and the filter probes
        it needs.

        Returns ``(plan, probes, pivot)`` where ``probes`` lists the
        distinct ``(kind, point)`` filters to probe and ``plan`` names
        the same candidate algebra the live ``_candidates_batch`` runs.
        """
        lo, up = self.enclosing_points(sigma_low, sigma_high)
        if lo is None and up is None:
            return "full_collection", [], None
        if lo is None:
            if up in self.dfis:
                return "dfi(up)", [("dfi", up)], None
            return "complement_sfi(up)", [("sfi", up)], None
        if up is None:
            if lo in self.sfis:
                return "sfi(lo)", [("sfi", lo)], None
            return "complement_dfi(lo)", [("dfi", lo)], None
        if lo in self.sfis and up in self.sfis:
            return "sfi_difference", [("sfi", lo), ("sfi", up)], None
        if lo in self.dfis and up in self.dfis:
            return "dfi_difference", [("dfi", lo), ("dfi", up)], None
        pivot = self.pivot_between(lo, up)
        return (
            "pivot_union",
            [("dfi", pivot), ("dfi", lo), ("sfi", pivot), ("sfi", up)],
            pivot,
        )

    def filter_probe(self, kind: str, point: float):
        """The :class:`~repro.core.filter_index.FrozenFilterProbe` for a
        planned ``(kind, point)``."""
        return (self.sfis if kind == "sfi" else self.dfis)[point]

    def combine_candidates(
        self,
        plan: str,
        probed: dict[tuple[str, float], list[set[int]]],
        probes: list[tuple[str, float]],
        n_queries: int,
        rows: list[int],
    ) -> list[set[int]]:
        """Apply the plan family's candidate algebra to the probe results.

        ``probed[(kind, point)][j]`` is query row ``j``'s sid set from
        that filter; rows are scattered back to batch positions exactly
        as the live path does.
        """
        results: list[set[int]] = [set() for _ in range(n_queries)]
        if plan == "full_collection":
            return [set(self.all_sids) for _ in range(n_queries)]
        if plan == "empty_queries":
            return results
        per_row: list[set[int]]
        if plan in ("dfi(up)", "sfi(lo)"):
            per_row = probed[probes[0]]
        elif plan in ("complement_sfi(up)", "complement_dfi(lo)"):
            everything = set(self.all_sids)
            per_row = [everything - s for s in probed[probes[0]]]
        elif plan == "sfi_difference":
            low_sets, up_sets = probed[probes[0]], probed[probes[1]]
            per_row = [a - b for a, b in zip(low_sets, up_sets)]
        elif plan == "dfi_difference":
            low_sets, up_sets = probed[probes[0]], probed[probes[1]]
            per_row = [b - a for a, b in zip(low_sets, up_sets)]
        elif plan == "pivot_union":
            pivot_dissim, lo_dissim, pivot_sim, up_sim = (
                probed[p] for p in probes
            )
            per_row = [
                (pd - ld) | (ps - us)
                for pd, ld, ps, us in zip(
                    pivot_dissim, lo_dissim, pivot_sim, up_sim
                )
            ]
        else:
            raise ValueError(f"unknown plan family: {plan!r}")
        for row, i in enumerate(rows):
            results[i] = per_row[row]
        return results

    # -- verification ------------------------------------------------------

    def charge_fetches(self, distinct: list[int], io: IOStats) -> None:
        """Charge the measured fetch cost of each distinct candidate."""
        if not distinct:
            return
        rows = np.fromiter(
            (self.row_of[sid] for sid in distinct),
            dtype=np.int64, count=len(distinct),
        )
        io.random_reads += int(self.fetch_random[rows].sum())
        io.sequential_reads += int(self.fetch_seq[rows].sum())

    def verify_one(
        self,
        query_set: frozenset,
        candidates: set[int],
        sigma_low: float,
        sigma_high: float,
        io: IOStats,
    ) -> list[tuple[int, float]]:
        """Exact in-range matches of one query, columnar, charging the
        same per-pair CPU the live path charges into ``io``."""
        cand_list = sorted(candidates)
        if not cand_list:
            return []
        if len(cand_list) <= SMALL_VERIFY_CUTOFF:
            # Small lists: the live path's exact loop (see
            # ``SetSimilarityIndex._columnar_answers``) -- same charge.
            io.cpu_ops += (
                sum(int(self.set_sizes[self.row_of[sid]]) for sid in cand_list)
                + len(cand_list) * len(query_set)
            )
            values = [jaccard(self.sets[sid], query_set) for sid in cand_list]
            return in_range_answers(cand_list, values, sigma_low, sigma_high)
        rows = np.fromiter(
            (self.row_of[sid] for sid in cand_list),
            dtype=np.int64, count=len(cand_list),
        )
        sizes = self.set_sizes[rows]
        io.cpu_ops += int(sizes.sum()) + len(cand_list) * len(query_set)
        query_arr, query_collided = hash_set(query_set)
        if query_collided:
            values = [jaccard(self.sets[sid], query_set) for sid in cand_list]
        else:
            sub_indptr, sub_data = gather_csr(
                self.set_indptr, self.set_data, rows
            )
            inter = intersect_counts(query_arr, sub_indptr, sub_data)
            values = jaccard_values(len(query_set), sizes, inter)
            if self.fallback_sids:
                for j, sid in enumerate(cand_list):
                    if sid in self.fallback_sids:
                        values[j] = jaccard(self.sets[sid], query_set)
        return in_range_answers(cand_list, values, sigma_low, sigma_high)

    def scan_one(
        self,
        query_set: frozenset,
        sigma_low: float,
        sigma_high: float,
        io: IOStats,
    ) -> tuple[set[int], list[tuple[int, float]]]:
        """One query's share of a shared sequential scan (CPU charges
        only; the single page pass is charged once by the caller)."""
        answers = self.verify_one(
            query_set, self.all_sids, sigma_low, sigma_high, io
        )
        return set(self.all_sids), answers

    def estimate_in_range(
        self,
        candidates_list: list[set[int]],
        matrix: np.ndarray | None,
        rows: list[int],
        sigma_low: float,
        sigma_high: float,
    ) -> int:
        """Hamming-estimated in-range pair count (EXPLAIN aggregate);
        wall-clock only, mirroring the live ``est_in_range``."""
        if matrix is None or not rows:
            return 0
        row_of_query = {i: row for row, i in enumerate(rows)}
        q_rows: list[int] = []
        c_rows: list[int] = []
        for i, candidates in enumerate(candidates_list):
            row = row_of_query.get(i)
            if row is None or not candidates:
                continue
            for sid in candidates:
                q_rows.append(row)
                c_rows.append(self.row_of[sid])
        if not q_rows:
            return 0
        vals = self.embedder.estimate_pairs(
            matrix[q_rows], self.vector_matrix[c_rows]
        )
        return int(((sigma_low <= vals) & (vals <= sigma_high)).sum())

    def __repr__(self) -> str:
        return (
            f"IndexSnapshot(n_sets={self.n_sets}, "
            f"sfis={len(self.sfis)}, dfis={len(self.dfis)}, "
            f"scan_pages={self.scan_pages})"
        )
