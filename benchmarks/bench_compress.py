"""Compressed signature codecs: bytes, recall, verify throughput (BENCH-COMPRESS).

Measures what the b-bit minwise packing (:mod:`repro.core.codec`) buys
and what it costs, against the bit-identical ``full64`` baseline:

* **equivalence gate** (runs first, always) -- an index built with
  ``codec="full64"`` must answer bit-identically to one built with no
  codec argument at all, both in memory and through the snapshot path;
  perf numbers are meaningless if the default regressed;
* **signature bytes** -- per-set packed signature bytes from the
  snapshot manifest (:func:`repro.exec.snapfile.byte_breakdown`) and
  the compression ratio against full64 (``m / beta``: 8x at ``b=6,
  beta=2`` counting per-slot bits at the bench's ``2**b = 16``-bit
  codewords, 32x at the default ``b=6`` production setting);
* **quality** -- answer recall against brute-force Jaccard ground
  truth over the whole collection (verification is exact, so answers
  are never wrong -- only missing), plus candidate precision;
* **verify throughput** -- row-aligned similarity estimates per second
  through :meth:`SetEmbedder.estimate_pairs` (the Hamming / slot
  kernel the hot verify-masking path drives);
* **cold open** -- snapshot open wall per codec (smaller arrays map
  faster).

Run standalone (used by CI in smoke mode)::

    PYTHONPATH=src python benchmarks/bench_compress.py [--smoke] [--out PATH]

Writes ``BENCH_compress.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_compress.json"

#: One row per codec; full64 first so later rows can cite its bytes.
CODECS = (
    "full64",
    "bbit:8",
    "bbit:4",
    "bbit:2",
    "bbit:1",
    "superminhash",
    "superminhash+bbit:2",
)

N_SETS = 4_000
SMOKE_N_SETS = 300

RANGE = (0.5, 1.0)  # the similar-set retrieval regime


def build_workload(n_sets: int, seed: int):
    from repro.data.generators import planted_clusters

    per_cluster = 20
    return planted_clusters(
        n_clusters=max(1, n_sets // per_cluster),
        per_cluster=per_cluster,
        base_size=40,
        universe=20_000,
        mutation_rate=0.15,
        seed=seed,
    )


def _build(sets, codec, budget, k, seed):
    from repro.core.index import SetSimilarityIndex

    kwargs = {} if codec is None else {"codec": codec}
    return SetSimilarityIndex.build(
        sets, budget=budget, recall_target=0.97, k=k, b=4, seed=seed,
        sample_pairs=50_000, **kwargs,
    )


def _sid_truth(index, queries, lo, hi):
    """Brute-force ground truth: per query, the truly in-range sids.

    Sid assignment is a deterministic function of the build list, so
    one index's truth applies to every same-collection build.
    """
    contents = {sid: index.store.get(sid) for sid in index.sids}
    truth = []
    for q in queries:
        q = frozenset(q)
        hits = set()
        for sid, s in contents.items():
            union = len(q | s)
            sim = len(q & s) / union if union else 1.0
            if lo <= sim <= hi:
                hits.add(sid)
        truth.append(hits)
    return truth


def _batch_equal(a, b) -> bool:
    """Answers, candidates and every simulated cost, bit for bit."""
    return (
        a.io == b.io
        and a.io_time == b.io_time
        and a.cpu_time == b.cpu_time
        and all(
            ga.answers == gb.answers and ga.candidates == gb.candidates
            for ga, gb in zip(a.results, b.results)
        )
    )


def equivalence_gate(sets, queries, budget, k, seed, workdir: Path) -> dict:
    """codec='full64' must be bit-identical to the pre-codec default."""
    from repro.exec import ParallelExecutor
    from repro.exec.snapfile import open_snapshot

    lo, hi = RANGE
    default = _build(sets, None, budget, k, seed)  # no codec argument
    tagged = _build(sets, "full64", budget, k, seed)
    want = default.query_batch(queries, lo, hi)
    in_memory = _batch_equal(tagged.query_batch(queries, lo, hi), want)
    snap_path = workdir / "gate.d"
    tagged.save_snapshot(snap_path)
    with ParallelExecutor(open_snapshot(snap_path), workers=2) as ex:
        through_snapshot = _batch_equal(ex.query_batch(queries, lo, hi), want)
    gate = {
        "in_memory_identical": in_memory,
        "snapshot_identical": through_snapshot,
    }
    return gate, default


def _verify_throughput(index, snapshot_matrix, repeats: int) -> float:
    """Row-aligned estimate_pairs throughput in pairs/second."""
    import numpy as np

    matrix = np.asarray(snapshot_matrix)
    n = matrix.shape[0]
    target = 200_000
    tiles = max(1, target // max(1, n))
    a = np.tile(matrix, (tiles, 1))
    b = np.tile(matrix[::-1], (tiles, 1))
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        index.embedder.estimate_pairs(a, b)
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
    return a.shape[0] / best


def bench_codec(
    codec: str, sets, queries, truth, budget, k, seed, workdir: Path,
    repeats: int,
) -> dict:
    from repro.exec.snapfile import byte_breakdown, open_snapshot

    lo, hi = RANGE
    t0 = time.perf_counter()
    index = _build(sets, codec, budget, k, seed)
    build_s = time.perf_counter() - t0
    snap_path = workdir / f"{codec.replace(':', '_').replace('+', '-')}.d"
    index.save_snapshot(snap_path)
    manifest = json.loads((snap_path / "manifest.json").read_text())
    breakdown = byte_breakdown(manifest)

    open_secs = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        snapshot = open_snapshot(snap_path)
        open_secs.append(time.perf_counter() - t0)

    batch = index.query_batch(queries, lo, hi)
    found = relevant = candidates = answers = 0
    for result, hits in zip(batch.results, truth):
        got = {sid for sid, _ in result.answers}
        found += len(got & hits)
        relevant += len(hits)
        candidates += len(result.candidates)
        answers += len(got)

    return {
        "codec": index.embedder.codec,
        "bits_per_slot": index.embedder.m,
        "dimension_bits": index.embedder.dimension,
        "build_seconds": round(build_s, 3),
        "signature_bytes_per_set": breakdown["signature_bytes_per_set"],
        "bytes_per_set": round(breakdown["bytes_per_set"], 1),
        "signature_bytes_total": breakdown["groups"]["signatures"],
        "snapshot_open_seconds": round(min(open_secs), 5),
        "recall": round(found / relevant, 4) if relevant else 1.0,
        "candidate_precision": (
            round(answers / candidates, 4) if candidates else 1.0
        ),
        "verify_pairs_per_second": round(
            _verify_throughput(index, snapshot.vector_matrix, repeats)
        ),
    }


def run_bench(
    n_sets: int = N_SETS,
    batch_size: int = 64,
    budget: int = 200,
    k: int = 128,
    seed: int = 17,
    repeats: int = 3,
) -> dict:
    sets = build_workload(n_sets, seed)
    queries = [sets[(i * 7) % len(sets)] for i in range(batch_size)]
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-compress-") as tmp:
        tmp = Path(tmp)
        gate, default_index = equivalence_gate(sets, queries, budget, k, seed, tmp)
        truth = _sid_truth(default_index, queries, *RANGE)
        del default_index
        for codec in CODECS:
            rows.append(
                bench_codec(
                    codec, sets, queries, truth, budget, k, seed, tmp, repeats
                )
            )
    full = next(r for r in rows if r["codec"] == "full64")
    for row in rows:
        row["signature_compression_vs_full64"] = round(
            full["signature_bytes_total"] / row["signature_bytes_total"], 2
        )
        row["verify_speedup_vs_full64"] = round(
            row["verify_pairs_per_second"] / full["verify_pairs_per_second"], 2
        )
    return {
        "experiment": "BENCH-COMPRESS",
        "workload": {
            "generator": "planted_clusters",
            "n_sets": len(sets),
            "batch_size": batch_size,
            "budget": budget,
            "k": k,
            "b": 4,
            "seed": seed,
            "range": RANGE,
            "recall_target": 0.97,
        },
        "host": {"cpu_count": os.cpu_count()},
        "equivalence": gate,
        "metric_note": (
            "recall is answers vs brute-force Jaccard ground truth over "
            "the whole collection (verification is exact, so compressed "
            "codecs can only miss, never fabricate); "
            "signature_compression_vs_full64 counts packed signature "
            "bytes from the snapshot manifest -- m/beta, i.e. 8x for "
            "bbit:2 at this bench's 16-bit codewords (b=4) and 32x at "
            "the production default b=6; verify_pairs_per_second times "
            "the row-aligned estimate_pairs kernel the verify-masking "
            "path drives"
        ),
        "rows": rows,
    }


def format_table(payload: dict) -> str:
    lines = [
        f"{'codec':>20} {'sig B/set':>10} {'ratio':>7} {'recall':>7} "
        f"{'precision':>10} {'verify p/s':>12} {'open(s)':>9}"
    ]
    lines.append("-" * len(lines[0]))
    for r in payload["rows"]:
        lines.append(
            f"{r['codec']:>20} {r['signature_bytes_per_set']:>10.0f} "
            f"{r['signature_compression_vs_full64']:>6}x {r['recall']:>7} "
            f"{r['candidate_precision']:>10} "
            f"{r['verify_pairs_per_second']:>12,} "
            f"{r['snapshot_open_seconds']:>9}"
        )
    gate = payload["equivalence"]
    lines.append(
        f"full64 equivalence: in_memory="
        f"{'ok' if gate['in_memory_identical'] else 'DIVERGED'} "
        f"snapshot={'ok' if gate['snapshot_identical'] else 'DIVERGED'}"
    )
    return "\n".join(lines)


def check(payload: dict, smoke: bool = False) -> list[str]:
    """The bench's own acceptance gates; returns failure messages."""
    failures = []
    gate = payload["equivalence"]
    if not gate["in_memory_identical"]:
        failures.append("codec='full64' diverged from the default in memory")
    if not gate["snapshot_identical"]:
        failures.append("codec='full64' diverged through the snapshot path")
    if smoke:
        return failures  # smoke checks the machinery, not the numbers
    rows = {r["codec"]: r for r in payload["rows"]}
    for codec, floor in (("bbit:2", 8.0), ("bbit:1", 16.0)):
        ratio = rows[codec]["signature_compression_vs_full64"]
        if ratio < floor:
            failures.append(
                f"{codec} signature bytes only {ratio}x smaller than "
                f"full64 (need >= {floor}x)"
            )
    for codec, row in rows.items():
        if row["recall"] < 0.95:
            failures.append(
                f"{codec} recall {row['recall']} < 0.95 against "
                f"brute-force Jaccard"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workload for CI: checks equivalence, not the numbers",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    if args.smoke:
        payload = run_bench(
            n_sets=SMOKE_N_SETS, batch_size=16, budget=80, k=32, repeats=1,
        )
        payload["smoke"] = True
    else:
        payload = run_bench()
    print(format_table(payload))
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    failures = check(payload, smoke=args.smoke)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
