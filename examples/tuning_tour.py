"""A tour of the index's tuning knobs (the "tunable" in the title).

Walks the space the Section 5 optimizer navigates, on one dataset:

1. the space/accuracy trade: hash-table budget vs expected precision
   at a fixed recall floor;
2. the recall dial: higher floors force fewer intervals (coarser
   enclosing ranges -> more candidates);
3. the maintenance loop: drift detection and rebuild after the
   workload changes.

Run:  python examples/tuning_tour.py
"""

from __future__ import annotations

import numpy as np

from repro import SetSimilarityIndex
from repro.core.maintenance import MaintenanceAdvisor, rebuild
from repro.data import make_weblog_collection, uniform_random_sets


def main() -> None:
    sets = make_weblog_collection(n_sets=600, seed=33)
    print(f"dataset: {len(sets)} synthetic web sessions\n")

    # --- 1. budget sweep ---------------------------------------------------
    print("budget -> intervals, expected recall / precision")
    for budget in (50, 150, 400):
        index = SetSimilarityIndex.build(
            sets, budget=budget, recall_target=0.9, k=64, seed=1, sample_pairs=40_000
        )
        plan = index.plan
        print(
            f"  {budget:4d} tables: {plan.n_intervals:2d} intervals, "
            f"recall {plan.expected_recall:.3f}, precision {plan.expected_precision:.3f}"
        )

    # --- 2. recall floor sweep ----------------------------------------------
    print("\nrecall floor -> plan shape (same 150-table budget)")
    for target in (0.80, 0.90, 0.97):
        index = SetSimilarityIndex.build(
            sets, budget=150, recall_target=target, k=64, seed=1, sample_pairs=40_000
        )
        plan = index.plan
        met = "met" if plan.met_target else "NOT met"
        print(
            f"  floor {target:.2f}: {plan.n_intervals:2d} intervals, "
            f"achieved {plan.expected_recall:.3f} ({met}), "
            f"precision {plan.expected_precision:.3f}"
        )

    # --- 3. drift and rebuild ------------------------------------------------
    index = SetSimilarityIndex.build(
        sets, budget=150, recall_target=0.9, k=64, seed=1, sample_pairs=40_000
    )
    advisor = MaintenanceAdvisor(index, churn_threshold=0.2, drift_threshold=0.05)
    print(f"\nfresh index: {advisor.check().reason}")

    flood = uniform_random_sets(200, universe=100_000, set_size=60, seed=34)
    for s in flood:
        index.insert(s)
    report = advisor.check(seed=2)
    print(f"after flooding with 200 unrelated sets: {report.reason}")
    if report.should_rebuild:
        fresh = rebuild(index, recall_target=0.9, seed=3)
        print(
            f"rebuilt: {fresh.plan.n_intervals} intervals "
            f"(was {index.plan.n_intervals}), "
            f"expected recall {fresh.plan.expected_recall:.3f}"
        )


if __name__ == "__main__":
    main()
