"""EXPLAIN: render a completed query trace as a plan tree and JSON.

A query executed with tracing (``index.query(..., explain=True)`` or a
``trace.capture`` around it) produces a :class:`~repro.obs.trace.Span`
tree.  This module turns that tree into the two artifacts the CLI and
the harness expose:

- :func:`render_trace`: a human-readable plan tree, one line per
  pipeline stage, showing per probed filter index its cut point, the
  turning point ``s*``, ``(r, l)``, tables probed, buckets read,
  candidates contributed and candidates surviving verification.
- :func:`explain_json`: the same data as structured JSON -- a
  ``filters`` summary list for programmatic consumption plus the full
  span tree for drill-down.

The span attributes consumed here are produced by the instrumentation
in :mod:`repro.core.index` and :mod:`repro.core.filter_index`.
"""

from __future__ import annotations

from typing import Any

from repro.obs.trace import Span, _jsonable

#: Span names identifying one filter-index probe (SFI or DFI).
PROBE_SPANS = ("sfi_probe", "dfi_probe")

#: Span names identifying one *batched* filter-index probe: a whole
#: query batch against one SFI/DFI with grouped bucket reads.
BATCH_PROBE_SPANS = ("sfi_probe_batch", "dfi_probe_batch")


def _fmt_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, (set, frozenset)):
        return str(len(value))
    return str(value)


def _fmt_io(span: Span) -> str:
    io = span.io_delta
    if io is None:
        return ""
    parts = []
    if io.random_reads:
        parts.append(f"{io.random_reads}r")
    if io.sequential_reads:
        parts.append(f"{io.sequential_reads}s")
    if io.page_writes:
        parts.append(f"{io.page_writes}w")
    if io.cpu_ops:
        parts.append(f"{io.cpu_ops}cpu")
    return f"io[{'+'.join(parts)}]" if parts else ""


def buckets_read(span: Span) -> int | None:
    """Bucket pages a probe span touched (random heads + overflows)."""
    if span.io_delta is None:
        return None
    return span.io_delta.random_reads + span.io_delta.sequential_reads


def _describe(span: Span) -> str:
    """One plan-tree line for a span (sans tree decoration)."""
    attrs = span.attrs
    if span.name in PROBE_SPANS or span.name in BATCH_PROBE_SPANS:
        kind = "SFI" if span.name.startswith("sfi") else "DFI"
        parts = [f"probe {kind}"]
        if span.name in BATCH_PROBE_SPANS:
            parts[0] = f"batch-probe {kind}"
        if attrs.get("sigma") is not None:
            parts[0] += f"(σ={attrs['sigma']:.3f})"
        if attrs.get("s_star") is not None:
            parts.append(f"s*={attrs['s_star']:.3f}")
        if attrs.get("r") is not None and attrs.get("l") is not None:
            parts.append(f"(r={attrs['r']}, l={attrs['l']})")
        if attrs.get("n_queries") is not None:
            parts.append(f"queries={attrs['n_queries']}")
        parts.append(f"tables={attrs.get('tables_probed', attrs.get('l', '?'))}")
        nb = buckets_read(span)
        if nb is not None:
            parts.append(f"buckets={nb}")
        if attrs.get("pages_saved") is not None:
            parts.append(f"pages_saved={attrs['pages_saved']}")
        if attrs.get("candidates") is not None:
            parts.append(f"candidates={attrs['candidates']}")
        if attrs.get("survived") is not None:
            parts.append(f"survived={attrs['survived']}")
        line = "  ".join(parts)
    else:
        pairs = "  ".join(
            f"{k}={_fmt_value(v)}" for k, v in attrs.items()
            if not k.startswith("_")
        )
        line = span.name if not pairs else f"{span.name}  {pairs}"
    io = _fmt_io(span)
    if io:
        line += f"  {io}"
    if span.duration:
        line += f"  [{span.duration_ms:.2f}ms]"
    return line


def render_trace(trace: Span) -> str:
    """Render a span tree as an indented plan tree (one line per span)."""
    lines = [_describe(trace)]

    def walk(span: Span, prefix: str) -> None:
        for i, child in enumerate(span.children):
            last = i == len(span.children) - 1
            lines.append(prefix + ("└─ " if last else "├─ ")
                         + _describe(child))
            walk(child, prefix + ("   " if last else "│  "))

    walk(trace, "")
    return "\n".join(lines)


def _outermost(trace: Span, names: tuple[str, ...]) -> list[Span]:
    found: list[Span] = []

    def visit(span: Span) -> None:
        if span.name in names:
            found.append(span)
            return
        for child in span.children:
            visit(child)

    for child in trace.children:
        visit(child)
    if not found and trace.name in names:
        found.append(trace)
    return found


def probe_spans(trace: Span) -> list[Span]:
    """Top-level probe spans (a DFI wraps an inner SFI probe; keep the
    outer one, which carries the user-facing cut point)."""
    return _outermost(trace, PROBE_SPANS)


def batch_probe_spans(trace: Span) -> list[Span]:
    """Top-level *batch* probe spans of a ``query_batch`` trace.

    As with :func:`probe_spans`, a batched DFI probe wraps the inner
    batched SFI probe of its complement; only the outer span -- the one
    carrying the user-facing cut point -- is kept.
    """
    return _outermost(trace, BATCH_PROBE_SPANS)


def filter_summaries(trace: Span) -> list[dict[str, Any]]:
    """Per-probed-filter statistics extracted from a query trace.

    Handles both single-query probes and the batched probes of a
    ``query_batch`` trace; batch probe summaries additionally carry the
    batch aggregates ``n_queries`` (queries served by the one probe)
    and ``pages_saved`` (bucket pages the grouped reads avoided versus
    probing each query separately).
    """
    summaries = []
    for span in probe_spans(trace) + batch_probe_spans(trace):
        attrs = span.attrs
        summary = {
            "kind": "SFI" if span.name.startswith("sfi") else "DFI",
            "sigma": attrs.get("sigma"),
            "s_star": attrs.get("s_star"),
            "r": attrs.get("r"),
            "l": attrs.get("l"),
            "tables_probed": attrs.get("tables_probed", attrs.get("l")),
            "buckets_read": buckets_read(span),
            "candidates": attrs.get("candidates"),
            "survived": attrs.get("survived"),
            "duration_ms": round(span.duration_ms, 3),
        }
        if span.name in BATCH_PROBE_SPANS:
            summary["batched"] = True
            summary["n_queries"] = attrs.get("n_queries")
            summary["pages_saved"] = attrs.get("pages_saved")
        summaries.append(summary)
    return summaries


#: Span names of the build pipeline's phases, in pipeline order.
BUILD_PHASE_SPANS = (
    "estimate_distribution", "plan_index", "store_load",
    "embed_corpus", "filter_build",
)


def build_summaries(trace: Span) -> list[dict[str, Any]]:
    """Per-phase statistics extracted from a build trace.

    The build-side analogue of :func:`filter_summaries`: one dict per
    pipeline phase (``estimate_distribution``, ``plan_index``,
    ``store_load``, ``embed_corpus``, ``filter_build``) with its
    duration, I/O delta and phase attributes -- e.g. the
    ``filter_build`` entry carries entries loaded, pages allocated and
    the modeled plan-phase makespan.  JSON-safe, in phase order.
    """
    summaries = []
    for name in BUILD_PHASE_SPANS:
        for span in trace.find(name):
            summaries.append({
                "phase": name,
                "duration_ms": round(span.duration_ms, 3),
                "io": (
                    span.io_delta.as_dict()
                    if span.io_delta is not None else None
                ),
                **{
                    k: _jsonable(v) for k, v in span.attrs.items()
                    if not k.startswith("_")
                },
            })
    return summaries


def explain_json(trace: Span) -> dict[str, Any]:
    """Structured EXPLAIN output for one traced query.

    Keys: ``query`` (the root span's attributes -- range, strategy,
    totals), ``filters`` (per-probe summaries, see
    :func:`filter_summaries`), ``io`` (the root I/O delta) and
    ``trace`` (the full span tree).
    """
    return {
        "query": {
            k: _jsonable(v) for k, v in trace.attrs.items()
            if not k.startswith("_")
        },
        "filters": filter_summaries(trace),
        "io": trace.io_delta.as_dict() if trace.io_delta is not None else None,
        "duration_ms": round(trace.duration_ms, 3),
        "trace": trace.to_dict(),
    }
