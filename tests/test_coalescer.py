"""Property and stateful tests for the request coalescer in isolation.

The coalescer is the first concurrent-by-construction component in the
engine, so its correctness argument is structural:
:class:`repro.serve.coalescer.CoalescerCore` is a synchronous state
machine that never reads a clock -- every transition takes ``now``
explicitly -- which lets hypothesis drive it with simulated time and
prove the serving invariants deterministically:

- every accepted request is dispatched **exactly once** (and, through
  the asyncio wrapper, answered exactly once);
- no micro-batch exceeds ``max_batch`` and all of a batch's requests
  share one coalescing key, dispatched FIFO per key;
- admission is bounded by ``max_pending`` with explicit overload
  verdicts, never silent drops;
- timeliness: with dispatch capacity free, a pending request is
  dispatched no later than its deadline (``enqueue + max_wait``; the
  adaptive window only ever *shrinks* the wait);
- cancelling or disconnecting one request never loses or duplicates
  any other request's answer.

The asyncio wrapper tests then pin the same guarantees against a real
event loop with real timers and concurrent submitters.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.serve.coalescer import (
    Coalescer,
    CoalescerCore,
    DrainingError,
    OverloadedError,
)

KEYS = ["a", "b", "c"]


# ---------------------------------------------------------------------------
# CoalescerCore: direct properties
# ---------------------------------------------------------------------------


class TestCoreBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            CoalescerCore(max_batch=0)
        with pytest.raises(ValueError):
            CoalescerCore(max_wait=-1)
        with pytest.raises(ValueError):
            CoalescerCore(max_pending=0)
        with pytest.raises(ValueError):
            CoalescerCore(max_concurrent=0)

    def test_full_batch_dispatches_without_waiting(self):
        core = CoalescerCore(max_batch=4, max_wait=10.0, adaptive=False)
        for rid in range(4):
            assert core.submit(rid, "k", rid, now=0.0) == "accepted"
        batches = core.poll(now=0.0)  # no time has passed at all
        assert [len(b) for b in batches] == [4]
        assert [i.rid for i in batches[0].items] == [0, 1, 2, 3]
        assert core.n_pending == 0

    def test_lone_request_waits_for_deadline(self):
        core = CoalescerCore(max_batch=4, max_wait=0.5, adaptive=False)
        core.submit(0, "k", None, now=1.0)
        assert core.poll(now=1.4) == []
        assert core.next_deadline() == pytest.approx(1.5)
        batches = core.poll(now=1.5)
        assert len(batches) == 1 and batches[0].items[0].rid == 0

    def test_admission_bound_is_explicit(self):
        core = CoalescerCore(max_batch=8, max_wait=1.0, max_pending=3)
        verdicts = [core.submit(rid, "k", None, now=0.0) for rid in range(5)]
        assert verdicts == ["accepted"] * 3 + ["overloaded"] * 2
        assert core.stats.rejected_overload == 2
        assert core.n_pending == 3

    def test_draining_rejects_but_flushes_pending(self):
        core = CoalescerCore(max_batch=8, max_wait=1.0)
        core.submit(0, "k", None, now=0.0)
        core.start_drain()
        assert core.submit(1, "k", None, now=0.0) == "draining"
        batches = core.poll(now=0.0, force=True)
        assert [i.rid for b in batches for i in b.items] == [0]

    def test_capacity_serializes_batches(self):
        core = CoalescerCore(max_batch=2, max_wait=0.0, max_concurrent=1)
        for rid in range(6):
            core.submit(rid, "k", None, now=0.0)
        first = core.poll(now=0.0)
        assert [len(b) for b in first] == [2]
        assert core.poll(now=0.0) == []  # one batch already in flight
        core.batch_done()
        second = core.poll(now=0.0)
        assert [len(b) for b in second] == [2]
        assert [i.rid for i in second[0].items] == [2, 3]  # FIFO

    def test_cancel_pending_only_removes_that_request(self):
        core = CoalescerCore(max_batch=8, max_wait=0.0, adaptive=False)
        for rid in range(4):
            core.submit(rid, "k", None, now=0.0)
        assert core.cancel(2, "k") is True
        assert core.cancel(2, "k") is False  # already gone
        assert core.cancel(99, "missing-key") is False
        batches = core.poll(now=0.0)
        assert [i.rid for i in batches[0].items] == [0, 1, 3]

    def test_adaptive_window_tracks_arrival_rate(self):
        core = CoalescerCore(max_batch=10, max_wait=1.0, adaptive=True)
        # 1 kHz arrivals: the EWMA gap converges near 1ms, so a lone
        # request should wait ~(max_batch-1) * 1ms, far below max_wait.
        t = 0.0
        for rid in range(50):
            core.submit(rid, "k", None, now=t)
            t += 0.001
        core.poll(now=t, force=True)
        core.batch_done()
        wait = core.effective_wait(queue_len=1)
        assert wait <= 0.05  # ~9ms expected; never the full second
        assert wait <= core.max_wait
        # Sparse arrivals push the window back up toward max_wait.
        for rid in range(100, 140):
            core.submit(rid, "k", None, now=t)
            t += 10.0
        assert core.effective_wait(queue_len=1) == core.max_wait

    def test_keys_never_mix_within_a_batch(self):
        core = CoalescerCore(max_batch=4, max_wait=0.0, adaptive=False)
        for rid in range(6):
            core.submit(rid, KEYS[rid % 2], None, now=0.0)
        seen = []
        while core.n_pending:
            for batch in core.poll(now=0.0, force=True):
                assert len({i.key for i in batch.items}) == 1
                seen.extend(i.rid for i in batch.items)
                core.batch_done()
        assert sorted(seen) == list(range(6))


@given(
    gaps=st.lists(
        st.floats(min_value=0.0, max_value=0.01, allow_nan=False),
        min_size=1, max_size=40,
    ),
    max_batch=st.integers(min_value=1, max_value=8),
    max_wait=st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
)
@settings(max_examples=120, deadline=None)
def test_timeliness_property(gaps, max_batch, max_wait):
    """With capacity free, polling at the oldest deadline always
    dispatches a batch containing the oldest request, and nothing is
    ever dispatched twice."""
    core = CoalescerCore(
        max_batch=max_batch, max_wait=max_wait, adaptive=False,
        max_pending=10_000,
    )
    now = 0.0
    dispatched: list[int] = []
    for rid, gap in enumerate(gaps):
        now += gap
        assert core.submit(rid, "k", None, now) == "accepted"
        for batch in core.poll(now):
            assert len(batch) <= max_batch
            dispatched.extend(i.rid for i in batch.items)
            core.batch_done()
    while core.n_pending:
        deadline = core.next_deadline()
        assert deadline is not None and deadline <= now + max_wait
        now = deadline
        batches = core.poll(now)
        assert batches, "capacity is free and the deadline has passed"
        oldest = min(
            rid for rid in range(len(gaps)) if rid not in dispatched
        )
        polled = [i.rid for b in batches for i in b.items]
        assert oldest in polled
        dispatched.extend(polled)
        for _ in batches:
            core.batch_done()
    assert sorted(dispatched) == list(range(len(gaps)))
    assert len(set(dispatched)) == len(dispatched)  # exactly once


class CoalescerMachine(RuleBasedStateMachine):
    """Stateful exploration of the core under arbitrary interleavings
    of submits, cancels, polls, completions and drain."""

    def __init__(self):
        super().__init__()
        self.now = 0.0
        self.next_rid = 0
        self.accepted: dict[int, tuple] = {}  # rid -> (key, submit_time)
        self.dispatched: dict[int, float] = {}  # rid -> dispatch time
        self.cancelled: set[int] = set()
        self.in_flight_batches = 0

    @initialize(
        max_batch=st.integers(min_value=1, max_value=5),
        max_wait=st.sampled_from([0.0, 0.001, 0.01, 0.1]),
        max_pending=st.integers(min_value=1, max_value=12),
        max_concurrent=st.integers(min_value=1, max_value=2),
        adaptive=st.booleans(),
    )
    def setup(self, max_batch, max_wait, max_pending, max_concurrent, adaptive):
        self.core = CoalescerCore(
            max_batch=max_batch,
            max_wait=max_wait,
            max_pending=max_pending,
            max_concurrent=max_concurrent,
            adaptive=adaptive,
        )

    def _drain_poll(self, force=False):
        for batch in self.core.poll(self.now, force=force):
            assert len(batch) <= self.core.max_batch
            assert len({i.key for i in batch.items}) == 1
            key = batch.items[0].key
            submit_times = [self.accepted[i.rid][1] for i in batch.items]
            assert submit_times == sorted(submit_times), "FIFO per key"
            assert all(self.accepted[i.rid][0] == key for i in batch.items)
            for item in batch.items:
                assert item.rid not in self.dispatched, "duplicate dispatch"
                assert item.rid not in self.cancelled, "cancelled rid dispatched"
                self.dispatched[item.rid] = self.now
            self.in_flight_batches += 1

    @rule(gap=st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
          key=st.sampled_from(KEYS))
    def submit(self, gap, key):
        self.now += gap
        rid = self.next_rid
        self.next_rid += 1
        verdict = self.core.submit(rid, key, None, self.now)
        if self.core.draining:
            assert verdict == "draining"
            return
        pending_before = len(self.accepted) - len(self.dispatched) - len(
            self.cancelled
        )
        if verdict == "accepted":
            assert pending_before < self.core.max_pending
            self.accepted[rid] = (key, self.now)
        else:
            assert verdict == "overloaded"
            assert pending_before >= self.core.max_pending

    @rule(gap=st.floats(min_value=0.0, max_value=0.2, allow_nan=False))
    def poll(self, gap):
        self.now += gap
        self._drain_poll()

    @rule()
    def complete_batch(self):
        if self.in_flight_batches:
            self.core.batch_done()
            self.in_flight_batches -= 1
            self._drain_poll()

    @rule(data=st.data())
    def cancel_one(self, data):
        pending = [
            rid for rid in self.accepted
            if rid not in self.dispatched and rid not in self.cancelled
        ]
        if not pending:
            return
        rid = data.draw(st.sampled_from(pending))
        key = self.accepted[rid][0]
        assert self.core.cancel(rid, key) is True
        self.cancelled.add(rid)

    @rule()
    def drain(self):
        self.core.start_drain()
        self._drain_poll(force=True)

    @invariant()
    def bookkeeping_matches(self):
        pending = len(self.accepted) - len(self.dispatched) - len(self.cancelled)
        assert self.core.n_pending == pending
        assert self.core.n_pending <= self.core.max_pending
        assert self.core.in_flight == self.in_flight_batches

    @invariant()
    def timer_deadline_respects_every_pending_request(self):
        # The deadline the wrapper would arm its timer at is never
        # later than the *oldest* pending request's enqueue + max_wait:
        # the adaptive window only ever shrinks the wait, so no request
        # can be parked beyond the configured bound.
        pending_bounds = [
            t + self.core.max_wait
            for rid, (key, t) in self.accepted.items()
            if rid not in self.dispatched and rid not in self.cancelled
        ]
        if pending_bounds:
            deadline = self.core.next_deadline()
            assert deadline is not None
            assert deadline <= min(pending_bounds) + 1e-9

    def teardown(self):
        if hasattr(self, "core"):
            self.core.start_drain()
            self._drain_poll(force=True)
            expected = set(self.accepted) - self.cancelled
            assert set(self.dispatched) == expected, "lost or phantom requests"


TestCoalescerStateful = CoalescerMachine.TestCase
TestCoalescerStateful.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)


# ---------------------------------------------------------------------------
# Asyncio wrapper: exactly-once answers against a live event loop
# ---------------------------------------------------------------------------


def run(coro):
    return asyncio.run(coro)


async def echo_dispatch(key, payloads):
    await asyncio.sleep(0.001)
    return [(key, p) for p in payloads]


class TestCoalescerAsync:
    def test_every_submit_answered_exactly_once(self):
        async def main():
            batches = []
            c = Coalescer(
                echo_dispatch, max_batch=8, max_wait=0.002,
                on_batch=lambda b: batches.append(len(b.items)),
            )
            results = await asyncio.gather(*[
                c.submit(KEYS[i % 2], i) for i in range(50)
            ])
            await c.drain()
            assert results == [(KEYS[i % 2], i) for i in range(50)]
            assert sum(batches) == 50
            assert all(size <= 8 for size in batches)
            assert c.stats.dispatched == 50
            return batches

        batches = run(main())
        # concurrency actually coalesced: fewer batches than requests
        assert len(batches) < 50

    def test_latency_bounded_by_window_plus_dispatch(self):
        """No request waits past max_wait plus one dispatch (plus
        scheduling slack) when the dispatcher keeps up."""
        DISPATCH_S = 0.005
        MAX_WAIT = 0.01

        async def slow_dispatch(key, payloads):
            await asyncio.sleep(DISPATCH_S)
            return payloads

        async def main():
            c = Coalescer(slow_dispatch, max_batch=64, max_wait=MAX_WAIT)
            loop = asyncio.get_running_loop()

            async def one(i):
                t0 = loop.time()
                await c.submit("k", i)
                return loop.time() - t0

            # Two widely spaced waves so the dispatcher is never backlogged.
            lat = []
            for _ in range(3):
                lat += await asyncio.gather(*[one(i) for i in range(10)])
                await asyncio.sleep(0.03)
            await c.drain()
            return lat

        latencies = run(main())
        bound = MAX_WAIT + DISPATCH_S + 0.05  # generous scheduling slack
        assert max(latencies) < bound

    def test_overload_and_draining_are_typed(self):
        async def main():
            gate = asyncio.Event()

            async def gated(key, payloads):
                await gate.wait()
                return payloads

            c = Coalescer(gated, max_batch=1, max_wait=0.0, max_pending=2)
            first = asyncio.create_task(c.submit("k", 0))
            await asyncio.sleep(0.005)  # dispatched, blocked on the gate
            queued = [asyncio.create_task(c.submit("k", i)) for i in (1, 2)]
            await asyncio.sleep(0.005)
            with pytest.raises(OverloadedError):
                await c.submit("k", 3)
            gate.set()
            assert await first == 0
            assert [await t for t in queued] == [1, 2]
            await c.drain()
            with pytest.raises(DrainingError):
                await c.submit("k", 4)
            assert c.stats.rejected_overload == 1

        run(main())

    def test_cancellation_never_disturbs_other_requests(self):
        """Cancel some submitters before dispatch and some mid-dispatch;
        every surviving request is answered exactly once with its own
        payload."""

        async def main():
            started = asyncio.Event()

            async def dispatch(key, payloads):
                started.set()
                await asyncio.sleep(0.01)
                return list(payloads)

            c = Coalescer(dispatch, max_batch=64, max_wait=0.005)
            tasks = [
                asyncio.create_task(c.submit("k", i)) for i in range(20)
            ]
            await asyncio.sleep(0)  # all enqueued, none dispatched
            tasks[3].cancel()  # pre-dispatch cancellation
            await started.wait()
            tasks[7].cancel()  # mid-dispatch cancellation
            results = await asyncio.gather(*tasks, return_exceptions=True)
            await c.drain()
            for i, res in enumerate(results):
                if i in (3, 7):
                    assert isinstance(res, asyncio.CancelledError)
                else:
                    assert res == i, f"request {i} got {res!r}"
            # the pre-dispatch cancel was withdrawn from the queue
            assert c.stats.cancelled >= 1

        run(main())

    def test_dispatch_failure_is_contained(self):
        calls = []

        async def flaky(key, payloads):
            calls.append(len(payloads))
            if len(calls) == 1:
                raise RuntimeError("boom")
            return list(payloads)

        async def main():
            c = Coalescer(flaky, max_batch=64, max_wait=0.002)
            with pytest.raises(RuntimeError, match="boom"):
                await c.submit("k", 1)
            # The coalescer survives and serves the next request.
            assert await c.submit("k", 2) == 2
            await c.drain()

        run(main())

    def test_wrong_result_cardinality_is_an_error(self):
        async def bad(key, payloads):
            return []

        async def main():
            c = Coalescer(bad, max_batch=4, max_wait=0.0)
            with pytest.raises(RuntimeError, match="results"):
                await c.submit("k", 1)
            await c.drain()

        run(main())

    def test_drain_flushes_pending_before_refusing(self):
        async def main():
            c = Coalescer(echo_dispatch, max_batch=64, max_wait=10.0)
            # A long window: these would sit pending for 10s...
            tasks = [asyncio.create_task(c.submit("k", i)) for i in range(5)]
            await asyncio.sleep(0.005)
            await c.drain()  # ...but drain answers them immediately.
            assert [await t for t in tasks] == [("k", i) for i in range(5)]
            with pytest.raises(DrainingError):
                await c.submit("k", 99)

        run(main())
