"""Error-correcting code for the Hamming embedding (Section 3.2).

Theorem 1 needs a code in which *every* pair of distinct codewords is
at Hamming distance exactly ``m/2``: then agreement between two
embedded min-hash values contributes all ``m`` bits when the values are
equal and exactly ``m/2`` bits when they differ, turning expected
signature agreement ``s`` into expected Hamming similarity
``(1 + s) / 2`` with no further distortion.

The paper points to simplex codes.  We use the equivalent *Hadamard
code*: the ``b``-bit value ``v`` maps to the codeword

    c_v(x) = <v, x> mod 2,   x = 0 .. 2**b - 1,

i.e. row ``v`` of the ``2**b x 2**b`` binary inner-product matrix.  For
``u != v``, ``c_u xor c_v = c_{u xor v}`` is a nonzero linear
functional over GF(2)^b, which is balanced -- it is 1 on exactly half
of all ``x``.  Hence every pair of distinct codewords differs in
exactly ``2**(b-1) = m/2`` positions.  (This is the simplex code of
length ``2**b - 1`` augmented with the always-zero coordinate ``x = 0``,
which leaves the pairwise distance untouched while making ``m`` a power
of two that packs evenly into 64-bit words.)
"""

from __future__ import annotations

import numpy as np

from repro.hamming.bitvector import pack_bits


class HadamardCode:
    """The ``[2**b, b]`` binary Hadamard code with distance exactly ``m/2``.

    Parameters
    ----------
    b:
        Message length in bits.  Codewords have length ``m = 2**b``.
        ``b`` up to 16 is supported (the codeword table is ``2**b`` rows
        of ``2**b`` bits; b=16 is already 512 MiB and far beyond what
        the index needs).
    """

    MAX_B = 16

    def __init__(self, b: int):
        if not 1 <= b <= self.MAX_B:
            raise ValueError(f"b must be in [1, {self.MAX_B}], got {b}")
        self.b = b
        self.m = 1 << b
        x = np.arange(self.m, dtype=np.uint64)
        v = np.arange(self.m, dtype=np.uint64)
        # bits[v, x] = parity(v & x): row v is codeword c_v.
        products = v[:, np.newaxis] & x[np.newaxis, :]
        bits = (np.bitwise_count(products) & 1).astype(np.uint8)
        #: Unpacked codeword table, shape (2**b, m) of 0/1.
        self.table_bits = bits
        #: Packed codeword table, shape (2**b, m // 64) for m >= 64.
        self.table_packed = pack_bits(bits)

    @property
    def n_codewords(self) -> int:
        """Number of codewords: one per ``b``-bit message, ``2**b``."""
        return self.m

    @property
    def distance(self) -> int:
        """Pairwise distance of distinct codewords: exactly ``m / 2``."""
        return self.m // 2

    def encode_bits(self, values: np.ndarray) -> np.ndarray:
        """Codewords of ``values`` as unpacked bits, shape ``(k, m)``.

        Values are reduced modulo ``2**b`` -- this is the paper's fixed
        precision step applied to raw min-hash values.
        """
        values = np.asarray(values, dtype=np.uint64) % np.uint64(self.m)
        return self.table_bits[values.astype(np.int64)]

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Concatenated packed codewords of a value vector.

        For a length-``k`` input the result is the packed form of the
        ``k * m``-bit string ``ecc(v_1) ecc(v_2) ... ecc(v_k)`` used by
        the embedding ``h(V)`` of Section 3.2.
        """
        values = np.asarray(values, dtype=np.uint64) % np.uint64(self.m)
        if self.m >= 64:
            # Codeword boundaries align with word boundaries: concatenating
            # packed codewords is just row concatenation.
            return self.table_packed[values.astype(np.int64)].reshape(-1)
        bits = self.table_bits[values.astype(np.int64)].reshape(-1)
        return pack_bits(bits)

    def encode_many(self, value_matrix: np.ndarray) -> np.ndarray:
        """Encode many value vectors at once: ``(N, k) -> (N, k*m/64)``."""
        value_matrix = np.asarray(value_matrix, dtype=np.uint64) % np.uint64(self.m)
        n, k = value_matrix.shape
        if self.m >= 64:
            packed = self.table_packed[value_matrix.astype(np.int64)]
            return packed.reshape(n, -1)
        bits = self.table_bits[value_matrix.astype(np.int64)].reshape(n, -1)
        return pack_bits(bits)

    def __repr__(self) -> str:
        return f"HadamardCode(b={self.b}, m={self.m})"
