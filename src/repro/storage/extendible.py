"""Extendible hashing -- a fully dynamic bucket directory.

The paper leans on its primitives being "fully dynamic" hash indices.
The static :class:`~repro.storage.hashtable.BucketHashTable` handles
growth with overflow chains, which degrade toward linear scans under
sustained inserts.  Extendible hashing (Fagin et al.) is the classic
fix: a directory of ``2^g`` pointers into shared buckets, where a full
bucket *splits* (doubling the directory only when the bucket's local
depth catches up), keeping every probe at exactly one bucket page with
no chains, for any insert sequence.

The table stores ``(fingerprint, value)`` entries like the static
variant and shares its I/O accounting discipline: a probe charges one
random page read; splits charge the pages they write.
"""

from __future__ import annotations

from repro.storage.hashtable import hash_key
from repro.storage.pager import PageManager


class _Bucket:
    __slots__ = ("local_depth", "page_id", "entries")

    def __init__(self, local_depth: int, page_id: int):
        self.local_depth = local_depth
        self.page_id = page_id
        self.entries: list[tuple[int, object]] = []


class ExtendibleHashTable:
    """Extendible hash table from byte keys to values.

    Parameters
    ----------
    pager:
        Page source / I/O accounting.  Each bucket occupies one page;
        bucket capacity comes from the pager's page size at 16 bytes
        per entry (matching the static table's record format).
    initial_depth:
        Starting global depth ``g`` (directory size ``2^g``).
    """

    def __init__(self, pager: PageManager, initial_depth: int = 1):
        if initial_depth < 0:
            raise ValueError(f"initial_depth must be >= 0, got {initial_depth}")
        self.pager = pager
        self.capacity = pager.capacity_for(16)
        self.global_depth = initial_depth
        unique = _Bucket(0, self._new_page())
        # All directory slots share one bucket until it splits.
        self._directory: list[_Bucket] = [unique] * (1 << initial_depth)
        self._n_entries = 0

    def _new_page(self) -> int:
        return self.pager.allocate(self.capacity).page_id

    @property
    def n_entries(self) -> int:
        """Number of stored entries."""
        return self._n_entries

    @property
    def n_buckets(self) -> int:
        """Number of distinct buckets (directory slots may share)."""
        return len({id(b) for b in self._directory})

    @property
    def directory_size(self) -> int:
        """Directory slots: ``2 ** global_depth``."""
        return len(self._directory)

    def _slot(self, fingerprint: int) -> int:
        return fingerprint & ((1 << self.global_depth) - 1)

    #: Directory growth cap: beyond 2^24 slots a full bucket overflows
    #: softly instead of splitting (only reachable with pathological
    #: key distributions, e.g. one key repeated past bucket capacity).
    MAX_GLOBAL_DEPTH = 24

    def insert(self, key: bytes, value) -> None:
        """Add a (key, value) entry; duplicates are stored as given."""
        fingerprint = hash_key(key)
        while True:
            bucket = self._directory[self._slot(fingerprint)]
            splittable = (
                self.global_depth < self.MAX_GLOBAL_DEPTH
                or bucket.local_depth < self.global_depth
            ) and any(fp != bucket.entries[0][0] for fp, _ in bucket.entries[1:])
            if len(bucket.entries) < self.capacity or not splittable:
                self.pager.read(bucket.page_id, sequential=False)
                bucket.entries.append((fingerprint, value))
                self.pager.write(bucket.page_id)
                self._n_entries += 1
                return
            self._split(bucket)

    def _split(self, bucket: _Bucket) -> None:
        """Split a full bucket, doubling the directory if needed."""
        if bucket.local_depth == self.global_depth:
            self._directory = self._directory + self._directory
            self.global_depth += 1
        bucket.local_depth += 1
        sibling = _Bucket(bucket.local_depth, self._new_page())
        # Entries whose discriminating bit is 1 move to the sibling.
        bit = 1 << (bucket.local_depth - 1)
        keep, move = [], []
        for entry in bucket.entries:
            (move if entry[0] & bit else keep).append(entry)
        bucket.entries = keep
        sibling.entries = move
        # Redirect the directory slots that now address the sibling.
        mask = (1 << bucket.local_depth) - 1
        sibling_pattern = self._pattern_of(bucket) | bit
        for slot in range(len(self._directory)):
            if self._directory[slot] is bucket and (slot & mask) == sibling_pattern:
                self._directory[slot] = sibling
        self.pager.write(bucket.page_id)
        self.pager.write(sibling.page_id)

    def _pattern_of(self, bucket: _Bucket) -> int:
        """The low ``local_depth - 1`` bits shared by the bucket's slots."""
        for slot, candidate in enumerate(self._directory):
            if candidate is bucket:
                return slot & ((1 << (bucket.local_depth - 1)) - 1)
        raise RuntimeError("bucket not referenced by the directory")

    def probe(self, key: bytes) -> list:
        """Values stored under ``key`` -- always one page read."""
        fingerprint = hash_key(key)
        bucket = self._directory[self._slot(fingerprint)]
        self.pager.read(bucket.page_id, sequential=False)
        return [value for fp, value in bucket.entries if fp == fingerprint]

    def delete(self, key: bytes, value) -> bool:
        """Remove one (key, value) entry; returns whether one existed.

        Buckets are not merged on deletion (the standard simplification;
        space is reclaimed on rebuild).
        """
        fingerprint = hash_key(key)
        bucket = self._directory[self._slot(fingerprint)]
        self.pager.read(bucket.page_id, sequential=False)
        target = (fingerprint, value)
        try:
            bucket.entries.remove(target)
        except ValueError:
            return False
        self.pager.write(bucket.page_id)
        self._n_entries -= 1
        return True

    def items(self):
        """All (fingerprint, value) entries (testing aid)."""
        seen = set()
        for bucket in self._directory:
            if id(bucket) in seen:
                continue
            seen.add(id(bucket))
            yield from bucket.entries
