"""Superimposed-coding signature file (Section 7's related work).

"Signature based techniques [Fal85] have been applied to the problem of
retrieving subsets of a given set in a large collection of sets
[Y1093].  Such techniques are based on an encoding via hashing of sets
which is subsequently maintained as a file and scanned in its entirety
to answer a query.  No indexing mechanism is provided."

This module implements that classic competitor so its behaviour can be
contrasted with the paper's filter indices:

* each set is encoded as an ``f``-bit signature by OR-ing ``w`` hashed
  bit positions per element (superimposed coding);
* a *subset* query scans every signature and keeps those containing all
  of the query signature's bits -- no false negatives, data-dependent
  false positives, and always a full sequential scan;
* a crude *similarity* screen compares bit-overlap fractions; unlike
  the min-hash embedding it carries no unbiasedness guarantee, which
  is exactly the paper's criticism ("cannot provide any form of
  guarantee on their accuracy").
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

from repro.core.minhash import stable_element_hash
from repro.obs import metrics, trace
from repro.storage.iomodel import IOCostModel

_SCREENS = metrics.counter("signature_file.screens")
_SCREEN_HITS = metrics.counter("signature_file.screen_hits")


def _element_positions(element, f: int, w: int) -> np.ndarray:
    """The ``w`` signature bit positions an element sets (stable)."""
    base = stable_element_hash(element)
    positions = np.empty(w, dtype=np.int64)
    for i in range(w):
        digest = hashlib.blake2b(
            base.to_bytes(8, "little") + i.to_bytes(2, "little"), digest_size=8
        ).digest()
        positions[i] = int.from_bytes(digest, "little") % f
    return positions


class SignatureFile:
    """A scan-only signature file over a set collection.

    Parameters
    ----------
    f:
        Signature length in bits.
    w:
        Bits set per element (the weight of superimposed coding).
    io:
        Optional shared cost model; queries charge one sequential page
        read per page of signatures scanned.
    """

    def __init__(self, f: int = 512, w: int = 4, io: IOCostModel | None = None):
        if f <= 0 or w <= 0:
            raise ValueError(f"f and w must be positive, got f={f}, w={w}")
        self.f = f
        self.w = w
        self.io = io if io is not None else IOCostModel()
        self._signatures: list[np.ndarray] = []
        self._n_words = (f + 63) // 64
        self._signature_bytes = self._n_words * 8
        self._page_size = 4096

    def encode(self, elements: Iterable) -> np.ndarray:
        """Superimposed signature of one set (packed uint64)."""
        signature = np.zeros(self._n_words, dtype=np.uint64)
        for element in elements:
            for position in _element_positions(element, self.f, self.w):
                signature[position // 64] |= np.uint64(1) << np.uint64(position % 64)
        return signature

    def insert(self, elements: Iterable) -> int:
        """Append a set's signature; returns its sid (= position)."""
        self._signatures.append(self.encode(elements))
        return len(self._signatures) - 1

    def insert_many(self, sets: Sequence[Iterable]) -> list[int]:
        """Append many sets; returns their sids in order."""
        return [self.insert(s) for s in sets]

    @property
    def n_sets(self) -> int:
        """Number of stored signatures."""
        return len(self._signatures)

    @property
    def n_pages(self) -> int:
        """Pages the signature file occupies (the per-query scan cost)."""
        per_page = max(1, self._page_size // self._signature_bytes)
        return -(-len(self._signatures) // per_page)

    def _charge_scan(self) -> None:
        self.io.read_sequential(self.n_pages)

    def subset_candidates(self, elements: Iterable) -> list[int]:
        """Sids possibly containing the query as a subset.

        Superimposed coding guarantees no false negatives: if
        ``query <= stored`` then every query bit is set in the stored
        signature.  False positives must be verified by the caller.
        """
        with trace.span("signature_subset_scan", n_pages=self.n_pages) as sp:
            query = self.encode(elements)
            self._charge_scan()
            hits = []
            for sid, signature in enumerate(self._signatures):
                if np.all((signature & query) == query):
                    hits.append(sid)
            _SCREENS.inc()
            _SCREEN_HITS.inc(len(hits))
            sp.set(candidates=len(hits))
            return hits

    def subset_candidates_batch(
        self, queries: Sequence[Iterable]
    ) -> list[list[int]]:
        """Batch :meth:`subset_candidates`: one file scan for all queries.

        The signature file is scanned once (one ``n_pages`` sequential
        charge) and every stored signature is tested against every
        query's encoded signature; per-query results are identical to
        the query loop, which would have paid the scan per query.
        """
        n = len(queries)
        with trace.span(
            "signature_subset_scan_batch", n_pages=self.n_pages, n_queries=n
        ) as sp:
            encoded = [self.encode(q) for q in queries]
            if n:
                self._charge_scan()
            hits: list[list[int]] = [[] for _ in range(n)]
            for sid, signature in enumerate(self._signatures):
                for i, query in enumerate(encoded):
                    if np.all((signature & query) == query):
                        hits[i].append(sid)
            _SCREENS.inc(n)
            _SCREEN_HITS.inc(sum(len(h) for h in hits))
            sp.set(
                candidates=sum(len(h) for h in hits),
                pages_saved=self.n_pages * max(0, n - 1),
            )
            return hits

    def similarity_screen_batch(
        self, queries: Sequence[Iterable], threshold: float
    ) -> list[list[int]]:
        """Batch :meth:`similarity_screen`: one file scan for all queries."""
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        n = len(queries)
        with trace.span(
            "signature_similarity_scan_batch",
            threshold=threshold,
            n_pages=self.n_pages,
            n_queries=n,
        ) as sp:
            encoded = [self.encode(q) for q in queries]
            if n:
                self._charge_scan()
            hits: list[list[int]] = [[] for _ in range(n)]
            for sid, signature in enumerate(self._signatures):
                for i, query in enumerate(encoded):
                    inter = int(np.bitwise_count(signature & query).sum())
                    union = int(np.bitwise_count(signature | query).sum())
                    if union == 0 or inter / union >= threshold:
                        hits[i].append(sid)
            _SCREENS.inc(n)
            _SCREEN_HITS.inc(sum(len(h) for h in hits))
            sp.set(
                candidates=sum(len(h) for h in hits),
                pages_saved=self.n_pages * max(0, n - 1),
            )
            return hits

    def similarity_screen(self, elements: Iterable, threshold: float) -> list[int]:
        """Sids whose signature bit-overlap fraction reaches ``threshold``.

        The overlap fraction ``|sig_a & sig_b| / |sig_a | sig_b|`` is a
        Jaccard-like heuristic with *no* unbiasedness guarantee --
        superimposition makes popular bit positions collide, so the
        screen can both over- and under-estimate (the accuracy critique
        of Section 7).  Always scans the whole file.
        """
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        with trace.span(
            "signature_similarity_scan",
            threshold=threshold,
            n_pages=self.n_pages,
        ) as sp:
            query = self.encode(elements)
            self._charge_scan()
            hits = []
            for sid, signature in enumerate(self._signatures):
                inter = int(np.bitwise_count(signature & query).sum())
                union = int(np.bitwise_count(signature | query).sum())
                if union == 0 or inter / union >= threshold:
                    hits.append(sid)
            _SCREENS.inc()
            _SCREEN_HITS.inc(len(hits))
            sp.set(candidates=len(hits))
            return hits
