"""End-to-end telemetry: phase timings, query events on real paths,
and the cross-backend latency-quantile identity.

The acceptance surface of the telemetry layer: every query path
populates ``result.timings``; every path records exactly one event per
user-facing call; and the ``query.sim_time`` HDR histogram -- fed with
the paper's backend-invariant simulated cost -- accumulates the *same
distribution* (identical bucket counts, hence identical p50/p90/p99/
p999) whether a workload runs sequentially, on thread workers, or on
process workers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.index import SetSimilarityIndex
from repro.data.generators import planted_clusters
from repro.exec import ParallelExecutor
from repro.obs import events, metrics
from repro.obs.hdr import HdrHistogram

PHASES = ("embed", "probe", "fetch", "verify")


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    sets = planted_clusters(
        n_clusters=5, per_cluster=7, base_size=20, universe=1200,
        mutation_rate=0.2, seed=11,
    )
    index = SetSimilarityIndex.build(
        sets, budget=36, recall_target=0.8, k=24, b=4, seed=11,
        sample_pairs=2_000,
    )
    rng = np.random.default_rng(11)
    queries = [sets[int(rng.integers(len(sets)))] for _ in range(6)]
    path = tmp_path_factory.mktemp("telemetry") / "snapdir"
    index.save_snapshot(path)
    return index, queries, path


@pytest.fixture(autouse=True)
def clean_event_log():
    events.log.clear()
    events.log.configure(sample=1.0, slow_ms=events.DEFAULT_SLOW_MS,
                         enabled=True)
    yield
    events.log.clear()


def sim_delta(run) -> dict:
    """Run a workload and return the ``query.sim_time`` state delta it
    contributed (isolated from whatever the registry held before)."""
    hist = metrics.hdr("query.sim_time")
    before = hist.state()
    run()
    return hist.delta(before)


class TestTimings:
    def test_sequential_query_populates_phases(self, workload):
        index, queries, _ = workload
        result = index.query(queries[0], 0.5, 1.0)
        assert set(result.timings) <= set(PHASES)
        assert "probe" in result.timings
        assert "verify" in result.timings
        assert all(ms >= 0.0 for ms in result.timings.values())

    def test_scan_strategy_reports_scan_phase(self, workload):
        index, queries, _ = workload
        result = index.query(queries[0], 0.5, 1.0, strategy="scan")
        assert set(result.timings) == {"scan"}

    def test_batch_populates_phases(self, workload):
        index, queries, _ = workload
        batch = index.query_batch(queries, 0.5, 1.0)
        assert "probe" in batch.timings
        assert "verify" in batch.timings

    def test_timings_do_not_affect_equality(self, workload):
        index, queries, _ = workload
        a = index.query(queries[0], 0.5, 1.0)
        b = index.query(queries[0], 0.5, 1.0)
        assert a.timings != {} and b.timings != {}
        assert a == b  # timings are compare=False by design

    def test_executor_batch_carries_stage_timings(self, workload):
        index, queries, _ = workload
        with ParallelExecutor(index.freeze(), workers=2) as ex:
            batch = ex.query_batch(queries, 0.5, 1.0)
        index.thaw()
        assert batch.timings
        assert all(ms >= 0.0 for ms in batch.timings.values())


class TestQueryEvents:
    def test_one_event_per_query_call(self, workload):
        index, queries, _ = workload
        seen0 = events.log.stats()["seen"]
        index.query(queries[0], 0.5, 1.0)
        index.query_batch(queries, 0.5, 1.0)
        assert events.log.stats()["seen"] == seen0 + 2
        batch_event = events.log.events()[-1]
        assert batch_event.kind == "query_batch"
        assert batch_event.n_queries == len(queries)
        assert batch_event.backend == "sequential"
        assert batch_event.timings

    def test_executor_batch_records_one_event(self, workload):
        index, queries, _ = workload
        seen0 = events.log.stats()["seen"]
        with ParallelExecutor(index.freeze(), workers=2) as ex:
            ex.query_batch(queries, 0.5, 1.0)
        index.thaw()
        assert events.log.stats()["seen"] == seen0 + 1
        event = events.log.events()[-1]
        assert event.backend == "thread"
        assert event.workers == 2
        assert event.n_queries == len(queries)

    def test_event_funnel_matches_result(self, workload):
        index, queries, _ = workload
        result = index.query(queries[0], 0.5, 1.0)
        event = events.log.events()[-1]
        assert event.n_candidates == result.n_candidates
        assert event.n_verified == result.n_verified
        assert event.sim_time == result.total_time


class TestCrossBackendQuantiles:
    """The acceptance criterion: identical sim-time distribution --
    bucket for bucket, hence quantile for quantile -- across the
    sequential, thread and process execution paths."""

    RANGES = [(0.5, 1.0), (0.2, 0.8), (0.0, 1.0)]

    def _run_all_backends(self, workload):
        index, queries, path = workload

        def sequential():
            for lo, hi in self.RANGES:
                index.query_batch(queries, lo, hi)

        def threaded():
            with ParallelExecutor(index.freeze(), workers=3) as ex:
                for lo, hi in self.RANGES:
                    ex.query_batch(queries, lo, hi)
            index.thaw()

        def process():
            with ParallelExecutor(path, workers=2, backend="process") as ex:
                for lo, hi in self.RANGES:
                    ex.query_batch(queries, lo, hi)

        return {
            "sequential": sim_delta(sequential),
            "thread": sim_delta(threaded),
            "process": sim_delta(process),
        }

    def test_sim_time_distribution_identical(self, workload):
        deltas = self._run_all_backends(workload)
        reference = deltas["sequential"]
        assert reference["count"] == len(self.RANGES) * len(workload[1])
        for backend in ("thread", "process"):
            assert deltas[backend]["counts"] == reference["counts"], backend
            assert deltas[backend]["zero_count"] == reference["zero_count"]
            assert deltas[backend]["count"] == reference["count"]

    def test_quantiles_identical_across_backends(self, workload):
        deltas = self._run_all_backends(workload)
        quantiles = {}
        for backend, delta in deltas.items():
            hist = HdrHistogram(backend)
            hist.apply_delta(delta)
            quantiles[backend] = [
                hist.quantile(q) for q in (0.5, 0.9, 0.99, 0.999)
            ]
        assert quantiles["thread"] == quantiles["sequential"]
        assert quantiles["process"] == quantiles["sequential"]


class TestRegistryAcrossProcesses:
    """Gauges and histograms survive the worker->parent fold (the
    historical counter-only fold silently dropped both)."""

    def test_worker_histogram_movement_reaches_parent(self, workload):
        index, queries, path = workload
        hist = metrics.hdr("query.sim_time")
        before = hist.state()
        with ParallelExecutor(path, workers=2, backend="process") as ex:
            batch = ex.query_batch(queries, 0.5, 1.0)
        delta = hist.delta(before)
        assert delta["count"] == batch.n_queries

    def test_gauges_ship_only_when_moved(self):
        reg = metrics.MetricsRegistry()
        reg.gauge("static").set(5.0)
        before = reg.registry_values()
        reg.gauge("moving").set(1.0)
        delta = metrics.registry_delta(before, reg.registry_values())
        assert delta.get("gauges") == {"moving": 1.0}

    def test_full_registry_roundtrip_through_delta(self):
        src = metrics.MetricsRegistry()
        src.counter("c").inc(4)
        src.gauge("g").set(2.5)
        src.histogram("fixed", bounds=(1, 10)).observe(3.0)
        src.hdr("lat").observe_many([1.0, 50.0])
        payload = metrics.registry_delta(
            metrics.MetricsRegistry().registry_values(), src.registry_values()
        )
        dst = metrics.MetricsRegistry()
        dst.apply_deltas(payload)
        got = dst.registry_values()
        assert got["counters"]["c"] == 4
        assert got["gauges"]["g"] == 2.5
        assert got["histograms"]["fixed"]["count"] == 1
        assert got["hdr"]["lat"]["counts"] == \
            src.registry_values()["hdr"]["lat"]["counts"]
