"""Request coalescing: many concurrent single queries -> micro-batches.

The batch path is 3-4x cheaper per query than a query loop
(BENCH_batch.json): one vectorized embedding pass, shared bucket
reads, one fetch per distinct candidate.  An always-on server can only
cash that in if it *groups* the single queries that arrive together --
the same amortize-the-fixed-cost argument SuperMinHash and b-bit
minwise hashing make for signature cost.  This module is that
grouping.

It is split so the concurrency-critical decisions are testable without
an event loop:

- :class:`CoalescerCore` -- a **synchronous** state machine.  It never
  reads a clock, sleeps, or touches a socket; every method takes
  ``now`` explicitly and returns plain data (admission verdicts,
  ready batches, the next timer deadline).  The hypothesis
  property/stateful suites drive it with simulated clocks and prove
  the invariants: exactly-once dispatch, FIFO order per key, batch
  size <= ``max_batch``, admission bounded by ``max_pending``,
  timeliness (a lone request is dispatched by its deadline whenever
  capacity is free), cancellation isolation.
- :class:`Coalescer` -- the thin asyncio wrapper: one timer armed at
  the core's ``next_deadline()``, futures per request, dispatch
  callbacks run as tasks.  All policy lives in the core.

Requests are grouped by a caller-supplied *key* (the server uses
``(low, high, strategy)``) because ``query_batch`` answers one shared
similarity range per batch; only requests with equal keys may ride
one micro-batch.

The coalescing window is tunable and adaptive: a request waits at most
``max_wait`` seconds, but under a measured arrival rate the effective
wait shrinks to roughly the time it takes ``max_batch`` requests to
arrive (EWMA of inter-arrival gaps), so sparse traffic is not taxed
the full window and dense traffic fills batches without waiting.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

#: Trailing batch sizes kept in :class:`CoalescerStats` (bounded so an
#: always-on server never grows it without limit).
STATS_BATCH_WINDOW = 4096


class OverloadedError(Exception):
    """Admission control rejected the request: pending queue is full."""


class DrainingError(Exception):
    """The coalescer is draining; no new requests are admitted."""


@dataclass
class PendingRequest:
    """One admitted, not-yet-dispatched request."""

    rid: int
    key: Any
    payload: Any
    enqueued_at: float
    deadline: float


@dataclass
class Batch:
    """One micro-batch the core decided to dispatch."""

    key: Any
    items: list[PendingRequest]

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class CoalescerStats:
    """Counters the core maintains; the server exports them."""

    submitted: int = 0
    rejected_overload: int = 0
    rejected_draining: int = 0
    cancelled: int = 0
    dispatched: int = 0
    batches: int = 0
    batch_sizes: deque = field(
        default_factory=lambda: deque(maxlen=STATS_BATCH_WINDOW)
    )


class CoalescerCore:
    """Synchronous coalescing state machine (no clock, no I/O).

    Parameters
    ----------
    max_batch:
        Hard cap on a micro-batch; reaching it triggers immediate
        dispatch (no window wait).
    max_wait:
        Upper bound (seconds) a request may sit in the pending queue
        before it forces a dispatch, capacity permitting.
    max_pending:
        Admission bound over *all* keys; submits beyond it are
        rejected with an overload verdict (explicit backpressure,
        never a silent drop).
    max_concurrent:
        Batches allowed in flight at once.  The server keeps the
        default 1: ``ParallelExecutor.query_batch`` mutates shared
        cost-model state, so batches are serialized through one
        dispatch thread and pending requests simply keep coalescing
        while a batch runs.
    adaptive:
        Shrink the effective wait toward ``interarrival_ewma *
        (max_batch - queue_len)`` so the window tracks the arrival
        rate.  ``False`` pins every deadline at ``enqueue +
        max_wait`` (the property suites use this for exact timing
        assertions).
    """

    def __init__(
        self,
        *,
        max_batch: int = 64,
        max_wait: float = 0.002,
        max_pending: int = 1024,
        max_concurrent: int = 1,
        adaptive: bool = True,
        ewma_alpha: float = 0.2,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.max_pending = max_pending
        self.max_concurrent = max_concurrent
        self.adaptive = adaptive
        self.ewma_alpha = ewma_alpha
        self.stats = CoalescerStats()
        self._queues: dict[Any, deque[PendingRequest]] = {}
        self._n_pending = 0
        self._in_flight = 0
        self._draining = False
        self._tau: float | None = None  # EWMA inter-arrival gap
        self._last_arrival: float | None = None

    # -- inspection --------------------------------------------------------

    @property
    def n_pending(self) -> int:
        return self._n_pending

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def interarrival_ewma(self) -> float | None:
        return self._tau

    def next_deadline(self) -> float | None:
        """Earliest pending deadline, or None when nothing waits."""
        heads = [q[0].deadline for q in self._queues.values() if q]
        return min(heads) if heads else None

    # -- transitions -------------------------------------------------------

    def effective_wait(self, queue_len: int) -> float:
        """The adaptive window for a request joining a queue of
        ``queue_len`` (itself included): long enough for the rest of a
        ``max_batch`` to arrive at the measured rate, never beyond
        ``max_wait``."""
        if not self.adaptive or self._tau is None:
            return self.max_wait
        expected_fill = self._tau * max(0, self.max_batch - queue_len)
        return min(self.max_wait, expected_fill)

    def submit(self, rid: int, key: Any, payload: Any, now: float) -> str:
        """Admit one request.  Returns ``"accepted"``, ``"overloaded"``
        or ``"draining"``; only ``"accepted"`` changes state beyond the
        arrival-rate estimate."""
        if self._last_arrival is not None:
            gap = max(0.0, now - self._last_arrival)
            if self._tau is None:
                self._tau = gap
            else:
                self._tau += self.ewma_alpha * (gap - self._tau)
        self._last_arrival = now
        if self._draining:
            self.stats.rejected_draining += 1
            return "draining"
        if self._n_pending >= self.max_pending:
            self.stats.rejected_overload += 1
            return "overloaded"
        queue = self._queues.setdefault(key, deque())
        deadline = now + self.effective_wait(len(queue) + 1)
        queue.append(PendingRequest(rid, key, payload, now, deadline))
        self._n_pending += 1
        self.stats.submitted += 1
        return "accepted"

    def cancel(self, rid: int, key: Any) -> bool:
        """Remove a still-pending request (client went away).  Returns
        False when the request was already dispatched (or unknown);
        other requests are never affected either way."""
        queue = self._queues.get(key)
        if not queue:
            return False
        for i, item in enumerate(queue):
            if item.rid == rid:
                del queue[i]
                self._n_pending -= 1
                self.stats.cancelled += 1
                return True
        return False

    def start_drain(self) -> None:
        """Stop admitting; pending work stays dispatchable via
        ``poll(..., force=True)``."""
        self._draining = True

    def poll(self, now: float, force: bool = False) -> list[Batch]:
        """Pop every batch that should dispatch at ``now``.

        A key's head batch is *ready* when the queue holds
        ``max_batch`` requests or its oldest deadline has passed (or
        ``force``/draining).  Ready batches dispatch oldest-deadline
        first while in-flight capacity lasts; with ``force`` capacity
        is ignored (drain path).  The caller owes one
        :meth:`batch_done` per returned batch.
        """
        batches: list[Batch] = []
        while force or self._in_flight + len(batches) < self.max_concurrent:
            key = self._pick_ready_key(now, force)
            if key is None:
                break
            queue = self._queues[key]
            take = min(self.max_batch, len(queue))
            items = [queue.popleft() for _ in range(take)]
            if not queue:
                del self._queues[key]
            self._n_pending -= take
            batches.append(Batch(key, items))
            self.stats.batches += 1
            self.stats.dispatched += take
            self.stats.batch_sizes.append(take)
        self._in_flight += len(batches)
        return batches

    def batch_done(self) -> None:
        """Mark one dispatched batch finished, freeing capacity."""
        assert self._in_flight > 0, "batch_done without a batch in flight"
        self._in_flight -= 1

    def _pick_ready_key(self, now: float, force: bool) -> Any | None:
        best_key, best_deadline = None, None
        for key, queue in self._queues.items():
            if not queue:
                continue
            ready = force or self._draining or len(queue) >= self.max_batch
            head = queue[0].deadline
            if not ready and head > now:
                continue
            if best_deadline is None or head < best_deadline:
                best_key, best_deadline = key, head
        return best_key


class Coalescer:
    """Asyncio front end over :class:`CoalescerCore`.

    ``dispatch`` is an async callable ``(key, payloads) -> results``
    returning one result per payload, in order; the server's dispatch
    runs ``ParallelExecutor.query_batch`` on a dedicated thread so the
    event loop never blocks on query work.  :meth:`submit` resolves
    with the per-request result (plus batch metadata via the
    ``on_batch`` hook), raises :class:`OverloadedError` /
    :class:`DrainingError` on admission failure, and tolerates caller
    cancellation at any point without disturbing other requests.
    """

    def __init__(
        self,
        dispatch: Callable,
        *,
        max_batch: int = 64,
        max_wait: float = 0.002,
        max_pending: int = 1024,
        max_concurrent: int = 1,
        adaptive: bool = True,
        on_batch: Callable | None = None,
    ):
        self.core = CoalescerCore(
            max_batch=max_batch,
            max_wait=max_wait,
            max_pending=max_pending,
            max_concurrent=max_concurrent,
            adaptive=adaptive,
        )
        self._dispatch = dispatch
        self._on_batch = on_batch
        self._futures: dict[int, asyncio.Future] = {}
        self._rids = itertools.count()
        self._timer: asyncio.TimerHandle | None = None
        self._timer_deadline: float | None = None
        self._tasks: set[asyncio.Task] = set()
        self._drained: asyncio.Event | None = None

    # -- public API --------------------------------------------------------

    async def submit(self, key: Any, payload: Any) -> Any:
        """Coalesce one request; await its answer."""
        loop = asyncio.get_running_loop()
        rid = next(self._rids)
        verdict = self.core.submit(rid, key, payload, loop.time())
        if verdict == "overloaded":
            raise OverloadedError(
                f"pending queue full ({self.core.max_pending} requests)"
            )
        if verdict == "draining":
            raise DrainingError("server is draining")
        future: asyncio.Future = loop.create_future()
        self._futures[rid] = future
        self._pump()
        try:
            return await future
        except asyncio.CancelledError:
            # Still pending -> withdraw silently; already dispatched ->
            # the batch completes for everyone else and our slot's
            # result is discarded by _finish_batch.
            self.core.cancel(rid, key)
            self._futures.pop(rid, None)
            self._arm_timer()
            raise

    async def drain(self) -> None:
        """Refuse new work, dispatch everything pending, await all
        in-flight batches."""
        self.core.start_drain()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        loop = asyncio.get_running_loop()
        for batch in self.core.poll(loop.time(), force=True):
            self._start_batch(batch)
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    @property
    def stats(self) -> CoalescerStats:
        return self.core.stats

    # -- pump --------------------------------------------------------------

    def _pump(self) -> None:
        """Dispatch whatever the core says is ready; re-arm the timer."""
        loop = asyncio.get_running_loop()
        for batch in self.core.poll(loop.time()):
            self._start_batch(batch)
        self._arm_timer()

    def _arm_timer(self) -> None:
        deadline = self.core.next_deadline()
        if deadline == self._timer_deadline:
            return
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._timer_deadline = deadline
        if deadline is not None:
            loop = asyncio.get_running_loop()
            self._timer = loop.call_at(deadline, self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        self._timer_deadline = None
        self._pump()

    def _start_batch(self, batch: Batch) -> None:
        # The hook fires at dispatch *start* so queue-wait measurements
        # exclude the batch's own execution time.
        if self._on_batch is not None:
            self._on_batch(batch)
        task = asyncio.ensure_future(self._finish_batch(batch))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _finish_batch(self, batch: Batch) -> None:
        try:
            results = await self._dispatch(
                batch.key, [item.payload for item in batch.items]
            )
            if len(results) != len(batch.items):
                raise RuntimeError(
                    f"dispatch returned {len(results)} results "
                    f"for a batch of {len(batch.items)}"
                )
            for item, result in zip(batch.items, results):
                future = self._futures.pop(item.rid, None)
                if future is not None and not future.done():
                    future.set_result(result)
        except Exception as exc:  # noqa: BLE001 - forwarded per request
            for item in batch.items:
                future = self._futures.pop(item.rid, None)
                if future is not None and not future.done():
                    future.set_exception(exc)
        finally:
            self.core.batch_done()
            self._pump()
