"""Hamming distance and similarity on packed bit vectors.

Definition 3 of the paper: the Hamming distance of two binary vectors
is the number of positions in which they differ.  Definition 4 defines
Hamming similarity as the fraction of positions in which they agree:

    S_H(h1, h2) = 1 - d_H(h1, h2) / t

for vectors of dimension ``t``.  The filter indices are described in
terms of similarity, so both forms are provided.

The ``slot_distance*`` family counts differing *β-bit slots* instead
of differing bits, for vectors packed by the b-bit minwise codec
(:class:`repro.core.codec.BBitPacker`): fold each slot's XOR down to
its low bit with ``x |= x >> shift`` halvings, mask to one bit per
slot, popcount.  ``β`` must divide 64 (slots never straddle words) and
padding slots must be zero in both operands (they cancel under XOR) --
exactly the layout guarantees the packer and :func:`pack_bits` make.
"""

from __future__ import annotations

import numpy as np


#: Target bytes of XOR intermediate per chunk in the batched kernels
#: (tests shrink it to exercise chunk boundaries on small inputs).
_CHUNK_BYTES = 8 << 20


def _popcount(words: np.ndarray) -> np.ndarray:
    """Per-word population count (numpy >= 2.0 provides bitwise_count)."""
    return np.bitwise_count(words)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Hamming distance between two packed vectors of equal width."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return int(_popcount(a ^ b).sum())


def hamming_distance_many(matrix: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Hamming distances between each row of a packed matrix and a query."""
    matrix = np.asarray(matrix, dtype=np.uint64)
    query = np.asarray(query, dtype=np.uint64)
    if matrix.ndim != 2 or query.ndim != 1 or matrix.shape[1] != query.shape[0]:
        raise ValueError(
            f"expected (N, W) matrix and (W,) query, got {matrix.shape} and {query.shape}"
        )
    return _popcount(matrix ^ query[np.newaxis, :]).sum(axis=1).astype(np.int64)


def hamming_distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Hamming distances between two packed matrices.

    For an ``(A, W)`` matrix and a ``(B, W)`` matrix the result is the
    ``(A, B)`` int64 matrix of all pair distances, computed with a
    single broadcast XOR + popcount kernel -- the batch counterpart of
    :func:`hamming_distance_many`.  Large products are processed in row
    chunks to bound the ``A * B * W``-word intermediate.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError(
            f"expected (A, W) and (B, W) matrices, got {a.shape} and {b.shape}"
        )
    out = np.empty((a.shape[0], b.shape[0]), dtype=np.int64)
    # ~64 MiB of uint64 intermediate per chunk.
    chunk = max(1, _CHUNK_BYTES // max(1, b.shape[0] * b.shape[1]))
    for lo in range(0, a.shape[0], chunk):
        hi = min(lo + chunk, a.shape[0])
        xored = a[lo:hi, np.newaxis, :] ^ b[np.newaxis, :, :]
        out[lo:hi] = _popcount(xored).sum(axis=2)
    return out


def hamming_distance_pairs(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-aligned Hamming distances of two packed ``(N, W)`` matrices.

    ``result[i] == hamming_distance(a[i], b[i])`` -- the kernel for a
    pre-gathered pair list (each row of ``a`` already matched with its
    row of ``b``), computed with one chunked XOR + popcount pass.
    Complements :func:`hamming_distance_matrix`, which produces all
    ``A x B`` combinations.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    if a.ndim != 2 or a.shape != b.shape:
        raise ValueError(
            f"expected equal (N, W) matrices, got {a.shape} and {b.shape}"
        )
    out = np.empty(a.shape[0], dtype=np.int64)
    chunk = max(1, _CHUNK_BYTES // max(1, a.shape[1]))
    for lo in range(0, a.shape[0], chunk):
        hi = min(lo + chunk, a.shape[0])
        out[lo:hi] = _popcount(a[lo:hi] ^ b[lo:hi]).sum(axis=1)
    return out


def _slot_mask(slot_bits: int) -> np.uint64:
    """Word mask selecting bit 0 of every ``slot_bits``-wide slot."""
    if slot_bits < 1 or 64 % slot_bits != 0:
        raise ValueError(f"slot_bits must divide 64, got {slot_bits}")
    return np.uint64(((1 << 64) - 1) // ((1 << slot_bits) - 1))


def _fold_slots(xored: np.ndarray, slot_bits: int) -> np.ndarray:
    """OR-fold each slot's XOR onto its low bit and mask.

    After folding, bit ``i * slot_bits`` of each word is 1 iff slot
    ``i`` differed in *any* of its ``slot_bits`` bits; a popcount then
    counts differing slots.  For ``slot_bits == 1`` this is the
    identity and slot distance degenerates to Hamming distance.
    """
    shift = 1
    while shift < slot_bits:
        xored = xored | (xored >> np.uint64(shift))
        shift <<= 1
    return xored & _slot_mask(slot_bits)


def slot_distance(a: np.ndarray, b: np.ndarray, slot_bits: int) -> int:
    """Number of differing ``slot_bits``-wide slots of two packed vectors."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return int(_popcount(_fold_slots(a ^ b, slot_bits)).sum())


def slot_distance_many(
    matrix: np.ndarray, query: np.ndarray, slot_bits: int
) -> np.ndarray:
    """Differing-slot counts between each row of a matrix and a query."""
    matrix = np.asarray(matrix, dtype=np.uint64)
    query = np.asarray(query, dtype=np.uint64)
    if matrix.ndim != 2 or query.ndim != 1 or matrix.shape[1] != query.shape[0]:
        raise ValueError(
            f"expected (N, W) matrix and (W,) query, got {matrix.shape} and {query.shape}"
        )
    folded = _fold_slots(matrix ^ query[np.newaxis, :], slot_bits)
    return _popcount(folded).sum(axis=1).astype(np.int64)


def slot_distance_matrix(
    a: np.ndarray, b: np.ndarray, slot_bits: int
) -> np.ndarray:
    """Pairwise differing-slot counts, ``(A, B)``, of two packed matrices.

    Same chunking discipline as :func:`hamming_distance_matrix`.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError(
            f"expected (A, W) and (B, W) matrices, got {a.shape} and {b.shape}"
        )
    out = np.empty((a.shape[0], b.shape[0]), dtype=np.int64)
    chunk = max(1, _CHUNK_BYTES // max(1, b.shape[0] * b.shape[1]))
    for lo in range(0, a.shape[0], chunk):
        hi = min(lo + chunk, a.shape[0])
        xored = a[lo:hi, np.newaxis, :] ^ b[np.newaxis, :, :]
        out[lo:hi] = _popcount(_fold_slots(xored, slot_bits)).sum(axis=2)
    return out


def slot_distance_pairs(
    a: np.ndarray, b: np.ndarray, slot_bits: int
) -> np.ndarray:
    """Row-aligned differing-slot counts of two packed ``(N, W)`` matrices.

    ``result[i] == slot_distance(a[i], b[i], slot_bits)``; the b-bit
    codec's counterpart of :func:`hamming_distance_pairs`.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    if a.ndim != 2 or a.shape != b.shape:
        raise ValueError(
            f"expected equal (N, W) matrices, got {a.shape} and {b.shape}"
        )
    out = np.empty(a.shape[0], dtype=np.int64)
    chunk = max(1, _CHUNK_BYTES // max(1, a.shape[1]))
    for lo in range(0, a.shape[0], chunk):
        hi = min(lo + chunk, a.shape[0])
        folded = _fold_slots(a[lo:hi] ^ b[lo:hi], slot_bits)
        out[lo:hi] = _popcount(folded).sum(axis=1)
    return out


def hamming_similarity(a: np.ndarray, b: np.ndarray, n_bits: int) -> float:
    """Hamming similarity (Definition 4) of two packed ``n_bits`` vectors."""
    if n_bits <= 0:
        raise ValueError(f"n_bits must be positive, got {n_bits}")
    return 1.0 - hamming_distance(a, b) / n_bits


def hamming_similarity_many(
    matrix: np.ndarray, query: np.ndarray, n_bits: int
) -> np.ndarray:
    """Hamming similarity of each row of a packed matrix to a query."""
    if n_bits <= 0:
        raise ValueError(f"n_bits must be positive, got {n_bits}")
    return 1.0 - hamming_distance_many(matrix, query) / n_bits


def hamming_similarity_matrix(
    a: np.ndarray, b: np.ndarray, n_bits: int
) -> np.ndarray:
    """Pairwise Hamming similarities, ``(A, B)``, of two packed matrices."""
    if n_bits <= 0:
        raise ValueError(f"n_bits must be positive, got {n_bits}")
    return 1.0 - hamming_distance_matrix(a, b) / n_bits
