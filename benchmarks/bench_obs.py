"""Telemetry overhead and export-format smoke (BENCH-OBS).

The production question for an always-on telemetry layer: what does it
cost?  This bench runs the same query workload twice -- once with the
event/histogram layer enabled (the default) and once with it switched
off via ``events.set_enabled(False)`` -- in interleaved repeats, and
reports the wall-clock overhead of the enabled path.  The acceptance
gate (full mode only; smoke checks the machinery, not the numbers) is
**< 3% overhead**: one ring-buffer append, a handful of sparse-dict
histogram increments and a sampling draw per query must stay in the
noise next to embedding, probing and exact verification.

The bench also exercises every exporter end to end, writing the three
artifacts the CI ``obs-smoke`` job validates with
``benchmarks/check_obs_formats.py``:

* ``obs_metrics.prom`` -- Prometheus text exposition of the registry,
* ``obs_events.jsonl`` -- the query-event log (``repro top`` input),
* ``obs_trace.json``  -- a Chrome trace of one traced query.

Run standalone (used by CI in smoke mode)::

    PYTHONPATH=src python benchmarks/bench_obs.py [--smoke] [--out PATH]
        [--artifacts DIR]

or through pytest-benchmark alongside the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_obs.json"

RANGES = [(0.5, 1.0), (0.2, 0.8)]


def build_workload(n_sets: int, budget: int, k: int, seed: int):
    from repro.core.index import SetSimilarityIndex
    from repro.data.generators import planted_clusters

    per_cluster = 20
    sets = planted_clusters(
        n_clusters=max(1, n_sets // per_cluster),
        per_cluster=per_cluster,
        base_size=40,
        universe=20_000,
        mutation_rate=0.15,
        seed=seed,
    )
    index = SetSimilarityIndex.build(
        sets, budget=budget, recall_target=0.85, k=k, b=6, seed=seed,
        sample_pairs=20_000,
    )
    return sets, index


def _workload_pass(index, queries, batch_size: int) -> None:
    """One full pass: a single-query loop and a batched run per range."""
    for lo, hi in RANGES:
        for q in queries:
            index.query(q, lo, hi)
        for start in range(0, len(queries), batch_size):
            index.query_batch(queries[start:start + batch_size], lo, hi)


def run_bench(
    n_sets: int = 2000,
    n_queries: int = 96,
    batch_size: int = 32,
    budget: int = 160,
    k: int = 64,
    seed: int = 11,
    repeats: int = 5,
) -> dict:
    """Measure telemetry-on vs telemetry-off wall clock; return payload."""
    from repro.obs import events

    sets, index = build_workload(n_sets, budget, k, seed)
    queries = [sets[i % len(sets)] for i in range(n_queries)]

    # Warm both paths (JIT-free, but caches, allocators and the lazy
    # per-thread metric shards all settle on the first pass).
    _workload_pass(index, queries, batch_size)

    on_secs: list[float] = []
    off_secs: list[float] = []
    try:
        # Interleave ON/OFF repeats so drift (thermal, page cache)
        # hits both modes equally; score each mode by its best repeat.
        for _ in range(repeats):
            events.set_enabled(True)
            t0 = time.perf_counter()
            _workload_pass(index, queries, batch_size)
            on_secs.append(time.perf_counter() - t0)
            events.set_enabled(False)
            t0 = time.perf_counter()
            _workload_pass(index, queries, batch_size)
            off_secs.append(time.perf_counter() - t0)
    finally:
        events.set_enabled(True)

    on_s, off_s = min(on_secs), min(off_secs)
    overhead_pct = (on_s - off_s) / off_s * 100.0
    queries_per_pass = len(RANGES) * (n_queries + -(-n_queries // batch_size))
    return {
        "experiment": "BENCH-OBS",
        "workload": {
            "generator": "planted_clusters",
            "n_sets": n_sets,
            "n_queries": n_queries,
            "batch_size": batch_size,
            "budget": budget,
            "k": k,
            "seed": seed,
            "ranges": RANGES,
            "repeats": repeats,
        },
        "telemetry_on_seconds": round(on_s, 4),
        "telemetry_off_seconds": round(off_s, 4),
        "overhead_pct": round(overhead_pct, 2),
        "on_qps": round(queries_per_pass / on_s, 1),
        "off_qps": round(queries_per_pass / off_s, 1),
        "event_stats": events.log.stats(),
        "metric_note": (
            "overhead_pct = (best-of-N wall with events+histograms "
            "recording) vs (events.set_enabled(False)); the <3% gate "
            "applies in full mode only"
        ),
    }


def write_artifacts(artifacts_dir: Path, index=None, queries=None) -> dict:
    """Export all three telemetry formats; returns {kind: path}.

    Uses whatever the registry/event log accumulated (the bench run),
    plus one explicitly traced query for the Chrome trace artifact.
    """
    from repro.obs import events, export

    artifacts_dir.mkdir(parents=True, exist_ok=True)
    paths = {
        "prometheus": artifacts_dir / "obs_metrics.prom",
        "events": artifacts_dir / "obs_events.jsonl",
        "trace": artifacts_dir / "obs_trace.json",
    }
    paths["prometheus"].write_text(export.prometheus_text())
    events.log.export_jsonl(paths["events"], which="all")
    if index is not None and queries:
        result = index.query(queries[0], *RANGES[0], explain=True)
        export.write_chrome_trace(result.trace, paths["trace"])
    return {kind: str(path) for kind, path in paths.items()}


def format_table(payload: dict) -> str:
    stats = payload["event_stats"]
    return "\n".join([
        f"{'mode':<16}{'seconds':>10}{'qps':>10}",
        "-" * 36,
        f"{'telemetry on':<16}{payload['telemetry_on_seconds']:>10}"
        f"{payload['on_qps']:>10}",
        f"{'telemetry off':<16}{payload['telemetry_off_seconds']:>10}"
        f"{payload['off_qps']:>10}",
        f"overhead: {payload['overhead_pct']}%",
        f"events: seen={stats['seen']} kept={stats['kept']} "
        f"slow={stats['slow']}",
    ])


def check(payload: dict, smoke: bool = False) -> list[str]:
    """The bench's own acceptance gates; returns failure messages."""
    failures = []
    if payload["event_stats"]["seen"] == 0:
        failures.append("telemetry-on pass recorded no query events")
    # Wall-clock gates only bind at full scale: a smoke workload is
    # small enough that scheduler noise swamps a few percent.
    if not smoke and payload["overhead_pct"] >= 3.0:
        failures.append(
            f"telemetry overhead {payload['overhead_pct']}% >= 3%"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workload for CI: checks the machinery, not the numbers",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--artifacts", type=Path, default=None,
        help="directory for the Prometheus/JSONL/Chrome-trace exports "
             "(validated by check_obs_formats.py); omit to skip",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        kwargs = dict(
            n_sets=400, n_queries=32, batch_size=16, budget=80, k=32,
            repeats=2,
        )
    else:
        kwargs = {}
    payload = run_bench(**kwargs)
    if args.artifacts is not None:
        sets, index = build_workload(
            kwargs.get("n_sets", 400), kwargs.get("budget", 80),
            kwargs.get("k", 32), seed=11,
        )
        payload["artifacts"] = write_artifacts(
            args.artifacts, index=index, queries=[sets[0]]
        )
    if args.smoke:
        payload["smoke"] = True
    print(format_table(payload))
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    failures = check(payload, smoke=args.smoke)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def test_obs_overhead(benchmark, scale, emit, emit_json):
    """pytest-benchmark entry: one telemetry-on workload pass."""
    n = min(scale.n_sets, 1000)
    sets, index = build_workload(n, budget=120, k=scale.k, seed=11)
    queries = [sets[i % len(sets)] for i in range(32)]
    benchmark(_workload_pass, index, queries, 16)
    payload = run_bench(
        n_sets=n, n_queries=48, batch_size=16, k=scale.k, repeats=2,
    )
    emit("BENCH_obs", format_table(payload))
    emit_json("BENCH_obs", payload)


if __name__ == "__main__":
    raise SystemExit(main())
