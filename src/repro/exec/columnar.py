"""Columnar exact-Jaccard kernels over sorted stable-hash arrays.

Exact verification dominates query CPU once the filters have done
their job: every (query, candidate) pair needs ``|A & B| / |A | B|``
on the *actual* sets.  Doing that with Python ``frozenset``
intersections costs an interpreter round-trip per pair.  These kernels
instead represent every set as a **sorted array of 64-bit stable
element hashes**; a whole candidate list is verified with one
``searchsorted`` over the concatenated (CSR) hash arrays.

Correctness: Jaccard only consumes element *identity*, so any
injective mapping of elements preserves it.  The mapping here is an
8-byte BLAKE2b of a type-tagged repr -- collisions between distinct
elements are astronomically rare (~2^-64 per pair), and the one
observable failure mode that is cheap to detect -- two distinct
elements of the *same* set colliding, which would corrupt that set's
array length -- is detected at hash time (:func:`hash_set` returns a
``collided`` flag) so callers can fall back to exact ``frozenset``
verification for the affected set.

Bit-identity with the scalar path: ``intersection / union`` on Python
ints and on int64 numpy arrays both perform correctly-rounded IEEE-754
double division for operands below 2**53, so the produced similarity
floats are identical to :func:`repro.core.similarity.jaccard`.
"""

from __future__ import annotations

import hashlib

import numpy as np


#: Memo over (type, element) -> hash.  Keyed by type *and* value so a
#: hit and a miss always produce the same digest (exotic numeric types
#: outside the builtin canonicalization below must not depend on what
#: happens to be cached).  Cleared wholesale at the bound; reads and
#: writes are GIL-atomic, so worker threads at worst recompute.
_MEMO: dict = {}
_MEMO_MAX = 1 << 20


def _canonical(element):
    """Fold builtin numerics that compare equal onto one value.

    Set semantics identify ``1 == 1.0 == True == 1+0j`` as a single
    element, so equal numbers must map to equal hashes (mirroring how
    Python gives them equal ``hash()``).  Non-builtin numerics
    (``Decimal``, ``Fraction``) are hashed by their own repr -- don't
    mix them cross-type with builtins in one collection.
    """
    if isinstance(element, bool):
        return int(element)
    if isinstance(element, complex) and element.imag == 0:
        element = element.real
    if isinstance(element, float) and element.is_integer():
        return int(element)
    return element


#: Candidate-list length below which the kernels lose to a plain
#: Python loop: the pipeline costs ~15 fixed-overhead numpy calls per
#: query, while exact per-pair Jaccard on already-fetched frozensets
#: is ~1-2us.  Callers fall back to the exact loop at or under this
#: size -- answers and accounting are identical either way.
SMALL_VERIFY_CUTOFF = 24


def element_hash(element) -> int:
    """Stable (process-independent) 64-bit hash of one set element.

    The digest input is type-tagged so ``1`` and ``"1"`` -- distinct
    set elements -- map to distinct hashes, while builtin numerics
    that *are* the same set element (``1``, ``1.0``, ``True``) map to
    the same hash (see :func:`_canonical`).
    """
    key = (type(element), element)
    try:
        got = _MEMO.get(key)
    except TypeError:  # unhashable per-instance subclasses: no memo
        got, key = None, None
    if got is not None:
        return got
    element = _canonical(element)
    tag = "num" if isinstance(element, (int, float, complex)) else type(element).__name__
    data = f"{tag}\x00{element!r}".encode("utf-8", "surrogatepass")
    value = int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "little"
    )
    if key is not None:
        if len(_MEMO) >= _MEMO_MAX:
            _MEMO.clear()
        _MEMO[key] = value
    return value


def hash_set(elements) -> tuple[np.ndarray, bool]:
    """Sorted uint64 hash array of a set, plus an intra-set collision flag.

    ``collided=True`` means two *distinct* elements of this set share a
    hash; its array then under-counts the set and the caller must use
    exact verification for any pair involving it.
    """
    n = len(elements)
    arr = np.fromiter(
        (element_hash(e) for e in elements), dtype=np.uint64, count=n
    )
    arr.sort()
    collided = bool(n > 1 and np.any(arr[1:] == arr[:-1]))
    return arr, collided


def build_csr(arrays: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate per-set hash arrays into ``(indptr, data)`` CSR form.

    ``data[indptr[i]:indptr[i+1]]`` is row ``i``'s sorted hash array.
    """
    indptr = np.zeros(len(arrays) + 1, dtype=np.int64)
    if arrays:
        np.cumsum([len(a) for a in arrays], out=indptr[1:])
        data = (
            np.concatenate(arrays)
            if indptr[-1]
            else np.empty(0, dtype=np.uint64)
        )
    else:
        data = np.empty(0, dtype=np.uint64)
    return indptr, data


def gather_csr(
    indptr: np.ndarray, data: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sub-CSR of the given rows, in the given order, without a Python loop.

    The classic repeat/arange gather: absolute element indices are the
    repeated row starts plus each element's offset within its row.
    """
    rows = np.asarray(rows, dtype=np.int64)
    lens = indptr[rows + 1] - indptr[rows]
    sub_indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lens, out=sub_indptr[1:])
    total = int(sub_indptr[-1])
    if total == 0:
        return sub_indptr, np.empty(0, dtype=data.dtype)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        sub_indptr[:-1], lens
    )
    sub_data = data[np.repeat(indptr[rows], lens) + offsets]
    return sub_indptr, sub_data


def intersect_counts(
    query: np.ndarray, indptr: np.ndarray, data: np.ndarray
) -> np.ndarray:
    """``|row_i & query|`` for every CSR row, as an int64 array.

    ``query`` must be sorted and duplicate-free (a :func:`hash_set`
    array without collisions).  One vectorized ``searchsorted`` +
    cumulative-sum pass serves all rows; empty rows correctly count 0
    (which ``np.add.reduceat`` would get wrong).
    """
    n_rows = len(indptr) - 1
    if len(query) == 0 or len(data) == 0:
        return np.zeros(n_rows, dtype=np.int64)
    pos = np.searchsorted(query, data)
    found = (pos < len(query)) & (
        query[np.minimum(pos, len(query) - 1)] == data
    )
    cs = np.zeros(len(data) + 1, dtype=np.int64)
    np.cumsum(found, out=cs[1:])
    return cs[indptr[1:]] - cs[indptr[:-1]]


def in_range_answers(
    cand_list, values, sigma_low: float, sigma_high: float
) -> list[tuple[int, float]]:
    """Filter (sid, similarity) pairs to the range, sorted best-first
    (sid ties ascending) -- the order every verification path produces."""
    answers = [
        (sid, float(value))
        for sid, value in zip(cand_list, values)
        if sigma_low <= value <= sigma_high
    ]
    answers.sort(key=lambda pair: (-pair[1], pair[0]))
    return answers


def jaccard_values(
    query_len: int, sizes: np.ndarray, inter: np.ndarray
) -> np.ndarray:
    """Exact Jaccard of the query against each candidate, vectorized.

    ``sizes[i]`` is candidate ``i``'s cardinality and ``inter[i]`` its
    intersection count with the query.  Matches
    :func:`repro.core.similarity.jaccard` bit for bit, including the
    empty-vs-empty convention (similarity 1).
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    inter = np.asarray(inter, dtype=np.int64)
    union = sizes + np.int64(query_len) - inter
    values = np.ones(len(sizes), dtype=np.float64)
    nonempty = union > 0
    values[nonempty] = inter[nonempty] / union[nonempty]
    return values
