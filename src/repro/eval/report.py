"""Plain-text table formatting for experiment output.

The paper reports its results as bar charts; we print the underlying
rows (one per result-size bucket) so the benchmark harness can embed
them in its output and EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

from typing import Sequence


def format_cell(value) -> str:
    """Render one value: floats to 3 decimals, large floats with commas."""
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:,.0f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Align a header row and data rows into a fixed-width text table."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
