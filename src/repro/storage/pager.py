"""Page allocation and access accounting.

Pages are the unit of I/O in the simulated storage engine.  A
:class:`Page` holds a bounded number of fixed-size slots; capacity in
slots is derived from a byte budget so that, e.g., a 4 KiB page holds
512 eight-byte set elements or 256 sixteen-byte (key-fingerprint, sid)
hash entries -- mirroring the paper's ``sid_count`` bucket capacity.

The :class:`PageManager` hands out pages and routes every read through
the shared :class:`~repro.storage.iomodel.IOCostModel` so that callers
cannot touch a page without it being accounted.

An optional LRU buffer pool (``cache_pages > 0``) absorbs repeated
reads: a hit costs nothing, a miss is charged and cached.  The default
is no cache -- the paper's cost analysis charges every bucket access --
but the pool lets experiments quantify how much a warm buffer changes
the scan/index trade-off.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.obs import metrics
from repro.storage.iomodel import IOCostModel

#: Default page size in bytes (a common DBMS page size).
DEFAULT_PAGE_SIZE = 4096

# Process-wide buffer-pool instruments (surfaced by `repro stats`, the
# metrics snapshot and the Prometheus exporter); the per-instance
# attributes below track one pager's own history and are what
# `cache_hit_ratio` reads.
_CACHE_HITS = metrics.counter("pager.cache_hits")
_CACHE_MISSES = metrics.counter("pager.cache_misses")
# Point samples of the most recently active pager: pool occupancy and
# hit rate as a scrapable gauge pair (`repro top`'s hit-rate panel).
_CACHE_ENTRIES = metrics.gauge("pager.cache_entries")
_CACHE_HIT_RATIO = metrics.gauge("pager.cache_hit_ratio")


class Page:
    """A fixed-capacity container of record slots."""

    __slots__ = ("page_id", "capacity", "slots")

    def __init__(self, page_id: int, capacity: int):
        if capacity <= 0:
            raise ValueError(f"page capacity must be positive, got {capacity}")
        self.page_id = page_id
        self.capacity = capacity
        self.slots: list[Any] = []

    @property
    def is_full(self) -> bool:
        """Whether every slot is occupied."""
        return len(self.slots) >= self.capacity

    def append(self, record: Any) -> int:
        """Store a record, returning its slot number."""
        if self.is_full:
            raise ValueError(f"page {self.page_id} is full")
        self.slots.append(record)
        return len(self.slots) - 1

    def __len__(self) -> int:
        return len(self.slots)


class PageManager:
    """Allocates pages and accounts their accesses.

    Parameters
    ----------
    io:
        The shared cost model.  Several components (filter indices, the
        set store, the scan baseline) typically share one ``PageManager``
        so that a query's total cost accumulates in one place.
    page_size:
        Page size in bytes, used by :meth:`capacity_for` to derive slot
        counts from record sizes.
    cache_pages:
        Capacity of the LRU buffer pool in pages; 0 (default) disables
        caching so every read is charged.
    """

    def __init__(
        self,
        io: IOCostModel | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_pages: int = 0,
    ):
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        if cache_pages < 0:
            raise ValueError(f"cache_pages must be non-negative, got {cache_pages}")
        self.io = io if io is not None else IOCostModel()
        self.page_size = page_size
        self.cache_pages = cache_pages
        self._cache: OrderedDict[int, None] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self._pages: dict[int, Page] = {}
        self._next_id = 0

    def capacity_for(self, record_bytes: int) -> int:
        """Slots per page for records of ``record_bytes`` bytes."""
        if record_bytes <= 0:
            raise ValueError(f"record_bytes must be positive, got {record_bytes}")
        return max(1, self.page_size // record_bytes)

    def allocate(self, capacity: int) -> Page:
        """Create a new page with room for ``capacity`` slots."""
        page = Page(self._next_id, capacity)
        self._pages[self._next_id] = page
        self._next_id += 1
        self.io.write()
        return page

    def read(self, page_id: int, sequential: bool = False) -> Page:
        """Fetch a page, charging one random (default) or sequential read.

        With a buffer pool configured, a cached page costs nothing and
        is refreshed in LRU order.
        """
        page = self._pages.get(page_id)
        if page is None:
            raise KeyError(f"no such page: {page_id}")
        if self.cache_pages:
            if page_id in self._cache:
                self._cache.move_to_end(page_id)
                self.cache_hits += 1
                _CACHE_HITS.inc()
                self.publish_gauges()
                return page
            self.cache_misses += 1
            _CACHE_MISSES.inc()
            self._cache[page_id] = None
            if len(self._cache) > self.cache_pages:
                self._cache.popitem(last=False)
            self.publish_gauges()
        if sequential:
            self.io.read_sequential()
        else:
            self.io.read_random()
        return page

    def peek(self, page_id: int) -> Page:
        """Fetch a page *without* charging I/O (statistics/introspection
        only -- e.g. bucket-occupancy reports must not perturb the cost
        accounting of the queries they describe)."""
        page = self._pages.get(page_id)
        if page is None:
            raise KeyError(f"no such page: {page_id}")
        return page

    def write(self, page_id: int) -> None:
        """Charge one page write (the page object is mutated in place)."""
        if page_id not in self._pages:
            raise KeyError(f"no such page: {page_id}")
        self.io.write()

    def free(self, page_id: int) -> None:
        """Release a page (and drop it from the buffer pool)."""
        del self._pages[page_id]
        self._cache.pop(page_id, None)

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of buffer-pool lookups served from the pool.

        0.0 when the pool is disabled or has never been consulted.
        """
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def publish_gauges(self) -> None:
        """Export this pager's pool occupancy and hit rate as gauges.

        Called on every buffer-pool lookup (two attribute stores and a
        division) and safe to call ad hoc; with several pagers alive the
        gauges describe the most recently active one (point samples are
        last-write-wins by design).
        """
        _CACHE_ENTRIES.set(len(self._cache))
        _CACHE_HIT_RATIO.set(self.cache_hit_ratio)

    def reset_cache(self) -> None:
        """Empty the buffer pool and zero this pager's hit/miss counts.

        The process-wide ``pager.cache_hits``/``pager.cache_misses``
        metrics are monotonic and unaffected.  Useful between
        experiment phases: the next reads start from a cold pool.
        """
        self._cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def n_pages(self) -> int:
        """Number of live pages."""
        return len(self._pages)
