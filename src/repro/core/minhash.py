"""Min-wise independent permutations via universal hashing (Section 3.1).

The Min Hashing technique of Broder et al. implicitly defines a random
order on the (unknown, unbounded) element universe: for a random
permutation ``pi``,

    Pr[ min pi(A) == min pi(B) ] = sim(A, B).

Repeating with ``k`` independent permutations yields the *min-hash
signature*; the fraction of agreeing coordinates is an unbiased
estimator of the Jaccard similarity.

As in the paper, permutations are approximated with universal hashing:
elements are first mapped to integers by a stable (seed-independent)
64-bit hash, then permuted with ``h(x) = (a*x + b) mod p`` for the
Mersenne prime ``p = 2**31 - 1``.  Keeping the residues below ``2**31``
lets the whole signature computation run in vectorized uint64 numpy
arithmetic without overflow.

Signatures keep full ``log2(p)``-bit precision; the embedding stage
reduces values to ``b`` bits (the paper's "number of fixed precision")
and accounts for the small collision bias that introduces.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

#: Mersenne prime used by the universal hash family.
MERSENNE_PRIME = (1 << 31) - 1


def stable_element_hash(element) -> int:
    """Map an arbitrary hashable element to a stable 64-bit integer.

    Unlike builtin ``hash``, the result does not depend on
    ``PYTHONHASHSEED``, so signatures are reproducible across runs --
    a requirement for a persistent index.
    """
    if isinstance(element, (int, np.integer)):
        payload = b"i" + int(element).to_bytes(16, "little", signed=True)
    elif isinstance(element, bytes):
        payload = b"b" + element
    elif isinstance(element, str):
        payload = b"s" + element.encode("utf-8")
    else:
        payload = b"r" + repr(element).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "little")


class MinHasher:
    """Computes length-``k`` min-hash signatures of arbitrary sets.

    Parameters
    ----------
    k:
        Signature length (number of independent permutations).  The
        paper's timing experiments use ``k = 100``.
    seed:
        Seed for drawing the permutation parameters.  Two hashers with
        the same seed and ``k`` produce identical signatures, so a
        query can be signed consistently with a previously built index.
    """

    def __init__(self, k: int = 100, seed: int = 0):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._a = rng.integers(1, MERSENNE_PRIME, size=k, dtype=np.uint64)
        self._b = rng.integers(0, MERSENNE_PRIME, size=k, dtype=np.uint64)
        self._p = np.uint64(MERSENNE_PRIME)

    def signature(self, elements: Iterable) -> np.ndarray:
        """Min-hash signature of a set, shape ``(k,)`` of uint64.

        Raises ``ValueError`` for the empty set: ``min`` over an empty
        set is undefined, exactly as in the paper's formulation.
        """
        hashed = self.hash_elements(elements)
        if hashed.size == 0:
            raise ValueError("cannot compute a min-hash signature of the empty set")
        # (k, n) table of h_i(x_j); overflow-safe because a, x < 2**31.
        table = (self._a[:, np.newaxis] * hashed[np.newaxis, :] + self._b[:, np.newaxis]) % self._p
        return table.min(axis=1)

    def signature_matrix(
        self, sets: Iterable[Iterable], chunk_elements: int = 1 << 18
    ) -> np.ndarray:
        """Signatures of many sets stacked into shape ``(N, k)``.

        One vectorized pass: every element of the whole chunk is hashed
        once (duplicate elements across sets are hashed once and reused
        -- a batch can share most of its vocabulary), the universal-hash
        table is computed for all columns in a single uint64 numpy
        expression, and per-set minima are taken with segmented
        ``np.minimum.reduceat``.  Results are bit-identical to calling
        :meth:`signature` per set.

        ``chunk_elements`` bounds the working-set size (the hash table
        is ``k x chunk_elements`` of uint64); large collections are
        processed in chunks split on set boundaries.
        """
        sets = [s if hasattr(s, "__len__") else tuple(s) for s in sets]
        n = len(sets)
        out = np.empty((n, self.k), dtype=np.uint64)
        start = 0
        while start < n:
            stop, total = start, 0
            while stop < n and (stop == start or total + len(sets[stop]) <= chunk_elements):
                total += len(sets[stop])
                stop += 1
            chunk = sets[start:stop]
            counts = np.array([len(s) for s in chunk], dtype=np.int64)
            if np.any(counts == 0):
                raise ValueError("cannot compute a min-hash signature of the empty set")
            # Hash each distinct element once, then gather per occurrence.
            positions: dict = {}
            order: list = []
            indices = np.empty(total, dtype=np.int64)
            j = 0
            for s in chunk:
                for element in s:
                    idx = positions.get(element)
                    if idx is None:
                        idx = positions[element] = len(order)
                        order.append(element)
                    indices[j] = idx
                    j += 1
            hashed = self.hash_elements(order)[indices]
            # (k, total) table of h_i(x_j), reduced per set segment.
            table = (
                self._a[:, np.newaxis] * hashed[np.newaxis, :]
                + self._b[:, np.newaxis]
            ) % self._p
            offsets = np.zeros(len(chunk), dtype=np.int64)
            np.cumsum(counts[:-1], out=offsets[1:])
            out[start:stop] = np.minimum.reduceat(table, offsets, axis=1).T
            start = stop
        return out

    def hash_elements(self, elements: Iterable) -> np.ndarray:
        """Stable element hashes reduced modulo the Mersenne prime."""
        values = np.fromiter(
            (stable_element_hash(e) for e in elements), dtype=np.uint64
        )
        return values % self._p

    @staticmethod
    def estimate_similarity(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Unbiased Jaccard estimate: fraction of agreeing coordinates."""
        if sig_a.shape != sig_b.shape:
            raise ValueError(f"signature shapes differ: {sig_a.shape} vs {sig_b.shape}")
        return float(np.mean(sig_a == sig_b))

    def __repr__(self) -> str:
        return f"MinHasher(k={self.k}, seed={self.seed})"


_SPLITMIX_GOLDEN = 0x9E3779B97F4A7C15
_U64_MASK = (1 << 64) - 1


def _mix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (third twin; see exec.route/shard)."""
    x = np.array(values, dtype=np.uint64, copy=True)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


class SuperMinHasher:
    """SuperMinHash (Ertl, arXiv:1706.05698): lower-variance signatures.

    A drop-in alternative generator with the same interface as
    :class:`MinHasher`.  Where MinHash draws ``k`` independent uniform
    values per element (variance ``s(1-s)/k`` for the agreement
    estimator), SuperMinHash draws, per element, one uniform value
    ``j + r_j`` per *permutation step* ``j`` and scatters it into slot
    ``p[j]`` of a per-element Fisher-Yates permutation ``p`` of
    ``0..k-1``.  The joint structure makes slot values negatively
    correlated, cutting estimator variance by up to 2x for sets whose
    size is comparable to ``k`` -- with unchanged collision semantics:

        Pr[ slot_i(A) == slot_i(B) ] = sim(A, B).

    Values are quantized to uint64 as ``(j << 32) | floor(r_j * 2**32)``
    -- numeric order equals the algorithm's lexicographic ``(j, r)``
    order, so per-set minima are plain uint64 minima and any packing
    codec consumes the values unchanged (``full64`` reduces them mod
    ``2**b``; ``bbit`` keeps the low bits -- both land in the uniform
    fractional part).

    All randomness is counter-based splitmix64 keyed by the stable
    element hash and the seed, so signatures are deterministic across
    runs and processes, exactly like :class:`MinHasher`.
    """

    def __init__(self, k: int = 100, seed: int = 0):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.seed = seed
        self._seed_key = _mix64(
            np.uint64((seed * _SPLITMIX_GOLDEN + 1) & _U64_MASK)
        )

    def hash_elements(self, elements: Iterable) -> np.ndarray:
        """Stable full-width 64-bit element hashes."""
        return np.fromiter(
            (stable_element_hash(e) for e in elements), dtype=np.uint64
        )

    def _element_values(self, hashed: np.ndarray) -> np.ndarray:
        """Per-element SuperMinHash value vectors, shape ``(n, k)``.

        Row ``e`` is the length-``k`` value vector of element ``e``:
        slot ``p_e[j]`` holds ``(j << 32) | r32`` where ``p_e`` is the
        element's Fisher-Yates permutation and ``r32`` its step-``j``
        uniform draw.  Each slot is written exactly once per element
        (``p_e`` is a permutation), so no per-element minima are
        needed; cross-element minima happen in the callers.
        """
        n = hashed.shape[0]
        k = self.k
        base = _mix64(hashed ^ self._seed_key)
        perm = np.tile(np.arange(k, dtype=np.int64), (n, 1))
        vals = np.empty((n, k), dtype=np.uint64)
        rows = np.arange(n)
        for j in range(k):
            z_r = _mix64(base + np.uint64(((2 * j + 1) * _SPLITMIX_GOLDEN) & _U64_MASK))
            z_k = _mix64(base + np.uint64(((2 * j + 2) * _SPLITMIX_GOLDEN) & _U64_MASK))
            r32 = z_r >> np.uint64(32)
            # Fisher-Yates: swap perm[j] with perm[idx], idx uniform in
            # [j, k).  (Modulo bias is O(k / 2**64) -- negligible.)
            idx = j + (z_k % np.uint64(k - j)).astype(np.int64)
            p_idx = perm[rows, idx]
            perm[rows, idx] = perm[:, j]
            perm[:, j] = p_idx
            vals[rows, p_idx] = (np.uint64(j) << np.uint64(32)) | r32
        return vals

    def signature(self, elements: Iterable) -> np.ndarray:
        """SuperMinHash signature of a set, shape ``(k,)`` of uint64."""
        hashed = self.hash_elements(elements)
        if hashed.size == 0:
            raise ValueError("cannot compute a min-hash signature of the empty set")
        return self._element_values(np.unique(hashed)).min(axis=0)

    def signature_matrix(
        self, sets: Iterable[Iterable], chunk_elements: int = 1 << 18
    ) -> np.ndarray:
        """Signatures of many sets stacked into shape ``(N, k)``.

        Mirrors :meth:`MinHasher.signature_matrix`: distinct elements
        of a chunk are hashed (and their value vectors computed) once,
        gathered per occurrence, and reduced per set segment with
        ``np.minimum.reduceat``.  Bit-identical to per-set
        :meth:`signature` calls.
        """
        sets = [s if hasattr(s, "__len__") else tuple(s) for s in sets]
        n = len(sets)
        out = np.empty((n, self.k), dtype=np.uint64)
        start = 0
        while start < n:
            stop, total = start, 0
            while stop < n and (stop == start or total + len(sets[stop]) <= chunk_elements):
                total += len(sets[stop])
                stop += 1
            chunk = sets[start:stop]
            counts = np.array([len(s) for s in chunk], dtype=np.int64)
            if np.any(counts == 0):
                raise ValueError("cannot compute a min-hash signature of the empty set")
            positions: dict = {}
            order: list = []
            indices = np.empty(total, dtype=np.int64)
            j = 0
            for s in chunk:
                for element in s:
                    idx = positions.get(element)
                    if idx is None:
                        idx = positions[element] = len(order)
                        order.append(element)
                    indices[j] = idx
                    j += 1
            values = self._element_values(self.hash_elements(order))[indices]
            offsets = np.zeros(len(chunk), dtype=np.int64)
            np.cumsum(counts[:-1], out=offsets[1:])
            out[start:stop] = np.minimum.reduceat(values, offsets, axis=0)
            start = stop
        return out

    estimate_similarity = staticmethod(MinHasher.estimate_similarity)

    def __repr__(self) -> str:
        return f"SuperMinHasher(k={self.k}, seed={self.seed})"
