"""ABL-GREEDY -- Lemma 6 ablation: greedy vs uniform table allocation.

Fig. 5's greedy hands each hash table to the filter whose expected
error drops the most, reducing total expected FP+FN compared with an
even split of the same budget.

Shape to reproduce: at equal budget the greedy plan matches the even
split on expected recall and beats it on expected precision (its
actual objective is the total-error sum).  Note a measured divergence
from Lemma 6's *worst-case* claim: because the greedy optimizes the
error sum, it can leave one similarity range under-served and lose on
worst-case recall while winning everywhere else -- both numbers are
reported.
"""

from repro.eval.experiments import run_allocation_ablation


def test_allocation(benchmark, emit, scale):
    result = benchmark.pedantic(
        run_allocation_ablation,
        kwargs={"dataset": "set1", "n_sets": min(scale.n_sets, 1500), "budget": 300},
        rounds=1,
        iterations=1,
    )
    emit("ABL-GREEDY", result.table())
    by_name = {row[0]: row for row in result.rows}
    greedy, uniform = by_name["greedy"], by_name["uniform-alloc"]
    # (name, avg recall, avg precision, wc recall, wc precision, tables)
    assert greedy[1] >= uniform[1] - 0.02  # average recall parity
    assert greedy[2] >= uniform[2] - 0.02  # average precision win/parity
