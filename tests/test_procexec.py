"""Process-backend executor: bit-identical answers from spawn workers.

``ParallelExecutor(snapshot_dir, backend="process")`` fans (filter,
table) probe shards and verify chunks out to worker *processes* that
each ``open_snapshot()`` the same mmap'd directory.  Because every
element/key hash in the engine is content-derived (blake2b /
splitmix64, never builtin ``hash``), a spawn worker reproduces the
parent's results exactly; these tests pin that equivalence against the
sequential index at several worker counts, the cross-process folding
of module counters, and the constructor's validation paths.

Spawn start-up costs dominate here, so the suite keeps one shared
snapshot and a handful of worker counts rather than the full
randomized sweep of ``test_parallel.py`` (the thread-backend suite
already covers the scheduling logic both backends share).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.index import SetSimilarityIndex
from repro.data.generators import planted_clusters
from repro.exec import ParallelExecutor, open_snapshot
from repro.obs import metrics

WORKER_COUNTS = (1, 2, 4)

RANGES = [(0.5, 1.0), (0.0, 0.4), (0.2, 0.8), (0.0, 1.0)]


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    sets = planted_clusters(
        n_clusters=5, per_cluster=7, base_size=20, universe=1200,
        mutation_rate=0.2, seed=11,
    )
    index = SetSimilarityIndex.build(
        sets, budget=36, recall_target=0.8, k=24, b=4, seed=11,
        sample_pairs=2_000,
    )
    rng = np.random.default_rng(11)
    queries = [sets[int(rng.integers(len(sets)))] for _ in range(6)]
    queries.append(frozenset(int(x) for x in rng.integers(0, 1200, size=8)))
    queries.append(frozenset())
    path = tmp_path_factory.mktemp("proc") / "snapdir"
    index.save_snapshot(path)
    return index, queries, path


def _assert_batches_identical(got, want):
    assert got.n_queries == want.n_queries
    for g, w in zip(got.results, want.results):
        assert g.answers == w.answers
        assert g.candidates == w.candidates
    assert got.io == want.io
    assert got.io_time == want.io_time
    assert got.cpu_time == want.cpu_time
    assert got.pages_saved == want.pages_saved
    assert got.fetches_saved == want.fetches_saved


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_process_backend_matches_sequential(workload, workers):
    index, queries, path = workload
    with ParallelExecutor(path, workers=workers, backend="process") as ex:
        assert ex.backend == "process"
        for lo, hi in RANGES:
            sequential = index.query_batch(queries, lo, hi)
            served = ex.query_batch(queries, lo, hi)
            _assert_batches_identical(served, sequential)
            stats = served.exec_stats
            assert stats["workers"] == workers
            assert stats["backend"] == "process"


def test_process_backend_scan_strategy(workload):
    index, queries, path = workload
    sequential = index.query_batch(queries, 0.2, 0.9, strategy="scan")
    with ParallelExecutor(path, workers=2, backend="process") as ex:
        served = ex.query_batch(queries, 0.2, 0.9, strategy="scan")
    _assert_batches_identical(served, sequential)


def test_process_backend_accepts_open_mapped_snapshot(workload):
    index, queries, path = workload
    mapped = open_snapshot(path)
    sequential = index.query_batch(queries, 0.3, 0.8)
    with ParallelExecutor(mapped, workers=2, backend="process") as ex:
        served = ex.query_batch(queries, 0.3, 0.8)
    _assert_batches_identical(served, sequential)


def test_worker_counter_deltas_fold_into_parent(workload):
    """Probe counters moved inside workers surface in this process."""
    index, queries, path = workload
    probes = metrics.counter("hashtable.probes")
    pages = metrics.counter("hashtable.probe_pages")

    base_probes, base_pages = probes.value, pages.value
    sequential = index.query_batch(queries, 0.5, 1.0)
    seq_probes = probes.value - base_probes
    seq_pages = pages.value - base_pages
    assert seq_probes > 0

    with ParallelExecutor(path, workers=2, backend="process") as ex:
        base_probes, base_pages = probes.value, pages.value
        served = ex.query_batch(queries, 0.5, 1.0)
        assert probes.value - base_probes == seq_probes
        assert pages.value - base_pages == seq_pages
    _assert_batches_identical(served, sequential)


def test_process_backend_rejects_live_snapshot(workload):
    index, _, _ = workload
    snapshot = index.freeze()
    try:
        with pytest.raises(ValueError, match="saved snapshot"):
            ParallelExecutor(snapshot, workers=2, backend="process")
    finally:
        index.thaw()


def test_unknown_backend_rejected(workload):
    _, _, path = workload
    with pytest.raises(ValueError, match="backend"):
        ParallelExecutor(open_snapshot(path), workers=2, backend="fibers")


def test_thread_backend_over_mapped_snapshot(workload):
    """The default thread backend also serves a mapped snapshot."""
    index, queries, path = workload
    sequential = index.query_batch(queries, 0.4, 0.9)
    with ParallelExecutor(open_snapshot(path), workers=4) as ex:
        assert ex.backend == "thread"
        served = ex.query_batch(queries, 0.4, 0.9)
    _assert_batches_identical(served, sequential)
