"""Accuracy analysis for min-hash similarity estimates.

Section 3.1 cites Cohen's Chernoff-bound analysis: the number of equal
min-hash values between two signatures is a sum of ``k`` independent
Bernoulli(s) indicators, so the estimate concentrates exponentially
around the true similarity.  These helpers make that analysis usable:

* how far can the estimate stray (:func:`estimate_interval`,
  :func:`chernoff_error_bound`)?
* how long must signatures be for a target accuracy
  (:func:`required_signature_length`)?

They back the library's parameter-choice documentation and the
``ABL-KB`` sensitivity bench.
"""

from __future__ import annotations

import math


def chernoff_error_bound(k: int, epsilon: float) -> float:
    """Upper bound on ``Pr[|estimate - s| >= epsilon]``.

    Hoeffding form of the Chernoff bound for k Bernoulli trials:
    ``2 * exp(-2 * k * epsilon^2)`` -- valid for every true similarity.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    return min(1.0, 2.0 * math.exp(-2.0 * k * epsilon * epsilon))


def required_signature_length(epsilon: float, delta: float) -> int:
    """Smallest ``k`` with ``Pr[|estimate - s| >= epsilon] <= delta``.

    Inverts :func:`chernoff_error_bound`: ``k >= ln(2/delta) / (2 eps^2)``.
    The paper's ``k = 100`` gives epsilon ~ 0.136 at delta = 0.05.
    """
    if epsilon <= 0 or epsilon >= 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if delta <= 0 or delta >= 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


def estimate_interval(estimate: float, k: int, delta: float = 0.05) -> tuple[float, float]:
    """A ``1 - delta`` confidence interval around a signature estimate.

    Uses the Hoeffding radius ``sqrt(ln(2/delta) / (2k))``, clipped to
    [0, 1].  Distribution-free, hence slightly conservative near the
    endpoints.
    """
    if not 0.0 <= estimate <= 1.0:
        raise ValueError(f"estimate must be in [0, 1], got {estimate}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if delta <= 0 or delta >= 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    radius = math.sqrt(math.log(2.0 / delta) / (2.0 * k))
    return max(0.0, estimate - radius), min(1.0, estimate + radius)


def estimator_standard_error(s: float, k: int) -> float:
    """Standard error of the signature estimate at true similarity s:
    ``sqrt(s (1 - s) / k)`` (binomial proportion)."""
    if not 0.0 <= s <= 1.0:
        raise ValueError(f"s must be in [0, 1], got {s}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return math.sqrt(s * (1.0 - s) / k)
