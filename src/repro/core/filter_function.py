"""The probabilistic filter function ``p_{r,l}(s)`` (Section 4.1).

A Similarity Filter Index samples ``r`` bit positions per hash table
and uses ``l`` tables.  Two vectors of Hamming similarity ``s`` land in
the same bucket of at least one table with probability

    p_{r,l}(s) = 1 - (1 - s**r) ** l                      (Equation 4)

an S-shaped approximation of a unit step.  Choosing ``r`` for a given
``l`` places the *turning point* -- the similarity at which the
probability crosses 1/2 -- at the index's threshold ``s*``:

    p_{r,l}(s*) = 1/2   =>   r = log(1 - 2**(-1/l)) / log(s*).

Larger ``l`` permits larger ``r`` and hence a steeper, more accurate
filter; that is the accuracy/space trade-off the optimizer of
Section 5 allocates the hash-table budget against, guided by the
expected false positives/negatives of Definitions 6 and 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def filter_probability(s, r: int, l: int):
    """``p_{r,l}(s) = 1 - (1 - s^r)^l``; accepts scalars or arrays."""
    if r <= 0 or l <= 0:
        raise ValueError(f"r and l must be positive, got r={r}, l={l}")
    s = np.clip(np.asarray(s, dtype=np.float64), 0.0, 1.0)
    result = 1.0 - (1.0 - s**r) ** l
    return float(result) if result.ndim == 0 else result


def solve_r(s_star: float, l: int) -> int:
    """Largest integer ``r >= 1`` with turning point at most ``s_star``.

    From ``p_{r,l}(s*) = 1/2``: ``s*^r = 1 - 2^{-1/l}``.  We round the
    real solution to the nearest integer (the turning point moves only
    slightly) and clamp to at least 1.
    """
    if not 0.0 < s_star < 1.0:
        raise ValueError(f"s_star must be in (0, 1), got {s_star}")
    if l <= 0:
        raise ValueError(f"l must be positive, got {l}")
    target = 1.0 - 2.0 ** (-1.0 / l)
    r = math.log(target) / math.log(s_star)
    return max(1, round(r))


def turning_point(r: int, l: int) -> float:
    """The similarity at which ``p_{r,l}`` crosses 1/2."""
    if r <= 0 or l <= 0:
        raise ValueError(f"r and l must be positive, got r={r}, l={l}")
    return (1.0 - 2.0 ** (-1.0 / l)) ** (1.0 / r)


@dataclass(frozen=True)
class FilterFunction:
    """A concrete ``p_{r,l}`` with convenience methods.

    Build one from a threshold with :meth:`for_threshold`, which picks
    ``r`` so the turning point lands on the threshold.
    """

    r: int
    l: int

    @classmethod
    def for_threshold(cls, s_star: float, l: int) -> "FilterFunction":
        """Filter with ``l`` tables whose turning point is ``s_star``."""
        return cls(r=solve_r(s_star, l), l=l)

    def __call__(self, s):
        return filter_probability(s, self.r, self.l)

    @property
    def turning_point(self) -> float:
        """The similarity where this filter crosses probability 1/2."""
        return turning_point(self.r, self.l)

    def expected_false_positives(
        self, s_grid: np.ndarray, mass: np.ndarray, s_star: float
    ) -> float:
        """Definition 6: ``integral_0^{s*} D(s) p_{r,l}(s) ds``.

        ``s_grid``/``mass`` give the similarity distribution as bin
        centers and pair counts per bin (so the "integral" is a sum).
        """
        below = s_grid < s_star
        return float(np.sum(mass[below] * filter_probability(s_grid[below], self.r, self.l)))

    def expected_false_negatives(
        self, s_grid: np.ndarray, mass: np.ndarray, s_star: float
    ) -> float:
        """Definition 7: ``integral_{s*}^1 D(s) (1 - p_{r,l}(s)) ds``."""
        above = s_grid >= s_star
        return float(
            np.sum(mass[above] * (1.0 - filter_probability(s_grid[above], self.r, self.l)))
        )

    def expected_error(self, s_grid: np.ndarray, mass: np.ndarray, s_star: float) -> float:
        """Total expected error: false positives plus false negatives."""
        return self.expected_false_positives(
            s_grid, mass, s_star
        ) + self.expected_false_negatives(s_grid, mass, s_star)
