"""Tests for the signature-banding LSH baseline."""

import numpy as np
import pytest

from repro.baselines.banding_lsh import BandingIndex
from repro.core.minhash import MinHasher
from repro.data.generators import planted_clusters
from repro.storage.iomodel import IOCostModel
from repro.storage.pager import PageManager


def _index(threshold=0.5, n_tables=16, k=64, seed=0):
    return BandingIndex(
        threshold, n_tables, k, PageManager(IOCostModel()), seed=seed
    )


class TestConstruction:
    def test_band_width_from_threshold(self):
        index = _index(threshold=0.8, n_tables=20)
        assert index.r >= 1
        assert index.n_tables == 20

    def test_invalid_arguments(self):
        pager = PageManager(IOCostModel())
        with pytest.raises(ValueError):
            BandingIndex(0.0, 4, 16, pager)
        with pytest.raises(ValueError):
            BandingIndex(0.5, 0, 16, pager)
        with pytest.raises(ValueError):
            BandingIndex(0.5, 4, 0, pager)

    def test_collision_probability_formula(self):
        index = _index(threshold=0.6, n_tables=10)
        r, l = index.r, index.n_tables
        s = 0.7
        assert index.collision_probability(s) == pytest.approx(
            1 - (1 - s**r) ** l
        )


class TestRetrieval:
    def test_identical_signature_always_found(self):
        index = _index()
        rng = np.random.default_rng(1)
        sig = rng.integers(0, 2**31, size=64, dtype=np.uint64)
        index.insert(sig, 7)
        assert 7 in index.probe(sig)

    def test_signature_shape_validated(self):
        index = _index(k=64)
        with pytest.raises(ValueError):
            index.probe(np.zeros(32, dtype=np.uint64))

    def test_insert_delete_roundtrip(self):
        index = _index()
        rng = np.random.default_rng(2)
        sig = rng.integers(0, 2**31, size=64, dtype=np.uint64)
        index.insert(sig, 1)
        index.delete(sig, 1)
        assert 1 not in index.probe(sig)

    def test_insert_many_validates(self):
        index = _index()
        with pytest.raises(ValueError):
            index.insert_many(np.zeros((3, 64), dtype=np.uint64), [1, 2])

    def test_similar_found_dissimilar_not(self):
        hasher = MinHasher(k=64, seed=3)
        sets = planted_clusters(
            n_clusters=6, per_cluster=8, base_size=30, universe=2000,
            mutation_rate=0.1, seed=4,
        )
        index = _index(threshold=0.4, n_tables=24, k=64, seed=5)
        signatures = hasher.signature_matrix(sets)
        index.insert_many(signatures, list(range(len(sets))))
        query = signatures[0]
        hits = index.probe(query)
        # Cluster mates (~0.65 similar) found; the hit set is selective.
        mates = set(range(8))
        assert len(hits & mates) >= 6
        assert len(hits) < len(sets) / 2

    def test_sharper_than_bit_sampling_at_low_threshold(self):
        """The modern-method claim: at the same (threshold, l), banding
        separates low Jaccard values far better than bit-sampling on
        the ECC embedding, whose effective similarity is (1+s)/2."""
        from repro.core.filter_function import FilterFunction

        threshold, l = 0.3, 24
        banding = FilterFunction.for_threshold(threshold, l)
        bit_sampling = FilterFunction.for_threshold((1 + threshold) / 2, l)

        def separation(ff, lo, hi):
            return ff(hi) - ff(lo)

        # Probability gap between sets at 0.5 vs 0.1 Jaccard:
        band_gap = separation(banding, 0.1, 0.5)
        bits_gap = separation(bit_sampling, (1 + 0.1) / 2, (1 + 0.5) / 2)
        assert band_gap > bits_gap
