"""Command-line interface: build, query, explain and evaluate set indexes.

Usage (after ``pip install -e .``)::

    python -m repro.cli [-v] build   --input sets.txt --output index.ssi [options]
    python -m repro.cli query   --index index.ssi --set "a b c" --low 0.4 --high 0.9 [--explain]
    python -m repro.cli explain --index index.ssi --set "a b c" --low 0.4 --high 0.9 [--json]
    python -m repro.cli stats   --index index.ssi
    python -m repro.cli demo    [--n-sets 500]
    python -m repro.cli snapshot save   --index index.ssi --out snap.d
    python -m repro.cli snapshot info   --path snap.d
    python -m repro.cli snapshot verify --path snap.d
    python -m repro.cli shard build  --input sets.txt --out fleet.d --shards 4 [--partition cluster --tune workload]
    python -m repro.cli shard info   --path fleet.d
    python -m repro.cli shard verify --path fleet.d
    python -m repro.cli stats   --shards fleet.d
    python -m repro.cli serve   --snapshot snap.d [--port 7407 --workers N --backend process --max-batch 64]
    python -m repro.cli serve   --shards fleet.d [--port 7407 ...]
    python -m repro.cli loadgen --port 7407 --sets-file queries.txt --connections 16 --total 2000
    python -m repro.cli top     --events events.jsonl [--follow] [--window 60]

The input format for ``build`` is one set per line, elements separated
by whitespace (elements are treated as opaque strings); ``build
--workers N`` fans the filter-table bulk loads out over ``N`` planning
threads (bit-identical index at any count) and ``build --explain``
prints the traced build phases.  ``query``
prints one ``sid<TAB>similarity`` line per answer; with ``--explain``
it appends the traced plan tree.  Repeating ``--set`` (or giving
``--sets-file``) runs all query sets as one *batch* through
``query_batch`` -- shared bucket reads, one fetch per distinct
candidate -- printing ``query_index<TAB>sid<TAB>similarity`` lines.
``--workers N`` serves the batch from a frozen snapshot
(``index.freeze()``) on ``N`` threads; answers and simulated costs are
identical at any worker count.  ``explain`` runs the query purely
for its plan tree (or structured JSON with ``--json``).  ``-v``/``-vv``
raise log verbosity (INFO/DEBUG) on the ``repro`` logger hierarchy.

``snapshot save`` writes a zero-copy mmap snapshot directory
(:mod:`repro.exec.snapfile`) that ``serve`` / ``query
--snapshot DIR`` open in O(ms) -- no pickle deserialization pass.
``--backend process`` serves the batch from worker *processes* that
each map the same snapshot (spawn start method, genuine multi-core);
answers and accounting stay bit-identical to the sequential path at
any worker count and backend.

``serve`` runs the always-on coalescing query service over a mapped
snapshot (:mod:`repro.serve`): concurrent newline-delimited-JSON
clients, micro-batched ``query_batch`` dispatch under a tunable
window, admission control with typed ``overloaded`` responses, and a
graceful drain on SIGTERM.  ``loadgen`` is its closed-loop benchmark
client (QPS + latency percentiles + observed batch sizes).  The
one-shot ``snapshot serve`` has been removed; ``serve`` + ``loadgen``
(or ``query --snapshot``) replace it.  ``shard build`` partitions a
collection into K independent per-shard snapshots under a checksummed
manifest (:mod:`repro.exec.shard`); ``serve --shards`` / ``query``
over a shard directory answer by scatter-gather, bit-identically to
the unsharded index under the default mirror tuning.

Telemetry: ``query`` accepts ``--prom-out`` (Prometheus text
exposition of the full metrics registry), ``--events-out`` (the
query-event ring as JSON Lines) and ``--trace-out`` (the traced span
tree in Chrome trace-event format, loadable in ``chrome://tracing`` /
Perfetto; implies tracing).  ``top`` renders a saved or growing event
log as a live dashboard: QPS, p50/p90/p99/p999 latency, phase
breakdown, candidate funnel, buffer-pool hit rate and the slow-query
log.  ``stats`` appends quantile tables for every registered
histogram.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.index import SetSimilarityIndex
from repro.obs import configure_logging, explain_json, render_trace


def read_sets(path: Path) -> list[frozenset[str]]:
    """Parse a one-set-per-line whitespace-separated file."""
    sets = []
    with open(path) as f:
        for line in f:
            elements = frozenset(line.split())
            if not elements:
                continue  # blank lines are allowed and skipped
            sets.append(elements)
    if not sets:
        raise ValueError(f"{path} contains no sets")
    return sets


def cmd_build(args: argparse.Namespace) -> int:
    """``build``: index a one-set-per-line file and save it.

    The filter tables are bulk-loaded through the vectorized pipeline;
    ``--workers N`` plans the independent (filter, table) units on
    ``N`` threads (the index is bit-identical at any count).
    ``--explain`` traces the build and appends its phase tree plus the
    build report.
    """
    sets = read_sets(Path(args.input))
    index = SetSimilarityIndex.build(
        sets,
        budget=args.budget,
        recall_target=args.recall,
        k=args.k,
        b=args.bits,
        seed=args.seed,
        sample_pairs=args.sample_pairs,
        workers=args.workers,
        explain=args.explain,
        codec=args.codec,
    )
    index.save(args.output)
    plan = index.plan
    print(
        f"indexed {index.n_sets} sets -> {args.output}\n"
        f"codec: {index.embedder.codec} (D={index.embedder.dimension} bits)\n"
        f"plan: {plan.n_intervals} intervals, {plan.tables_used} hash tables, "
        f"expected recall {plan.expected_recall:.3f} "
        f"(target {'met' if plan.met_target else 'NOT met'})"
    )
    report = index.build_report
    if report is not None and report.get("filters") is not None:
        f = report["filters"]
        print(
            f"build: {f['entries']} entries over {f['n_units']} table units "
            f"({f['new_pages']} pages), workers={f['workers']}, "
            f"plan {f['plan_busy_seconds']:.3f}s busy / "
            f"{f['modeled_plan_makespan']:.3f}s modeled makespan, "
            f"apply {f['apply_wall_seconds']:.3f}s"
        )
    if args.explain:
        print(render_trace(index.build_trace))
    return 0


def _print_batch(batch) -> None:
    """Batch output: one ``query_index<TAB>sid<TAB>similarity`` line
    per answer, plus the batch summary on stderr."""
    for i, result in enumerate(batch.results):
        for sid, similarity in result.answers:
            print(f"{i}\t{sid}\t{similarity:.4f}")
    print(
        f"# batch of {batch.n_queries} queries: {batch.n_verified} answers "
        f"from {batch.n_candidates} candidates, "
        f"{batch.pages_saved} bucket pages + {batch.fetches_saved} fetches "
        f"saved vs looping, simulated time {batch.total_time:.0f}",
        file=sys.stderr,
    )


def _snapshot_batch(path, query_sets, args, explain: bool):
    """Open a mapped snapshot (or shard fleet) and serve one batch on
    the chosen backend.  Sharded directories are auto-detected and
    scatter-gathered with the ``--route`` mode."""
    from repro.exec import ParallelExecutor, open_snapshot
    from repro.exec.shard import ShardedExecutor, is_sharded, open_sharded

    route = getattr(args, "route", "safe")
    t0 = time.perf_counter()
    if is_sharded(path):
        sharded = open_sharded(path)
        open_ms = (time.perf_counter() - t0) * 1e3
        print(
            f"# sharded index {path}: opened in {open_ms:.1f} ms "
            f"({sharded.n_sets} sets over {sharded.n_shards} shards), "
            f"backend={args.backend}, workers={args.workers}, route={route}",
            file=sys.stderr,
        )
        with ShardedExecutor(
            sharded, workers=args.workers, backend=args.backend, route=route
        ) as executor:
            batch = executor.query_batch(
                query_sets, args.low, args.high,
                strategy=args.strategy, explain=explain,
            )
            rstats = batch.exec_stats["route"]
            if rstats["active"]:
                print(
                    f"# routing ({rstats['mode']}): "
                    f"{rstats['subqueries_pruned']} subqueries pruned, "
                    f"{rstats['shards_skipped']} shards skipped",
                    file=sys.stderr,
                )
            return batch
    snapshot = open_snapshot(path)
    open_ms = (time.perf_counter() - t0) * 1e3
    print(
        f"# snapshot {path}: opened in {open_ms:.1f} ms ({snapshot.n_sets} sets), "
        f"backend={args.backend}, workers={args.workers}",
        file=sys.stderr,
    )
    with ParallelExecutor(
        snapshot, workers=args.workers, backend=args.backend
    ) as executor:
        return executor.query_batch(
            query_sets, args.low, args.high,
            strategy=args.strategy, explain=explain,
        )


def _write_telemetry(args: argparse.Namespace, trace_root) -> None:
    """Honor ``--prom-out`` / ``--events-out`` / ``--trace-out``."""
    if getattr(args, "prom_out", None):
        from repro.obs import export

        Path(args.prom_out).write_text(export.prometheus_text())
        print(f"# wrote Prometheus exposition to {args.prom_out}",
              file=sys.stderr)
    if getattr(args, "events_out", None):
        from repro.obs import events

        n = events.log.export_jsonl(args.events_out, which="all")
        print(f"# wrote {n} query events to {args.events_out}",
              file=sys.stderr)
    if getattr(args, "trace_out", None):
        from repro.obs import export

        if trace_root is None:
            print("# --trace-out: no trace captured", file=sys.stderr)
        else:
            export.write_chrome_trace(trace_root, args.trace_out)
            print(f"# wrote Chrome trace to {args.trace_out}",
                  file=sys.stderr)


def cmd_query(args: argparse.Namespace) -> int:
    """``query``: run similarity range queries against a saved index.

    One query set (a single ``--set``) runs through the scalar path;
    several (repeated ``--set`` and/or ``--sets-file``) run as one
    batched execution sharing bucket reads and candidate fetches, with
    per-query answer blocks prefixed by the query's position.  With
    ``--snapshot DIR`` the queries are served from a mapped snapshot
    (always as a batch) on ``--workers`` threads or -- with
    ``--backend process`` -- worker processes.
    """
    query_sets = [frozenset(s.split()) for s in (args.set or [])]
    if args.sets_file:
        query_sets.extend(read_sets(Path(args.sets_file)))
    if not query_sets:
        print("error: no query sets given (use --set and/or --sets-file)",
              file=sys.stderr)
        return 2
    if bool(args.index) == bool(args.snapshot):
        print("error: give exactly one of --index or --snapshot",
              file=sys.stderr)
        return 2
    explain = args.explain or args.explain_json or bool(args.trace_out)
    if args.snapshot:
        batch = _snapshot_batch(args.snapshot, query_sets, args, explain)
        _print_batch(batch)
        trace_root = batch.trace
        if args.explain:
            print(render_trace(trace_root))
        if args.explain_json:
            print(json.dumps(explain_json(trace_root), indent=2))
        _write_telemetry(args, trace_root)
        return 0
    if args.backend == "process":
        print("error: --backend process requires --snapshot "
              "(worker processes map a saved snapshot directory)",
              file=sys.stderr)
        return 2
    index = SetSimilarityIndex.load(args.index)
    if len(query_sets) == 1:
        result = index.query(
            query_sets[0], args.low, args.high,
            strategy=args.strategy, explain=explain,
        )
        for sid, similarity in result.answers:
            print(f"{sid}\t{similarity:.4f}")
        print(
            f"# {result.n_verified} answers from {result.n_candidates} candidates, "
            f"simulated time {result.total_time:.0f}",
            file=sys.stderr,
        )
        trace_root = result.trace
    else:
        if args.workers > 1:
            from repro.exec import ParallelExecutor

            snapshot = index.freeze()
            try:
                with ParallelExecutor(snapshot, workers=args.workers) as ex:
                    batch = ex.query_batch(
                        query_sets, args.low, args.high,
                        strategy=args.strategy, explain=explain,
                    )
            finally:
                index.thaw()
        else:
            batch = index.query_batch(
                query_sets, args.low, args.high,
                strategy=args.strategy, explain=explain,
            )
        _print_batch(batch)
        trace_root = batch.trace
    if args.explain:
        print(render_trace(trace_root))
    if args.explain_json:
        print(json.dumps(explain_json(trace_root), indent=2))
    _write_telemetry(args, trace_root)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """``explain``: trace one query and print its plan tree (or JSON).

    The query is executed for real (the plan tree reports observed,
    not estimated, bucket reads and candidate counts); only the
    answers are withheld.
    """
    index = SetSimilarityIndex.load(args.index)
    query_set = frozenset(args.set.split())
    result = index.query(
        query_set, args.low, args.high, strategy=args.strategy, explain=True
    )
    if args.json:
        print(json.dumps(explain_json(result.trace), indent=2))
    else:
        print(render_trace(result.trace))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """``stats``: describe a saved index's plan, parameters and tables.

    With ``--shards DIR`` it instead describes a shard manifest:
    per-shard occupancy and the budget-allocation matrix (which
    filters got how many tables in each shard).
    """
    if getattr(args, "shards", None):
        if args.index:
            print("error: pass --index or --shards, not both", file=sys.stderr)
            return 2
        return _shard_stats(args.shards)
    if not args.index:
        print("error: one of --index or --shards is required", file=sys.stderr)
        return 2
    index = SetSimilarityIndex.load(args.index)
    plan = index.plan
    print(f"sets indexed:      {index.n_sets}")
    print(f"embedding:         k={index.embedder.k}, b={index.embedder.b}, "
          f"codec={getattr(index.embedder, 'codec', 'full64')}, "
          f"D={index.embedder.dimension} bits")
    sig_bytes = sum(v.nbytes for v in index._vectors.values())
    verify_bytes = sum(a.nbytes for a in index._chashes.values())
    n_live = max(1, index.n_sets)
    print(f"bytes:             signatures {sig_bytes:,} "
          f"({sig_bytes / n_live:.1f}/set), "
          f"verify arrays {verify_bytes:,} ({verify_bytes / n_live:.1f}/set)")
    print(f"similarity cuts:   {[round(c, 3) for c in plan.cut_points]}")
    print(f"hash tables used:  {plan.tables_used}")
    print(f"expected recall:   {plan.expected_recall:.3f}")
    print(f"expected precision:{plan.expected_precision:.3f}")
    for f in plan.filters:
        print(f"  {f.kind.upper()} @ {f.point:.3f}: {f.n_tables} tables")
    print("per-filter occupancy:")
    for fs in index.filter_stats():
        print(
            f"  {fs['kind'].upper()} @ {fs['point']:.3f} "
            f"(s*={fs['s_star']:.3f}, r={fs['r']}, l={fs['n_tables']}): "
            f"{fs['entries_per_table']} entries/table over {fs['pages']} pages, "
            f"load factor {fs['load_factor']:.3f}, "
            f"occupancy avg/max {fs['avg_occupancy']:.2f}/{fs['max_occupancy']}, "
            f"longest chain {fs['max_chain_pages']} page(s)"
        )
    pager = index.pager
    print(
        f"buffer pool:       cache_pages={pager.cache_pages}, "
        f"hits={pager.cache_hits}, misses={pager.cache_misses}, "
        f"hit ratio {pager.cache_hit_ratio:.3f}"
        + ("" if pager.cache_pages else " (disabled)")
    )
    _print_histogram_tables()
    return 0


def _shard_stats(path: str) -> int:
    """Per-shard occupancy and budget-allocation tables for ``stats``."""
    from repro.exec.shard import open_sharded
    from repro.exec.snapfile import MANIFEST_FILE

    sharded = open_sharded(path)
    m = sharded.manifest
    print(f"sharded index:     {path}")
    print(f"sets:              {m['n_sets']} over {m['n_shards']} shards "
          f"({len(sharded.live_shards)} live)")
    print(f"partition:         {m['partition']['method']} "
          f"(seed {m['partition']['seed']}); tuning: {m['tune']}")
    print(f"codec:             {m.get('build', {}).get('codec', 'full64')}")
    gp = m["global_plan"]
    print(f"global budget:     {m['build']['budget']} tables "
          f"({gp['tables_used']} used by the global plan, "
          f"expected recall {gp['expected_recall']:.3f})")
    routing = m.get("routing")
    if routing:
        print(f"routing:           {routing['m_bits']}-bit universe sketches, "
              f"{routing['sig_k']}-coordinate "
              f"{routing.get('sig_scheme', 'minhash')} profiles")
    else:
        print("routing:           none (rebuild to add summaries)")
    print("per-shard occupancy:")
    header = (
        f"  {'shard':<12}{'sets':>8}{'weight':>9}{'tables':>8}"
        f"{'recall':>9}{'arrays':>12}{'sizes':>12}{'replicas':>9}"
    )
    print(header)
    route_shards = (routing or {}).get("shards") or [None] * len(m["shards"])
    for i, entry in enumerate(m["shards"]):
        if entry.get("empty"):
            nbytes = 0
        else:
            shard_manifest = json.loads(
                (Path(path) / entry["dir"] / MANIFEST_FILE).read_text()
            )
            nbytes = shard_manifest["arrays_bytes"]
        rs = route_shards[i]
        sizes = f"{rs['size_min']}-{rs['size_max']}" if rs else "-"
        print(
            f"  {entry['dir']:<12}{entry['n_sets']:>8}"
            f"{entry['weight']:>9.3f}{entry['tables']:>8}"
            f"{entry['expected_recall']:>9.3f}{nbytes:>12,}"
            f"{sizes:>12}{1 + len(entry.get('replicas', [])):>9}"
            + ("  (empty)" if entry.get("empty") else "")
        )
    print("budget allocation (tables per filter x shard):")
    filters = m["shards"][0]["filters"]
    labels = [f"{f['kind'].upper()}@{f['point']:.3f}" for f in filters]
    print("  " + f"{'filter':<14}" + "".join(
        f"{entry['dir'][-3:]:>8}" for entry in m["shards"]
    ))
    for row, label in enumerate(labels):
        print("  " + f"{label:<14}" + "".join(
            f"{entry['filters'][row]['n_tables']:>8}"
            for entry in m["shards"]
        ))
    return 0


def _print_histogram_tables() -> None:
    """Quantile tables for every registered histogram (fixed and HDR).

    Part of ``repro stats``: all distribution instruments that have
    recorded observations this process -- candidates per query, batch
    sizes, per-table probe candidates, query latencies -- render as one
    p50/p90/p99/p999 table, so ``stats`` after a workload shows tails,
    not just point totals.
    """
    from repro.obs import metrics

    instruments = [
        ("fixed", hist)
        for hist in metrics.registry.histograms().values()
        if hist.count
    ] + [
        ("hdr", hist)
        for hist in metrics.registry.hdr_histograms().values()
        if hist.count
    ]
    if not instruments:
        return
    print("histograms:")
    header = (
        f"  {'name':<32}{'kind':>6}{'count':>9}{'mean':>11}"
        f"{'p50':>11}{'p90':>11}{'p99':>11}{'p999':>11}"
    )
    print(header)
    for kind, hist in sorted(instruments, key=lambda pair: pair[1].name):
        print(
            f"  {hist.name:<32}{kind:>6}{hist.count:>9}{hist.mean:>11.3f}"
            + "".join(
                f"{hist.quantile(q):>11.3f}"
                for q in (0.50, 0.90, 0.99, 0.999)
            )
        )


def cmd_snapshot(args: argparse.Namespace) -> int:
    """``snapshot``: save/inspect/verify zero-copy snapshots.

    ``save`` freezes a pickle-loaded index into a mapped-array
    directory; ``info`` prints the manifest summary (O(ms) open);
    ``verify`` checksums every array.  The one-shot ``serve``
    subcommand is gone -- ``repro serve`` owns the service codec -- and
    now only prints a pointer at the replacement.
    """
    if args.snapshot_command == "save":
        index = SetSimilarityIndex.load(args.index)
        t0 = time.perf_counter()
        index.save_snapshot(args.out)
        seconds = time.perf_counter() - t0
        from repro.exec.snapfile import MANIFEST_FILE

        manifest = json.loads((Path(args.out) / MANIFEST_FILE).read_text())
        print(
            f"snapshot {args.out}: {manifest['n_sets']} sets, "
            f"{len(manifest['arrays'])} arrays, "
            f"{manifest['arrays_bytes']:,} array bytes "
            f"(elements as {manifest['sets_encoding']}) in {seconds:.2f}s"
        )
        return 0
    if args.snapshot_command == "info":
        from repro.exec import open_snapshot

        t0 = time.perf_counter()
        snapshot = open_snapshot(args.path)
        open_ms = (time.perf_counter() - t0) * 1e3
        m = snapshot.manifest
        cost = m["cost"]
        print(f"snapshot:          {args.path} (opened in {open_ms:.1f} ms)")
        print(f"format:            {m['format']} v{m['version']}")
        print(f"sets:              {m['n_sets']} (elements as {m['sets_encoding']})")
        print(f"arrays:            {len(m['arrays'])} mapped, {m['arrays_bytes']:,} bytes")
        print(f"codec:             {m.get('codec', 'full64')}")
        print(f"embedding bits:    D={m['n_bits']}")
        from repro.exec.snapfile import byte_breakdown

        bb = byte_breakdown(m)
        g = bb["groups"]
        print(f"byte breakdown:    signatures {g['signatures']:,} | "
              f"verify CSR {g['verify_csr']:,} | "
              f"buckets {g['buckets']:,} | other {g['other']:,}")
        print(f"bytes per set:     {bb['bytes_per_set']:.1f} total, "
              f"{bb['signature_bytes_per_set']:.1f} signatures")
        print(f"scan pages:        {m['scan_pages']}")
        print(f"cost model:        seq={cost['seq_cost']}, "
              f"random={cost['random_cost']}, cpu={cost['cpu_cost']}")
        for f in m["filters"]:
            print(f"  {f['kind'].upper()} @ {f['point']:.3f}: "
                  f"l={f['l']}, r={f['r']}, s*={f['threshold']:.3f}")
        return 0
    if args.snapshot_command == "verify":
        from repro.exec import SnapshotError, verify_snapshot

        try:
            summary = verify_snapshot(args.path)
        except SnapshotError as exc:
            print(f"FAILED: {exc}", file=sys.stderr)
            return 1
        print(
            f"OK: {summary['n_arrays']} arrays "
            f"({summary['arrays_bytes']:,} bytes), {summary['n_sets']} sets, "
            f"{summary['filters']} filters -- all checksums pass"
        )
        return 0
    # serve: removed in favor of the always-on `repro serve`.  The
    # subcommand still parses (so old invocations reach this message
    # instead of an argparse usage dump) but always errors.
    print(
        "error: 'snapshot serve' has been removed. Use "
        "'repro serve --snapshot DIR' for the always-on coalescing query "
        "service and 'repro loadgen' to drive it; 'repro query "
        "--snapshot DIR' answers a one-shot batch from a mapped snapshot.",
        file=sys.stderr,
    )
    return 2


def cmd_shard(args: argparse.Namespace) -> int:
    """``shard``: build/replicate/inspect/verify sharded indexes.

    ``build`` partitions a set file into K shards and persists each as
    its own mmap snapshot under a checksummed shard manifest (with
    per-shard routing summaries since manifest v2); ``replicate``
    clones the hottest shards so dispatches balance across copies;
    ``info`` prints the manifest summary; ``verify`` checksums every
    array of every shard and replica.  Serve the result with ``repro
    serve --snapshot DIR`` (sharded directories are auto-detected).
    """
    if args.shard_command == "build":
        from repro.exec.shard import build_sharded

        sets = read_sets(Path(args.input))
        workload = read_sets(Path(args.workload)) if args.workload else None
        manifest = build_sharded(
            sets, args.out,
            n_shards=args.shards,
            partition=args.partition,
            tune=args.tune,
            budget=args.budget,
            recall_target=args.recall,
            k=args.k, b=args.bits, seed=args.seed,
            sample_pairs=args.sample_pairs,
            workload=workload,
            workload_range=(args.workload_low, args.workload_high),
            workers=args.workers,
            codec=args.codec,
        )
        live = sum(1 for e in manifest["shards"] if not e.get("empty"))
        print(
            f"sharded index {args.out}: {manifest['n_sets']} sets over "
            f"{manifest['n_shards']} shards ({live} live), "
            f"partition={args.partition} tune={args.tune}, built in "
            f"{manifest['build_seconds']:.2f}s"
        )
        for entry in manifest["shards"]:
            print(
                f"  {entry['dir']}: {entry['n_sets']} sets, "
                f"{entry['tables']} tables, weight {entry['weight']:.3f}, "
                f"expected recall {entry['expected_recall']:.3f}"
                + (" (empty)" if entry.get("empty") else "")
            )
        if manifest.get("routing"):
            routing = manifest["routing"]
            print(
                f"  routing: {routing['m_bits']}-bit universe sketches + "
                f"{routing['sig_k']}-coordinate "
                f"{routing.get('sig_scheme', 'minhash')} profiles per shard"
            )
        return 0
    if args.shard_command == "replicate":
        from repro.exec.shard import replicate_shards

        workload = read_sets(Path(args.workload)) if args.workload else None
        manifest = replicate_shards(
            args.path, top=args.top, copies=args.copies,
            workload=workload,
            workload_range=(args.workload_low, args.workload_high),
        )
        for entry in manifest["shards"]:
            if entry.get("replicas"):
                print(
                    f"{entry['dir']} (weight {entry['weight']:.3f}) -> "
                    f"{1 + len(entry['replicas'])} copies: "
                    + ", ".join(entry["replicas"])
                )
        return 0
    if args.shard_command == "info":
        from repro.exec.shard import open_sharded

        t0 = time.perf_counter()
        sharded = open_sharded(args.path)
        open_ms = (time.perf_counter() - t0) * 1e3
        m = sharded.manifest
        print(f"sharded index:     {args.path} (opened in {open_ms:.1f} ms)")
        print(f"format:            {m['format']} v{m['version']}")
        print(f"sets:              {m['n_sets']} over {m['n_shards']} shards "
              f"({len(sharded.live_shards)} live)")
        print(f"partition:         {m['partition']['method']} "
              f"(seed {m['partition']['seed']})")
        print(f"tuning:            {m['tune']}")
        gp = m["global_plan"]
        print(f"global plan:       {gp['tables_used']} tables, "
              f"expected recall {gp['expected_recall']:.3f}, "
              f"cuts {[round(c, 3) for c in gp['cut_points']]}")
        routing = m.get("routing")
        if routing:
            print(f"routing:           {routing['m_bits']}-bit universe "
                  f"sketches, {routing['sig_k']}-coordinate minhash "
                  f"profiles (seed {routing['sig_seed']})")
        else:
            print("routing:           none (v1 manifest or routing=False "
                  "build; queries fan out to every shard)")
        route_shards = (routing or {}).get("shards") or [None] * len(m["shards"])
        for i, entry in enumerate(m["shards"]):
            rs = route_shards[i]
            extra = f", sizes {rs['size_min']}-{rs['size_max']}" if rs else ""
            if entry.get("replicas"):
                extra += f", {1 + len(entry['replicas'])} copies"
            print(
                f"  {entry['dir']}: {entry['n_sets']} sets, "
                f"{entry['tables']} tables, weight {entry['weight']:.3f}"
                + extra
                + (" (empty)" if entry.get("empty") else "")
            )
        return 0
    # verify
    from repro.exec.shard import ShardError, verify_sharded
    from repro.exec.snapfile import SnapshotError

    try:
        summary = verify_sharded(args.path)
    except (ShardError, SnapshotError) as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    print(
        f"OK: {summary['live_shards']}/{summary['n_shards']} live shards, "
        f"{summary['n_sets']} sets, {summary['n_arrays']} arrays "
        f"({summary['arrays_bytes']:,} bytes) -- all checksums pass"
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: the always-on coalescing query service.

    Opens the snapshot once, binds a TCP socket and serves
    newline-delimited JSON queries until SIGTERM/SIGINT, coalescing
    concurrent requests into ``query_batch`` micro-batches (see
    :mod:`repro.serve.server`).  On drain, honors ``--prom-out`` /
    ``--events-out`` so a supervised run leaves its telemetry behind.
    """
    import asyncio

    from repro.serve import QueryServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        backend=args.backend,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_pending=args.max_pending,
        adaptive=not args.no_adaptive,
        route=args.route,
    )

    async def main() -> None:
        server = QueryServer(args.snapshot, config)
        await server.start()
        print(
            f"# serving {server.snapshot.n_sets} sets on "
            f"{config.host}:{server.port} -- backend={config.backend} "
            f"workers={config.workers} max_batch={config.max_batch} "
            f"max_wait={config.max_wait_ms}ms max_pending={config.max_pending}",
            file=sys.stderr, flush=True,
        )
        server.install_signal_handlers()
        await server.serve_forever()
        stats = server.stats()
        print(
            f"# drained: {stats['submitted']} requests in {stats['batches']} "
            f"batches (mean size {stats['mean_batch_size']:.1f}), "
            f"{stats['rejected_overload']} overload rejections",
            file=sys.stderr,
        )

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    _write_telemetry(args, None)
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """``loadgen``: closed-loop benchmark client for ``repro serve``.

    Query sets come from ``--set``/``--sets-file`` or are synthesized
    (``--synthetic N`` random integer sets, seeded).  Prints a JSON
    summary -- QPS, latency percentiles, observed micro-batch sizes,
    typed error counts -- to stdout.
    """
    import asyncio

    import numpy as np

    from repro.serve import run_loadgen

    query_sets: list[frozenset] = [
        frozenset(s.split()) for s in (args.set or [])
    ]
    if args.sets_file:
        query_sets.extend(read_sets(Path(args.sets_file)))
    if args.synthetic:
        rng = np.random.default_rng(args.seed)
        query_sets.extend(
            frozenset(int(x) for x in rng.integers(0, args.universe, size=args.set_size))
            for _ in range(args.synthetic)
        )
    if not query_sets:
        print("error: no query sets (use --set, --sets-file or --synthetic N)",
              file=sys.stderr)
        return 2

    result = asyncio.run(run_loadgen(
        args.host, args.port, query_sets, args.low, args.high,
        connections=args.connections, total=args.total,
        duration=args.duration, strategy=args.strategy,
        pipeline=args.pipeline,
    ))
    summary = result.summary()
    print(json.dumps(summary, indent=2))
    print(
        f"# {summary['n_ok']}/{summary['n_sent']} ok at {summary['qps']} qps, "
        f"p50/p99 {summary['latency_ms']['p50']}/{summary['latency_ms']['p99']} ms, "
        f"mean batch {summary['batch_size']['mean']}",
        file=sys.stderr,
    )
    return 0 if summary["n_ok"] == summary["n_sent"] else 1


def cmd_top(args: argparse.Namespace) -> int:
    """``top``: dashboard over a query-event JSONL log.

    Prints one dashboard frame and exits; with ``--follow`` the log is
    re-read every ``--interval`` seconds (a harness appending events
    with ``--events-out`` or ``EventLog.export_jsonl`` drives a live
    view; interrupt with Ctrl-C).  ``--window`` restricts statistics to
    the trailing N seconds of events.
    """
    from repro.obs import events as events_mod
    from repro.obs import top as top_mod

    path = Path(args.events)

    def show() -> int:
        try:
            records = list(events_mod.read_jsonl(path))
        except FileNotFoundError:
            print(f"error: no such event log: {path}", file=sys.stderr)
            return 1
        except json.JSONDecodeError as exc:
            print(f"error: {path} is not JSONL: {exc}", file=sys.stderr)
            return 1
        summary = top_mod.summarize(records, window_s=args.window)
        print(top_mod.render(summary, source=str(path)))
        return 0

    if not args.follow:
        return show()
    try:
        while True:
            # Clear screen + home, then redraw from the re-read log.
            print("\x1b[2J\x1b[H", end="")
            code = show()
            if code:
                return code
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_demo(args: argparse.Namespace) -> int:
    """``demo``: build and probe a synthetic index end to end."""
    from repro.data.weblog import make_weblog_collection

    sets = make_weblog_collection(n_sets=args.n_sets, seed=1)
    index = SetSimilarityIndex.build(sets, budget=200, recall_target=0.9, k=64, seed=1)
    result = index.query_above(sets[0], 0.5)
    print(
        f"built a demo index over {len(sets)} synthetic web sessions; "
        f"session 0 has {len(result.answers) - 1} >= 0.5-similar peers "
        f"({len(result.candidates)} candidates fetched)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Tunable similar-set retrieval (SIGMOD 2001 reproduction)"
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log more (-v: INFO, -vv: DEBUG) on the 'repro' loggers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="build an index from a set file")
    p_build.add_argument("--input", required=True, help="one set per line")
    p_build.add_argument("--output", required=True, help="index file to write")
    p_build.add_argument("--budget", type=int, default=500, help="hash-table budget")
    p_build.add_argument("--recall", type=float, default=0.9, help="recall target")
    p_build.add_argument("--k", type=int, default=100, help="min-hash signature length")
    p_build.add_argument("--bits", type=int, default=6, help="bits per min-hash value")
    p_build.add_argument(
        "--codec", default="full64",
        help="signature codec: full64 (default, bit-identical to prior "
             "builds), bbit:1|2|4|8 (b-bit minwise packing), superminhash, "
             "or combinations like superminhash+bbit:2",
    )
    p_build.add_argument("--seed", type=int, default=0)
    p_build.add_argument("--sample-pairs", type=int, default=100_000)
    p_build.add_argument(
        "--workers", type=int, default=1,
        help="plan the filter-table bulk loads on this many threads "
             "(the built index is identical at any count)",
    )
    p_build.add_argument(
        "--explain", action="store_true",
        help="trace the build and append its phase tree",
    )
    p_build.set_defaults(func=cmd_build)

    p_query = sub.add_parser("query", help="run similarity range queries")
    p_query.add_argument("--index", help="a saved index file (pickle format)")
    p_query.add_argument(
        "--snapshot",
        help="a zero-copy snapshot directory (see `snapshot save`); "
             "opened in O(ms) and always served as a batch",
    )
    p_query.add_argument(
        "--set", action="append",
        help="query elements, space separated (repeat for a batch)",
    )
    p_query.add_argument(
        "--sets-file",
        help="one query set per line; combined with --set into one batch",
    )
    p_query.add_argument("--low", type=float, default=0.5)
    p_query.add_argument("--high", type=float, default=1.0)
    p_query.add_argument(
        "--strategy", choices=("index", "scan", "auto"), default="index"
    )
    p_query.add_argument(
        "--explain", action="store_true",
        help="trace the query and append its plan tree",
    )
    p_query.add_argument(
        "--explain-json", action="store_true",
        help="trace the query and append the EXPLAIN JSON",
    )
    p_query.add_argument(
        "--workers", type=int, default=1,
        help="serve a batch from a frozen snapshot on this many workers "
             "(results and accounting are identical at any count)",
    )
    p_query.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="worker pool backend; 'process' maps a saved --snapshot "
             "from each worker process (genuine multi-core)",
    )
    p_query.add_argument(
        "--prom-out", metavar="FILE",
        help="write the metrics registry as Prometheus text exposition",
    )
    p_query.add_argument(
        "--events-out", metavar="FILE",
        help="write the captured query events as JSON Lines (repro top input)",
    )
    p_query.add_argument(
        "--trace-out", metavar="FILE",
        help="write the traced span tree as Chrome trace-event JSON "
             "(chrome://tracing / Perfetto); implies tracing",
    )
    p_query.add_argument(
        "--route", choices=("full", "safe", "sketch"), default="safe",
        help="shard routing when --snapshot is a sharded index: 'safe' "
             "skips provably-empty verification (bit-identical answers), "
             "'sketch' also skips whole shards via minhash profiles, "
             "'full' disables routing",
    )
    p_query.set_defaults(func=cmd_query)

    p_explain = sub.add_parser(
        "explain", help="trace one query and print its plan tree"
    )
    p_explain.add_argument("--index", required=True)
    p_explain.add_argument(
        "--set", required=True, help="query elements, space separated"
    )
    p_explain.add_argument("--low", type=float, default=0.5)
    p_explain.add_argument("--high", type=float, default=1.0)
    p_explain.add_argument(
        "--strategy", choices=("index", "scan", "auto"), default="index"
    )
    p_explain.add_argument(
        "--json", action="store_true", help="emit structured JSON instead"
    )
    p_explain.set_defaults(func=cmd_explain)

    p_stats = sub.add_parser(
        "stats", help="describe a built index or a shard manifest"
    )
    p_stats.add_argument("--index", help="a saved index file (pickle format)")
    p_stats.add_argument(
        "--shards", metavar="DIR",
        help="a sharded-index directory: print per-shard occupancy and "
             "the budget-allocation matrix instead",
    )
    p_stats.set_defaults(func=cmd_stats)

    p_demo = sub.add_parser("demo", help="build and query a synthetic demo index")
    p_demo.add_argument("--n-sets", type=int, default=500)
    p_demo.set_defaults(func=cmd_demo)

    p_snap = sub.add_parser(
        "snapshot", help="zero-copy mmap snapshots: save, inspect, verify"
    )
    snap_sub = p_snap.add_subparsers(dest="snapshot_command", required=True)

    p_snap_save = snap_sub.add_parser(
        "save", help="freeze a saved index into a mapped-array directory"
    )
    p_snap_save.add_argument("--index", required=True, help="a saved index file")
    p_snap_save.add_argument("--out", required=True, help="snapshot directory to write")
    p_snap_save.set_defaults(func=cmd_snapshot)

    p_snap_info = snap_sub.add_parser(
        "info", help="print a snapshot's manifest summary"
    )
    p_snap_info.add_argument("--path", required=True, help="snapshot directory")
    p_snap_info.set_defaults(func=cmd_snapshot)

    p_snap_verify = snap_sub.add_parser(
        "verify", help="checksum every array in a snapshot"
    )
    p_snap_verify.add_argument("--path", required=True, help="snapshot directory")
    p_snap_verify.set_defaults(func=cmd_snapshot)

    # Removed subcommand: kept parseable (with its old flags accepted
    # and ignored) so stale scripts get the pointer at `repro serve`
    # rather than an argparse usage dump.
    p_snap_serve = snap_sub.add_parser(
        "serve", help="removed -- use `repro serve` / `repro loadgen`"
    )
    p_snap_serve.add_argument("--path", help=argparse.SUPPRESS)
    p_snap_serve.add_argument("--set", action="append", help=argparse.SUPPRESS)
    p_snap_serve.add_argument("--sets-file", help=argparse.SUPPRESS)
    p_snap_serve.add_argument("--low", type=float, default=0.5,
                              help=argparse.SUPPRESS)
    p_snap_serve.add_argument("--high", type=float, default=1.0,
                              help=argparse.SUPPRESS)
    p_snap_serve.add_argument("--strategy", default="index",
                              help=argparse.SUPPRESS)
    p_snap_serve.add_argument("--workers", type=int, default=1,
                              help=argparse.SUPPRESS)
    p_snap_serve.add_argument("--backend", default="thread",
                              help=argparse.SUPPRESS)
    p_snap_serve.add_argument("--json-lines", action="store_true",
                              help=argparse.SUPPRESS)
    p_snap_serve.set_defaults(func=cmd_snapshot)

    p_shard = sub.add_parser(
        "shard",
        help="sharded scatter-gather indexes: build, inspect, verify",
    )
    shard_sub = p_shard.add_subparsers(dest="shard_command", required=True)

    p_shard_build = shard_sub.add_parser(
        "build", help="partition a set file into K per-shard snapshots"
    )
    p_shard_build.add_argument("--input", required=True, help="one set per line")
    p_shard_build.add_argument(
        "--out", required=True, help="sharded-index directory to write"
    )
    p_shard_build.add_argument(
        "--shards", type=int, default=4, help="number of shards (K)"
    )
    p_shard_build.add_argument(
        "--partition", choices=("hash", "cluster"), default="hash",
        help="'cluster' colocates minhash-similar sets (pairs with "
             "--tune workload)",
    )
    p_shard_build.add_argument(
        "--tune", choices=("mirror", "workload"), default="mirror",
        help="'mirror' builds every shard from the one global plan "
             "(bit-identical merged answers); 'workload' re-splits the "
             "global table budget across shards by workload weight",
    )
    p_shard_build.add_argument("--budget", type=int, default=500,
                               help="global hash-table budget")
    p_shard_build.add_argument("--recall", type=float, default=0.9)
    p_shard_build.add_argument("--k", type=int, default=100)
    p_shard_build.add_argument("--bits", type=int, default=6)
    p_shard_build.add_argument(
        "--codec", default="full64",
        help="signature codec (see `build --codec`); applied to every shard",
    )
    p_shard_build.add_argument("--seed", type=int, default=0)
    p_shard_build.add_argument("--sample-pairs", type=int, default=100_000)
    p_shard_build.add_argument(
        "--workload", metavar="FILE",
        help="query sets (one per line) used to weight shards under "
             "--tune workload",
    )
    p_shard_build.add_argument("--workload-low", type=float, default=0.5)
    p_shard_build.add_argument("--workload-high", type=float, default=1.0)
    p_shard_build.add_argument(
        "--workers", type=int, default=1, help="bulk-build worker threads"
    )
    p_shard_build.set_defaults(func=cmd_shard)

    p_shard_replicate = shard_sub.add_parser(
        "replicate",
        help="clone the hottest shards so dispatch can balance across "
             "byte-identical replicas",
    )
    p_shard_replicate.add_argument("--path", required=True,
                                   help="sharded-index directory")
    p_shard_replicate.add_argument(
        "--top", type=int, default=1,
        help="replicate the N heaviest live shards",
    )
    p_shard_replicate.add_argument(
        "--copies", type=int, default=2,
        help="total copies per replicated shard (primary included)",
    )
    p_shard_replicate.add_argument(
        "--workload", metavar="FILE",
        help="query sets (one per line): re-estimate shard weights from "
             "this workload instead of the build-time weights",
    )
    p_shard_replicate.add_argument("--workload-low", type=float, default=0.5)
    p_shard_replicate.add_argument("--workload-high", type=float, default=1.0)
    p_shard_replicate.set_defaults(func=cmd_shard)

    p_shard_info = shard_sub.add_parser(
        "info", help="print a shard manifest summary"
    )
    p_shard_info.add_argument("--path", required=True,
                              help="sharded-index directory")
    p_shard_info.set_defaults(func=cmd_shard)

    p_shard_verify = shard_sub.add_parser(
        "verify", help="checksum every array in every shard"
    )
    p_shard_verify.add_argument("--path", required=True,
                                help="sharded-index directory")
    p_shard_verify.set_defaults(func=cmd_shard)

    p_serve = sub.add_parser(
        "serve",
        help="always-on coalescing query service over a mapped snapshot "
             "or shard fleet",
    )
    p_serve.add_argument(
        "--snapshot", "--shards", dest="snapshot", required=True,
        help="snapshot directory (snapshot save) or sharded-index "
             "directory (shard build) -- sharded layouts are "
             "auto-detected and served scatter-gather",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7407,
        help="TCP port (0 picks an ephemeral port, printed on stderr)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="executor pool size per micro-batch",
    )
    p_serve.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="'process' serves batches from spawn workers mapping the "
             "same snapshot",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=64,
        help="micro-batch size cap; reaching it dispatches immediately",
    )
    p_serve.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="coalescing window upper bound per request (ms)",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=1024,
        help="admission bound; beyond it requests get a typed "
             "'overloaded' response",
    )
    p_serve.add_argument(
        "--no-adaptive", action="store_true",
        help="pin the window at --max-wait-ms instead of adapting it "
             "to the measured arrival rate",
    )
    p_serve.add_argument(
        "--prom-out", metavar="FILE",
        help="on drain, write the metrics registry as Prometheus text",
    )
    p_serve.add_argument(
        "--events-out", metavar="FILE",
        help="on drain, write captured query events as JSON Lines",
    )
    p_serve.add_argument(
        "--route", choices=("full", "safe", "sketch"), default="safe",
        help="shard routing for sharded layouts (see `repro query "
             "--route`); ignored for plain snapshots",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_loadgen = sub.add_parser(
        "loadgen", help="closed-loop load generator for `repro serve`"
    )
    p_loadgen.add_argument("--host", default="127.0.0.1")
    p_loadgen.add_argument("--port", type=int, default=7407)
    p_loadgen.add_argument(
        "--set", action="append",
        help="query elements, space separated (repeatable)",
    )
    p_loadgen.add_argument(
        "--sets-file", help="one query set per line",
    )
    p_loadgen.add_argument(
        "--synthetic", type=int, default=0, metavar="N",
        help="add N random integer query sets (seeded)",
    )
    p_loadgen.add_argument("--seed", type=int, default=0)
    p_loadgen.add_argument(
        "--universe", type=int, default=2000,
        help="element universe for --synthetic",
    )
    p_loadgen.add_argument(
        "--set-size", type=int, default=20,
        help="elements per synthetic query set",
    )
    p_loadgen.add_argument("--low", type=float, default=0.5)
    p_loadgen.add_argument("--high", type=float, default=1.0)
    p_loadgen.add_argument(
        "--strategy", choices=("index", "scan", "auto"), default="index"
    )
    p_loadgen.add_argument(
        "--connections", type=int, default=4,
        help="concurrent client connections",
    )
    p_loadgen.add_argument(
        "--pipeline", type=int, default=1,
        help="requests each connection keeps in flight",
    )
    p_loadgen.add_argument(
        "--total", "--requests", dest="total", type=int, default=None,
        help="total requests (default: one pass over the query pool)",
    )
    p_loadgen.add_argument(
        "--duration", type=float, default=None,
        help="run for this many seconds instead of a fixed total",
    )
    p_loadgen.set_defaults(func=cmd_loadgen)

    p_top = sub.add_parser(
        "top", help="terminal dashboard over a query-event JSONL log"
    )
    p_top.add_argument(
        "--events", required=True,
        help="JSON Lines event log (query --events-out / EventLog.export_jsonl)",
    )
    p_top.add_argument(
        "--follow", action="store_true",
        help="re-read the log every --interval seconds (live view)",
    )
    p_top.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh interval in seconds for --follow (default 2)",
    )
    p_top.add_argument(
        "--window", type=float, default=None,
        help="only aggregate events within this many seconds of the newest",
    )
    p_top.set_defaults(func=cmd_top)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(args.verbose)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
