"""Pluggable signature codecs: full64, b-bit minwise, SuperMinHash.

The embedding of Sections 3.1 + 3.2 factors into two independent
choices that this module makes explicit:

* a **generator** producing the length-``k`` value signature of a set
  (``minhash`` -- the paper's universal-hash MinHash -- or
  ``superminhash``, Ertl's lower-variance drop-in, arXiv:1706.05698);
* a **packing** turning the ``(k,)`` value vector into a packed bit
  vector the Hamming kernels operate on (``full64`` -- the Hadamard
  code of Section 3.2, ``m = 2**b`` bits per slot -- or ``bbit:β`` --
  b-bit minwise hashing after Li & Koenig: keep only the low ``β``
  bits of each value, ``β`` bits per slot).

A codec *spec string* names one of each, e.g. ``"full64"``,
``"bbit:2"``, ``"superminhash"`` or ``"superminhash+bbit:2"``; parts
omitted take the defaults (``minhash`` generator, ``full64`` packing).
:func:`parse_codec` normalizes a spec into a :class:`CodecSpec`.

Calibration: under ``bbit:β`` packing, a *disagreeing* slot still
matches bit-for-bit with probability about ``C = 2**-β`` because
truncated values of distinct hashes collide.  Two corrections follow:

* **per-bit** (used by the filter thresholds and the optimizer's
  error curves): the low bits of distinct uniform values match
  independently with probability 1/2 per bit, so the expected per-bit
  Hamming agreement is exactly ``(1 + s) / 2`` -- the *uncorrected*
  Theorem 1 curve.  b-bit indexes therefore plan with ``bias_bits =
  None``, whereas full64 keeps the Hadamard fixed-precision bias
  ``bias_bits = b``.
* **slot-level** (used by pair similarity estimates): the fraction of
  fully-agreeing slots ``m̂`` estimates ``s + (1 - s) * C``; the Li &
  Koenig variance-corrected estimator ``ŝ = (m̂ - C) / (1 - C)``
  inverts it.  See :meth:`repro.core.embedding.SetEmbedder.estimate_pairs`.

``full64`` is the bit-identical default: an embedder built with
``codec="full64"`` produces exactly the pre-codec vectors, plans and
answers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ecc import HadamardCode
from repro.core.minhash import MinHasher, SuperMinHasher


class CodecError(ValueError):
    """Unknown or malformed signature-codec spec string."""


#: Slot widths supported by the b-bit packing: must divide 64 so slots
#: never straddle word boundaries (the masked-popcount kernels rely on
#: this).
SUPPORTED_BBITS = (1, 2, 4, 8)

#: Generators a codec spec may name.
GENERATORS = ("minhash", "superminhash")


@dataclass(frozen=True)
class CodecSpec:
    """A parsed, normalized signature codec.

    Attributes
    ----------
    name:
        Canonical spec string (defaults elided): ``"full64"``,
        ``"bbit:2"``, ``"superminhash"``, ``"superminhash+bbit:2"``...
    generator:
        ``"minhash"`` or ``"superminhash"``.
    packing:
        ``"full64"`` (Hadamard code) or ``"bbit"`` (truncation).
    bits:
        Slot width for ``bbit`` packing; ``None`` for ``full64``.
    """

    name: str
    generator: str
    packing: str
    bits: int | None

    def bias_bits(self, b: int) -> int | None:
        """The ``b`` to feed Theorem-1 conversions and the optimizer.

        ``full64`` keeps the Hadamard fixed-precision collision bias
        (``2**-b`` per disagreeing slot-coordinate); ``bbit`` packing
        has exact per-bit agreement ``(1 + s) / 2`` (the low bits of
        distinct uniform values match with probability 1/2 each), so
        its curves use the uncorrected form.
        """
        return b if self.packing == "full64" else None


def parse_codec(spec: "str | CodecSpec") -> CodecSpec:
    """Parse and normalize a codec spec string.

    Accepts ``"full64"``, ``"bbit:β"`` (β in 1/2/4/8),
    ``"superminhash"`` and ``"generator+packing"`` combinations in
    either order.  Raises :class:`CodecError` (a ``ValueError``) for
    anything else -- snapshot open wraps this into a typed
    ``SnapshotFormatError`` so stale tooling fails loudly.
    """
    if isinstance(spec, CodecSpec):
        return spec
    if not isinstance(spec, str):
        raise CodecError(f"codec spec must be a string, got {type(spec).__name__}")
    generator = "minhash"
    packing = "full64"
    bits: int | None = None
    seen_generator = seen_packing = False
    parts = [p.strip() for p in spec.lower().split("+")]
    if not spec.strip() or any(not p for p in parts):
        raise CodecError(f"malformed codec spec: {spec!r}")
    for part in parts:
        if part in ("minhash", "superminhash"):
            if seen_generator:
                raise CodecError(f"codec spec names two generators: {spec!r}")
            seen_generator = True
            generator = part
        elif part == "full64" or part.startswith("bbit"):
            if seen_packing:
                raise CodecError(f"codec spec names two packings: {spec!r}")
            seen_packing = True
            if part == "full64":
                packing = "full64"
            else:
                head, sep, tail = part.partition(":")
                if head != "bbit" or not sep:
                    raise CodecError(f"malformed codec spec: {spec!r}")
                try:
                    bits = int(tail)
                except ValueError:
                    raise CodecError(f"malformed codec spec: {spec!r}") from None
                if bits not in SUPPORTED_BBITS:
                    raise CodecError(
                        f"unsupported b-bit width {bits} in {spec!r}; "
                        f"supported: {SUPPORTED_BBITS}"
                    )
                packing = "bbit"
        else:
            raise CodecError(f"unknown codec spec: {spec!r}")
    name_parts = []
    if generator != "minhash":
        name_parts.append(generator)
    if packing == "bbit":
        name_parts.append(f"bbit:{bits}")
    elif generator == "minhash":
        name_parts.append("full64")
    return CodecSpec(
        name="+".join(name_parts), generator=generator, packing=packing, bits=bits
    )


def make_hasher(generator: str, k: int, seed: int):
    """Instantiate the signature generator a codec names."""
    if generator == "minhash":
        return MinHasher(k=k, seed=seed)
    if generator == "superminhash":
        return SuperMinHasher(k=k, seed=seed)
    raise CodecError(f"unknown signature generator: {generator!r}")


def make_packer(spec: CodecSpec, b: int):
    """Instantiate the slot packer a codec names.

    Both packers expose the same interface (``m``, ``encode``,
    ``encode_many``), so :class:`~repro.core.embedding.SetEmbedder`
    is agnostic to which one it holds.
    """
    if spec.packing == "full64":
        return HadamardCode(b)
    return BBitPacker(spec.bits)


class BBitPacker:
    """b-bit minwise packing: keep the low ``β`` bits of each value.

    Li & Koenig's b-bit minwise hashing stores only ``β ∈ {1, 2, 4, 8}``
    bits per signature slot instead of a full codeword, shrinking the
    packed vector matrix by ``m / β`` (32x at the default ``b=6``,
    ``β=2``).  Slot ``i`` of a length-``k`` signature occupies bit
    positions ``[i*β, (i+1)*β)`` of the packed ``D = β * k``-bit
    string, using the same little-endian word layout as
    :func:`repro.hamming.bitvector.pack_bits`; ``β`` divides 64, so a
    slot never straddles a word and the tail word's padding slots are
    zero in every vector (they cancel under XOR).

    The attribute ``m`` is the per-slot bit width, mirroring
    :class:`~repro.core.ecc.HadamardCode` so ``D = m * k`` holds for
    either packer.
    """

    def __init__(self, bits: int):
        if bits not in SUPPORTED_BBITS:
            raise CodecError(
                f"b-bit width must be one of {SUPPORTED_BBITS}, got {bits}"
            )
        self.b = bits
        #: Bits per signature slot (packer interface; ``D = m * k``).
        self.m = bits
        self.slots_per_word = 64 // bits

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Packed truncation of one value vector: ``(k,) -> (words,)``."""
        values = np.asarray(values, dtype=np.uint64)
        return self.encode_many(values[np.newaxis, :])[0]

    def encode_many(self, value_matrix: np.ndarray) -> np.ndarray:
        """Pack many value vectors at once: ``(N, k) -> (N, ceil(k*β/64))``."""
        value_matrix = np.asarray(value_matrix, dtype=np.uint64) & np.uint64(
            (1 << self.b) - 1
        )
        n, k = value_matrix.shape
        spw = self.slots_per_word
        n_words = (k + spw - 1) // spw
        padded = np.zeros((n, n_words * spw), dtype=np.uint64)
        padded[:, :k] = value_matrix
        shifts = np.arange(spw, dtype=np.uint64) * np.uint64(self.b)
        grouped = padded.reshape(n, n_words, spw)
        return np.bitwise_or.reduce(grouped << shifts, axis=2)

    def __repr__(self) -> str:
        return f"BBitPacker(bits={self.b})"
