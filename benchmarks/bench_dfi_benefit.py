"""ABL-DFI -- Section 4.2's motivation for the Dissimilarity Filter
Index: low-similarity range queries without DFIs degenerate into
"everything minus SimVector", paying the whole collection.

Shape to reproduce: on ``[0, sigma]`` queries at the plan's DFI point,
the DFI-equipped index touches no more candidates (and no more
simulated time) than an SFI-only index with the same table budget, at
comparable recall.
"""

from repro.eval.experiments import ExperimentConfig, run_dfi_benefit


def test_dfi_benefit(benchmark, emit, scale):
    config = ExperimentConfig(
        n_sets=min(scale.n_sets, 1500),
        budget=300,
        n_queries=40,
        sample_pairs=scale.sample_pairs,
        k=scale.k,
    )
    result = benchmark.pedantic(
        run_dfi_benefit,
        args=("set1", config),
        kwargs={"n_queries": 40},
        rounds=1,
        iterations=1,
    )
    emit("ABL-DFI", result.table())
    by_name = {row[0]: row for row in result.rows}
    with_dfi, sfi_only = by_name["with DFIs"], by_name["SFI only"]
    # (label, avg candidates, avg recall, avg index time)
    assert with_dfi[1] <= sfi_only[1] * 1.05
    assert with_dfi[3] <= sfi_only[3] * 1.05
