"""Saving and loading built indexes.

Building an index costs a full pass over the collection plus the
optimization loop; a production deployment builds once and serves many
sessions.  This module persists a built
:class:`~repro.core.index.SetSimilarityIndex` -- embedder parameters,
plan, filter structures, simulated pages, vectors and the set store --
to a single file.

Format: a magic header + format version, then a pickle of the index
object (everything inside is plain Python/numpy state).  The version is
checked on load so stale files fail loudly rather than subtly.

Writes are crash-safe: the payload goes to a temporary file in the
target directory and is renamed into place with ``os.replace``, so a
failed or interrupted save leaves any pre-existing file untouched.
For a zero-copy format whose *open* is O(ms) instead of a full
deserialization, see :mod:`repro.exec.snapfile`.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path

MAGIC = b"REPRO-SSI"
#: Bumped to 2 when the key fingerprint changed from blake2b to the
#: splitmix64 word fold: fingerprints are baked into every stored page,
#: so version-1 files must fail loudly rather than probe-miss silently.
FORMAT_VERSION = 2

#: Indirection for fault-injection in tests (simulating a mid-write
#: failure without monkeypatching the global ``os`` module).
_fsync = os.fsync


class PersistenceError(RuntimeError):
    """Raised when a file is not a valid saved index."""


def save_index(index, path) -> None:
    """Serialize a built index to ``path``, atomically.

    The bytes are staged in a temporary file next to ``path`` and
    renamed over it only after a successful write + fsync; on any
    failure the temporary file is removed and a pre-existing ``path``
    is left exactly as it was.
    """
    path = Path(path)
    payload = pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(MAGIC)
            f.write(FORMAT_VERSION.to_bytes(2, "little"))
            f.write(payload)
            f.flush()
            _fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_index(path):
    """Load an index previously written by :func:`save_index`.

    Only load files you trust -- the payload is a pickle.  Short,
    empty or truncated files raise :class:`PersistenceError` (the
    header read is bounded, so a 1-byte file cannot masquerade as a
    surprising version number).
    """
    path = Path(path)
    header_len = len(MAGIC) + 2
    with open(path, "rb") as f:
        header = f.read(header_len)
        if len(header) < header_len:
            raise PersistenceError(
                f"{path} is not a saved index: only {len(header)} bytes, "
                f"shorter than the {header_len}-byte header"
            )
        if header[: len(MAGIC)] != MAGIC:
            raise PersistenceError(f"{path} is not a saved index (bad magic)")
        version = int.from_bytes(header[len(MAGIC):], "little")
        if version != FORMAT_VERSION:
            raise PersistenceError(
                f"{path} has format version {version}; this build reads {FORMAT_VERSION}"
            )
        try:
            return pickle.load(f)
        except EOFError as exc:
            raise PersistenceError(f"{path} is truncated: {exc}") from exc
        except pickle.UnpicklingError as exc:
            raise PersistenceError(f"{path} payload is corrupt: {exc}") from exc
