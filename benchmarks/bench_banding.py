"""ABL-BANDING -- the paper's filter vs modern signature banding.

Was the ECC embedding necessary?  The later-standard MinHash-LSH bands
``r`` raw signature values per key, colliding with probability
``s**r`` in *Jaccard* similarity; the paper's bit-sampling filter
obeys the same law but in Hamming similarity ``(1+s)/2``, which
compresses all of Jaccard into the top half of the curve.

Shape to confirm: at the same threshold and table count, banding
retrieves similar sets with comparable recall while dragging in far
fewer dissimilar candidates (better screen precision).  What banding
cannot do is the paper's dissimilarity retrieval -- there is no
complement of a min-hash signature -- which is the genuine payoff of
the Hamming-space formalism.
"""

import numpy as np
import pytest

from repro.baselines.banding_lsh import BandingIndex
from repro.core.embedding import SetEmbedder
from repro.core.filter_index import SimilarityFilterIndex
from repro.core.similarity import jaccard
from repro.data.weblog import make_set1
from repro.eval.report import format_table
from repro.storage.iomodel import IOCostModel
from repro.storage.pager import PageManager

THRESHOLD = 0.4
N_TABLES = 32


def test_banding_vs_bit_sampling(benchmark, emit, scale):
    sets = make_set1(min(scale.n_sets, 1000), seed=111)
    k = min(scale.k, 64)

    def run():
        embedder = SetEmbedder(k=k, b=6, seed=12)
        signatures = embedder.hasher.signature_matrix(sets)
        vectors = embedder.code.encode_many(signatures % np.uint64(64))

        banding = BandingIndex(
            THRESHOLD, N_TABLES, k, PageManager(IOCostModel()),
            expected_entries=len(sets), seed=13,
        )
        banding.insert_many(signatures, list(range(len(sets))))

        bit_sampling = SimilarityFilterIndex(
            (1 + THRESHOLD) / 2, N_TABLES, embedder.dimension,
            PageManager(IOCostModel()), expected_entries=len(sets), seed=13,
        )
        bit_sampling.insert_many(vectors, list(range(len(sets))))

        rng = np.random.default_rng(3)
        queries = [int(rng.integers(0, len(sets))) for _ in range(30)]
        rows = []
        for label, probe in (
            ("banding (modern)", lambda qi: banding.probe(signatures[qi])),
            ("bit-sampling (paper)", lambda qi: bit_sampling.probe(vectors[qi])),
        ):
            recalls, candidate_counts = [], []
            for qi in queries:
                truth = {
                    i for i, s in enumerate(sets)
                    if jaccard(s, sets[qi]) >= THRESHOLD
                }
                hits = probe(qi)
                recalls.append(len(hits & truth) / len(truth))
                candidate_counts.append(len(hits))
            rows.append(
                [label, float(np.mean(recalls)), float(np.mean(candidate_counts))]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ABL-BANDING",
        format_table(
            ["structure", "avg recall (>= 0.4 truth)", "avg candidates"], rows
        )
        + f"\n(threshold {THRESHOLD}, {N_TABLES} tables each; banding has no "
        "dissimilarity/complement analogue)",
    )
    band_row, bits_row = rows
    # Banding keeps recall while screening out far more dissimilar sets.
    assert band_row[1] >= bits_row[1] - 0.1
    assert band_row[2] < bits_row[2]
