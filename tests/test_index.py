"""End-to-end tests for SetSimilarityIndex (Sections 3-5 composed)."""

import numpy as np
import pytest

from repro.core.index import SetSimilarityIndex
from repro.core.similarity import jaccard


@pytest.fixture(scope="module")
def built_index(clustered_sets):
    return SetSimilarityIndex.build(
        clustered_sets, budget=80, recall_target=0.8, k=48, b=6, seed=7
    )


def _truth(sets, query_set, lo, hi):
    return {
        sid
        for sid, s in enumerate(sets)
        if lo <= jaccard(s, query_set) <= hi
    }


class TestBuild:
    def test_plan_within_budget(self, built_index):
        assert built_index.plan.tables_used <= 80

    def test_all_sets_indexed(self, built_index, clustered_sets):
        assert built_index.n_sets == len(clustered_sets)
        assert built_index.sids == set(range(len(clustered_sets)))

    def test_empty_collection(self):
        index = SetSimilarityIndex.build([], budget=10, k=8, b=4)
        assert index.n_sets == 0
        result = index.query({1, 2}, 0.0, 1.0)
        assert result.answers == []

    def test_deterministic_given_seed(self, clustered_sets):
        a = SetSimilarityIndex.build(clustered_sets[:40], budget=30, k=16, seed=5)
        b = SetSimilarityIndex.build(clustered_sets[:40], budget=30, k=16, seed=5)
        q = clustered_sets[0]
        ra = a.query(q, 0.4, 1.0)
        rb = b.query(q, 0.4, 1.0)
        assert ra.answers == rb.answers
        assert ra.candidates == rb.candidates


class TestQueryCorrectness:
    def test_no_false_positives_in_answers(self, built_index, clustered_sets):
        """Verification is exact: every answer is truly in range."""
        q = clustered_sets[5]
        result = built_index.query(q, 0.3, 0.9)
        for sid, sim in result.answers:
            assert 0.3 <= sim <= 0.9
            assert sim == pytest.approx(jaccard(clustered_sets[sid], q))

    def test_answers_subset_of_candidates(self, built_index, clustered_sets):
        result = built_index.query(clustered_sets[3], 0.2, 0.8)
        assert result.answer_sids <= result.candidates

    def test_high_similarity_recall(self, built_index, clustered_sets):
        """Planted cluster members sit at ~0.55 similarity; a >= 0.4
        query from a member should recover most of its cluster.

        0.4 typically coincides with a cut point, where capture is the
        filter's S-curve mid-section -- recall there is structurally
        ~p_{r,l}, not 1, hence the 0.7 floor rather than 0.9.
        """
        recalls = []
        for qi in range(0, 120, 10):
            q = clustered_sets[qi]
            truth = _truth(clustered_sets, q, 0.4, 1.0)
            got = built_index.query(q, 0.4, 1.0).answer_sids
            recalls.append(len(got & truth) / len(truth))
        assert np.mean(recalls) > 0.7

    def test_self_always_found(self, built_index, clustered_sets):
        """sim(q, q) = 1: the exact query set collides in every table."""
        for qi in (0, 17, 55):
            result = built_index.query(clustered_sets[qi], 0.9, 1.0)
            assert qi in result.answer_sids

    def test_full_range_query_returns_everything(self, built_index, clustered_sets):
        result = built_index.query(clustered_sets[0], 0.0, 1.0)
        assert result.answer_sids == set(range(len(clustered_sets)))

    def test_answers_sorted_by_similarity(self, built_index, clustered_sets):
        result = built_index.query(clustered_sets[2], 0.0, 1.0)
        sims = [s for _, s in result.answers]
        assert sims == sorted(sims, reverse=True)

    def test_low_range_query(self, built_index, clustered_sets):
        """Dissimilarity queries return only dissimilar sets."""
        q = clustered_sets[0]
        result = built_index.query_below(q, 0.1)
        for sid, sim in result.answers:
            assert sim <= 0.1

    def test_invalid_range(self, built_index, clustered_sets):
        with pytest.raises(ValueError):
            built_index.query(clustered_sets[0], 0.8, 0.2)
        with pytest.raises(ValueError):
            built_index.query(clustered_sets[0], -0.1, 0.5)

    def test_empty_query_set(self, built_index, clustered_sets):
        """The empty set is disjoint from every stored set."""
        result = built_index.query(frozenset(), 0.5, 1.0)
        assert result.answers == []
        # A full-range query must still return everything (at sim 0).
        full = built_index.query(frozenset(), 0.0, 1.0)
        assert full.answer_sids == set(range(len(clustered_sets)))
        assert all(sim == 0.0 for _, sim in full.answers)

    def test_unindexed_query_set(self, built_index, clustered_sets):
        """Query sets need not belong to the collection."""
        foreign = frozenset(range(100000, 100040))
        result = built_index.query_above(foreign, 0.5)
        assert result.answers == []


class TestQueryCost:
    def test_io_accounted(self, built_index, clustered_sets):
        result = built_index.query(clustered_sets[1], 0.4, 1.0)
        assert result.io.random_reads > 0
        assert result.io_time > 0
        assert result.total_time == result.io_time + result.cpu_time

    def test_narrow_query_fetches_fewer_candidates(self, built_index, clustered_sets):
        q = clustered_sets[1]
        narrow = built_index.query(q, 0.45, 1.0)
        assert len(narrow.candidates) < built_index.n_sets


class TestDynamicMaintenance:
    def test_insert_then_found(self, clustered_sets):
        index = SetSimilarityIndex.build(
            clustered_sets[:60], budget=40, recall_target=0.8, k=32, seed=3
        )
        new_set = set(clustered_sets[0]) | {999999}
        sid = index.insert(new_set)
        assert sid == 60
        assert index.n_sets == 61
        result = index.query_above(new_set, 0.9)
        assert sid in result.answer_sids

    def test_delete_then_gone(self, clustered_sets):
        index = SetSimilarityIndex.build(
            clustered_sets[:60], budget=40, recall_target=0.8, k=32, seed=3
        )
        target = clustered_sets[10]
        result = index.query(target, 0.9, 1.0)
        assert 10 in result.answer_sids
        index.delete(10)
        assert index.n_sets == 59
        result = index.query(target, 0.0, 1.0)
        assert 10 not in result.answer_sids
        assert 10 not in result.candidates

    def test_delete_unknown_sid(self, clustered_sets):
        index = SetSimilarityIndex.build(clustered_sets[:20], budget=20, k=16)
        with pytest.raises(KeyError):
            index.delete(999)

    def test_reinsert_after_delete(self, clustered_sets):
        index = SetSimilarityIndex.build(clustered_sets[:30], budget=20, k=16, seed=1)
        index.delete(5)
        sid = index.insert(clustered_sets[5])
        assert sid == 30
        result = index.query(clustered_sets[5], 0.95, 1.0)
        assert sid in result.answer_sids


class TestFromPlan:
    def test_from_plan_round_trip(self, clustered_sets):
        from repro.core.distribution import SimilarityDistribution
        from repro.core.optimizer import plan_index

        sets = clustered_sets[:50]
        dist = SimilarityDistribution.from_sets(sets)
        plan = plan_index(dist, 30, recall_target=0.7, b=6)
        index = SetSimilarityIndex.from_plan(sets, plan, dist, k=24, b=6, seed=2)
        assert index.n_sets == 50
        result = index.query(sets[0], 0.9, 1.0)
        assert 0 in result.answer_sids
