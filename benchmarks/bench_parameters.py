"""ABL-KB -- sensitivity to the embedding parameters k and b.

Not a paper figure, but the paper's design space: ``k`` (signature
length) controls estimator variance, ``b`` (bits per value) controls
the fixed-precision collision bias and the embedded dimensionality
``D = 2**b * k``.

Shapes to confirm: measured recall is stable in ``k`` beyond ~50 (the
paper used 100); shrinking ``b`` inflates measured similarity by about
``(1-s)/2**b`` but barely moves recall (the optimizer models the bias).
"""

import numpy as np
import pytest

from repro.core.index import SetSimilarityIndex
from repro.data.queries import QueryWorkload, ground_truth
from repro.data.weblog import make_set1
from repro.eval.report import format_table


def _measure(sets, queries, k, b):
    index = SetSimilarityIndex.build(
        sets, budget=200, recall_target=0.85, k=k, b=b, seed=3, sample_pairs=50_000
    )
    recalls, candidates = [], []
    for q in queries:
        truth = ground_truth(sets, q)
        if not truth:
            continue
        result = index.query(sets[q.set_index], q.sigma_low, q.sigma_high)
        recalls.append(len(result.answer_sids & truth) / len(truth))
        candidates.append(len(result.candidates))
    return float(np.mean(recalls)), float(np.mean(candidates))


def test_parameter_sensitivity(benchmark, emit, scale):
    sets = make_set1(min(scale.n_sets, 800), seed=41)
    queries = QueryWorkload(len(sets), seed=42).sample(40)

    def run():
        rows = []
        for k, b in ((25, 6), (50, 6), (100, 6), (100, 4), (100, 8)):
            recall, cands = _measure(sets, queries, k, b)
            rows.append([k, b, (1 << b) * k, recall, cands])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ABL-KB",
        format_table(["k", "b", "D bits", "measured recall", "avg candidates"], rows),
    )
    by_kb = {(r[0], r[1]): r for r in rows}
    # Recall is stable in k beyond ~50.
    assert abs(by_kb[(100, 6)][3] - by_kb[(50, 6)][3]) < 0.15
    # All configurations produce usable recall.
    assert all(r[3] > 0.5 for r in rows)
