"""Sharded scatter-gather: partitioning invariants and bit-equivalence.

The load-bearing guarantee of :mod:`repro.exec.shard` is that a
mirror-built shard fleet answers exactly like the unsharded index:
candidate membership is ``hash_key(sampled query bits) ==
hash_key(sampled set bits)``, which depends only on the plan's
samplers (seeded per filter offset) and never on bucket counts or
which shard holds a set -- so the union of per-shard candidates is the
global candidate set, false positives included, and merged verified
answers match bit for bit.  These tests pin that across 12 seeds x
K in {1, 2, 4} on the thread backend, plus a spawn-cost-bounded
process-backend pass, alongside hypothesis properties for the
partitioner (total, disjoint, rebuild-stable, permutation-stable) and
units for the global budget allocator and manifest integrity checks.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import SimilarityDistribution
from repro.core.index import SetSimilarityIndex
from repro.core.optimizer import (
    PlannedFilter,
    allocate_global_budget,
    plan_index,
)
from repro.core.similarity import jaccard
from repro.data.generators import planted_clusters
from repro.exec import ParallelExecutor
from repro.exec.shard import (
    SHARD_MANIFEST_FILE,
    ShardError,
    ShardedExecutor,
    build_sharded,
    is_sharded,
    open_sharded,
    partition_sets,
    verify_sharded,
)

RANGE = (0.3, 0.9)


def _workload(seed: int, n_sets: int = 90, n_queries: int = 6):
    rng = np.random.default_rng(seed)
    sets = planted_clusters(
        n_clusters=5, per_cluster=n_sets // 5, base_size=16, universe=900,
        mutation_rate=0.25, seed=seed,
    )
    queries = [sets[int(rng.integers(len(sets)))] for _ in range(n_queries - 2)]
    queries.append(frozenset(int(x) for x in rng.integers(0, 900, size=10)))
    queries.append(frozenset())
    return sets, queries


def _build_plan(sets, seed: int):
    dist = SimilarityDistribution.from_sets(sets, sample_pairs=1_500, seed=seed)
    plan = plan_index(dist, 36, recall_target=0.85, b=4)
    return plan, dist


def _baseline(sets, plan, dist, queries, seed: int):
    index = SetSimilarityIndex.from_plan(sets, plan, dist, k=24, b=4, seed=seed)
    return ParallelExecutor(index.freeze(), workers=1).query_batch(
        queries, *RANGE
    )


def _assert_bit_identical(got, want):
    for g, w in zip(got.results, want.results):
        assert g.answers == w.answers        # sids, sims AND ordering
        assert g.candidates == w.candidates  # incl. fingerprint collisions
    assert got.n_queries == want.n_queries


# -- partition invariants --------------------------------------------------

sets_strategy = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=400), max_size=20),
    max_size=60,
)


class TestPartitioning:
    @given(sets=sets_strategy, n_shards=st.integers(1, 8),
           seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_every_set_in_exactly_one_shard(self, sets, n_shards, seed):
        for method in ("hash", "cluster"):
            assignment = partition_sets(sets, n_shards, method=method, seed=seed)
            assert assignment.shape == (len(sets),)
            assert ((assignment >= 0) & (assignment < n_shards)).all()

    @given(sets=sets_strategy, n_shards=st.integers(1, 8),
           seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_stable_across_rebuilds(self, sets, n_shards, seed):
        for method in ("hash", "cluster"):
            a1 = partition_sets(sets, n_shards, method=method, seed=seed)
            a2 = partition_sets(list(sets), n_shards, method=method, seed=seed)
            assert (a1 == a2).all()

    @given(sets=st.lists(
        st.frozensets(st.integers(0, 400), min_size=1, max_size=20),
        min_size=1, max_size=40, unique=True,
    ), n_shards=st.integers(1, 6), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_hash_partition_permutation_stable(self, sets, n_shards, seed):
        """A set's shard is a function of its content, not its position."""
        a1 = partition_sets(sets, n_shards, seed=seed)
        perm = list(reversed(range(len(sets))))
        a2 = partition_sets([sets[i] for i in perm], n_shards, seed=seed)
        for new_pos, old_pos in enumerate(perm):
            assert a2[new_pos] == a1[old_pos]

    def test_cluster_partition_handles_empty_sets(self):
        sets = [frozenset(), frozenset({1, 2}), frozenset(), frozenset({3})]
        assignment = partition_sets(sets, 2, method="cluster", seed=0)
        assert assignment.shape == (4,)

    def test_cluster_partition_colocates_near_duplicates(self):
        sets, _ = _workload(seed=3, n_sets=60)
        assignment = partition_sets(sets, 4, method="cluster", seed=0)
        sizes = np.bincount(assignment, minlength=4)
        assert sizes.min() >= 10  # near-equal contiguous chunks

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="n_shards"):
            partition_sets([frozenset({1})], 0)
        with pytest.raises(ValueError, match="method"):
            partition_sets([frozenset({1})], 2, method="nope")


# -- mirror-mode bit-equivalence -------------------------------------------


class TestScatterGatherEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("n_shards", (1, 2, 4))
    def test_thread_backend_bit_identical(self, tmp_path, seed, n_shards):
        sets, queries = _workload(seed)
        plan, dist = _build_plan(sets, seed)
        want = _baseline(sets, plan, dist, queries, seed)
        build_sharded(
            sets, tmp_path / "s", n_shards=n_shards, k=24, b=4, seed=seed,
            plan=plan, dist=dist,
        )
        with ShardedExecutor(
            open_sharded(tmp_path / "s"), workers=2, backend="thread"
        ) as executor:
            got = executor.query_batch(queries, *RANGE)
        _assert_bit_identical(got, want)

    # Spawn start-up dominates process-backend runs, so this pass keeps
    # a couple of seeds; the thread sweep above covers the merge logic
    # both backends share (same scatter/merge code path).
    @pytest.mark.parametrize("seed", (0, 7))
    @pytest.mark.parametrize("n_shards", (1, 2, 4))
    def test_process_backend_bit_identical(self, tmp_path, seed, n_shards):
        sets, queries = _workload(seed)
        plan, dist = _build_plan(sets, seed)
        want = _baseline(sets, plan, dist, queries, seed)
        build_sharded(
            sets, tmp_path / "s", n_shards=n_shards, k=24, b=4, seed=seed,
            plan=plan, dist=dist,
        )
        with ShardedExecutor(
            open_sharded(tmp_path / "s"), workers=1, backend="process"
        ) as executor:
            got = executor.query_batch(queries, *RANGE)
        _assert_bit_identical(got, want)

    def test_scan_strategy_bit_identical(self, tmp_path):
        sets, queries = _workload(seed=5)
        plan, dist = _build_plan(sets, 5)
        want_index = SetSimilarityIndex.from_plan(
            sets, plan, dist, k=24, b=4, seed=5
        )
        want = ParallelExecutor(want_index.freeze(), workers=1).query_batch(
            queries, *RANGE, strategy="scan"
        )
        build_sharded(sets, tmp_path / "s", n_shards=3, k=24, b=4, seed=5,
                      plan=plan, dist=dist)
        with ShardedExecutor(open_sharded(tmp_path / "s")) as executor:
            got = executor.query_batch(queries, *RANGE, strategy="scan")
        _assert_bit_identical(got, want)

    def test_single_query_and_explain(self, tmp_path):
        sets, queries = _workload(seed=2)
        plan, dist = _build_plan(sets, 2)
        want = _baseline(sets, plan, dist, queries, 2)
        build_sharded(sets, tmp_path / "s", n_shards=2, k=24, b=4, seed=2,
                      plan=plan, dist=dist)
        with ShardedExecutor(open_sharded(tmp_path / "s")) as executor:
            single = executor.query(queries[0], *RANGE)
            assert single.answers == want.results[0].answers
            explained = executor.query_batch(queries, *RANGE, explain=True)
        assert explained.trace is not None
        shard_spans = [
            c for c in explained.trace.children if c.name == "query_batch"
        ]
        assert len(shard_spans) == 2  # one child trace per live shard

    def test_merged_io_and_timings_are_summed(self, tmp_path):
        sets, queries = _workload(seed=9)
        plan, dist = _build_plan(sets, 9)
        build_sharded(sets, tmp_path / "s", n_shards=3, k=24, b=4, seed=9,
                      plan=plan, dist=dist)
        with ShardedExecutor(open_sharded(tmp_path / "s")) as executor:
            got = executor.query_batch(queries, *RANGE)
        assert got.io.random_reads > 0
        assert got.exec_stats["sharded"] is True
        assert set(got.exec_stats["shard_wall_seconds"]) == {0, 1, 2}
        assert got.exec_stats["merge_seconds"] >= 0.0
        assert got.timings  # per-phase ms survived the merge

    def test_empty_shards_tiny_collection(self, tmp_path):
        sets = [frozenset({1, 2, 3}), frozenset({7, 8, 9, 10})]
        build_sharded(sets, tmp_path / "s", n_shards=4, k=16, b=4, seed=0,
                      budget=12, sample_pairs=50)
        sharded = open_sharded(tmp_path / "s", verify=True)
        assert len(sharded.live_shards) < 4
        with ShardedExecutor(sharded) as executor:
            got = executor.query_batch([sets[0], frozenset()], 0.5, 1.0)
        assert (0, 1.0) in got.results[0].answers
        assert got.results[1].answers == []

    def test_rejects_bad_range_and_strategy(self, tmp_path):
        sets, _ = _workload(seed=1, n_sets=30)
        build_sharded(sets, tmp_path / "s", n_shards=2, k=16, b=4, seed=1,
                      budget=12, sample_pairs=200)
        with ShardedExecutor(open_sharded(tmp_path / "s")) as executor:
            with pytest.raises(ValueError, match="range"):
                executor.query_batch([frozenset({1})], 0.9, 0.1)
            with pytest.raises(ValueError, match="strategy"):
                executor.query_batch([frozenset({1})], 0.1, 0.9,
                                     strategy="nope")


# -- workload tuning -------------------------------------------------------


class TestWorkloadTuning:
    def test_budget_respected_and_answers_exact(self, tmp_path):
        sets, queries = _workload(seed=4)
        manifest = build_sharded(
            sets, tmp_path / "w", n_shards=3, partition="cluster",
            tune="workload", budget=36, recall_target=0.85, k=24, b=4,
            seed=4, sample_pairs=1_500, workload=queries,
            workload_range=RANGE,
        )
        assert sum(e["tables"] for e in manifest["shards"]) <= 36
        with ShardedExecutor(open_sharded(tmp_path / "w")) as executor:
            got = executor.query_batch(queries, *RANGE)
        # Tuned shards trade the bit-equivalence guarantee, never
        # exactness: every merged answer is a true in-range pair.
        for query, result in zip(queries, got.results):
            for sid, sim in result.answers:
                assert sim == pytest.approx(jaccard(query, sets[sid]), abs=0)
                assert RANGE[0] <= sim <= RANGE[1]

    def test_skewed_weights_shift_tables(self, tmp_path):
        sets, _ = _workload(seed=6)
        # Hammer one cluster so its shard is hot.
        hot_queries = [sets[0]] * 20
        manifest = build_sharded(
            sets, tmp_path / "w", n_shards=3, partition="cluster",
            tune="workload", budget=36, k=24, b=4, seed=6,
            sample_pairs=1_500, workload=hot_queries, workload_range=RANGE,
        )
        entries = manifest["shards"]
        hot = max(entries, key=lambda e: e["weight"])
        cold = min(entries, key=lambda e: e["weight"])
        assert hot["weight"] > cold["weight"]
        assert hot["tables"] >= cold["tables"]


class TestGlobalAllocator:
    def _dist(self, seed=0):
        sets, _ = _workload(seed=seed, n_sets=40)
        return SimilarityDistribution.from_sets(sets, sample_pairs=800, seed=seed)

    def test_budget_bound_and_floor(self):
        dist = self._dist()
        shard_filters = [
            [PlannedFilter(0.5, "sfi"), PlannedFilter(0.5, "dfi")]
            for _ in range(3)
        ]
        totals = allocate_global_budget(shard_filters, 30, [dist] * 3)
        assert sum(totals) <= 30
        for filters in shard_filters:
            for f in filters:
                assert f.n_tables >= 1

    def test_weights_bias_allocation(self):
        dist = self._dist()
        shard_filters = [[PlannedFilter(0.5, "sfi")] for _ in range(2)]
        totals = allocate_global_budget(
            shard_filters, 20, [dist, dist], weights=[10.0, 1.0]
        )
        assert totals[0] >= totals[1]

    def test_validation(self):
        dist = self._dist()
        with pytest.raises(ValueError):
            allocate_global_budget([[PlannedFilter(0.5, "sfi")]], 20, [dist, dist])
        with pytest.raises(ValueError):
            allocate_global_budget(
                [[PlannedFilter(0.5, "sfi")]] * 2, 1, [dist] * 2
            )
        assert allocate_global_budget([], 10, []) == []


# -- manifest integrity ----------------------------------------------------


class TestManifest:
    def test_open_verify_roundtrip(self, tmp_path):
        sets, _ = _workload(seed=8, n_sets=40)
        build_sharded(sets, tmp_path / "s", n_shards=2, k=16, b=4, seed=8,
                      budget=16, sample_pairs=500)
        assert is_sharded(tmp_path / "s")
        assert not is_sharded(tmp_path)
        summary = verify_sharded(tmp_path / "s")
        assert summary["n_sets"] == len(sets)
        assert summary["live_shards"] == 2

    def test_detects_shard_corruption(self, tmp_path):
        sets, _ = _workload(seed=8, n_sets=40)
        build_sharded(sets, tmp_path / "s", n_shards=2, k=16, b=4, seed=8,
                      budget=16, sample_pairs=500)
        victim = next((tmp_path / "s").glob("shard-*/arrays.bin"))
        # Flip a byte inside a named array (padding isn't checksummed).
        manifest = json.loads((victim.parent / "manifest.json").read_text())
        spec = max(manifest["arrays"].values(), key=lambda s: s["nbytes"])
        blob = bytearray(victim.read_bytes())
        blob[spec["offset"] + spec["nbytes"] // 2] ^= 0xFF
        victim.write_bytes(bytes(blob))
        with pytest.raises(Exception):  # integrity error from snapfile
            verify_sharded(tmp_path / "s")

    def test_detects_manifest_tampering(self, tmp_path):
        sets, _ = _workload(seed=8, n_sets=40)
        build_sharded(sets, tmp_path / "s", n_shards=2, k=16, b=4, seed=8,
                      budget=16, sample_pairs=500)
        victim = next((tmp_path / "s").glob("shard-*/manifest.json"))
        manifest = json.loads(victim.read_text())
        manifest["n_sets"] += 1
        victim.write_text(json.dumps(manifest))
        with pytest.raises(ShardError, match="checksum"):
            open_sharded(tmp_path / "s")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ShardError, match=SHARD_MANIFEST_FILE):
            open_sharded(tmp_path)

    def test_sidmap_partition_enforced(self, tmp_path):
        sets, _ = _workload(seed=8, n_sets=40)
        build_sharded(sets, tmp_path / "s", n_shards=2, k=16, b=4, seed=8,
                      budget=16, sample_pairs=500)
        manifest_path = tmp_path / "s" / SHARD_MANIFEST_FILE
        manifest = json.loads(manifest_path.read_text())
        manifest["n_sets"] += 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ShardError, match="partition"):
            open_sharded(tmp_path / "s")


# -- serving over shards ---------------------------------------------------


class TestShardedServe:
    def test_server_routes_through_scatter_gather(self, tmp_path):
        import asyncio

        from repro.serve import QueryServer, ServeConfig, run_loadgen

        sets, queries = _workload(seed=10)
        plan, dist = _build_plan(sets, 10)
        want = _baseline(sets, plan, dist, queries[:4], 10)
        build_sharded(sets, tmp_path / "s", n_shards=2, k=24, b=4, seed=10,
                      plan=plan, dist=dist)

        async def run():
            server = QueryServer(tmp_path / "s", ServeConfig(port=0, workers=2))
            await server.start()
            stats = server.stats()
            result = await run_loadgen(
                "127.0.0.1", server.port, queries[:4], *RANGE,
                connections=2, total=8, duration=None,
                strategy="index", pipeline=1,
            )
            server.request_drain()
            await server.drain()
            return stats, result

        stats, result = asyncio.run(run())
        assert stats["sharded"] is True and stats["n_shards"] == 2
        assert result.n_ok == result.n_sent == 8
        for qidx, answers in result.answers.items():
            assert [tuple(a) for a in answers] == want.results[qidx].answers
