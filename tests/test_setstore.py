"""Unit tests for the set store (heap + B-tree facade)."""

import pytest

from repro.storage.iomodel import IOCostModel
from repro.storage.pager import PageManager
from repro.storage.setstore import SetStore


def _store(element_bytes=64):
    pager = PageManager(IOCostModel())
    return SetStore(pager, element_bytes=element_bytes), pager


class TestSetStore:
    def test_insert_get_roundtrip(self):
        store, _ = _store()
        sid = store.insert({1, 2, 3})
        assert store.get(sid) == frozenset({1, 2, 3})

    def test_sids_sequential(self):
        store, _ = _store()
        sids = store.insert_many([{1}, {2}, {3}])
        assert sids == [0, 1, 2]
        assert store.n_sets == 3

    def test_get_missing(self):
        store, _ = _store()
        with pytest.raises(KeyError):
            store.get(5)

    def test_delete(self):
        store, _ = _store()
        sid = store.insert({1, 2})
        store.delete(sid)
        assert store.n_sets == 0
        with pytest.raises(KeyError):
            store.get(sid)

    def test_scan_skips_deleted(self):
        store, _ = _store()
        store.insert_many([{1}, {2}, {3}])
        store.delete(1)
        assert [sid for sid, _ in store.scan()] == [0, 2]

    def test_scan_returns_sets(self):
        store, _ = _store()
        store.insert_many([{1, 2}, {3}])
        scanned = dict(store.scan())
        assert scanned == {0: frozenset({1, 2}), 1: frozenset({3})}

    def test_large_set_spans_pages(self):
        store, _ = _store(element_bytes=64)  # 64 elements per 4 KiB page
        small_sid = store.insert(set(range(10)))
        pages_small = store.n_pages
        big_sid = store.insert(set(range(200)))  # 4 pages
        assert store.n_pages - pages_small == 4
        assert len(store.get(big_sid)) == 200
        assert len(store.get(small_sid)) == 10

    def test_get_charges_btree_plus_heap(self):
        store, pager = _store()
        sid = store.insert(set(range(10)))
        before = pager.io.snapshot()
        store.get(sid)
        delta = pager.io.snapshot() - before
        # Fully cached B-tree (the paper's costing): only the heap
        # record read is charged.
        assert delta.random_reads == 1

    def test_scan_sequential_cost(self):
        store, pager = _store()
        store.insert_many([set(range(5)) for _ in range(8)])
        before = pager.io.snapshot()
        list(store.scan())
        delta = pager.io.snapshot() - before
        assert delta.sequential_reads == 8
        assert delta.random_reads == 0

    def test_elements_preserved_exactly(self):
        store, _ = _store()
        original = frozenset({"url/a", "url/b", 42})
        sid = store.insert(original)
        assert store.get(sid) == original
