"""Set-mining primitives built on the similarity index.

Section 1 of the paper positions similarity range retrieval as "a
primitive for effective similarity based query processing on sets ...
a basis for the development of efficient set mining algorithms such as
clustering algorithms for sets, classification algorithms based on set
similarity as well as join algorithms."  This subpackage delivers those
algorithms on top of :class:`repro.core.index.SetSimilarityIndex`:

* :mod:`repro.mining.join` -- similarity self-join (all pairs above a
  threshold) with an exact baseline for comparison.
* :mod:`repro.mining.topk` -- top-k most-similar retrieval by
  descending threshold probing.
* :mod:`repro.mining.clustering` -- leader-follower clustering (the
  "what's related" feature) and nearest-neighbour classification.
* :mod:`repro.mining.neighbors` -- nearest and furthest neighbour (the
  Section 7 LSH / Ind00 connections).
"""

from repro.mining.clustering import classify_nearest, leader_clustering
from repro.mining.join import exact_self_join, similarity_self_join
from repro.mining.neighbors import furthest_neighbor, nearest_neighbor
from repro.mining.topk import top_k_similar

__all__ = [
    "classify_nearest",
    "exact_self_join",
    "furthest_neighbor",
    "leader_clustering",
    "nearest_neighbor",
    "similarity_self_join",
    "top_k_similar",
]
