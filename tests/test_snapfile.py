"""Zero-copy snapshot files: round-trip fidelity and loud failure.

``save_snapshot`` writes a frozen index image as aligned raw arrays +
a checksummed manifest; ``open_snapshot`` maps it back as a
:class:`~repro.exec.snapfile.MappedSnapshot` that must behave exactly
like the in-memory ``index.freeze()`` snapshot -- same answers, same
simulated page charges, same counter movements.  These tests pin the
round trip (including the int64 / utf-8 / pickle set-element
encodings and lazy set materialization), property-test the raw array
pack layer across dtypes and shapes, and check that every corruption
mode -- wrong format, wrong version, truncation, flipped bytes,
garbled object pickles -- fails loudly with the right exception.
"""

from __future__ import annotations

import json
import pickle
import zlib
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import SetSimilarityIndex
from repro.data.generators import planted_clusters, uniform_random_sets
from repro.exec import (
    MappedSnapshot,
    ParallelExecutor,
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    open_snapshot,
    save_snapshot,
    verify_snapshot,
)
from repro.exec.snapfile import (
    ARRAYS_FILE,
    MANIFEST_FILE,
    OBJECTS_FILE,
    open_arrays,
    write_arrays,
)
from repro.obs import metrics

RANGES = [(0.5, 1.0), (0.0, 0.4), (0.2, 0.8), (0.0, 1.0), (0.7, 0.9)]


def _build_index(seed: int = 1, elements: str = "int"):
    if seed % 2:
        sets = planted_clusters(
            n_clusters=5, per_cluster=7, base_size=20, universe=1200,
            mutation_rate=0.2, seed=seed,
        )
    else:
        sets = uniform_random_sets(n_sets=40, set_size=14, universe=700, seed=seed)
    if elements == "str":
        sets = [frozenset(f"w{e}" for e in s) for s in sets]
    elif elements == "mixed":
        sets = [frozenset((e, f"w{e}")) | s for s, e in zip(sets, range(len(sets)))]
    index = SetSimilarityIndex.build(
        sets, budget=36, recall_target=0.8, k=24, b=4, seed=seed,
        sample_pairs=2_000,
    )
    rng = np.random.default_rng(seed)
    queries = [sets[int(rng.integers(len(sets)))] for _ in range(6)]
    queries.append(frozenset())
    return index, sets, queries


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    """One built index saved as a snapshot, shared across this module."""
    index, sets, queries = _build_index(seed=1)
    path = tmp_path_factory.mktemp("snap") / "snapdir"
    snapshot = index.freeze()
    try:
        save_snapshot(snapshot, path)
    finally:
        index.thaw()
    return index, sets, queries, path


# -- round trip ------------------------------------------------------------


def test_roundtrip_state_matches_frozen(saved):
    index, _, _, path = saved
    mapped = open_snapshot(path)
    frozen = index.freeze()
    try:
        assert isinstance(mapped, MappedSnapshot)
        assert mapped.n_sets == frozen.n_sets
        assert mapped.sids == frozen.sids
        assert mapped.row_of == frozen.row_of
        assert mapped.all_sids == frozen.all_sids
        assert mapped.fallback_sids == frozen.fallback_sids
        np.testing.assert_array_equal(mapped.vector_matrix, frozen.vector_matrix)
        np.testing.assert_array_equal(mapped.set_indptr, frozen.set_indptr)
        np.testing.assert_array_equal(mapped.set_data, frozen.set_data)
        np.testing.assert_array_equal(mapped.set_sizes, frozen.set_sizes)
        np.testing.assert_array_equal(mapped.fetch_random, frozen.fetch_random)
        np.testing.assert_array_equal(mapped.fetch_seq, frozen.fetch_seq)
        assert mapped.n_bits == frozen.n_bits
        assert mapped.scan_pages == frozen.scan_pages
        assert mapped.cost.seq_cost == frozen.cost.seq_cost
        assert mapped.cost.random_cost == frozen.cost.random_cost
        assert mapped.cost.cpu_cost == frozen.cost.cpu_cost
        assert set(mapped.sfis) == set(frozen.sfis)
        assert set(mapped.dfis) == set(frozen.dfis)
        for sid in frozen.sids:
            assert mapped.sets[sid] == frozen.sets[sid]
    finally:
        index.thaw()


def test_mapped_arrays_are_readonly_memmaps(saved):
    _, _, _, path = saved
    mapped = open_snapshot(path)
    assert not mapped.vector_matrix.flags.writeable
    with pytest.raises((ValueError, RuntimeError)):
        mapped.vector_matrix[0, 0] = 1


def _assert_batches_identical(got, want):
    assert got.n_queries == want.n_queries
    for g, w in zip(got.results, want.results):
        assert g.answers == w.answers
        assert g.candidates == w.candidates
    assert got.io == want.io
    assert got.io_time == want.io_time
    assert got.cpu_time == want.cpu_time
    assert got.pages_saved == want.pages_saved
    assert got.fetches_saved == want.fetches_saved


@pytest.mark.parametrize("lo,hi", RANGES)
def test_mapped_snapshot_serves_identically(saved, lo, hi):
    """Thread executor over the mapped snapshot == sequential index."""
    index, _, queries, path = saved
    sequential = index.query_batch(queries, lo, hi)
    mapped = open_snapshot(path)
    with ParallelExecutor(mapped, workers=2) as ex:
        served = ex.query_batch(queries, lo, hi)
    _assert_batches_identical(served, sequential)


def test_mapped_snapshot_scan_strategy(saved):
    index, _, queries, path = saved
    sequential = index.query_batch(queries, 0.3, 0.9, strategy="scan")
    mapped = open_snapshot(path)
    with ParallelExecutor(mapped, workers=3) as ex:
        served = ex.query_batch(queries, 0.3, 0.9, strategy="scan")
    _assert_batches_identical(served, sequential)


def test_sets_materialize_lazily(saved):
    _, sets, _, path = saved
    mapped = open_snapshot(path)
    counter = metrics.counter("snapshot.sets_materialized")
    base = counter.value
    assert mapped.__dict__.get("_sets") is None  # nothing touched yet
    sid = mapped.sids[3]
    first = mapped.sets[sid]
    assert counter.value == base + 1
    again = mapped.sets[sid]  # memoized: no second materialization
    assert again is first
    assert counter.value == base + 1


def test_cold_open_is_fast_and_counted(saved):
    import time

    _, _, _, path = saved
    opens = metrics.counter("snapshot.opens")
    mapped_bytes = metrics.counter("snapshot.bytes_mapped")
    base_opens, base_bytes = opens.value, mapped_bytes.value
    t0 = time.perf_counter()
    mapped = open_snapshot(path)
    elapsed = time.perf_counter() - t0
    assert elapsed < 1.0  # generous bound; typically ~3 ms
    assert opens.value == base_opens + 1
    assert mapped_bytes.value > base_bytes
    assert mapped.n_sets > 0


# -- element encodings -----------------------------------------------------


def test_string_elements_use_utf8_encoding(tmp_path):
    index, sets, queries = _build_index(seed=2, elements="str")
    path = tmp_path / "snap"
    index.save_snapshot(path)
    manifest = json.loads((path / MANIFEST_FILE).read_text())
    assert manifest["sets_encoding"] == "utf8"
    assert not (path / "sets.pkl").exists()
    mapped = open_snapshot(path)
    for sid in mapped.sids:
        assert mapped.sets[sid] == index.store.get(sid)
    sequential = index.query_batch(queries, 0.2, 0.9)
    with ParallelExecutor(mapped, workers=2) as ex:
        _assert_batches_identical(ex.query_batch(queries, 0.2, 0.9), sequential)


def test_mixed_elements_fall_back_to_pickle(tmp_path):
    index, sets, queries = _build_index(seed=3, elements="mixed")
    path = tmp_path / "snap"
    index.save_snapshot(path)
    manifest = json.loads((path / MANIFEST_FILE).read_text())
    assert manifest["sets_encoding"] == "pickle"
    assert (path / "sets.pkl").exists()
    mapped = open_snapshot(path)
    for sid in mapped.sids:
        assert mapped.sets[sid] == index.store.get(sid)
    sequential = index.query_batch(queries, 0.2, 0.9)
    with ParallelExecutor(mapped, workers=2) as ex:
        _assert_batches_identical(ex.query_batch(queries, 0.2, 0.9), sequential)


def test_huge_int_elements_fall_back_to_pickle(tmp_path):
    sets = [frozenset({2 ** 70 + i, i}) for i in range(30)]
    index = SetSimilarityIndex.build(
        sets, budget=12, recall_target=0.7, k=16, b=4, seed=0, sample_pairs=500
    )
    path = tmp_path / "snap"
    index.save_snapshot(path)
    manifest = json.loads((path / MANIFEST_FILE).read_text())
    assert manifest["sets_encoding"] == "pickle"
    mapped = open_snapshot(path)
    assert mapped.sets[mapped.sids[0]] == index.store.get(mapped.sids[0])


def test_tiny_collection_with_mostly_empty_tables(tmp_path):
    """Three sets leave most buckets (and some runs) empty -- the CSR
    flattening and the mapped probe must survive the degenerate end."""
    sets = [frozenset({1, 2, 3}), frozenset({2, 3, 4}), frozenset({10, 11})]
    index = SetSimilarityIndex.build(
        sets, budget=12, recall_target=0.7, k=16, b=4, seed=0, sample_pairs=100
    )
    path = tmp_path / "snap"
    index.save_snapshot(path)
    mapped = open_snapshot(path)
    assert mapped.n_sets == 3
    queries = [frozenset({1, 2, 3}), frozenset({99}), frozenset()]
    for lo, hi in [(0.5, 1.0), (0.0, 1.0), (0.0, 0.4)]:
        sequential = index.query_batch(queries, lo, hi)
        with ParallelExecutor(mapped, workers=2) as ex:
            _assert_batches_identical(ex.query_batch(queries, lo, hi), sequential)


def test_save_snapshot_refuses_mapped(saved):
    _, _, _, path = saved
    mapped = open_snapshot(path)
    with pytest.raises(SnapshotError):
        save_snapshot(mapped, path.parent / "again")


def test_index_save_snapshot_leaves_live_index_mutable(tmp_path):
    index, _, _ = _build_index(seed=4)
    index.save_snapshot(tmp_path / "snap")
    sid = index.insert(frozenset({1, 2, 3}))  # not frozen afterwards
    assert sid in index.sids


# -- the array pack layer (property tests) ---------------------------------

DTYPES = ("<i8", "<u8", "|u1", "<f8")

array_strategy = st.sampled_from(DTYPES).flatmap(
    lambda dt: st.one_of(
        st.lists(st.integers(0, 200), min_size=0, max_size=40).map(
            lambda xs: np.asarray(xs, dtype=np.dtype(dt))
        ),
        st.tuples(st.integers(0, 6), st.integers(0, 6)).flatmap(
            lambda shape: st.just(
                np.arange(shape[0] * shape[1], dtype=np.dtype(dt)).reshape(shape)
            )
        ),
    )
)


@given(st.lists(array_strategy, min_size=0, max_size=6))
@settings(max_examples=60, deadline=None)
def test_write_open_arrays_roundtrip(tmp_path_factory, arrays):
    path = tmp_path_factory.mktemp("packs") / "arrays.bin"
    named = {f"a{i:02d}": a for i, a in enumerate(arrays)}
    specs = write_arrays(path, named)
    assert list(specs) == list(named)
    for spec in specs.values():
        assert spec["offset"] % 64 == 0
    got = open_arrays(path, specs, verify=True)
    for name, array in named.items():
        assert got[name].dtype == array.dtype
        assert got[name].shape == array.shape
        np.testing.assert_array_equal(got[name], array)


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_open_arrays_detects_flipped_byte(tmp_path_factory, data):
    arrays = {
        "x": np.arange(37, dtype=np.int64),
        "y": np.arange(64, dtype=np.uint8).reshape(8, 8),
    }
    path = tmp_path_factory.mktemp("packs") / "arrays.bin"
    specs = write_arrays(path, arrays)
    raw = bytearray(path.read_bytes())
    # Flip a byte inside a spec'd region (padding bytes are unchecked).
    spec = specs[data.draw(st.sampled_from(sorted(specs)))]
    pos = spec["offset"] + data.draw(st.integers(0, spec["nbytes"] - 1))
    raw[pos] ^= 0xFF
    path.write_bytes(bytes(raw))
    with pytest.raises(SnapshotIntegrityError):
        open_arrays(path, specs, verify=True)
    # ...but the structural (non-verify) open still maps it: checksums
    # are opt-in so cold opens stay O(ms).
    open_arrays(path, specs, verify=False)


def test_open_arrays_rejects_shape_dtype_mismatch(tmp_path):
    path = tmp_path / "arrays.bin"
    specs = write_arrays(path, {"x": np.arange(10, dtype=np.int64)})
    bad = {"x": dict(specs["x"], shape=[11])}
    with pytest.raises(SnapshotFormatError):
        open_arrays(path, bad)


def test_open_arrays_rejects_truncated_file(tmp_path):
    path = tmp_path / "arrays.bin"
    specs = write_arrays(path, {"x": np.arange(100, dtype=np.int64)})
    path.write_bytes(path.read_bytes()[:50])
    with pytest.raises(SnapshotIntegrityError):
        open_arrays(path, specs)


# -- loud failures on snapshot directories ---------------------------------


def _copy_snapshot(src: Path, dst: Path) -> Path:
    dst.mkdir()
    for child in src.iterdir():
        (dst / child.name).write_bytes(child.read_bytes())
    return dst


def test_open_missing_directory(tmp_path):
    with pytest.raises(SnapshotError):
        open_snapshot(tmp_path / "nope")


def test_open_directory_without_manifest(tmp_path):
    (tmp_path / "empty").mkdir()
    with pytest.raises(SnapshotError):
        open_snapshot(tmp_path / "empty")


def test_open_rejects_garbage_manifest(saved, tmp_path):
    _, _, _, src = saved
    bad = _copy_snapshot(src, tmp_path / "bad")
    (bad / MANIFEST_FILE).write_text("{not json")
    with pytest.raises(SnapshotFormatError):
        open_snapshot(bad)


def test_open_rejects_wrong_format_name(saved, tmp_path):
    _, _, _, src = saved
    bad = _copy_snapshot(src, tmp_path / "bad")
    manifest = json.loads((bad / MANIFEST_FILE).read_text())
    manifest["format"] = "somebody-elses-format"
    (bad / MANIFEST_FILE).write_text(json.dumps(manifest))
    with pytest.raises(SnapshotFormatError):
        open_snapshot(bad)


def test_open_rejects_future_version(saved, tmp_path):
    _, _, _, src = saved
    bad = _copy_snapshot(src, tmp_path / "bad")
    manifest = json.loads((bad / MANIFEST_FILE).read_text())
    manifest["version"] = 99
    (bad / MANIFEST_FILE).write_text(json.dumps(manifest))
    with pytest.raises(SnapshotFormatError) as exc:
        open_snapshot(bad)
    assert "99" in str(exc.value)


def test_open_rejects_truncated_arrays(saved, tmp_path):
    _, _, _, src = saved
    bad = _copy_snapshot(src, tmp_path / "bad")
    blob = (bad / ARRAYS_FILE).read_bytes()
    (bad / ARRAYS_FILE).write_bytes(blob[: len(blob) // 2])
    with pytest.raises(SnapshotIntegrityError):
        open_snapshot(bad)


def test_open_rejects_missing_arrays_file(saved, tmp_path):
    _, _, _, src = saved
    bad = _copy_snapshot(src, tmp_path / "bad")
    (bad / ARRAYS_FILE).unlink()
    with pytest.raises(SnapshotIntegrityError):
        open_snapshot(bad)


def test_open_rejects_corrupt_objects_pickle(saved, tmp_path):
    _, _, _, src = saved
    bad = _copy_snapshot(src, tmp_path / "bad")
    blob = bytearray((bad / OBJECTS_FILE).read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    (bad / OBJECTS_FILE).write_bytes(bytes(blob))
    with pytest.raises(SnapshotIntegrityError):
        open_snapshot(bad)


def test_verify_catches_silent_array_corruption(saved, tmp_path):
    """A flipped array byte passes the O(ms) open but fails verify."""
    _, _, _, src = saved
    bad = _copy_snapshot(src, tmp_path / "bad")
    manifest = json.loads((bad / MANIFEST_FILE).read_text())
    spec = manifest["arrays"]["vector_matrix"]
    blob = bytearray((bad / ARRAYS_FILE).read_bytes())
    blob[spec["offset"] + 1] ^= 0xFF
    (bad / ARRAYS_FILE).write_bytes(bytes(blob))
    open_snapshot(bad)  # structural open cannot see it
    with pytest.raises(SnapshotIntegrityError):
        open_snapshot(bad, verify=True)
    with pytest.raises(SnapshotIntegrityError):
        verify_snapshot(bad)


def test_verify_snapshot_summary(saved):
    _, _, _, path = saved
    summary = verify_snapshot(path)
    assert summary["n_sets"] > 0
    assert summary["n_arrays"] == len(
        json.loads((path / MANIFEST_FILE).read_text())["arrays"]
    )
    assert summary["filters"] >= 1


def test_crashed_save_leaves_no_openable_snapshot(tmp_path, monkeypatch):
    """Dying before the manifest commit point leaves nothing to open."""
    import repro.exec.snapfile as snapfile

    index, _, _ = _build_index(seed=5)
    real_dumps = pickle.dumps

    def exploding_dumps(obj, *a, **kw):
        raise RuntimeError("disk full")

    monkeypatch.setattr(snapfile.pickle, "dumps", exploding_dumps)
    with pytest.raises(RuntimeError):
        index.save_snapshot(tmp_path / "snap")
    monkeypatch.setattr(snapfile.pickle, "dumps", real_dumps)
    assert not (tmp_path / "snap" / MANIFEST_FILE).exists()
    with pytest.raises(SnapshotError):
        open_snapshot(tmp_path / "snap")
    # A rerun into the same directory succeeds and opens cleanly.
    index.save_snapshot(tmp_path / "snap")
    assert open_snapshot(tmp_path / "snap").n_sets == len(index.sids)


def test_objects_crc_mismatch_names_objects_file(saved, tmp_path):
    _, _, _, src = saved
    bad = _copy_snapshot(src, tmp_path / "bad")
    manifest = json.loads((bad / MANIFEST_FILE).read_text())
    manifest["objects_crc32"] = (manifest["objects_crc32"] + 1) % 2 ** 32
    (bad / MANIFEST_FILE).write_text(json.dumps(manifest))
    with pytest.raises(SnapshotIntegrityError) as exc:
        open_snapshot(bad)
    assert OBJECTS_FILE in str(exc.value)
    assert zlib.crc32(b"") == 0  # keep the zlib import honest
