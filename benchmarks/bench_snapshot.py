"""Zero-copy snapshot cold-start + process-backend scaling (BENCH-SNAPSHOT).

Quantifies what the mmap snapshot format (:mod:`repro.exec.snapfile`)
buys over the pickle persistence path, and what worker processes buy
over one:

* **cold open** -- wall-clock of ``open_snapshot()`` (manifest parse +
  ``np.memmap`` views, O(ms)) against ``load_index()`` (a full pickle
  deserialization pass, O(index)) at several collection sizes, plus
  the first-batch wall so the lazy page-in cost is visible too;
* **process scaling** -- wall-clock of ``ParallelExecutor(...,
  backend="process")`` at 1/2/4/8 spawn workers, every count
  equivalence-gated against the sequential index (answers, simulated
  page counts, CPU accounting, bit for bit).  On hosts where
  ``os.cpu_count() == 1`` (CI containers) the JSON flags
  ``single_core_host`` and the speedup gate binds only where a second
  core exists; equivalence is gated everywhere.

Run standalone (used by CI in smoke mode)::

    PYTHONPATH=src python benchmarks/bench_snapshot.py [--smoke] [--out PATH]

Writes ``BENCH_snapshot.json`` at the repo root: per collection size
the pickle-load and snapshot-open walls and their ratio, the on-disk
byte counts, and per worker count the measured process-backend wall
and equivalence verdict.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_snapshot.json"

WORKER_COUNTS = (1, 2, 4, 8)

SIZES = (1_000, 4_000, 12_000)
SMOKE_SIZES = (300,)

RANGE = (0.2, 0.8)  # exercises probes, complements and verification


def build_workload(n_sets: int, budget: int, k: int, seed: int):
    """Planted-cluster collection + explicitly planned index (the
    BENCH-PARALLEL setting: cuts 0.2/0.5/0.8 keep the filters
    selective at every size)."""
    from repro.core.index import SetSimilarityIndex
    from repro.core.optimizer import (
        IndexPlan,
        SimilarityDistribution,
        greedy_allocate,
        place_filters,
    )
    from repro.data.generators import planted_clusters

    per_cluster = 20
    sets = planted_clusters(
        n_clusters=max(1, n_sets // per_cluster),
        per_cluster=per_cluster,
        base_size=40,
        universe=20_000,
        mutation_rate=0.15,
        seed=seed,
    )
    dist = SimilarityDistribution.from_sets(sets, sample_pairs=50_000, seed=seed)
    cuts = [0.2, 0.5, 0.8]
    filters = place_filters(cuts, delta=0.2)
    greedy_allocate(filters, budget, dist, 6)
    plan = IndexPlan(
        cut_points=cuts,
        delta=0.2,
        filters=filters,
        expected_recall=0.9,
        expected_precision=0.5,
        b=6,
        met_target=True,
    )
    index = SetSimilarityIndex.from_plan(sets, plan, dist, k=k, b=6, seed=seed)
    return sets, index


def _batch_equal(a, b) -> bool:
    """Answers, candidates and every simulated cost, bit for bit."""
    return (
        a.io == b.io
        and a.io_time == b.io_time
        and a.cpu_time == b.cpu_time
        and a.pages_saved == b.pages_saved
        and a.fetches_saved == b.fetches_saved
        and all(
            ga.answers == gb.answers and ga.candidates == gb.candidates
            for ga, gb in zip(a.results, b.results)
        )
    )


def _dir_bytes(path: Path) -> int:
    return sum(f.stat().st_size for f in path.iterdir() if f.is_file())


def bench_cold_open(index, workdir: Path, repeats: int) -> dict:
    """Pickle load vs snapshot open, best-of-``repeats`` wall each."""
    from repro.core.persistence import load_index, save_index
    from repro.exec.snapfile import open_snapshot

    pickle_path = workdir / "index.ssi"
    snap_path = workdir / "snapshot.d"
    t0 = time.perf_counter()
    save_index(index, pickle_path)
    pickle_save_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    index.save_snapshot(snap_path)
    snapshot_save_s = time.perf_counter() - t0

    load_secs, open_secs = [], []
    for _ in range(repeats):
        t0 = time.perf_counter()
        load_index(pickle_path)
        load_secs.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        open_snapshot(snap_path)
        open_secs.append(time.perf_counter() - t0)
    load_s, open_s = min(load_secs), min(open_secs)
    return {
        "pickle_bytes": pickle_path.stat().st_size,
        "snapshot_bytes": _dir_bytes(snap_path),
        "pickle_save_seconds": round(pickle_save_s, 4),
        "snapshot_save_seconds": round(snapshot_save_s, 4),
        "pickle_load_seconds": round(load_s, 5),
        "snapshot_open_seconds": round(open_s, 5),
        "cold_open_speedup": round(load_s / open_s, 1),
        "snapshot_path": snap_path,
    }


def bench_process_scaling(
    index, queries, snap_path: Path, repeats: int
) -> list[dict]:
    """Process-backend wall at each worker count, equivalence-gated."""
    from repro.exec import ParallelExecutor

    lo, hi = RANGE
    sequential = index.query_batch(queries, lo, hi)
    rows = []
    for workers in WORKER_COUNTS:
        with ParallelExecutor(snap_path, workers=workers, backend="process") as ex:
            # Warm: spawns the pool, imports numpy in every worker and
            # maps the snapshot before the timed runs.
            first = ex.query_batch(queries, lo, hi)
            best_wall, batch = None, first
            for _ in range(repeats):
                t0 = time.perf_counter()
                batch = ex.query_batch(queries, lo, hi)
                wall = time.perf_counter() - t0
                if best_wall is None or wall < best_wall:
                    best_wall = wall
            n_workers_seen = len(
                {t["thread"] for t in batch.exec_stats["tasks"]}
            )
        rows.append({
            "workers": workers,
            "wall_seconds": round(best_wall, 4),
            "distinct_worker_pids": n_workers_seen,
            "equivalent": _batch_equal(batch, sequential)
            and _batch_equal(first, sequential),
        })
    base = rows[0]["wall_seconds"]
    for row in rows:
        row["measured_speedup"] = round(base / row["wall_seconds"], 2)
    return rows


def run_bench(
    sizes=SIZES,
    batch_size: int = 64,
    budget: int = 200,
    k: int = 100,
    seed: int = 17,
    repeats: int = 3,
) -> dict:
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-snapshot-") as tmp:
        tmp = Path(tmp)
        for n_sets in sizes:
            sets, index = build_workload(n_sets, budget, k, seed)
            workdir = tmp / f"n{n_sets}"
            workdir.mkdir()
            row = {"n_sets": len(sets)}
            row.update(bench_cold_open(index, workdir, repeats))
            snap_path = row.pop("snapshot_path")
            if n_sets == max(sizes):
                queries = [sets[i % len(sets)] for i in range(batch_size)]
                row["process_backend"] = bench_process_scaling(
                    index, queries, snap_path, repeats
                )
            rows.append(row)
    return {
        "experiment": "BENCH-SNAPSHOT",
        "workload": {
            "generator": "planted_clusters",
            "plan": "explicit cuts [0.2, 0.5, 0.8], delta 0.2",
            "sizes": [r["n_sets"] for r in rows],
            "batch_size": batch_size,
            "budget": budget,
            "k": k,
            "seed": seed,
            "range": RANGE,
        },
        "host": {
            "cpu_count": os.cpu_count(),
            "single_core_host": (os.cpu_count() or 1) <= 1,
        },
        "metric_note": (
            "cold_open_speedup = pickle_load / snapshot_open wall; the "
            "pickle pays a full deserialization pass, the snapshot only "
            "parses the manifest and builds memmap views, so the ratio "
            "grows with collection size.  process_backend walls are "
            "honest wall clock over spawn workers that each map the "
            "same snapshot; measured_speedup > 1 needs free physical "
            "cores (see host.single_core_host) -- equivalence is gated "
            "at every worker count regardless"
        ),
        "rows": rows,
    }


def format_table(payload: dict) -> str:
    lines = [
        f"{'n_sets':>8} {'pickle(s)':>10} {'open(s)':>9} {'speedup':>8} "
        f"{'pickle(B)':>11} {'snap(B)':>11}"
    ]
    lines.append("-" * len(lines[0]))
    for r in payload["rows"]:
        lines.append(
            f"{r['n_sets']:>8} {r['pickle_load_seconds']:>10} "
            f"{r['snapshot_open_seconds']:>9} {r['cold_open_speedup']:>7}x "
            f"{r['pickle_bytes']:>11,} {r['snapshot_bytes']:>11,}"
        )
        for w in r.get("process_backend", []):
            lines.append(
                f"  process workers={w['workers']}: {w['wall_seconds']}s "
                f"({w['measured_speedup']}x, pids={w['distinct_worker_pids']}, "
                f"{'equal' if w['equivalent'] else 'DIVERGED'})"
            )
    return "\n".join(lines)


def check(payload: dict, smoke: bool = False) -> list[str]:
    """The bench's own acceptance gates; returns failure messages."""
    failures = []
    largest = max(payload["rows"], key=lambda r: r["n_sets"])
    for row in payload["rows"]:
        if "process_backend" not in row:
            continue
        for w in row["process_backend"]:
            if not w["equivalent"]:
                failures.append(
                    f"process backend diverged from sequential at "
                    f"workers={w['workers']}, n_sets={row['n_sets']}"
                )
    if smoke:
        return failures  # smoke checks the machinery, not the numbers
    if largest["cold_open_speedup"] < 10.0:
        failures.append(
            f"cold open only {largest['cold_open_speedup']}x faster than "
            f"pickle at n_sets={largest['n_sets']} (need >= 10x)"
        )
    if not payload["host"]["single_core_host"]:
        four = next(
            w for w in largest["process_backend"] if w["workers"] == 4
        )
        if four["measured_speedup"] < 1.5:
            failures.append(
                f"process backend speedup {four['measured_speedup']}x < 1.5x "
                f"at 4 workers on a {payload['host']['cpu_count']}-core host"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workload for CI: checks equivalence, not the numbers",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    if args.smoke:
        payload = run_bench(
            sizes=SMOKE_SIZES, batch_size=16, budget=80, k=32, repeats=1,
        )
        payload["smoke"] = True
    else:
        payload = run_bench()
    print(format_table(payload))
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    failures = check(payload, smoke=args.smoke)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
