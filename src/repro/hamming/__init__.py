"""Hamming-space primitives: packed bit vectors, distances, bit sampling.

The indexing pipeline of the paper embeds sets into a high-dimensional
Hamming space (Section 3.2) and then probes that space with hash tables
keyed on random bit samples (Section 4).  This subpackage provides the
bit-level machinery both steps rely on:

* :mod:`repro.hamming.bitvector` -- packing/unpacking bits into uint64
  words and elementwise operations on packed vectors and matrices.
* :mod:`repro.hamming.distance` -- Hamming distance and Hamming
  similarity (Definitions 3 and 4) for packed representations.
* :mod:`repro.hamming.sampling` -- extraction of ``r`` randomly chosen
  bit positions into compact hash keys (the sampling step of the
  Similarity Filter Index, Section 4.1).
"""

from repro.hamming.bitvector import (
    WORD_BITS,
    complement,
    n_words,
    pack_bits,
    unpack_bits,
)
from repro.hamming.distance import (
    hamming_distance,
    hamming_distance_many,
    hamming_similarity,
    hamming_similarity_many,
)
from repro.hamming.sampling import BitSampler

__all__ = [
    "WORD_BITS",
    "BitSampler",
    "complement",
    "hamming_distance",
    "hamming_distance_many",
    "hamming_similarity",
    "hamming_similarity_many",
    "n_words",
    "pack_bits",
    "unpack_bits",
]
