"""Baselines the paper compares against (or warns against).

* :mod:`repro.baselines.sequential_scan` -- the default evaluation
  strategy of Section 6: read the whole collection sequentially and
  verify each set.  Exact, with cost linear in collection size.
* :mod:`repro.baselines.inverted_index` -- an exact element-based
  inverted index; not in the paper, but the natural exact competitor
  and the ground-truth oracle for large experiments.
* :mod:`repro.baselines.naive_embedding` -- the strawman of Example 1:
  concatenating raw binary min-hash values distorts similarity, which
  is precisely why the error-correcting code exists.
* :mod:`repro.baselines.signature_file` -- the superimposed-coding
  signature file of the related work (Section 7): scan-only, no
  accuracy guarantee.
"""

from repro.baselines.banding_lsh import BandingIndex
from repro.baselines.inverted_index import InvertedIndex
from repro.baselines.naive_embedding import NaiveBinaryEmbedder, embedding_distortion
from repro.baselines.sequential_scan import SequentialScan
from repro.baselines.signature_file import SignatureFile

__all__ = [
    "BandingIndex",
    "InvertedIndex",
    "NaiveBinaryEmbedder",
    "SequentialScan",
    "SignatureFile",
    "embedding_distortion",
]
