"""Always-on query serving: coalescing TCP service over mmap snapshots.

The offline engine already proved the economics: batched queries are
3-4x cheaper per query than a loop, snapshots open in O(ms), and the
thread/process executors are bit-identical to the sequential path.
This package converts those savings into a *service*:

- :mod:`~repro.serve.protocol` -- the newline-delimited JSON codec
  (typed errors, size limits) shared by the server, the load
  generator and the one-shot ``snapshot serve`` path;
- :mod:`~repro.serve.coalescer` -- the micro-batching state machine
  (:class:`~repro.serve.coalescer.CoalescerCore`, synchronous and
  property-tested) plus its asyncio wrapper
  (:class:`~repro.serve.coalescer.Coalescer`);
- :mod:`~repro.serve.server` -- :class:`~repro.serve.server.QueryServer`,
  the asyncio TCP server with admission control, graceful drain and
  full ``serve.*`` telemetry (``repro serve``);
- :mod:`~repro.serve.loadgen` -- the closed-loop benchmark client
  (``repro loadgen``), whose collected answers feed the serving
  equivalence gate.
"""

from repro.serve.coalescer import (
    Batch,
    Coalescer,
    CoalescerCore,
    DrainingError,
    OverloadedError,
)
from repro.serve.loadgen import LoadgenResult, run_loadgen
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    QueryRequest,
    decode_request,
    decode_response,
    encode_request,
)
from repro.serve.server import QueryServer, ServeConfig, run_server

__all__ = [
    "Batch",
    "Coalescer",
    "CoalescerCore",
    "DrainingError",
    "LoadgenResult",
    "MAX_LINE_BYTES",
    "OverloadedError",
    "ProtocolError",
    "QueryRequest",
    "QueryServer",
    "ServeConfig",
    "decode_request",
    "decode_response",
    "encode_request",
    "run_loadgen",
    "run_server",
]
