"""'What's related': clustering web sessions with similarity queries.

Section 1 suggests the index as a primitive for set-mining algorithms,
e.g. "a clustering operation based on set similarity could identify
clusters of web pages which are similar but not copies of each other"
-- the 'what's related' feature.

This example runs a simple leader-follower clustering over synthetic
web-log sessions using only the index's range-query primitive: each
unassigned session becomes a leader and pulls in every session at
similarity >= THRESHOLD.  The planted browsing templates should be
recovered as clusters.

Run:  python examples/weblog_clustering.py
"""

from __future__ import annotations

import numpy as np

from repro import SetSimilarityIndex
from repro.data import make_weblog_collection

THRESHOLD = 0.35
N_SESSIONS = 600
N_TEMPLATES = 12


def main() -> None:
    sessions = make_weblog_collection(
        n_sets=N_SESSIONS,
        n_templates=N_TEMPLATES,
        template_size=60,
        template_keep=0.85,
        personal_pages=12,
        seed=5,
    )
    index = SetSimilarityIndex.build(
        sessions, budget=200, recall_target=0.85, k=64, seed=11
    )
    print(f"indexed {len(sessions)} sessions "
          f"(expected recall {index.plan.expected_recall:.2f})")

    unassigned = set(range(len(sessions)))
    clusters: list[list[int]] = []
    probes = 0
    while unassigned:
        leader = min(unassigned)
        result = index.query_above(sessions[leader], THRESHOLD)
        probes += 1
        members = ({sid for sid, _ in result.answers} | {leader}) & unassigned
        unassigned -= members
        clusters.append(sorted(members))

    clusters.sort(key=len, reverse=True)
    sizes = [len(c) for c in clusters]
    print(f"\n{len(clusters)} clusters from {probes} index probes "
          f"(planted templates: {N_TEMPLATES})")
    print(f"sizes: {sizes[:15]}{'...' if len(sizes) > 15 else ''}")

    # Validate cohesion: average within-cluster similarity of the
    # largest cluster should comfortably exceed the threshold region.
    from repro import jaccard

    biggest = clusters[0]
    rng = np.random.default_rng(0)
    pairs = min(200, len(biggest) * (len(biggest) - 1) // 2)
    sims = []
    for _ in range(pairs):
        i, j = rng.choice(len(biggest), size=2, replace=False)
        sims.append(jaccard(sessions[biggest[i]], sessions[biggest[j]]))
    if sims:
        print(f"largest cluster: {len(biggest)} sessions, "
              f"mean within-similarity {np.mean(sims):.2f}")


if __name__ == "__main__":
    main()
