"""Tests for the structured query-event subsystem (repro.obs.events)."""

from __future__ import annotations

import json

import pytest

from repro.obs import events, metrics
from repro.obs.events import (
    EVENT_FIELDS,
    EventLog,
    QueryEvent,
    events_from_dicts,
    read_jsonl,
)


def make_event(latency_ms=1.0, **overrides) -> QueryEvent:
    fields = dict(
        ts=1000.0, kind="query", latency_ms=latency_ms, sim_time=12.5,
        n_queries=1, n_candidates=8, n_verified=5, pages_read=20,
        cache_hits=3, backend="sequential", workers=1, strategy="index",
        sigma_low=0.5, sigma_high=1.0,
        timings={"embed": 0.1, "probe": 0.4, "fetch": 0.05, "verify": 0.3},
    )
    fields.update(overrides)
    return QueryEvent(**fields)


class TestEventLog:
    def test_ring_is_bounded(self):
        log = EventLog(capacity=5)
        for i in range(20):
            log.record(make_event(ts=float(i)))
        kept = log.events()
        assert len(kept) == 5
        assert [e.ts for e in kept] == [15.0, 16.0, 17.0, 18.0, 19.0]
        assert log.stats()["seen"] == 20
        assert log.stats()["buffered"] == 5

    def test_sampling_is_deterministic_with_seed(self):
        runs = []
        for _ in range(2):
            log = EventLog(sample=0.3, seed=42, slow_ms=float("inf"))
            for i in range(200):
                log.record(make_event(ts=float(i)))
            runs.append([e.ts for e in log.events()])
        assert runs[0] == runs[1]
        assert 0 < len(runs[0]) < 200

    def test_sample_zero_keeps_nothing_but_counts_seen(self):
        log = EventLog(sample=0.0, slow_ms=float("inf"))
        for i in range(50):
            assert not log.record(make_event(ts=float(i)))
        assert log.events() == []
        assert log.stats() == {
            "seen": 50, "kept": 0, "slow": 0, "buffered": 0, "slow_buffered": 0,
        }

    def test_slow_queries_bypass_sampling(self):
        log = EventLog(sample=0.0, slow_ms=10.0)
        log.record(make_event(latency_ms=5.0))
        log.record(make_event(latency_ms=10.0))
        log.record(make_event(latency_ms=250.0))
        slow = log.slow_events()
        assert [e.latency_ms for e in slow] == [10.0, 250.0]
        assert all(e.slow and not e.sampled for e in slow)
        # Sampled ring stays empty at sample=0; the slow ring caught them.
        assert log.events() == []
        assert log.stats()["slow"] == 2

    def test_slow_event_lands_in_both_rings_at_full_sampling(self):
        log = EventLog(sample=1.0, slow_ms=10.0)
        log.record(make_event(latency_ms=50.0))
        assert len(log.events()) == 1
        assert len(log.slow_events()) == 1
        event = log.events()[0]
        assert event.slow and event.sampled

    def test_disabled_log_records_nothing(self):
        log = EventLog()
        log.configure(enabled=False)
        assert not log.record(make_event())
        assert log.stats()["seen"] == 0
        log.configure(enabled=True)
        assert log.record(make_event())

    def test_configure_validates_sample(self):
        with pytest.raises(ValueError):
            EventLog(sample=1.5)
        with pytest.raises(ValueError):
            EventLog().configure(sample=-0.1)

    def test_clear_resets_rings_and_stats(self):
        log = EventLog()
        log.record(make_event(latency_ms=500.0))
        log.clear()
        assert log.events() == []
        assert log.slow_events() == []
        assert log.stats()["seen"] == 0


class TestJsonlRoundtrip:
    def test_export_and_read_back(self, tmp_path):
        log = EventLog(slow_ms=10.0)
        originals = [make_event(ts=float(i), latency_ms=float(i)) for i in range(15)]
        for e in originals:
            log.record(e)
        path = tmp_path / "events.jsonl"
        n = log.export_jsonl(path)
        assert n == 15
        records = list(read_jsonl(path))
        assert len(records) == 15
        for record in records:
            assert set(EVENT_FIELDS) <= set(record)
        rebuilt = events_from_dicts(records)
        assert rebuilt == originals

    def test_export_all_deduplicates_slow_events(self, tmp_path):
        log = EventLog(slow_ms=10.0)
        log.record(make_event(ts=1.0, latency_ms=1.0))
        log.record(make_event(ts=2.0, latency_ms=99.0))  # both rings
        path = tmp_path / "all.jsonl"
        assert log.export_jsonl(path, which="all") == 2
        assert log.export_jsonl(path, which="slow") == 1
        with pytest.raises(ValueError):
            log.export_jsonl(path, which="bogus")

    def test_events_from_dicts_tolerates_extra_keys(self):
        record = make_event().to_dict()
        record["future_field"] = "ignored"
        [event] = events_from_dicts([json.loads(json.dumps(record))])
        assert event.kind == "query"


class TestRecordQuery:
    @pytest.fixture(autouse=True)
    def clean_telemetry(self):
        events.log.clear()
        events.log.configure(sample=1.0, slow_ms=events.DEFAULT_SLOW_MS,
                             enabled=True)
        yield
        events.log.clear()
        events.log.configure(sample=1.0, slow_ms=events.DEFAULT_SLOW_MS,
                             enabled=True)

    def _record(self, **overrides):
        kwargs = dict(
            kind="query", latency_ms=3.0, sim_time=40.0, n_queries=1,
            n_candidates=6, n_verified=4, pages_read=10, cache_hits=2,
            backend="sequential", workers=1, strategy="index",
            sigma_low=0.4, sigma_high=0.9,
            timings={"embed": 0.2, "probe": 1.0, "fetch": 0.1, "verify": 1.5},
        )
        kwargs.update(overrides)
        return events.record_query(**kwargs)

    def test_feeds_event_log_and_hdr_instruments(self):
        wall = metrics.hdr("query.latency_ms")
        sim = metrics.hdr("query.sim_time")
        embed = metrics.hdr("query.phase.embed_ms")
        wall0, sim0, embed0 = wall.count, sim.count, embed.count
        event = self._record()
        assert event is not None
        assert events.log.events()[-1] is event
        assert wall.count == wall0 + 1
        assert sim.count == sim0 + 1
        assert embed.count == embed0 + 1

    def test_batch_amortizes_sim_time_per_query(self):
        sim = metrics.hdr("query.sim_time")
        batch_wall = metrics.hdr("query_batch.latency_ms")
        sim0, wall0 = sim.count, batch_wall.count
        self._record(kind="query_batch", n_queries=4, sim_time=100.0)
        assert sim.count == sim0 + 4
        assert batch_wall.count == wall0 + 1

    def test_set_enabled_false_silences_everything(self):
        wall = metrics.hdr("query.latency_ms")
        events.set_enabled(False)
        try:
            assert not events.is_enabled()
            count0 = wall.count
            assert self._record() is None
            assert wall.count == count0
            assert events.log.stats()["seen"] == 0
        finally:
            events.set_enabled(True)
