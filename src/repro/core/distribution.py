"""The pairwise similarity distribution ``D_S`` (Section 5).

``D_S(s)`` counts, for every similarity value ``s``, the number of set
pairs in the collection that are ``s``-similar.  The optimizer needs it
to quantify expected false positives/negatives (Definitions 6-7), to
place filter indices equidepth (Definition 10 / Lemma 4) and to split
the similarity axis between DFIs and SFIs (Equation 15).

Computing ``D_S`` exactly takes all ``N(N-1)/2`` pairwise similarities;
Lemma 1 observes a size-``b`` random sample of those pairs can be drawn
in one pass and suffices.  Both paths are provided; the sampled
histogram is scaled up to total-pair mass so the downstream integrals
keep their meaning as expected set counts.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.minhash import MinHasher
from repro.core.similarity import jaccard


def _exact_pairwise_loop(sets: Sequence[frozenset]) -> np.ndarray:
    """All ``N(N-1)/2`` pairwise similarities via per-pair ``jaccard``.

    The legacy pure-Python double loop, kept as the equivalence and
    benchmark baseline for :func:`exact_pairwise_similarities`.
    """
    n = len(sets)
    return np.fromiter(
        (
            jaccard(sets[i], sets[j])
            for i in range(n)
            for j in range(i + 1, n)
        ),
        dtype=np.float64,
        count=n * (n - 1) // 2,
    )


def exact_pairwise_similarities(sets: Sequence[frozenset]) -> np.ndarray:
    """All ``N(N-1)/2`` pairwise Jaccard values, vectorized.

    Bit-identical to :func:`_exact_pairwise_loop` (same ``(i, j)``,
    ``i < j``, row-major order) but computed by co-occurrence counting
    over the collection's hashed elements
    (:func:`repro.exec.columnar.hash_set`): every element occurrence is
    tagged with its row, one global sort groups equal elements, and
    each group's within-group row pairs are accumulated straight into
    the condensed pair vector (pass ``k`` matches occurrences ``k``
    apart in the sorted order, so the pass count is the maximum element
    multiplicity).  Work scales with the total pairwise-intersection
    mass -- the information content of the answer -- instead of
    ``O(N^2)`` Python set intersections.

    Sets whose hash array is unusable (an intra-set 64-bit collision,
    ~2^-64 per element pair) fall back to exact per-pair ``jaccard``
    for every pair involving them.
    """
    from repro.exec.columnar import hash_set

    n = len(sets)
    n_pairs = n * (n - 1) // 2
    if n_pairs == 0:
        return np.empty(0, dtype=np.float64)
    arrays = []
    collided_ids = []
    for i, s in enumerate(sets):
        arr, c = hash_set(s)
        arrays.append(arr)
        if c:
            collided_ids.append(i)
    lengths = np.fromiter((a.size for a in arrays), dtype=np.int64, count=n)
    rows = np.repeat(np.arange(n, dtype=np.int64), lengths)
    flat = (
        np.concatenate(arrays) if rows.size else np.empty(0, dtype=np.uint64)
    )
    order = np.argsort(flat, kind="stable")
    svals = flat[order]
    # Stable sort keeps rows ascending within an equal-value run (rows
    # were emitted in ascending order), so matched pairs come out with
    # a < b already -- except duplicates inside one collided row, which
    # surface as a == b and are dropped (those rows are redone below).
    srows = rows[order]
    inter = np.zeros(n_pairs, dtype=np.int64)
    two_n_minus_1 = np.int64(2 * n - 1)
    k = 1
    while k < svals.size:
        match = np.flatnonzero(svals[k:] == svals[:-k])
        if match.size == 0:
            break
        a = srows[match]
        b = srows[match + k]
        keep = a < b
        if not keep.all():
            a, b = a[keep], b[keep]
        # Condensed row-major index of pair (a, b), a < b.
        idx = a * (two_n_minus_1 - a) // 2 + (b - a - 1)
        inter += np.bincount(idx, minlength=n_pairs)
        k += 1
    sizes = np.fromiter((len(s) for s in sets), dtype=np.int64, count=n)
    i_idx, j_idx = np.triu_indices(n, k=1)
    union = sizes[i_idx] + sizes[j_idx] - inter
    out = np.ones(n_pairs, dtype=np.float64)  # union 0: both empty -> 1.0
    nonempty = union > 0
    out[nonempty] = inter[nonempty] / union[nonempty]
    for c in collided_ids:
        involved = np.flatnonzero((i_idx == c) | (j_idx == c))
        for pos in involved:
            other = int(j_idx[pos]) if i_idx[pos] == c else int(i_idx[pos])
            out[pos] = jaccard(sets[c], sets[other])
    return out


def sample_pairwise_similarities(
    sets: Sequence[frozenset],
    n_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """A uniform random sample of pairwise Jaccard similarities (Lemma 1).

    Pairs ``(i, j)``, ``i < j``, are drawn uniformly with replacement;
    with in-memory sets one pass over the data is trivially enough,
    which is the point of the lemma for disk-resident collections.
    """
    n = len(sets)
    if n < 2:
        return np.empty(0, dtype=np.float64)
    i = rng.integers(0, n, size=n_samples)
    j = rng.integers(0, n - 1, size=n_samples)
    j = np.where(j >= i, j + 1, j)  # j != i, uniform over the rest
    return np.fromiter(
        (jaccard(sets[a], sets[b]) for a, b in zip(i, j)),
        dtype=np.float64,
        count=n_samples,
    )


def signature_pairwise_similarities(
    signatures: np.ndarray,
    n_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Like :func:`sample_pairwise_similarities` but estimated from
    min-hash signatures -- each sample costs ``O(k)`` instead of a full
    set intersection."""
    n = signatures.shape[0]
    if n < 2:
        return np.empty(0, dtype=np.float64)
    i = rng.integers(0, n, size=n_samples)
    j = rng.integers(0, n - 1, size=n_samples)
    j = np.where(j >= i, j + 1, j)
    return (signatures[i] == signatures[j]).mean(axis=1)


class SimilarityDistribution:
    """Histogram form of ``D_S`` over ``n_bins`` equal-width bins of [0, 1].

    ``mass[i]`` is the (possibly estimated) number of set pairs whose
    similarity falls in bin ``i``; ``sum(mass) == N(N-1)/2``.
    """

    def __init__(self, mass: np.ndarray, n_sets: int):
        mass = np.asarray(mass, dtype=np.float64)
        if mass.ndim != 1 or mass.size == 0:
            raise ValueError("mass must be a non-empty 1-d array")
        if np.any(mass < 0):
            raise ValueError("mass must be non-negative")
        self.mass = mass
        self.n_sets = n_sets
        self.n_bins = mass.size
        self.edges = np.linspace(0.0, 1.0, self.n_bins + 1)
        self.centers = (self.edges[:-1] + self.edges[1:]) / 2.0
        self._cumulative = np.concatenate(([0.0], np.cumsum(mass)))

    # -- construction ----------------------------------------------------

    @classmethod
    def from_sets(
        cls,
        sets: Sequence[Iterable],
        n_bins: int = 100,
        sample_pairs: int | None = None,
        seed: int = 0,
        hasher: MinHasher | None = None,
        exact_method: str = "columnar",
    ) -> "SimilarityDistribution":
        """Estimate ``D_S`` from a collection.

        Parameters
        ----------
        sample_pairs:
            If set (and smaller than the number of pairs), estimate
            from that many sampled pairs per Lemma 1; otherwise compute
            all pairwise similarities exactly.
        hasher:
            If given, sampled similarities are estimated from min-hash
            signatures instead of exact intersections (cheaper for
            large sets, with the estimator's sampling error).
        exact_method:
            How the exact branch computes all pairs: ``"columnar"``
            (vectorized, the default) or ``"loop"`` (the per-pair
            Python baseline).  Both yield bit-identical values.
        """
        sets = [s if isinstance(s, frozenset) else frozenset(s) for s in sets]
        n = len(sets)
        total_pairs = n * (n - 1) // 2
        if total_pairs == 0:
            return cls(np.zeros(n_bins), n)
        rng = np.random.default_rng(seed)
        if sample_pairs is not None and sample_pairs < total_pairs:
            if hasher is not None:
                signatures = hasher.signature_matrix(sets)
                values = signature_pairwise_similarities(signatures, sample_pairs, rng)
            else:
                values = sample_pairwise_similarities(sets, sample_pairs, rng)
            scale = total_pairs / len(values)
        else:
            if exact_method == "columnar":
                values = exact_pairwise_similarities(sets)
            elif exact_method == "loop":
                values = _exact_pairwise_loop(sets)
            else:
                raise ValueError(f"unknown exact_method: {exact_method!r}")
            scale = 1.0
        counts, _ = np.histogram(values, bins=n_bins, range=(0.0, 1.0))
        return cls(counts.astype(np.float64) * scale, n)

    @classmethod
    def from_values(
        cls, values: np.ndarray, n_sets: int, n_bins: int = 100
    ) -> "SimilarityDistribution":
        """Build directly from similarity values (mass = sample counts)."""
        counts, _ = np.histogram(
            np.asarray(values, dtype=np.float64), bins=n_bins, range=(0.0, 1.0)
        )
        return cls(counts.astype(np.float64), n_sets)

    # -- queries ----------------------------------------------------------

    @property
    def total_mass(self) -> float:
        """Total pair count represented: ``~ N(N-1)/2``."""
        return float(self._cumulative[-1])

    def mass_between(self, lo: float, hi: float) -> float:
        """``integral_lo^hi D_S(s) ds`` with linear within-bin interpolation."""
        if hi < lo:
            raise ValueError(f"invalid interval [{lo}, {hi}]")
        return self._cdf(hi) - self._cdf(lo)

    def _cdf(self, s: float) -> float:
        s = min(1.0, max(0.0, s))
        position = s * self.n_bins
        index = min(self.n_bins - 1, int(position))
        fraction = position - index
        return float(self._cumulative[index] + fraction * self.mass[index])

    def quantile(self, q: float) -> float:
        """Similarity value below which a ``q`` fraction of pair mass lies."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        target = q * self.total_mass
        index = int(np.searchsorted(self._cumulative, target, side="left"))
        index = min(max(index - 1, 0), self.n_bins - 1)
        below = self._cumulative[index]
        bin_mass = self.mass[index]
        fraction = 0.0 if bin_mass == 0 else (target - below) / bin_mass
        fraction = min(1.0, max(0.0, fraction))
        return float(self.edges[index] + fraction * (self.edges[index + 1] - self.edges[index]))

    def equidepth_points(self, n_intervals: int) -> list[float]:
        """Interior cut points of a ``n_intervals``-wise equidepth
        decomposition (Definition 10): ``n_intervals - 1`` points that
        split the pair mass into equal parts."""
        if n_intervals < 1:
            raise ValueError(f"n_intervals must be >= 1, got {n_intervals}")
        return [self.quantile(i / n_intervals) for i in range(1, n_intervals)]

    def delta_split(self) -> float:
        """The ``delta`` of Equation 15: equal pair mass on either side."""
        return self.quantile(0.5)
