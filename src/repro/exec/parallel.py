"""Parallel batch-query execution over a frozen index snapshot.

:class:`ParallelExecutor` shards one ``query_batch`` across a worker
thread pool in three stages -- embed (by query chunk), filter probe (by
hash table), exact verify (by query chunk) -- against an
:class:`~repro.exec.snapshot.IndexSnapshot`.  The heavy kernels
(vectorized min-hash, packed Hamming popcounts, columnar sorted-hash
intersection) are numpy calls that release the GIL, so the shards
genuinely overlap on multi-core hosts.

Determinism is the design center, not an afterthought:

- every task charges simulated I/O into its **own**
  :class:`~repro.storage.iomodel.IOStats`; module counters use their
  per-thread shards (:mod:`repro.obs.metrics`).  Merges are integer
  sums, so totals are independent of scheduling order;
- probe work is sharded **by table**, never by splitting a batch's
  keys: a bucket's page chain is read once per (filter, table) for the
  whole batch regardless of worker count, which keeps page accounting
  -- including ``pages_saved`` -- bit-identical to the sequential
  grouped probe;
- embedding a query chunk is a per-set pure function, so chunked
  embeddings concatenate to exactly the full-batch matrix;
- results are assembled by position, and all floating-point similarity
  values come from the same kernels the sequential path uses.

Consequently ``ParallelExecutor(snapshot, workers=w).query_batch(...)``
returns answers, candidates, page counts and CPU accounting
bit-identical to ``index.query_batch(...)`` for every ``w``.

``backend="process"`` swaps the thread pool for a ``spawn``-based
process pool over a **saved** snapshot
(:mod:`repro.exec.snapfile`): each worker process maps the snapshot
directory once (O(ms), pages shared between processes) and runs the
same per-task stage bodies, shipping back its results, its private
:class:`~repro.storage.iomodel.IOStats` and its module-counter deltas
(:mod:`repro.exec.procpool`).  All merge logic runs on the parent
exactly as in the thread backend, so the bit-identical guarantee --
answers, page counts, CPU accounting, ``pages_saved``, counter totals
-- holds across backends at any worker count; only the wall clock
changes, because worker processes dodge the GIL on the pure-Python
probe/verify loops.

The executor also mirrors the sequential path's observability: the
same ``query_batch`` / ``candidates_batch`` / ``*_probe_batch`` /
``verify_batch`` span tree (so EXPLAIN and ``filter_summaries`` work
unchanged), plus per-worker spans and a shard-merge summary under
``parallel_exec``.  Simulated charges are applied to the index's cost
model *inside* the matching spans at merge time, on the calling
thread, so span I/O deltas remain exact.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Sequence

import numpy as np

from repro.core.filter_index import record_batch_probe_counters
from repro.core.index import BatchQueryResult, QueryResult
from repro.hamming.bitvector import complement
from repro.obs import events, metrics, trace
from repro.storage.iomodel import IOStats

_PAGES_SAVED = metrics.counter("hashtable.probe_pages_saved")
_CACHE_HITS = metrics.counter("pager.cache_hits")

# The same instruments the live query path reports to (same names ->
# same registry objects), so executor batches show up in `repro stats`.
_QUERIES = metrics.counter("query.count")
_QUERY_CANDIDATES = metrics.counter("query.candidates")
_QUERY_VERIFIED = metrics.counter("query.verified_hits")
_QUERY_FALSE_POSITIVES = metrics.counter("query.false_positives")
_CANDIDATES_PER_QUERY = metrics.histogram("query.candidates_per_query")
_QUERY_BATCHES = metrics.counter("query.batches")
_BATCH_SIZE = metrics.histogram("query.batch_size")
_BATCH_FETCHES_SAVED = metrics.counter("query.batch_fetches_saved")
_PARALLEL_BATCHES = metrics.counter("exec.parallel_batches")
_PARALLEL_TASKS = metrics.counter("exec.parallel_tasks")


def _apply(cost, io: IOStats) -> None:
    """Fold one shard's accumulated charges into the live cost model."""
    stats = cost.stats
    stats.sequential_reads += io.sequential_reads
    stats.random_reads += io.random_reads
    stats.page_writes += io.page_writes
    stats.cpu_ops += io.cpu_ops


def _chunks(items: list, pieces: int) -> list[list]:
    """Split into at most ``pieces`` contiguous, near-equal chunks."""
    n = len(items)
    pieces = max(1, min(pieces, n))
    bounds = [n * p // pieces for p in range(pieces + 1)]
    return [items[a:b] for a, b in zip(bounds, bounds[1:]) if b > a]


class _Task:
    """One unit of sharded work: stage label plus measured execution."""

    __slots__ = ("stage", "label", "io", "seconds", "thread", "result", "extra")

    def __init__(self, stage: str, label: str):
        self.stage = stage
        self.label = label
        self.io = IOStats()
        self.seconds = 0.0
        self.thread = ""
        self.result = None
        self.extra = None


class ParallelExecutor:
    """Serves ``query_batch`` from a snapshot with a worker pool.

    Parameters
    ----------
    snapshot:
        For ``backend="thread"``: a frozen
        :class:`~repro.exec.snapshot.IndexSnapshot` (``index.freeze()``
        or an opened mapped snapshot).  For ``backend="process"``: a
        :class:`~repro.exec.snapfile.MappedSnapshot`
        (:func:`~repro.exec.snapfile.open_snapshot`) or the path of a
        saved snapshot directory -- worker processes re-open it by
        path, sharing its mmap'd pages.
    workers:
        Pool size.  Any value >= 1 produces bit-identical results and
        accounting; it only changes wall-clock overlap.
    backend:
        ``"thread"`` (default) or ``"process"`` (``spawn`` start
        method; genuine multi-core execution of the pure-Python probe
        and verify loops).
    record:
        When False, skip the per-batch query-level telemetry (the
        ``query.*`` aggregate counters and the ``record_query`` event).
        The scatter-gather :class:`~repro.exec.shard.ShardedExecutor`
        sets this on its per-shard executors and emits one merged
        record itself, so a sharded batch counts each query once, not
        once per shard.  Work-level counters (probe pages, hashtable
        and ``exec.parallel_*`` counters) always record -- they meter
        real work, which sharding genuinely multiplies.

    Usable as a context manager; :meth:`close` shuts the pool down.
    """

    def __init__(self, snapshot, workers: int = 1, backend: str = "thread",
                 record: bool = True):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown backend: {backend!r}")
        if backend == "process":
            from repro.exec import procpool
            from repro.exec.snapfile import MappedSnapshot, open_snapshot

            if isinstance(snapshot, (str, os.PathLike)):
                snapshot = open_snapshot(snapshot)
            if not isinstance(snapshot, MappedSnapshot):
                raise ValueError(
                    "backend='process' needs a saved snapshot: "
                    "save_snapshot(index.freeze(), dir), then pass "
                    "open_snapshot(dir) or the directory path"
                )
            self._procpool = procpool
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=procpool.worker_init,
                initargs=(str(snapshot.path),),
            )
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-exec"
            )
        self.snapshot = snapshot
        self.workers = workers
        self.backend = backend
        self.record = record

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- task plumbing -----------------------------------------------------

    def _run_tasks(self, tasks: list[_Task], fns: list, specs=None) -> None:
        """Execute task bodies on the pool; each charges only its own
        ``task.io`` and thread-local counter shards.

        With the process backend, ``specs`` carries the picklable
        ``(stage, *payload)`` form of each task
        (:func:`repro.exec.procpool.run_task`); results, IOStats and
        full-registry metric deltas (counters, gauges, histograms --
        see :func:`repro.obs.metrics.registry_delta`) come back over
        the pool.  The per-task deltas are merged order-independently
        and folded into this process's registry in one application, so
        downstream merge code is backend-agnostic and histogram
        observations survive the process boundary.
        """
        if self.backend == "process":
            futures = [
                self._pool.submit(self._procpool.run_task, spec)
                for spec in specs
            ]
            deltas: list[dict] = []
            for task, future in zip(tasks, futures):
                out = future.result()
                task.result = out["result"]
                task.io = out["io"]
                task.seconds = out["seconds"]
                task.thread = out["worker"]
                payload = out.get("metrics") or {
                    "counters": out.get("counters", {})
                }
                task.extra = payload.get("counters", {}).get(
                    "hashtable.probe_pages_saved", 0
                )
                deltas.append(payload)
            metrics.apply_deltas(metrics.merge_registry_deltas(deltas))
            _PARALLEL_TASKS.inc(len(tasks))
            return

        def run(task: _Task, fn) -> None:
            t0 = time.perf_counter()
            task.result = fn(task)
            task.seconds = time.perf_counter() - t0
            task.thread = threading.current_thread().name

        futures = [
            self._pool.submit(run, task, fn) for task, fn in zip(tasks, fns)
        ]
        for future in futures:
            future.result()
        _PARALLEL_TASKS.inc(len(tasks))

    # -- public API --------------------------------------------------------

    def query_batch(
        self,
        queries: Sequence[Iterable],
        sigma_low: float,
        sigma_high: float,
        strategy: str = "index",
        explain: bool = False,
        verify_rows: Sequence[int] | None = None,
    ) -> BatchQueryResult:
        """Answer a batch over one shared range; see the module docstring
        for the equivalence guarantees.  Parameters and result semantics
        match :meth:`repro.core.index.SetSimilarityIndex.query_batch`.

        ``verify_rows`` (index strategy only; ignored by scan) limits
        the fetch/verify stage to the named query rows: other rows keep
        their full candidate sets but return no answers and charge no
        fetch I/O.  This is the shard router's verify mask -- sound
        only when the caller has proven the masked rows can hold no
        in-range answer on this snapshot, which is exactly what
        :class:`~repro.exec.route.ShardRouter` establishes per shard.
        """
        snap = self.snapshot
        cost = snap.cost
        if not 0.0 <= sigma_low <= sigma_high <= 1.0:
            raise ValueError(
                f"invalid similarity range [{sigma_low}, {sigma_high}]"
            )
        if strategy not in ("index", "scan", "auto"):
            raise ValueError(f"unknown strategy: {strategy!r}")
        if strategy == "auto":
            strategy = snap.choose_strategy(sigma_low, sigma_high)
        query_sets = [frozenset(q) for q in queries]
        n = len(query_sets)
        wall0 = time.perf_counter()
        hits_before = _CACHE_HITS.value
        all_tasks: list[_Task] = []
        with trace.capture(
            "query_batch",
            io=cost,
            force=explain,
            strategy=strategy,
            sigma_low=sigma_low,
            sigma_high=sigma_high,
            n_queries=n,
            workers=self.workers,
            backend=self.backend,
        ) as root:
            recording = root is not None
            before = cost.snapshot()
            if strategy == "scan":
                candidates_list, answers_list = self._scan_batch(
                    query_sets, sigma_low, sigma_high, all_tasks
                )
                fetches_saved = 0
                probe_pages_saved = 0
            else:
                (candidates_list, answers_list, fetches_saved,
                 probe_pages_saved) = self._index_batch(
                    query_sets, sigma_low, sigma_high, all_tasks, recording,
                    verify_rows,
                )
            delta = cost.snapshot() - before
            if strategy == "scan":
                # One shared collection pass instead of one per query.
                pages_saved = (delta.random_reads + delta.sequential_reads) * max(
                    0, n - 1
                )
            else:
                pages_saved = probe_pages_saved
            self._emit_worker_spans(all_tasks)
            batch = BatchQueryResult(
                results=[
                    QueryResult(
                        answers=answers,
                        candidates=candidates,
                        io=IOStats(),
                        io_time=0.0,
                        cpu_time=0.0,
                    )
                    for answers, candidates in zip(answers_list, candidates_list)
                ],
                io=delta,
                io_time=cost.io_time(delta),
                cpu_time=cost.cpu_time(delta),
                pages_saved=pages_saved,
                fetches_saved=fetches_saved,
                trace=root,
                exec_stats=self._exec_stats(all_tasks, strategy, wall0),
            )
            # Phase wall milliseconds: summed worker-task durations per
            # stage (fetch accounting happens on the parent inside the
            # verify merge, so the executor reports embed/probe/verify,
            # or scan).
            batch.timings = {
                stage: seconds * 1e3
                for stage, seconds in
                batch.exec_stats["stage_seconds"].items()
            }
            if root is not None:
                self._annotate(root, batch)
        if self.record:
            events.record_query(
                "query_batch",
                latency_ms=(time.perf_counter() - wall0) * 1e3,
                sim_time=batch.total_time,
                n_queries=n,
                n_candidates=batch.n_candidates,
                n_verified=batch.n_verified,
                pages_read=delta.random_reads + delta.sequential_reads,
                cache_hits=_CACHE_HITS.value - hits_before,
                backend=self.backend,
                workers=self.workers,
                strategy=strategy,
                sigma_low=sigma_low,
                sigma_high=sigma_high,
                timings=batch.timings,
            )
            _QUERY_BATCHES.inc()
            _BATCH_SIZE.observe(n)
            _BATCH_FETCHES_SAVED.inc(fetches_saved)
            _QUERIES.inc(n)
            _QUERY_CANDIDATES.inc(batch.n_candidates)
            _QUERY_VERIFIED.inc(batch.n_verified)
            _QUERY_FALSE_POSITIVES.inc(batch.n_candidates - batch.n_verified)
            for result in batch.results:
                _CANDIDATES_PER_QUERY.observe(result.n_candidates)
        _PARALLEL_BATCHES.inc()
        return batch

    def query_above_batch(
        self, queries: Sequence[Iterable], sigma: float, **kwargs
    ) -> BatchQueryResult:
        """Batched at-least-``sigma`` queries (cf. ``query_above_batch``)."""
        return self.query_batch(queries, sigma, 1.0, **kwargs)

    def query_below_batch(
        self, queries: Sequence[Iterable], sigma: float, **kwargs
    ) -> BatchQueryResult:
        """Batched at-most-``sigma`` queries (cf. ``query_below_batch``)."""
        return self.query_batch(queries, 0.0, sigma, **kwargs)

    # -- scan strategy -----------------------------------------------------

    def _scan_batch(
        self,
        query_sets: list[frozenset],
        sigma_low: float,
        sigma_high: float,
        all_tasks: list[_Task],
    ) -> tuple[list[set[int]], list[list[tuple[int, float]]]]:
        snap = self.snapshot
        n = len(query_sets)
        candidates_list: list[set[int]] = [set() for _ in range(n)]
        answers_list: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        chunks = _chunks(list(range(n)), self.workers * 4)
        tasks = [
            _Task("scan", f"scan[{chunk[0]}:{chunk[-1] + 1}]")
            for chunk in chunks
        ]

        def make(chunk):
            def body(task: _Task):
                return [
                    snap.scan_one(
                        query_sets[i], sigma_low, sigma_high, task.io
                    )
                    for i in chunk
                ]
            return body

        specs = None
        if self.backend == "process":
            specs = [
                ("scan", [query_sets[i] for i in chunk], sigma_low, sigma_high)
                for chunk in chunks
            ]
        self._run_tasks(tasks, [make(chunk) for chunk in chunks], specs)
        with trace.span(
            "scan_batch", n_pages=snap.scan_pages, n_queries=n
        ) as sp:
            # The one shared sequential pass over the heap, then each
            # worker's per-query CPU shards, merged deterministically.
            snap.cost.stats.sequential_reads += snap.scan_pages
            for task, chunk in zip(tasks, chunks):
                _apply(snap.cost, task.io)
                for i, (candidates, answers) in zip(chunk, task.result):
                    candidates_list[i] = candidates
                    answers_list[i] = answers
            sp.set(
                n_candidates=sum(len(c) for c in candidates_list),
                n_verified=sum(len(a) for a in answers_list),
            )
        all_tasks.extend(tasks)
        return candidates_list, answers_list

    # -- index strategy ----------------------------------------------------

    def _index_batch(
        self,
        query_sets: list[frozenset],
        sigma_low: float,
        sigma_high: float,
        all_tasks: list[_Task],
        recording: bool,
        verify_rows: Sequence[int] | None = None,
    ) -> tuple[list[set[int]], list[list[tuple[int, float]]], int, int]:
        snap = self.snapshot
        n = len(query_sets)
        lo, up = snap.enclosing_points(sigma_low, sigma_high)
        plan, probes, pivot = snap.plan_probes(sigma_low, sigma_high)
        rows: list[int] = []
        if plan != "full_collection":
            rows = [i for i, q in enumerate(query_sets) if q]
            if not rows:
                plan, probes = "empty_queries", []
        matrix: np.ndarray | None = None
        with trace.span(
            "candidates_batch", lo=lo, up=up, n_queries=n
        ) as csp:
            probed: dict[tuple[str, float], list[set[int]]] = {}
            probe_pages_saved = 0
            if probes:
                matrix = self._embed_stage(query_sets, rows, all_tasks)
                probed, probe_pages_saved = self._probe_stage(
                    probes, matrix, len(rows), all_tasks, recording
                )
            candidates_list = snap.combine_candidates(
                plan, probed, probes, n, rows
            )
            if csp.recording:
                csp.set(
                    plan=plan,
                    n_candidates=sum(len(s) for s in candidates_list),
                    _rows=rows,
                )
                if pivot is not None:
                    csp.set(pivot=pivot)
        if verify_rows is None:
            vcands_list = candidates_list
        else:
            # The router's verify mask: masked rows keep their probe
            # candidates (reported unchanged) but skip fetch + exact
            # verification -- they provably hold no in-range answer.
            keep = set(verify_rows)
            vcands_list = [
                cands if i in keep else set()
                for i, cands in enumerate(candidates_list)
            ]
        answers_list, fetches_saved = self._verify_stage(
            query_sets, vcands_list, sigma_low, sigma_high,
            matrix, rows, all_tasks, recording,
        )
        return candidates_list, answers_list, fetches_saved, probe_pages_saved

    def _embed_stage(
        self,
        query_sets: list[frozenset],
        rows: list[int],
        all_tasks: list[_Task],
    ) -> np.ndarray:
        """Vectorized embedding, sharded by query chunk.

        Embedding is a per-set pure function, so the chunk matrices
        concatenate to exactly the full-batch ``embed_many`` result.
        """
        snap = self.snapshot
        chunks = _chunks(rows, self.workers * 2)
        tasks = [
            _Task("embed", f"embed[{chunk[0]}:{chunk[-1] + 1}]")
            for chunk in chunks
        ]

        def make(chunk):
            def body(task: _Task):
                task.io.cpu_ops += snap.embedder.k * len(chunk)
                return snap.embedder.embed_many(
                    [query_sets[i] for i in chunk]
                )
            return body

        specs = None
        if self.backend == "process":
            specs = [
                ("embed", [query_sets[i] for i in chunk]) for chunk in chunks
            ]
        self._run_tasks(tasks, [make(chunk) for chunk in chunks], specs)
        with trace.span(
            "embed_batch", k=snap.embedder.k, n_queries=len(rows)
        ):
            for task in tasks:
                _apply(snap.cost, task.io)
        all_tasks.extend(tasks)
        return np.concatenate([task.result for task in tasks])

    def _probe_stage(
        self,
        probes: list[tuple[str, float]],
        matrix: np.ndarray,
        n_rows: int,
        all_tasks: list[_Task],
        recording: bool,
    ) -> tuple[dict[tuple[str, float], list[set[int]]], int]:
        """Probe every planned filter, sharded by hash table.

        Each (filter, table) task groups the whole batch's keys by
        bucket exactly as the sequential grouped probe does, so page
        charges and ``pages_saved`` cannot depend on the worker count.
        """
        snap = self.snapshot
        cmatrix: np.ndarray | None = None
        if any(kind == "dfi" for kind, _ in probes):
            # Theorem 2: DFI probes use the complemented queries;
            # complement once per batch, not once per table.
            cmatrix = complement(matrix, snap.n_bits)
        tasks: list[_Task] = []
        fns = []
        specs: list[tuple] | None = [] if self.backend == "process" else None
        units: list[tuple[tuple[str, float], int]] = []
        for key in probes:
            kind, point = key
            fp = snap.filter_probe(kind, point)
            probe_matrix = cmatrix if fp.complement_query else matrix
            for t in range(fp.n_tables):
                task = _Task("probe", f"{kind}({point:.3f})[t{t}]")
                tasks.append(task)
                units.append((key, t))
                if specs is not None:
                    specs.append(("probe", kind, point, t, probe_matrix))

                def body(task: _Task, fp=fp, t=t, probe_matrix=probe_matrix):
                    saved_before = _PAGES_SAVED.local_value
                    got = fp.probe_table(t, probe_matrix, task.io)
                    task.extra = _PAGES_SAVED.local_value - saved_before
                    return got

                fns.append(body)
        self._run_tasks(tasks, fns, specs)
        # Deterministic merge: per filter, union each query's sids over
        # its tables (order-independent), sum page/CPU shards, and
        # record the same aggregate counters and probe span the live
        # batch probe records.
        probed: dict[tuple[str, float], list[set[int]]] = {}
        total_saved = 0
        by_key: dict[tuple[str, float], list[_Task]] = {}
        for (key, _), task in zip(units, tasks):
            by_key.setdefault(key, []).append(task)
        for key in probes:
            kind, point = key
            fp = snap.filter_probe(kind, point)
            sids: list[set[int]] = [set() for _ in range(n_rows)]
            totals = 0
            merged_io = IOStats()
            saved = 0
            for task in by_key[key]:
                for j, got in enumerate(task.result):
                    totals += len(got)
                    sids[j].update(got)
                merged_io = merged_io + task.io
                saved += task.extra
            unique = sum(len(s) for s in sids)
            record_batch_probe_counters(kind, n_rows, unique, totals - unique)
            total_saved += saved
            probed[key] = sids
            with trace.span(
                f"{kind}_probe_batch",
                s_star=fp.threshold,
                sigma=fp.sigma_point,
                r=fp.r,
                l=fp.n_tables,
                n_queries=n_rows,
            ) as psp:
                _apply(snap.cost, merged_io)
                if psp.recording:
                    psp.set(
                        tables_probed=fp.n_tables,
                        candidates=unique,
                        pages_saved=saved,
                        _sids_per_query=sids,
                    )
                    if kind == "sfi":
                        psp.set(collisions=totals - unique)
        all_tasks.extend(tasks)
        return probed, total_saved

    def _verify_stage(
        self,
        query_sets: list[frozenset],
        candidates_list: list[set[int]],
        sigma_low: float,
        sigma_high: float,
        matrix: np.ndarray | None,
        rows: list[int],
        all_tasks: list[_Task],
        recording: bool,
    ) -> tuple[list[list[tuple[int, float]]], int]:
        """Columnar exact verification, sharded by query chunk."""
        snap = self.snapshot
        n = len(query_sets)
        n_pairs = sum(len(c) for c in candidates_list)
        distinct = (
            sorted(set().union(*candidates_list)) if candidates_list else []
        )
        fetches_saved = n_pairs - len(distinct)
        chunks = _chunks(list(range(n)), self.workers * 4)
        tasks = [
            _Task("verify", f"verify[{chunk[0]}:{chunk[-1] + 1}]")
            for chunk in chunks
        ]

        def make(chunk):
            def body(task: _Task):
                return [
                    snap.verify_one(
                        query_sets[i], candidates_list[i],
                        sigma_low, sigma_high, task.io,
                    )
                    for i in chunk
                ]
            return body

        specs = None
        if self.backend == "process":
            specs = [
                (
                    "verify",
                    [(query_sets[i], candidates_list[i]) for i in chunk],
                    sigma_low,
                    sigma_high,
                )
                for chunk in chunks
            ]
        self._run_tasks(tasks, [make(chunk) for chunk in chunks], specs)
        answers_list: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        with trace.span(
            "verify_batch", n_queries=n, n_pairs=n_pairs
        ) as sp:
            fetch_io = IOStats()
            snap.charge_fetches(distinct, fetch_io)
            _apply(snap.cost, fetch_io)
            for task, chunk in zip(tasks, chunks):
                _apply(snap.cost, task.io)
                for i, answers in zip(chunk, task.result):
                    answers_list[i] = answers
            n_verified = sum(len(a) for a in answers_list)
            if sp.recording:
                sp.set(
                    n_candidates=len(distinct),
                    n_verified=n_verified,
                    false_positives=n_pairs - n_verified,
                    fetches_saved=fetches_saved,
                    est_in_range=snap.estimate_in_range(
                        candidates_list, matrix, rows, sigma_low, sigma_high
                    ),
                )
        all_tasks.extend(tasks)
        return answers_list, fetches_saved

    # -- observability -----------------------------------------------------

    def _emit_worker_spans(self, all_tasks: list[_Task]) -> None:
        """Per-worker spans plus the shard-merge summary (EXPLAIN)."""
        with trace.span(
            "parallel_exec", workers=self.workers, backend=self.backend,
            n_tasks=len(all_tasks),
        ) as sp:
            if not sp.recording:
                return
            by_thread: dict[str, list[_Task]] = {}
            for task in all_tasks:
                by_thread.setdefault(task.thread, []).append(task)
            for name in sorted(by_thread):
                tasks = by_thread[name]
                with trace.span(
                    "worker",
                    thread=name,
                    n_tasks=len(tasks),
                    busy_ms=round(sum(t.seconds for t in tasks) * 1e3, 3),
                    stages=sorted({t.stage for t in tasks}),
                ):
                    pass
            merged = IOStats()
            for task in all_tasks:
                merged = merged + task.io
            with trace.span(
                "shard_merge",
                shards=len(all_tasks),
                sequential_reads=merged.sequential_reads,
                random_reads=merged.random_reads,
                cpu_ops=merged.cpu_ops,
            ):
                pass

    def _exec_stats(
        self, all_tasks: list[_Task], strategy: str, wall0: float
    ) -> dict:
        stage_seconds: dict[str, float] = {}
        for task in all_tasks:
            stage_seconds[task.stage] = (
                stage_seconds.get(task.stage, 0.0) + task.seconds
            )
        return {
            "workers": self.workers,
            "backend": self.backend,
            "strategy": strategy,
            "wall_seconds": time.perf_counter() - wall0,
            "stage_seconds": stage_seconds,
            "tasks": [
                {
                    "stage": task.stage,
                    "label": task.label,
                    "thread": task.thread,
                    "seconds": task.seconds,
                }
                for task in all_tasks
            ],
        }

    def _annotate(self, root, batch: BatchQueryResult) -> None:
        """Mirror of the live path's post-batch trace enrichment."""
        root.set(
            n_candidates=batch.n_candidates,
            n_verified=batch.n_verified,
            io_time=batch.io_time,
            cpu_time=batch.cpu_time,
            total_time=batch.total_time,
            pages_saved=batch.pages_saved,
            fetches_saved=batch.fetches_saved,
        )
        if batch.timings:
            root.set(timings={
                phase: round(ms, 3) for phase, ms in batch.timings.items()
            })
        answer_sids = [r.answer_sids for r in batch.results]
        for cspan in root.find("candidates_batch"):
            rows = cspan.attrs.get("_rows")
            if rows is None:
                continue
            for span in cspan.walk():
                per_query = span.attrs.get("_sids_per_query")
                if per_query is None:
                    continue
                span.set(survived=sum(
                    len(sids & answer_sids[i])
                    for sids, i in zip(per_query, rows)
                ))

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(workers={self.workers}, "
            f"backend={self.backend!r}, snapshot={self.snapshot!r})"
        )
