"""Sharded scatter-gather execution over independent mmap snapshots.

One snapshot per process caps throughput at a single index's
probe/verify path and one global hash-table budget.  This module
splits a collection into ``K`` shards, builds each with the bulk
pipeline, persists each as its own :mod:`~repro.exec.snapfile`
snapshot under a checksummed *shard manifest*, and serves queries by
scatter-gather: every shard answers the batch with its own
:class:`~repro.exec.parallel.ParallelExecutor` (thread or process
backend -- one worker pool per shard), and the parent merges verified
answers, per-phase timings, IOStats and telemetry deltas.

Two tuning modes, chosen at build time:

* ``tune="mirror"`` (default) -- every shard materializes the **same**
  global plan with the same build seed.  A set's membership in a
  bucket is ``hash_key(sampled query bits) == hash_key(sampled set
  bits)``, which depends only on the plan's samplers (seeded
  ``seed + 7919 * (offset + 1)`` per filter) and never on bucket
  counts or which shard holds the set.  The union of per-shard
  candidates is therefore *exactly* the unsharded candidate set --
  including fingerprint-collision false positives -- and with exact
  verification on top, a merged scatter-gather batch is bit-identical
  (similarities, candidates, ordering) to the equivalent single-index
  ``query_batch`` at any K, worker count and backend.

* ``tune="workload"`` -- the Lemma 6 greedy allocator lifted to a
  *global* budget (:func:`repro.core.optimizer.allocate_global_budget`):
  each shard's own pair-similarity distribution plus a workload weight
  (estimated answer mass routed to it) compete for tables, so hot
  shards get more of the budget.  Per-shard table counts then differ,
  which deliberately trades the bit-equivalence guarantee for recall
  where the workload needs it (answers remain exact-verified; only the
  candidate funnel is tuned per shard).

Partitioning is hash-based by default (a stable content fingerprint,
independent of input order and ``PYTHONHASHSEED``), with
``method="cluster"`` colocating minhash-similar sets -- the layout
that makes workload weights skewed and the global allocator useful.

Since manifest v2, builds also persist per-shard **routing summaries**
(:mod:`repro.exec.route`: size ranges, an element-universe bitset, a
MinHash universe profile) that let :class:`ShardedExecutor` skip the
fetch/verify work -- or, opted in, the whole dispatch -- for shards
whose sound Jaccard upper bound falls below ``sigma_low``; and
:func:`replicate_shards` clones hot shards so dispatches balance over
copies via power-of-two-choices.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import tempfile
import threading
import time
import zlib
from pathlib import Path

import numpy as np

from repro.core.index import BatchQueryResult, QueryResult
from repro.core.minhash import MinHasher, stable_element_hash
from repro.exec.route import (
    ROUTING_FILE,
    ShardRouter,
    build_routing,
    load_routing,
)
from repro.obs import events, metrics, trace
from repro.storage.iomodel import IOStats

SHARD_MANIFEST_FILE = "shard_manifest.json"
SIDMAP_FILE = "sidmap.bin"
FORMAT_NAME = "repro-ssi-shards"
#: v2 adds the optional ``routing`` block and per-shard ``replicas``
#: lists; v1 manifests still open (routing falls back to full fan-out).
#: v3 adds the signature ``codec`` to the ``build`` block (and
#: ``sig_scheme`` to routing metadata); earlier manifests predate
#: codecs and open as ``full64``.
FORMAT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)

#: splitmix64 increment, used to fold the partition seed into set
#: fingerprints so different seeds give different (but each stable)
#: partitions.
_GOLDEN = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1

_SHARD_BATCHES = metrics.counter("exec.shard_batches")


class ShardError(RuntimeError):
    """Sharded-manifest problem: format, integrity or usage."""


def _mix64(x: int) -> int:
    """splitmix64 finalizer: avalanche a 64-bit value."""
    x &= _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


def set_fingerprint(elements, seed: int = 0) -> int:
    """Stable 64-bit content fingerprint of a set.

    XOR of per-element stable hashes (order-independent), avalanched
    with the seed folded in.  Reproducible across processes and input
    permutations -- the property hash partitioning stands on.
    """
    acc = 0
    for element in elements:
        acc ^= stable_element_hash(element)
    return _mix64(acc ^ ((seed * _GOLDEN) & _MASK))


def partition_sets(
    sets, n_shards: int, method: str = "hash", seed: int = 0
) -> np.ndarray:
    """Assign every set to exactly one shard; returns shape-(N,) int64.

    ``method="hash"``: content-fingerprint modulo ``n_shards`` --
    stable under input permutation and across rebuilds.
    ``method="cluster"``: order sets by their minhash signature
    (fixed-seed) and cut the order into ``n_shards`` near-equal
    contiguous chunks, so minhash-similar sets land together --
    deterministic for a given input list, and the layout that lets
    workload-aware tuning concentrate budget on hot shards.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    sets = [s if isinstance(s, frozenset) else frozenset(s) for s in sets]
    n = len(sets)
    if method == "hash":
        return np.array(
            [set_fingerprint(s, seed) % n_shards for s in sets],
            dtype=np.int64,
        ).reshape(n)
    if method != "cluster":
        raise ValueError(f"unknown partition method: {method!r}")
    assignment = np.zeros(n, dtype=np.int64)
    if n == 0:
        return assignment
    hasher = MinHasher(k=8, seed=seed)
    keys = np.zeros((n, hasher.k), dtype=np.uint64)
    nonempty = [i for i, s in enumerate(sets) if s]
    if nonempty:
        keys[nonempty] = hasher.signature_matrix([sets[i] for i in nonempty])
    # Lexicographic sort by signature; ties (identical signatures,
    # e.g. every empty set) stay in input order, keeping the result
    # deterministic for a given input list.
    order = np.lexsort(keys.T[::-1])
    bounds = [n * p // n_shards for p in range(n_shards + 1)]
    for shard, (a, b) in enumerate(zip(bounds, bounds[1:])):
        assignment[order[a:b]] = shard
    return assignment


def estimate_workload_weights(
    sets,
    assignment: np.ndarray,
    n_shards: int,
    workload,
    sigma_low: float,
    sigma_high: float,
    k: int = 32,
    b: int = 6,
    seed: int = 0,
    codec: str = "full64",
) -> list[float]:
    """Per-shard answer-mass estimate for a query workload.

    Embeds the collection and the workload's query sets once (the same
    codec and embedding the index uses), estimates every (query, set)
    Jaccard similarity from the packed vectors, and counts, per shard,
    the pairs estimated to fall in ``[sigma_low, sigma_high]`` -- the
    answer mass the workload routes to that shard.  Laplace-smoothed
    so no shard weighs zero (every shard still needs a sane floor of
    tables for the queries that do reach it).
    """
    from repro.core.embedding import SetEmbedder

    sets = [s if isinstance(s, frozenset) else frozenset(s) for s in sets]
    queries = [frozenset(q) for q in workload]
    counts = np.ones(n_shards, dtype=np.float64)  # +1 smoothing
    live = [i for i, s in enumerate(sets) if s]
    live_queries = [q for q in queries if q]
    if live and live_queries:
        embedder = SetEmbedder(k=k, b=b, seed=seed, codec=codec)
        matrix = embedder.embed_many([sets[i] for i in live])
        shard_of = np.asarray(assignment, dtype=np.int64)[live]
        for q in live_queries:
            # Codec-calibrated hamming_to_jaccard, vectorized over the
            # collection.
            sims = embedder.estimate_many(matrix, embedder.embed(q))
            hit = (sims >= sigma_low) & (sims <= sigma_high)
            np.add.at(counts, shard_of[hit], 1.0)
    total = float(counts.sum())
    return [float(c) / total for c in counts]


# -- build -----------------------------------------------------------------


def build_sharded(
    sets,
    out,
    n_shards: int,
    partition: str = "hash",
    tune: str = "mirror",
    budget: int = 500,
    recall_target: float = 0.9,
    k: int = 100,
    b: int = 6,
    seed: int = 0,
    sample_pairs: int | None = None,
    workload=None,
    workload_range: tuple[float, float] = (0.5, 1.0),
    workers: int = 1,
    plan=None,
    dist=None,
    routing: bool = True,
    codec: str = "full64",
) -> dict:
    """Partition, build and persist a K-shard index under ``out``.

    One global distribution estimate and one global plan (reused via
    ``plan=``/``dist=`` when the caller already built the unsharded
    index from the same parameters -- the plan is deterministic, so
    passing it only skips recomputation).  Every shard is built through
    the bulk pipeline from that plan -- identical cut points and build
    seed, hence identical samplers, in every shard (``tune="mirror"``)
    -- or from a per-shard re-allocated copy under the global greedy
    (``tune="workload"``, optionally weighted by a ``workload`` list of
    query sets over ``workload_range``).  Returns the written manifest.
    """
    from repro.core.distribution import SimilarityDistribution
    from repro.core.index import SetSimilarityIndex
    from repro.core.optimizer import (
        IndexPlan,
        PlannedFilter,
        allocate_global_budget,
        average_recall,
        evaluate_ranges,
        plan_index,
    )
    from repro.core.codec import parse_codec
    from repro.exec.snapfile import MANIFEST_FILE, save_snapshot, write_arrays

    if tune not in ("mirror", "workload"):
        raise ValueError(f"unknown tune mode: {tune!r}")
    spec = parse_codec(codec)
    plan_b = spec.bias_bits(b)
    sets = [s if isinstance(s, frozenset) else frozenset(s) for s in sets]
    out = Path(out)
    out.mkdir(parents=True, exist_ok=True)
    t0 = time.perf_counter()
    if dist is None:
        dist = SimilarityDistribution.from_sets(
            sets, sample_pairs=sample_pairs, seed=seed
        )
    if plan is None:
        plan = plan_index(dist, budget, recall_target=recall_target, b=plan_b)
    assignment = partition_sets(sets, n_shards, method=partition, seed=seed)
    shard_sets: list[list[frozenset]] = [[] for _ in range(n_shards)]
    shard_gsids: list[list[int]] = [[] for _ in range(n_shards)]
    for gsid, (s, a) in enumerate(zip(sets, assignment)):
        shard_sets[int(a)].append(s)
        shard_gsids[int(a)].append(gsid)

    if tune == "workload":
        shard_dists = [
            SimilarityDistribution.from_sets(
                ss, sample_pairs=sample_pairs, seed=seed
            ) if len(ss) > 1 else dist
            for ss in shard_sets
        ]
        if workload:
            weights = estimate_workload_weights(
                sets, assignment, n_shards, workload, *workload_range,
                k=min(k, 32), b=b, seed=seed, codec=codec,
            )
        else:
            n_total = max(1, len(sets))
            weights = [max(1, len(ss)) / n_total for ss in shard_sets]
        shard_filters = [
            [PlannedFilter(f.point, f.kind) for f in plan.filters]
            for _ in range(n_shards)
        ]
        allocate_global_budget(
            shard_filters, budget, shard_dists, weights, b=plan_b
        )
        plans = []
        for filters, sdist in zip(shard_filters, shard_dists):
            stats = evaluate_ranges(plan.cut_points, filters, sdist, plan_b)
            recall = average_recall(stats)
            plans.append(IndexPlan(
                cut_points=list(plan.cut_points),
                delta=plan.delta,
                filters=filters,
                expected_recall=recall,
                expected_precision=plan.expected_precision,
                b=plan.b,
                met_target=recall >= recall_target,
            ))
    else:
        weights = [
            len(ss) / max(1, len(sets)) for ss in shard_sets
        ]
        plans = [plan] * n_shards
        shard_dists = [dist] * n_shards

    shard_entries: list[dict] = []
    for i in range(n_shards):
        entry: dict = {
            "dir": f"shard-{i:03d}",
            "n_sets": len(shard_sets[i]),
            "weight": round(float(weights[i]), 6),
            "tables": plans[i].tables_used,
            "expected_recall": round(plans[i].expected_recall, 6),
            "filters": [
                {"point": f.point, "kind": f.kind, "n_tables": f.n_tables}
                for f in plans[i].filters
            ],
        }
        if not shard_sets[i]:
            # An empty shard contributes nothing to any query; there is
            # no snapshot to build and scatter-gather skips it.
            entry["empty"] = True
            shard_entries.append(entry)
            continue
        index = SetSimilarityIndex.from_plan(
            shard_sets[i], plans[i], shard_dists[i],
            k=k, b=b, seed=seed, workers=workers, codec=codec,
        )
        shard_dir = out / entry["dir"]
        save_snapshot(index.freeze(), shard_dir)
        entry["manifest_crc32"] = zlib.crc32(
            (shard_dir / MANIFEST_FILE).read_bytes()
        )
        shard_entries.append(entry)

    routing_meta = None
    if routing:
        routing_meta, routing_arrays = build_routing(
            shard_sets, seed=seed, sig_scheme=spec.generator
        )
        routing_meta["arrays"] = (
            write_arrays(out / ROUTING_FILE, routing_arrays)
            if routing_arrays else {}
        )

    sidmap_specs = write_arrays(out / SIDMAP_FILE, {
        f"shard{i:03d}_sids": np.asarray(shard_gsids[i], dtype=np.int64)
        for i in range(n_shards)
    })
    manifest = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "n_shards": n_shards,
        "n_sets": len(sets),
        "partition": {"method": partition, "seed": seed},
        "tune": tune,
        "build": {
            "budget": budget, "recall_target": recall_target,
            "k": k, "b": b, "seed": seed, "sample_pairs": sample_pairs,
            "codec": spec.name,
        },
        "global_plan": {
            "cut_points": list(plan.cut_points),
            "delta": plan.delta,
            "tables_used": plan.tables_used,
            "expected_recall": round(plan.expected_recall, 6),
        },
        "sidmap": sidmap_specs,
        "routing": routing_meta,
        "shards": shard_entries,
        "build_seconds": round(time.perf_counter() - t0, 3),
    }
    _write_manifest(out, manifest)
    return manifest


def _write_manifest(out: Path, manifest: dict) -> None:
    """Atomic shard-manifest (re)write: a crashed build or replicate
    never leaves an openable half-written directory (snapfile
    discipline)."""
    payload = json.dumps(manifest, indent=2).encode()
    fd, tmp_path = tempfile.mkstemp(dir=out, prefix=".shard_manifest-")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(payload)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_path, out / SHARD_MANIFEST_FILE)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def replicate_shards(
    path,
    top: int = 1,
    copies: int = 2,
    workload=None,
    workload_range: tuple[float, float] = (0.5, 1.0),
) -> dict:
    """Clone the ``top`` hottest shards to ``copies`` total replicas.

    Shard heat is the manifest's per-shard ``weight`` (set-count share
    for mirror builds, estimated answer mass for workload-tuned
    builds); passing a ``workload`` list of query sets re-estimates the
    weights against the current collection via
    :func:`estimate_workload_weights` first and persists them.  Each
    clone is a byte-for-byte ``copytree`` of the shard snapshot
    directory (``shard-XXX-rNN``), recorded in the entry's
    ``replicas`` list, and the manifest is rewritten atomically --
    re-running is idempotent.  Returns the updated manifest.

    Replicas serve reads only: :class:`ShardedExecutor` picks one copy
    per dispatch by power-of-two-choices on in-flight counters, and
    because clones are crc-verified identical at open, the pick can
    never change an answer.
    """
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    if copies < 2:
        raise ValueError(f"copies must be >= 2, got {copies}")
    sharded = open_sharded(path)
    path = Path(path)
    manifest = sharded.manifest
    entries = manifest["shards"]
    if workload is not None:
        build = manifest.get("build", {})
        sets: list[frozenset] = [frozenset()] * sharded.n_sets
        assignment = np.zeros(sharded.n_sets, dtype=np.int64)
        for i in sharded.live_shards:
            snap = sharded.shards[i]
            gsids = sharded.global_sids[i]
            for row, sid in enumerate(snap.sids):
                gsid = int(gsids[row])
                sets[gsid] = snap.sets[sid]
                assignment[gsid] = i
        weights = estimate_workload_weights(
            sets, assignment, sharded.n_shards, workload, *workload_range,
            k=min(int(build.get("k", 32)), 32), b=int(build.get("b", 6)),
            seed=int(build.get("seed", 0)),
            codec=build.get("codec", "full64"),
        )
        for entry, weight in zip(entries, weights):
            entry["weight"] = round(float(weight), 6)
    live = [i for i in sharded.live_shards]
    live.sort(key=lambda i: (-entries[i]["weight"], i))
    hot = live[:top]
    for i in hot:
        entry = entries[i]
        src = path / entry["dir"]
        replicas = []
        for c in range(1, copies):
            name = f"{entry['dir']}-r{c:02d}"
            dst = path / name
            if dst.exists():
                shutil.rmtree(dst)
            shutil.copytree(src, dst)
            replicas.append(name)
        entry["replicas"] = replicas
    manifest["version"] = FORMAT_VERSION
    _write_manifest(path, manifest)
    return manifest


# -- open / verify ---------------------------------------------------------


def is_sharded(path) -> bool:
    """Whether ``path`` is a sharded-index directory (shard manifest)."""
    try:
        return (Path(path) / SHARD_MANIFEST_FILE).is_file()
    except OSError:
        return False


class ShardedSnapshot:
    """An opened K-shard directory: per-shard mapped snapshots plus the
    local-sid -> global-sid maps.  ``shards[i]`` is None for an empty
    shard.  ``routing`` is the decoded
    :class:`~repro.exec.route.RoutingInfo` (None on v1 manifests or
    ``routing=False`` builds); ``replicas[i]`` lists the extra opened
    snapshot copies of a replicated shard (the primary is not in the
    list)."""

    def __init__(self, path, manifest: dict, shards: list,
                 global_sids: list[np.ndarray], routing=None,
                 replicas: dict | None = None):
        self.path = Path(path)
        self.manifest = manifest
        self.shards = shards
        self.global_sids = global_sids
        self.routing = routing
        self.replicas = replicas or {}

    @property
    def n_shards(self) -> int:
        return int(self.manifest["n_shards"])

    @property
    def n_sets(self) -> int:
        return int(self.manifest["n_sets"])

    @property
    def live_shards(self) -> list[int]:
        """Indices of the non-empty shards (the ones that get probed)."""
        return [i for i, s in enumerate(self.shards) if s is not None]

    def __repr__(self) -> str:
        return (
            f"ShardedSnapshot(path={str(self.path)!r}, "
            f"n_shards={self.n_shards}, n_sets={self.n_sets})"
        )


def open_sharded(path, verify: bool = False) -> "ShardedSnapshot":
    """Open a sharded directory written by :func:`build_sharded`.

    Always checks the format header, each shard's recorded snapshot
    -manifest crc32, and the sid-map structure (every global sid in
    exactly one shard); ``verify=True`` additionally checksums every
    mapped array of every shard (reads all bytes).
    """
    from repro.exec.snapfile import (
        MANIFEST_FILE,
        SnapshotError,
        open_arrays,
        open_snapshot,
    )

    path = Path(path)
    manifest_path = path / SHARD_MANIFEST_FILE
    if not manifest_path.is_file():
        raise ShardError(f"{path} has no {SHARD_MANIFEST_FILE}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ShardError(f"unreadable shard manifest at {path}: {exc}") from exc
    if manifest.get("format") != FORMAT_NAME:
        raise ShardError(
            f"{path} is not a sharded index "
            f"(format={manifest.get('format')!r})"
        )
    if manifest.get("version") not in _SUPPORTED_VERSIONS:
        raise ShardError(
            f"unsupported shard-manifest version {manifest.get('version')!r}"
        )
    # Pre-v3 manifests predate the codec layer (full64 by construction);
    # an unknown tag fails loudly with the snapshot layer's typed error
    # before any shard bytes are interpreted.
    from repro.core.codec import CodecError, parse_codec
    from repro.exec.snapfile import SnapshotFormatError

    codec_tag = manifest.get("build", {}).get("codec", "full64")
    try:
        parse_codec(codec_tag)
    except CodecError as exc:
        raise SnapshotFormatError(
            f"{path} uses unsupported signature codec {codec_tag!r}: {exc}"
        ) from exc
    n_shards = int(manifest["n_shards"])
    entries = manifest["shards"]
    if len(entries) != n_shards:
        raise ShardError(
            f"manifest names {len(entries)} shards but n_shards={n_shards}"
        )
    sidmap = open_arrays(path / SIDMAP_FILE, manifest["sidmap"], verify=verify)
    shards: list = []
    global_sids: list[np.ndarray] = []
    replicas: dict[int, list] = {}
    for i, entry in enumerate(entries):
        gsids = sidmap.get(f"shard{i:03d}_sids")
        if gsids is None:
            raise ShardError(f"sid map missing shard {i}")
        global_sids.append(np.asarray(gsids, dtype=np.int64))
        if entry.get("empty"):
            if len(gsids) != 0:
                raise ShardError(
                    f"shard {i} marked empty but maps {len(gsids)} sids"
                )
            shards.append(None)
            continue
        shard_dir = path / entry["dir"]
        try:
            crc = zlib.crc32((shard_dir / MANIFEST_FILE).read_bytes())
        except OSError as exc:
            raise ShardError(f"shard {i}: {exc}") from exc
        if crc != entry.get("manifest_crc32"):
            raise ShardError(
                f"shard {i} manifest checksum mismatch: {shard_dir} does "
                "not match the shard manifest (corrupt or replaced)"
            )
        try:
            snap = open_snapshot(shard_dir, verify=verify)
        except SnapshotError as exc:
            raise ShardError(f"shard {i}: {exc}") from exc
        if snap.n_sets != len(gsids):
            raise ShardError(
                f"shard {i} holds {snap.n_sets} sets but maps "
                f"{len(gsids)} global sids"
            )
        shards.append(snap)
        for name in entry.get("replicas", ()):
            replica_dir = path / name
            try:
                crc = zlib.crc32((replica_dir / MANIFEST_FILE).read_bytes())
            except OSError as exc:
                raise ShardError(f"shard {i} replica {name}: {exc}") from exc
            if crc != entry.get("manifest_crc32"):
                # A replica that drifted from its primary could change
                # answers depending on which copy serves a dispatch.
                raise ShardError(
                    f"shard {i} replica {name} is not identical to its "
                    "primary (manifest checksum mismatch)"
                )
            try:
                replicas.setdefault(i, []).append(
                    open_snapshot(replica_dir, verify=verify)
                )
            except SnapshotError as exc:
                raise ShardError(f"shard {i} replica {name}: {exc}") from exc
    merged = (
        np.concatenate([g for g in global_sids if len(g)])
        if any(len(g) for g in global_sids) else np.empty(0, dtype=np.int64)
    )
    if len(merged) != manifest["n_sets"] or (
        len(merged) and (
            np.unique(merged).size != len(merged)
            or int(merged.min()) != 0
            or int(merged.max()) != len(merged) - 1
        )
    ):
        raise ShardError(
            "sid map is not a partition of the collection: "
            f"{len(merged)} mapped sids for {manifest['n_sets']} sets"
        )
    try:
        routing = load_routing(path, manifest, verify=verify)
    except (OSError, KeyError, SnapshotError) as exc:
        raise ShardError(f"unreadable routing summaries: {exc}") from exc
    return ShardedSnapshot(
        path, manifest, shards, global_sids,
        routing=routing, replicas=replicas,
    )


def verify_sharded(path) -> dict:
    """Full integrity pass: shard-manifest checks plus a crc32 of every
    array in every shard snapshot.  Returns a summary dict; raises
    :class:`ShardError` / snapshot errors on any mismatch."""
    from repro.exec.snapfile import verify_snapshot

    sharded = open_sharded(path, verify=True)
    arrays = 0
    array_bytes = 0
    for i in sharded.live_shards:
        summary = verify_snapshot(sharded.path / sharded.manifest["shards"][i]["dir"])
        arrays += summary["n_arrays"]
        array_bytes += summary["arrays_bytes"]
    return {
        "n_shards": sharded.n_shards,
        "n_sets": sharded.n_sets,
        "live_shards": len(sharded.live_shards),
        "n_arrays": arrays,
        "arrays_bytes": array_bytes,
        "tune": sharded.manifest["tune"],
        "routing": sharded.routing is not None,
        "n_replicas": sum(len(r) for r in sharded.replicas.values()),
    }


# -- scatter-gather execution ----------------------------------------------


class ShardedExecutor:
    """Scatter-gather ``query``/``query_batch`` over a fleet of shards.

    One :class:`~repro.exec.parallel.ParallelExecutor` per live shard
    (its own ``workers``-wide thread or process pool), scattered from a
    small thread pool and merged deterministically:

    - per-query answers are mapped local->global sid and re-sorted
      best-first (sid ties ascending) -- exactly the order
      ``in_range_answers`` gives every unsharded verification path;
    - candidates are the union of mapped per-shard candidates;
    - IOStats, ``pages_saved``/``fetches_saved`` and per-phase timings
      are integer/float sums over shards (order-independent);
    - per-shard executors run with ``record=False`` and this class
      emits one merged ``record_query`` + ``query.*`` update, so a
      sharded batch counts every query once.

    On a mirror-built manifest the merged batch is bit-identical to
    the unsharded ``query_batch`` (see the module docstring); on a
    workload-tuned manifest answers remain exact-verified but the
    candidate funnel is per-shard.

    ``route`` selects the shard-routing mode
    (:mod:`repro.exec.route`), applied when the manifest carries
    routing summaries and ``strategy`` resolves to the index path:

    - ``"full"`` -- no routing; every shard gets every query.
    - ``"safe"`` (default) -- every shard is still dispatched (probes
      are unchanged, so candidates stay bit-identical to full
      fan-out), but (query, shard) pairs whose sound Jaccard upper
      bound falls below ``sigma_low`` skip fetch + exact verification.
      Answers are bit-identical to full fan-out: a pruned pair
      provably holds no in-range answer.
    - ``"sketch"`` -- pruned pairs are dropped from the dispatch
      itself (a shard with no surviving query is not contacted), and
      the MinHash universe profile tightens the bound further.
      Estimated, not proven: recall is measured in BENCH-ROUTE.

    When a shard has replicas (:func:`replicate_shards`), each
    dispatch picks one copy by power-of-two-choices on in-flight
    counters; replicas are crc-verified identical, so the pick never
    changes an answer, only which mmap serves it.

    Telemetry lands under ``metric_prefix`` (default ``"shard"``; the
    query server uses ``"serve.shard"``): per-shard batch-latency HDRs
    and candidate counters, a routed-subqueries counter, a skew gauge
    (slowest/mean shard wall per batch), ``route.*`` counters
    (``subqueries_pruned``, ``shards_skipped``,
    ``replica_dispatches``) and per-shard in-flight gauges.
    """

    def __init__(self, sharded: ShardedSnapshot, workers: int = 1,
                 backend: str = "thread", metric_prefix: str = "shard",
                 route: str = "safe"):
        from concurrent.futures import ThreadPoolExecutor

        from repro.exec.parallel import ParallelExecutor

        if route not in ("full", "safe", "sketch"):
            raise ValueError(f"unknown route mode: {route!r}")
        self.sharded = sharded
        self.workers = workers
        self.backend = backend
        self.metric_prefix = metric_prefix
        self.route = route
        routing = getattr(sharded, "routing", None)
        self._router = (
            ShardRouter(routing)
            if route != "full" and routing is not None else None
        )
        #: False when ``route`` asked for routing but the manifest has
        #: no summaries (v1 builds) -- execution falls back to full
        #: fan-out and ``exec_stats["route"]["active"]`` says so.
        self.route_active = self._router is not None
        self._closed = False
        self._live = sharded.live_shards
        self._executors = {
            i: ParallelExecutor(
                sharded.shards[i], workers=workers, backend=backend,
                record=False,
            )
            for i in self._live
        }
        self._replica_execs = {
            i: [self._executors[i]] + [
                ParallelExecutor(
                    rsnap, workers=workers, backend=backend, record=False
                )
                for rsnap in getattr(sharded, "replicas", {}).get(i, ())
            ]
            for i in self._live
        }
        self._inflight = {
            i: [0] * len(execs) for i, execs in self._replica_execs.items()
        }
        self._dispatches = {
            i: [0] * len(execs) for i, execs in self._replica_execs.items()
        }
        self._inflight_lock = threading.Lock()
        # Seeded: replica picks (hence telemetry) reproduce run-to-run;
        # answers never depend on the pick because copies are identical.
        self._pick_rng = random.Random(0)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, len(self._live)),
            thread_name_prefix="repro-shard",
        )
        self._m_batches = metrics.counter(f"{metric_prefix}.batches")
        self._m_routed = metrics.counter(f"{metric_prefix}.routed_subqueries")
        self._m_skew = metrics.gauge(f"{metric_prefix}.wall_skew")
        self._m_pruned = metrics.counter(
            f"{metric_prefix}.route.subqueries_pruned"
        )
        self._m_skipped = metrics.counter(
            f"{metric_prefix}.route.shards_skipped"
        )
        self._m_replica_dispatches = metrics.counter(
            f"{metric_prefix}.route.replica_dispatches"
        )
        self._m_latency = {
            i: metrics.hdr(f"{metric_prefix}.{i:02d}.batch_ms")
            for i in self._live
        }
        self._m_candidates = {
            i: metrics.counter(f"{metric_prefix}.{i:02d}.candidates")
            for i in self._live
        }
        self._m_inflight = {
            i: metrics.gauge(f"{metric_prefix}.{i:02d}.in_flight")
            for i in self._live
        }

    def close(self) -> None:
        self._closed = True
        for execs in self._replica_execs.values():
            for executor in execs:
                executor.close()
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- public API --------------------------------------------------------

    def query_batch(self, queries, sigma_low: float, sigma_high: float,
                    strategy: str = "index",
                    explain: bool = False) -> BatchQueryResult:
        """Scatter one batch to every live shard and merge.

        Parameters and result semantics match
        :meth:`~repro.exec.parallel.ParallelExecutor.query_batch`;
        ``strategy="auto"`` is resolved per shard (each shard weighs
        its own scan cost).
        """
        if self._closed:
            raise ShardError("sharded executor is closed")
        if not 0.0 <= sigma_low <= sigma_high <= 1.0:
            raise ValueError(
                f"invalid similarity range [{sigma_low}, {sigma_high}]"
            )
        if strategy not in ("index", "scan", "auto"):
            raise ValueError(f"unknown strategy: {strategy!r}")
        query_sets = [frozenset(q) for q in queries]
        n = len(query_sets)
        wall0 = time.perf_counter()
        # Routing applies to the index path only: "scan" reads every
        # heap page regardless, and "auto" may resolve to scan per
        # shard, so both fan out in full.
        decision = None
        route_seconds = 0.0
        if self._router is not None and strategy == "index" and self._live:
            decision = self._router.route(
                query_sets, sigma_low, self._live,
                sketch=(self.route == "sketch"),
            )
            route_seconds = time.perf_counter() - wall0
        with trace.capture(
            "sharded_query_batch",
            force=explain,
            n_shards=self.sharded.n_shards,
            live_shards=len(self._live),
            workers=self.workers,
            backend=self.backend,
            strategy=strategy,
            route=self.route,
            sigma_low=sigma_low,
            sigma_high=sigma_high,
            n_queries=n,
        ) as root:
            shard_batches = self._scatter(
                query_sets, sigma_low, sigma_high, strategy, explain,
                decision,
            )
            merge0 = time.perf_counter()
            batch = self._merge(shard_batches, n)
            merge_seconds = time.perf_counter() - merge0
            batch.trace = root
            batch.exec_stats = self._exec_stats(
                shard_batches, strategy, wall0, merge_seconds,
                decision, route_seconds,
            )
            if decision is not None:
                batch.timings["route"] = route_seconds * 1e3
            if root is not None:
                for i, (sbatch, _, _) in shard_batches.items():
                    if sbatch.trace is not None:
                        sbatch.trace.set(shard=i)
                        root.children.append(sbatch.trace)
                root.set(
                    n_candidates=batch.n_candidates,
                    n_verified=batch.n_verified,
                    pages_saved=batch.pages_saved,
                    fetches_saved=batch.fetches_saved,
                    merge_ms=round(merge_seconds * 1e3, 3),
                )
                if decision is not None:
                    root.set(
                        route_mode=decision.mode,
                        route_pruned_subqueries=decision.pruned_pairs,
                        route_skipped_shards=len(decision.skipped_shards()),
                    )
        self._record(batch, shard_batches, n, wall0,
                     sigma_low, sigma_high, strategy, decision)
        return batch

    def query(self, query, sigma_low: float, sigma_high: float,
              strategy: str = "index", explain: bool = False) -> QueryResult:
        """Single-query convenience over :meth:`query_batch`."""
        batch = self.query_batch(
            [query], sigma_low, sigma_high, strategy=strategy, explain=explain
        )
        result = batch.results[0]
        return QueryResult(
            answers=result.answers,
            candidates=result.candidates,
            io=batch.io,
            io_time=batch.io_time,
            cpu_time=batch.cpu_time,
            trace=batch.trace,
            timings=batch.timings,
        )

    # -- internals ---------------------------------------------------------

    def _scatter(self, query_sets, sigma_low, sigma_high, strategy, explain,
                 decision=None):
        """Fan the batch out; returns ``{shard: (batch, seconds, rows)}``
        where ``rows`` lists the global query rows a sub-batch covers
        (None = the whole batch, in order)."""
        n = len(query_sets)
        units: list[tuple] = []  # (shard, queries, rows, verify_rows)
        for i in self._live:
            if decision is None:
                units.append((i, query_sets, None, None))
            elif decision.mode == "sketch":
                rows = decision.kept.get(i, [])
                if not rows:
                    continue  # shard not contacted at all
                if len(rows) == n:
                    units.append((i, query_sets, None, None))
                else:
                    units.append(
                        (i, [query_sets[r] for r in rows], rows, None)
                    )
            else:  # safe: dispatch everything, mask pruned verifies
                kept = decision.kept.get(i, [])
                vrows = None if len(kept) == n else kept
                units.append((i, query_sets, None, vrows))

        def run(unit):
            i, qs, rows, vrows = unit
            executor, slot = self._acquire(i)
            t0 = time.perf_counter()
            try:
                sbatch = executor.query_batch(
                    qs, sigma_low, sigma_high,
                    strategy=strategy, explain=explain, verify_rows=vrows,
                )
            except Exception as exc:
                raise ShardError(f"shard {i} failed: {exc}") from exc
            finally:
                self._release(i, slot)
            return i, (sbatch, time.perf_counter() - t0, rows)

        if len(units) <= 1:
            # Single dispatch (K=1 fleet, or routing left one shard):
            # run inline and skip the scatter-pool thread hop.
            return dict(run(unit) for unit in units)
        futures = [self._pool.submit(run, unit) for unit in units]
        return dict(future.result() for future in futures)

    def _acquire(self, i: int):
        """Pick a replica of shard ``i`` (power-of-two-choices on
        in-flight counters) and mark it busy."""
        execs = self._replica_execs[i]
        slot = 0
        with self._inflight_lock:
            if len(execs) > 1:
                # In-flight ties (every dispatch, in a sequential
                # caller) fall back to total dispatch count, so load
                # stays balanced even without concurrency.
                a, b = self._pick_rng.sample(range(len(execs)), 2)
                slot = min(a, b, key=lambda s: (
                    self._inflight[i][s], self._dispatches[i][s]
                ))
            self._inflight[i][slot] += 1
            self._dispatches[i][slot] += 1
            busy = sum(self._inflight[i])
        if len(execs) > 1:
            self._m_replica_dispatches.inc()
        self._m_inflight[i].set(busy)
        return execs[slot], slot

    def _release(self, i: int, slot: int) -> None:
        with self._inflight_lock:
            self._inflight[i][slot] -= 1
            busy = sum(self._inflight[i])
        self._m_inflight[i].set(busy)

    def replica_dispatch_counts(self) -> dict:
        """Per-replica dispatch counts of replicated shards (slot 0 is
        the primary) -- the load-balance evidence BENCH-ROUTE reports."""
        with self._inflight_lock:
            return {
                i: list(self._dispatches[i])
                for i in self._live if len(self._replica_execs[i]) > 1
            }

    def _merge(self, shard_batches, n: int) -> BatchQueryResult:
        """Deterministic merge; see the class docstring for semantics."""
        merged_answers: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        merged_cands: list[set[int]] = [set() for _ in range(n)]
        io = IOStats()
        pages_saved = 0
        fetches_saved = 0
        timings: dict[str, float] = {}
        for i, (sbatch, _, rows) in sorted(shard_batches.items()):
            gsids = self.sharded.global_sids[i]
            row_of = rows if rows is not None else range(len(sbatch.results))
            for q, result in zip(row_of, sbatch.results):
                if result.answers:
                    merged_answers[q].extend(
                        (int(gsids[sid]), sim) for sid, sim in result.answers
                    )
                if result.candidates:
                    merged_cands[q].update(
                        int(gsids[sid]) for sid in result.candidates
                    )
            io = io + sbatch.io
            pages_saved += sbatch.pages_saved
            fetches_saved += sbatch.fetches_saved
            for phase, ms in (sbatch.timings or {}).items():
                timings[phase] = timings.get(phase, 0.0) + ms
        for answers in merged_answers:
            # The engine-wide answer order (``in_range_answers``):
            # best-first, sid ties ascending.  Shard-local sims of a
            # pair equal the global path's (same IEEE jaccard), so
            # re-sorting the mapped union reproduces the unsharded
            # ordering exactly.
            answers.sort(key=lambda pair: (-pair[1], pair[0]))
        if self._live:
            cost = self.sharded.shards[self._live[0]].cost
            io_time, cpu_time = cost.io_time(io), cost.cpu_time(io)
        else:
            io_time = cpu_time = 0.0
        batch = BatchQueryResult(
            results=[
                QueryResult(
                    answers=answers, candidates=candidates,
                    io=IOStats(), io_time=0.0, cpu_time=0.0,
                )
                for answers, candidates in zip(merged_answers, merged_cands)
            ],
            io=io,
            io_time=io_time,
            cpu_time=cpu_time,
            pages_saved=pages_saved,
            fetches_saved=fetches_saved,
        )
        batch.timings = timings
        return batch

    def _exec_stats(self, shard_batches, strategy, wall0, merge_seconds,
                    decision=None, route_seconds=0.0):
        # Live shards routing skipped entirely report a 0.0 wall: the
        # fleet did no work for them this batch.
        shard_walls = {i: 0.0 for i in self._live}
        shard_walls.update({
            i: seconds for i, (_, seconds, _) in sorted(shard_batches.items())
        })
        stage_seconds: dict[str, float] = {}
        for _, (sbatch, _, _) in sorted(shard_batches.items()):
            for stage, seconds in (
                (sbatch.exec_stats or {}).get("stage_seconds", {}).items()
            ):
                stage_seconds[stage] = stage_seconds.get(stage, 0.0) + seconds
        stats = {
            "sharded": True,
            "n_shards": self.sharded.n_shards,
            "live_shards": len(self._live),
            "workers": self.workers,
            "backend": self.backend,
            "strategy": strategy,
            "wall_seconds": time.perf_counter() - wall0,
            "merge_seconds": merge_seconds,
            "shard_wall_seconds": dict(sorted(shard_walls.items())),
            "stage_seconds": stage_seconds,
            "shards": {
                i: {
                    "wall_seconds": sbatch.exec_stats["wall_seconds"],
                    "n_candidates": sbatch.n_candidates,
                    "n_verified": sbatch.n_verified,
                }
                for i, (sbatch, _, _) in sorted(shard_batches.items())
            },
        }
        stats["route"] = {
            "mode": self.route,
            "active": decision is not None,
            "route_seconds": route_seconds,
            "subqueries_pruned": decision.pruned_pairs if decision else 0,
            "shards_skipped": len(self._live) - len(shard_batches),
            "replicas": self.replica_dispatch_counts(),
        }
        return stats

    def _record(self, batch, shard_batches, n, wall0,
                sigma_low, sigma_high, strategy, decision=None) -> None:
        """One merged telemetry record per sharded batch (the per-shard
        executors ran with ``record=False``), plus the ``metric_prefix``
        fleet instruments."""
        walls = []
        dispatched_subqueries = 0
        for i, (sbatch, seconds, rows) in shard_batches.items():
            self._m_latency[i].observe(seconds * 1e3)
            self._m_candidates[i].inc(sbatch.n_candidates)
            walls.append(seconds)
            dispatched_subqueries += len(rows) if rows is not None else n
        self._m_batches.inc()
        self._m_routed.inc(dispatched_subqueries)
        n_skipped = len(self._live) - len(shard_batches)
        if decision is not None:
            self._m_pruned.inc(decision.pruned_pairs)
            self._m_skipped.inc(n_skipped)
        if walls:
            mean = sum(walls) / len(walls)
            self._m_skew.set(max(walls) / mean if mean > 0 else 1.0)
        _SHARD_BATCHES.inc()
        # The same aggregates the unsharded batch paths record.
        q_batches = metrics.counter("query.batches")
        q_batches.inc()
        metrics.histogram("query.batch_size").observe(n)
        metrics.counter("query.batch_fetches_saved").inc(batch.fetches_saved)
        metrics.counter("query.count").inc(n)
        metrics.counter("query.candidates").inc(batch.n_candidates)
        metrics.counter("query.verified_hits").inc(batch.n_verified)
        metrics.counter("query.false_positives").inc(
            batch.n_candidates - batch.n_verified
        )
        per_query = metrics.histogram("query.candidates_per_query")
        for result in batch.results:
            per_query.observe(result.n_candidates)
        event_timings = dict(batch.timings or {})
        if decision is not None:
            # Routing decisions ride the event's free-form timings
            # payload (the schema's fixed fields stay fixed).
            event_timings["route_pruned_subqueries"] = float(
                decision.pruned_pairs
            )
            event_timings["route_skipped_shards"] = float(n_skipped)
        events.record_query(
            "sharded_query_batch",
            latency_ms=(time.perf_counter() - wall0) * 1e3,
            sim_time=batch.total_time,
            n_queries=n,
            n_candidates=batch.n_candidates,
            n_verified=batch.n_verified,
            pages_read=batch.io.random_reads + batch.io.sequential_reads,
            cache_hits=0,
            backend=self.backend,
            workers=self.workers,
            strategy=strategy,
            sigma_low=sigma_low,
            sigma_high=sigma_high,
            timings=event_timings,
        )

    def __repr__(self) -> str:
        return (
            f"ShardedExecutor(shards={self.sharded.n_shards}, "
            f"workers={self.workers}, backend={self.backend!r})"
        )
