"""Process-wide metrics registry: counters, gauges, histograms.

Storage and filter components report per-probe statistics here --
buckets probed, collisions per table, candidates per filter,
verification hits, bucket-occupancy distributions -- so that tuning
experiments (and ``repro stats``) can see aggregate behavior without
tracing individual queries.

The design mirrors the usual in-process metrics libraries but stays
stdlib-only and allocation-free on the hot path: instrumented modules
look their instruments up **once** at import time and then mutate a
plain attribute per event::

    _PROBES = metrics.counter("hashtable.probes")
    ...
    _PROBES.inc()
    # or, in an inner loop, hoist the calling thread's shard:
    cell = _PROBES.shard()
    for ...:
        cell.count += 1

:func:`MetricsRegistry.reset` therefore zeroes instruments *in place*
rather than discarding them, so cached references stay live.

Thread model: counters are **sharded per thread** -- each thread
increments a private cell and :attr:`Counter.value` sums the cells on
read, so concurrent increments from a worker pool are exact without
any hot-path locking (a cell is only ever mutated by its owning
thread).  Gauges and histograms are not sharded; they are updated from
batch-merge points that run on one thread at a time.

All instruments are registered in a module-level default registry
(:data:`registry`); tests that need isolation can construct their own
:class:`MetricsRegistry`.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Sequence

#: Default histogram bucket upper bounds (counts-per-event scale).
DEFAULT_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)


class CounterShard:
    """One thread's private slice of a sharded :class:`Counter`.

    Only the owning thread mutates ``count``; aggregation reads it
    without a lock (int reads are atomic under the GIL, and a torn
    read at worst lags by in-flight increments).
    """

    __slots__ = ("count",)

    def __init__(self):
        self.count = 0


class Counter:
    """A monotonically increasing count of events, sharded per thread.

    ``inc()`` (or ``shard().count += n`` in hot loops) touches only the
    calling thread's :class:`CounterShard`; :attr:`value` aggregates
    all shards on read.  Shards of finished threads are kept so their
    contributions survive thread exit.
    """

    __slots__ = ("name", "_lock", "_shards", "_local")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._shards: list[CounterShard] = []
        self._local = threading.local()

    def shard(self) -> CounterShard:
        """The calling thread's private cell (created on first use)."""
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = CounterShard()
            with self._lock:
                self._shards.append(cell)
            self._local.cell = cell
        return cell

    def inc(self, n: int = 1) -> None:
        self.shard().count += n

    @property
    def value(self) -> int:
        """Total across all threads (aggregated on read)."""
        with self._lock:
            return sum(cell.count for cell in self._shards)

    @property
    def local_value(self) -> int:
        """The calling thread's contribution only.

        The right operand for before/after deltas taken around work
        that runs entirely on the calling thread: unlike ``value`` it
        cannot be perturbed by concurrent increments elsewhere.
        """
        cell = getattr(self._local, "cell", None)
        return 0 if cell is None else cell.count

    def _reset(self) -> None:
        with self._lock:
            for cell in self._shards:
                cell.count = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time value (load factor, entries per table, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def _reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """A distribution of observed values in fixed buckets.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything above the last bound.  Besides bucket counts the
    histogram tracks count/sum/min/max, so mean occupancy and tail
    behavior are both recoverable.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted, got {bounds}")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                (f"<={bound}" if i < len(self.bounds) else
                 f">{self.bounds[-1]}"): n
                for i, (bound, n) in enumerate(
                    zip(self.bounds + (self.bounds[-1],), self.counts)
                )
            },
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.2f})"


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    Creation is lock-protected (instrument lookups may race across
    threads at import time); the per-event mutations on the returned
    instruments are plain attribute updates.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, bounds)
            return instrument

    def snapshot(self) -> dict[str, Any]:
        """All current values, JSON-safe, grouped by instrument kind."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.to_dict() for n, h in sorted(self._histograms.items())
                },
            }

    def counter_values(self) -> dict[str, int]:
        """Current aggregated value of every registered counter.

        The primitive behind cross-process counter folding: a
        single-threaded worker brackets a task with two calls and the
        difference is exactly that task's movements.
        """
        with self._lock:
            counters = list(self._counters.items())
        return {name: counter.value for name, counter in counters}

    def apply_counter_deltas(self, deltas: dict[str, int]) -> None:
        """Fold externally measured counter deltas into this registry.

        Used by the process-backend executor to replay each worker
        task's counter movements on the parent (counters are created on
        demand; deltas land in the calling thread's shard), so process
        totals match what the thread backend would have recorded.
        """
        for name, delta in deltas.items():
            if delta:
                self.counter(name).shard().count += delta

    def reset(self) -> None:
        """Zero every instrument in place (cached references stay valid)."""
        with self._lock:
            for group in (self._counters, self._gauges, self._histograms):
                for instrument in group.values():
                    instrument._reset()


#: The default process-wide registry used by the instrumented modules.
registry = MetricsRegistry()


def counter(name: str) -> Counter:
    """Get-or-create a counter in the default registry."""
    return registry.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge in the default registry."""
    return registry.gauge(name)


def histogram(name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
    """Get-or-create a histogram in the default registry."""
    return registry.histogram(name, bounds)


def snapshot() -> dict[str, Any]:
    """Snapshot of the default registry."""
    return registry.snapshot()


def counter_values() -> dict[str, int]:
    """Current counter values of the default registry."""
    return registry.counter_values()


def apply_counter_deltas(deltas: dict[str, int]) -> None:
    """Fold counter deltas into the default registry."""
    return registry.apply_counter_deltas(deltas)


def reset() -> None:
    """Reset the default registry."""
    registry.reset()
