"""Unit tests for the B-tree (insert, search, delete, range scans)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.btree import BTree, _lower_bound
from repro.storage.iomodel import IOCostModel
from repro.storage.pager import PageManager


def _tree(min_degree=2, cache="inner"):
    return BTree(PageManager(IOCostModel()), min_degree=min_degree, cache=cache)


def _check_invariants(tree):
    """Structural invariants: key ordering, node fill, uniform depth."""
    t = tree.t
    depths = []

    def visit(node, lo, hi, depth, is_root):
        assert node.keys == sorted(node.keys)
        for key in node.keys:
            assert (lo is None or key > lo) and (hi is None or key < hi)
        if not is_root:
            assert t - 1 <= len(node.keys) <= 2 * t - 1
        else:
            assert len(node.keys) <= 2 * t - 1
        if node.is_leaf:
            depths.append(depth)
            return
        assert len(node.children) == len(node.keys) + 1
        bounds = [lo, *node.keys, hi]
        for i, child in enumerate(node.children):
            visit(child, bounds[i], bounds[i + 1], depth + 1, False)

    visit(tree._root, None, None, 0, True)
    assert len(set(depths)) == 1  # all leaves at the same depth


class TestLowerBound:
    def test_empty(self):
        assert _lower_bound([], 5) == 0

    def test_positions(self):
        keys = [10, 20, 30]
        assert _lower_bound(keys, 5) == 0
        assert _lower_bound(keys, 10) == 0
        assert _lower_bound(keys, 15) == 1
        assert _lower_bound(keys, 30) == 2
        assert _lower_bound(keys, 35) == 3


class TestBasicOperations:
    def test_insert_search(self):
        tree = _tree()
        tree.insert(5, "five")
        tree.insert(3, "three")
        tree.insert(8, "eight")
        assert tree.search(5) == "five"
        assert tree.search(3) == "three"
        assert tree.n_keys == 3

    def test_search_missing(self):
        tree = _tree()
        tree.insert(1, "x")
        with pytest.raises(KeyError):
            tree.search(2)

    def test_contains(self):
        tree = _tree()
        tree.insert(7, None)
        assert 7 in tree
        assert 8 not in tree

    def test_update_existing_key(self):
        tree = _tree()
        tree.insert(1, "old")
        tree.insert(1, "new")
        assert tree.search(1) == "new"
        assert tree.n_keys == 1

    def test_update_in_deep_tree(self):
        tree = _tree(min_degree=2)
        for i in range(50):
            tree.insert(i, i)
        tree.insert(25, "replaced")
        assert tree.search(25) == "replaced"
        assert tree.n_keys == 50

    def test_many_inserts_sorted_items(self):
        tree = _tree(min_degree=3)
        keys = list(range(200))
        np.random.default_rng(0).shuffle(keys)
        for k in keys:
            tree.insert(k, k * 2)
        assert [k for k, _ in tree.items()] == list(range(200))
        assert tree.n_keys == 200
        _check_invariants(tree)

    def test_height_grows_logarithmically(self):
        tree = _tree(min_degree=2)
        for i in range(100):
            tree.insert(i, i)
        assert tree.height <= 7  # log_2-ish of 100 with t=2

    def test_invalid_min_degree(self):
        with pytest.raises(ValueError):
            _tree(min_degree=1)


class TestRangeScan:
    def test_range_inclusive(self):
        tree = _tree(min_degree=2)
        for i in range(0, 100, 10):
            tree.insert(i, str(i))
        got = list(tree.range_scan(20, 50))
        assert got == [(20, "20"), (30, "30"), (40, "40"), (50, "50")]

    def test_range_empty(self):
        tree = _tree()
        tree.insert(1, "a")
        assert list(tree.range_scan(5, 9)) == []

    def test_range_whole_tree(self):
        tree = _tree(min_degree=2)
        keys = [3, 1, 4, 1, 5, 9, 2, 6]
        for k in keys:
            tree.insert(k, k)
        got = [k for k, _ in tree.range_scan(0, 10)]
        assert got == sorted(set(keys))


class TestDelete:
    def test_delete_leaf_key(self):
        tree = _tree()
        for i in range(10):
            tree.insert(i, i)
        tree.delete(9)
        assert 9 not in tree
        assert tree.n_keys == 9
        _check_invariants(tree)

    def test_delete_missing_raises(self):
        tree = _tree()
        tree.insert(1, 1)
        with pytest.raises(KeyError):
            tree.delete(99)

    def test_delete_everything(self):
        tree = _tree(min_degree=2)
        keys = list(range(60))
        np.random.default_rng(1).shuffle(keys)
        for k in keys:
            tree.insert(k, k)
        np.random.default_rng(2).shuffle(keys)
        for k in keys:
            tree.delete(k)
            _check_invariants(tree)
        assert tree.n_keys == 0
        assert list(tree.items()) == []

    def test_delete_internal_keys(self):
        tree = _tree(min_degree=2)
        for i in range(30):
            tree.insert(i, i)
        # Root/internal keys exercise predecessor/successor replacement.
        root_keys = list(tree._root.keys)
        for k in root_keys:
            tree.delete(k)
            _check_invariants(tree)
        assert all(k not in tree for k in root_keys)

    def test_root_shrinks(self):
        tree = _tree(min_degree=2)
        for i in range(20):
            tree.insert(i, i)
        height_before = tree.height
        for i in range(18):
            tree.delete(i)
        assert tree.height <= height_before
        _check_invariants(tree)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_matches_dict_model(self, keys):
        tree = _tree(min_degree=2)
        model = {}
        for k in keys:
            tree.insert(k, k * 3)
            model[k] = k * 3
        assert sorted(model.items()) == list(tree.items())
        _check_invariants(tree)
        for k in list(model)[::2]:
            tree.delete(k)
            del model[k]
        assert sorted(model.items()) == list(tree.items())
        _check_invariants(tree)


class TestIOAccounting:
    def test_cached_inner_charges_leaf_only(self):
        tree = _tree(min_degree=2, cache="inner")
        for i in range(100):
            tree.insert(i, i)
        io = tree.pager.io
        before = io.snapshot()
        tree.search(50)
        delta = io.snapshot() - before
        assert delta.random_reads == 1

    def test_uncached_charges_full_path(self):
        tree = _tree(min_degree=2, cache="none")
        for i in range(100):
            tree.insert(i, i)
        io = tree.pager.io
        before = io.snapshot()
        tree.search(50)
        delta = io.snapshot() - before
        assert delta.random_reads == tree.height
