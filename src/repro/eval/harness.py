"""Query-workload runner and result-size bucketing (Section 6 protocol).

The paper's measurement protocol: ask random queries (query sets drawn
from the collection, range bounds random), classify each query by the
size of the candidate list the index returns as a fraction of the
collection, and report precision, recall and response time averaged
per bucket.

``ExperimentHarness`` reproduces that protocol over one dataset: it
holds the built index, a sequential-scan baseline over the *same* set
store (so both pay the same I/O model), and an exact inverted-index
oracle for ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.inverted_index import InvertedIndex
from repro.baselines.sequential_scan import SequentialScan
from repro.core.index import SetSimilarityIndex
from repro.core.metrics import evaluate_query
from repro.data.queries import PAPER_BUCKETS, RangeQuery, bucket_index, bucket_label


@dataclass
class QueryRecord:
    """Everything measured for one query."""

    query: RangeQuery
    n_truth: int
    n_candidates: int
    n_answers: int
    recall: float
    precision: float
    index_io_time: float
    index_cpu_time: float
    scan_io_time: float
    scan_cpu_time: float

    @property
    def index_time(self) -> float:
        return self.index_io_time + self.index_cpu_time

    @property
    def scan_time(self) -> float:
        return self.scan_io_time + self.scan_cpu_time


@dataclass
class BucketSummary:
    """Per-result-size-bucket averages (one bar group in Fig. 6/7)."""

    label: str
    n_queries: int
    recall: float
    precision: float
    index_io_time: float
    index_cpu_time: float
    scan_io_time: float
    scan_cpu_time: float

    @property
    def index_time(self) -> float:
        return self.index_io_time + self.index_cpu_time

    @property
    def scan_time(self) -> float:
        return self.scan_io_time + self.scan_cpu_time


class ExperimentHarness:
    """Runs range queries against index + scan and scores them."""

    def __init__(self, sets: Sequence[frozenset], index: SetSimilarityIndex):
        self.sets = [frozenset(s) for s in sets]
        self.index = index
        self.scan = SequentialScan(index.store)
        self.oracle = InvertedIndex(self.sets)

    def run_query(self, query: RangeQuery, measure_scan: bool = True) -> QueryRecord:
        """Execute one query on the index (and optionally the scan)."""
        query_set = self.sets[query.set_index]
        result = self.index.query(query_set, query.sigma_low, query.sigma_high)
        truth = {
            sid for sid, _ in self.oracle.query(query_set, query.sigma_low, query.sigma_high)
        }
        quality = evaluate_query(result.answer_sids, result.candidates, truth)
        if measure_scan:
            scan_result = self.scan.query(query_set, query.sigma_low, query.sigma_high)
            scan_io, scan_cpu = scan_result.io_time, scan_result.cpu_time
        else:
            scan_io = scan_cpu = 0.0
        return QueryRecord(
            query=query,
            n_truth=len(truth),
            n_candidates=quality.n_candidates,
            n_answers=quality.n_answers,
            recall=quality.recall,
            precision=quality.precision,
            index_io_time=result.io_time,
            index_cpu_time=result.cpu_time,
            scan_io_time=scan_io,
            scan_cpu_time=scan_cpu,
        )

    def run(
        self, queries: Sequence[RangeQuery], measure_scan: bool = True
    ) -> list[QueryRecord]:
        return [self.run_query(q, measure_scan) for q in queries]

    def bucket_summaries(
        self,
        records: Sequence[QueryRecord],
        buckets=PAPER_BUCKETS,
    ) -> list[BucketSummary]:
        """Group records into the paper's result-size buckets.

        Classification follows the paper: by the *candidate* result
        size as a fraction of the collection.  Queries falling outside
        every bucket (e.g. > 35%) are dropped, as in the paper.
        """
        n = max(1, self.index.n_sets)
        grouped: dict[int, list[QueryRecord]] = {}
        for record in records:
            bucket = bucket_index(record.n_candidates / n, buckets)
            if bucket is not None:
                grouped.setdefault(bucket, []).append(record)
        summaries = []
        for i in range(len(buckets)):
            members = grouped.get(i, [])
            if not members:
                summaries.append(
                    BucketSummary(bucket_label(i, buckets), 0, *([float("nan")] * 6))
                )
                continue
            summaries.append(
                BucketSummary(
                    label=bucket_label(i, buckets),
                    n_queries=len(members),
                    recall=float(np.mean([r.recall for r in members])),
                    precision=float(np.mean([r.precision for r in members])),
                    index_io_time=float(np.mean([r.index_io_time for r in members])),
                    index_cpu_time=float(np.mean([r.index_cpu_time for r in members])),
                    scan_io_time=float(np.mean([r.scan_io_time for r in members])),
                    scan_cpu_time=float(np.mean([r.scan_cpu_time for r in members])),
                )
            )
        return summaries
