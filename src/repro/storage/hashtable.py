"""Paged bucket hash table -- the filter indices' building block.

Section 4.1 builds each filter index out of plain hash tables: keys are
the ``r`` sampled bits of a vector, values are set identifiers, and a
bucket holds up to ``sid_count`` identifiers per page.  The paper sizes
the table so bucket overflows are rare; we nevertheless support
overflow chains so the structure stays correct for any input.

The table is fully dynamic (insert and delete), which is what lets the
paper claim the overall index "readily supports dynamic operations".

Each stored entry is a ``(fingerprint, sid)`` pair of 16 bytes.  The
fingerprint is a 64-bit hash of the full key; matching on it avoids
returning sids that merely share a bucket (a modulo collision) while
keeping entries fixed-size.  Probes charge one random read for the
first bucket page and sequential reads for overflow pages, which are
assumed to be allocated adjacently.
"""

from __future__ import annotations

import hashlib

from repro.obs import metrics
from repro.storage.pager import PageManager

#: Bytes per (fingerprint, sid) entry; determines slots per page.
ENTRY_BYTES = 16

# Hot-path instruments, resolved once at import (see repro.obs.metrics).
# Candidate counts are deliberately NOT tracked here: the filter index
# already accounts them (sfi.candidates + sfi.duplicate_candidates is
# the sum of per-table bucket sizes), and probe() is the innermost loop.
_PROBES = metrics.counter("hashtable.probes")
_PROBE_PAGES = metrics.counter("hashtable.probe_pages")
#: Bucket pages a batched probe did NOT read because several keys of
#: the batch resolved to the same bucket (read once, served to all).
_PROBE_PAGES_SAVED = metrics.counter("hashtable.probe_pages_saved")


def hash_key(key: bytes) -> int:
    """Stable 64-bit hash of a key (independent of PYTHONHASHSEED)."""
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "little")


class BucketHashTable:
    """A disk-simulated hash table from byte keys to set identifiers.

    Parameters
    ----------
    pager:
        Page source; also supplies the I/O accounting.
    n_buckets:
        Number of hash buckets.  The paper chooses enough buckets that
        no overflows occur; a sensible choice is
        ``ceil(expected_entries / slots_per_page)``.
    """

    def __init__(self, pager: PageManager, n_buckets: int):
        if n_buckets <= 0:
            raise ValueError(f"n_buckets must be positive, got {n_buckets}")
        self.pager = pager
        self.n_buckets = n_buckets
        self.slots_per_page = pager.capacity_for(ENTRY_BYTES)
        # Chains of page ids per bucket; pages allocated lazily.
        self._chains: list[list[int]] = [[] for _ in range(n_buckets)]
        self._n_entries = 0
        # Memoized fingerprint -> sids image of each bucket's slots,
        # rebuilt lazily after the bucket mutates (None = stale).  It
        # is a pure CPU-side accelerator: probes still charge the same
        # page reads, the directory only replaces re-scanning a slot
        # list that has not changed since the last probe.
        self._directory: list[dict[int, list[int]] | None] = [None] * n_buckets

    @property
    def n_entries(self) -> int:
        """Number of stored (key, sid) entries."""
        return self._n_entries

    @property
    def n_pages(self) -> int:
        """Pages across all bucket chains."""
        return sum(len(chain) for chain in self._chains)

    def _bucket_of(self, key: bytes) -> tuple[int, int]:
        fingerprint = hash_key(key)
        return fingerprint % self.n_buckets, fingerprint

    def insert(self, key: bytes, sid: int) -> None:
        """Add a (key, sid) entry.  Duplicates are stored as given."""
        bucket, fingerprint = self._bucket_of(key)
        chain = self._chains[bucket]
        if chain:
            last = self.pager.read(chain[-1], sequential=False)
        else:
            last = None
        if last is None or last.is_full:
            last = self.pager.allocate(self.slots_per_page)
            chain.append(last.page_id)
        last.append((fingerprint, sid))
        self.pager.write(last.page_id)
        self._n_entries += 1
        self._directory[bucket] = None

    def _bucket_directory(self, bucket: int) -> dict[int, list[int]]:
        """The bucket's fingerprint -> sids map, rebuilt if stale.

        Built from uncharged page peeks: the caller is responsible for
        charging the chain's reads (probes do), so the accounting is
        identical whether the memo is warm or cold.
        """
        directory = self._directory[bucket]
        if directory is None:
            directory = {}
            for page_id in self._chains[bucket]:
                for fp, sid in self.pager.peek(page_id).slots:
                    if fp in directory:
                        directory[fp].append(sid)
                    else:
                        directory[fp] = [sid]
            self._directory[bucket] = directory
        return directory

    def probe(self, key: bytes) -> list[int]:
        """Return the sids stored under ``key``.

        Charges one random read for the bucket's head page and one
        sequential read per overflow page.
        """
        bucket, fingerprint = self._bucket_of(key)
        chain = self._chains[bucket]
        for rank, page_id in enumerate(chain):
            self.pager.read(page_id, sequential=rank > 0)
        got = self._bucket_directory(bucket).get(fingerprint)
        # Per-thread shard adds, not .inc(): this runs once per table
        # per filter probe, and the extra method-call overhead is
        # measurable at query granularity.
        _PROBES.shard().count += 1
        _PROBE_PAGES.shard().count += len(chain)
        # Copy: callers own their result lists, the memo owns its own.
        return list(got) if got else []

    def probe_many(self, keys: list[bytes]) -> list[list[int]]:
        """Probe many keys, reading each touched bucket page once.

        The batch counterpart of :meth:`probe`: keys are grouped by
        bucket, every distinct bucket chain is read exactly once (head
        page random, overflow pages sequential, as in :meth:`probe`)
        and its entries are served to all keys of the group.  Result
        ``i`` equals ``probe(keys[i])``; the page-read total is never
        greater than the equivalent probe loop, and strictly smaller
        whenever two keys of the batch share a bucket.
        """
        results: list[list[int]] = [[] for _ in keys]
        by_bucket: dict[int, list[tuple[int, int]]] = {}
        # _bucket_of inlined: this loop runs once per key per table and
        # the two extra call frames are measurable at batch granularity.
        blake2b, n_buckets = hashlib.blake2b, self.n_buckets
        for i, key in enumerate(keys):
            fingerprint = int.from_bytes(
                blake2b(key, digest_size=8).digest(), "little"
            )
            bucket = fingerprint % n_buckets
            if bucket in by_bucket:
                by_bucket[bucket].append((i, fingerprint))
            else:
                by_bucket[bucket] = [(i, fingerprint)]
        pages_cell = _PROBE_PAGES.shard()
        saved_cell = _PROBE_PAGES_SAVED.shard()
        for bucket, members in by_bucket.items():
            chain = self._chains[bucket]
            for rank, page_id in enumerate(chain):
                self.pager.read(page_id, sequential=rank > 0)
            directory = self._bucket_directory(bucket)
            pages_cell.count += len(chain)
            saved_cell.count += len(chain) * (len(members) - 1)
            for i, fingerprint in members:
                got = directory.get(fingerprint)
                # Copy so callers own their lists (two keys of the batch
                # may share a fingerprint).
                results[i] = list(got) if got else []
        _PROBES.shard().count += len(keys)
        return results

    def delete(self, key: bytes, sid: int) -> bool:
        """Remove one (key, sid) entry; returns whether one was found."""
        bucket, fingerprint = self._bucket_of(key)
        chain = self._chains[bucket]
        target = (fingerprint, sid)
        for rank, page_id in enumerate(chain):
            page = self.pager.read(page_id, sequential=rank > 0)
            if target not in page.slots:
                continue
            index = page.slots.index(target)
            # Compact: move the chain's globally last entry into the hole.
            last_page = self.pager.read(chain[-1], sequential=True)
            moved = last_page.slots.pop()
            if not (page is last_page and index == len(last_page.slots)):
                # Unless the popped entry *was* the hole, fill the hole.
                page.slots[index] = moved
                self.pager.write(page.page_id)
            if not last_page.slots:
                self.pager.free(chain.pop())
            else:
                self.pager.write(last_page.page_id)
            self._n_entries -= 1
            self._directory[bucket] = None
            return True
        return False

    def bucket_occupancies(self) -> list[int]:
        """Entries stored per bucket (uncharged; statistics only)."""
        return [
            sum(len(self.pager.peek(page_id)) for page_id in chain)
            for chain in self._chains
        ]

    def load_stats(self) -> dict:
        """Occupancy and load-factor statistics for this table.

        Uses uncharged page peeks so reporting does not perturb the
        I/O accounting.  ``load_factor`` is entries over provisioned
        slots (buckets x slots per page); under the paper's
        "no bucket overflows" provisioning it stays below 1 and
        ``max_chain_pages`` stays at 1.
        """
        occupancies = self.bucket_occupancies()
        return {
            "n_buckets": self.n_buckets,
            "n_entries": self._n_entries,
            "n_pages": self.n_pages,
            "slots_per_page": self.slots_per_page,
            "load_factor": self._n_entries / (self.n_buckets * self.slots_per_page),
            "avg_occupancy": self._n_entries / self.n_buckets,
            "max_occupancy": max(occupancies, default=0),
            "nonempty_buckets": sum(1 for n in occupancies if n),
            "max_chain_pages": max(
                (len(chain) for chain in self._chains), default=0
            ),
        }

    def items(self):
        """Iterate over all (fingerprint, sid) entries (testing aid)."""
        for chain in self._chains:
            for page_id in chain:
                page = self.pager.read(page_id, sequential=True)
                yield from page.slots

    def freeze(self) -> "FrozenTableView":
        """A read-only probe view with every bucket directory pre-built.

        Warms the full fingerprint-directory memo (uncharged, like the
        memo itself) and snapshots the per-bucket chain lengths.  The
        view answers probes without touching the pager, charging the
        exact page reads :meth:`probe`/:meth:`probe_many` would have
        charged into a caller-supplied :class:`~repro.storage.iomodel.IOStats`
        -- the building block of a frozen index snapshot.  The view is
        only valid while the table does not mutate (frozen indexes
        refuse mutation, which is what makes sharing the directory
        dicts safe).
        """
        for bucket in range(self.n_buckets):
            self._bucket_directory(bucket)
        return FrozenTableView(
            self.n_buckets,
            [len(chain) for chain in self._chains],
            list(self._directory),
        )


class FrozenTableView:
    """Immutable bucket-directory image of one :class:`BucketHashTable`.

    Probes are pure dictionary lookups over the pre-built directories;
    page reads are *accounted* (into the ``io`` argument) rather than
    performed, with charges identical to the live table: per distinct
    bucket touched, one random read for the head page and sequential
    reads for overflow pages.  Safe for concurrent probing from many
    threads -- nothing is mutated except the caller's ``io`` and the
    calling thread's counter shards.
    """

    __slots__ = ("n_buckets", "chain_pages", "directories")

    def __init__(
        self,
        n_buckets: int,
        chain_pages: list[int],
        directories: list[dict[int, list[int]] | None],
    ):
        self.n_buckets = n_buckets
        self.chain_pages = chain_pages
        self.directories = directories

    def probe_many(self, keys: list[bytes], io) -> list[list[int]]:
        """Grouped batch probe, bit-equivalent to the live table's.

        Result ``i`` equals ``BucketHashTable.probe(keys[i])``; the
        reads charged to ``io`` (an :class:`~repro.storage.iomodel.IOStats`)
        and the module counters move exactly as
        :meth:`BucketHashTable.probe_many` would move them.
        """
        results: list[list[int]] = [[] for _ in keys]
        by_bucket: dict[int, list[tuple[int, int]]] = {}
        blake2b, n_buckets = hashlib.blake2b, self.n_buckets
        for i, key in enumerate(keys):
            fingerprint = int.from_bytes(
                blake2b(key, digest_size=8).digest(), "little"
            )
            bucket = fingerprint % n_buckets
            if bucket in by_bucket:
                by_bucket[bucket].append((i, fingerprint))
            else:
                by_bucket[bucket] = [(i, fingerprint)]
        pages_cell = _PROBE_PAGES.shard()
        saved_cell = _PROBE_PAGES_SAVED.shard()
        for bucket, members in by_bucket.items():
            pages = self.chain_pages[bucket]
            if pages:
                io.random_reads += 1
                io.sequential_reads += pages - 1
            directory = self.directories[bucket]
            pages_cell.count += pages
            saved_cell.count += pages * (len(members) - 1)
            for i, fingerprint in members:
                got = directory.get(fingerprint) if directory else None
                results[i] = list(got) if got else []
        _PROBES.shard().count += len(keys)
        return results
