"""Unit tests for workload generation (datasets and queries)."""

import numpy as np
import pytest

from repro.core.similarity import jaccard
from repro.data.generators import (
    expected_cluster_similarity,
    planted_clusters,
    uniform_random_sets,
    zipf_sets,
)
from repro.data.queries import (
    PAPER_BUCKETS,
    QueryWorkload,
    RangeQuery,
    bucket_index,
    bucket_label,
    ground_truth,
)
from repro.data.weblog import make_set1, make_set2, make_weblog_collection


class TestUniformRandomSets:
    def test_shape(self):
        sets = uniform_random_sets(10, universe=100, set_size=5, seed=0)
        assert len(sets) == 10
        assert all(len(s) == 5 for s in sets)

    def test_deterministic(self):
        assert uniform_random_sets(5, 50, 4, seed=1) == uniform_random_sets(5, 50, 4, seed=1)

    def test_low_similarity(self):
        sets = uniform_random_sets(20, universe=10000, set_size=10, seed=2)
        sims = [jaccard(sets[i], sets[j]) for i in range(10) for j in range(i + 1, 10)]
        assert max(sims) < 0.2

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            uniform_random_sets(1, universe=5, set_size=10)


class TestZipfSets:
    def test_popular_elements_shared(self):
        sets = zipf_sets(50, universe=1000, set_size=30, exponent=1.2, seed=3)
        counts = {}
        for s in sets:
            for e in s:
                counts[e] = counts.get(e, 0) + 1
        # The most popular element appears in most sets.
        assert max(counts.values()) > 25

    def test_similarity_positive_typically(self):
        sets = zipf_sets(20, universe=5000, set_size=40, exponent=1.1, seed=4)
        sims = [jaccard(sets[0], s) for s in sets[1:]]
        assert np.mean(sims) > 0.0


class TestPlantedClusters:
    def test_counts(self):
        sets = planted_clusters(4, 5, base_size=20, universe=1000, seed=5)
        assert len(sets) == 20

    def test_within_cluster_similarity_matches_formula(self):
        mu = 0.2
        sets = planted_clusters(6, 8, base_size=60, universe=5000, mutation_rate=mu, seed=6)
        within = []
        for c in range(6):
            members = sets[c * 8 : (c + 1) * 8]
            within.extend(
                jaccard(members[i], members[j])
                for i in range(8)
                for j in range(i + 1, 8)
            )
        assert np.mean(within) == pytest.approx(expected_cluster_similarity(mu), abs=0.05)

    def test_cross_cluster_similarity_near_zero(self):
        sets = planted_clusters(4, 4, base_size=40, universe=10000, seed=7)
        cross = [jaccard(sets[0], sets[5]), jaccard(sets[1], sets[10])]
        assert max(cross) < 0.1

    def test_zero_mutation_identical(self):
        sets = planted_clusters(2, 3, base_size=10, universe=100, mutation_rate=0.0, seed=8)
        assert sets[0] == sets[1] == sets[2]

    def test_full_mutation_dissimilar(self):
        sets = planted_clusters(1, 2, base_size=30, universe=10000, mutation_rate=1.0, seed=9)
        assert jaccard(sets[0], sets[1]) < 0.05

    def test_invalid_mutation(self):
        with pytest.raises(ValueError):
            planted_clusters(1, 1, 5, 100, mutation_rate=1.5)

    def test_expected_similarity_endpoints(self):
        assert expected_cluster_similarity(0.0) == 1.0
        assert expected_cluster_similarity(1.0) == 0.0


class TestWeblog:
    def test_sizes_reasonable(self):
        sets = make_weblog_collection(n_sets=100, seed=1)
        assert len(sets) == 100
        sizes = [len(s) for s in sets]
        assert 10 < np.mean(sizes) < 200
        assert all(len(s) > 0 for s in sets)

    def test_deterministic(self):
        assert make_weblog_collection(20, seed=3) == make_weblog_collection(20, seed=3)

    def test_similarity_spread(self):
        """The point of the surrogate: D_S has both near-zero and
        genuinely similar mass (unlike independent random sets)."""
        sets = make_weblog_collection(n_sets=150, n_templates=10, seed=2)
        rng = np.random.default_rng(0)
        sims = []
        for _ in range(800):
            i, j = rng.choice(len(sets), size=2, replace=False)
            sims.append(jaccard(sets[i], sets[j]))
        sims = np.array(sims)
        assert (sims < 0.1).mean() > 0.3   # plenty of dissimilar pairs
        assert (sims > 0.3).mean() > 0.02  # and a similar tail

    def test_presets(self):
        s1 = make_set1(50)
        s2 = make_set2(50)
        assert len(s1) == len(s2) == 50
        # Set2 uses a broader universe and bigger sets.
        assert np.mean([len(s) for s in s2]) > np.mean([len(s) for s in s1])

    def test_invalid_n_sets(self):
        with pytest.raises(ValueError):
            make_weblog_collection(0)


class TestBuckets:
    def test_paper_bucket_edges(self):
        assert bucket_index(0.001) == 0
        assert bucket_index(0.03) == 1
        assert bucket_index(0.07) == 2
        assert bucket_index(0.2) == 3
        assert bucket_index(0.3) == 4
        assert bucket_index(0.5) is None

    def test_labels(self):
        assert bucket_label(0) == "0-0.5%"
        assert bucket_label(4) == "25-35%"

    def test_bucket_count(self):
        assert len(PAPER_BUCKETS) == 5


class TestQueryWorkload:
    def test_deterministic(self):
        a = QueryWorkload(100, seed=5).sample(10)
        b = QueryWorkload(100, seed=5).sample(10)
        assert a == b

    def test_ranges_valid(self):
        for q in QueryWorkload(50, seed=6).sample(100):
            assert 0 <= q.set_index < 50
            assert 0.0 <= q.sigma_low <= q.sigma_high <= 1.0

    def test_min_width_enforced(self):
        for q in QueryWorkload(50, seed=7, min_width=0.1).sample(100):
            assert q.sigma_high - q.sigma_low >= 0.1 - 1e-9

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            QueryWorkload(0)
        with pytest.raises(ValueError):
            QueryWorkload(10, min_width=2.0)

    def test_iter_queries(self):
        wl = QueryWorkload(10, seed=1)
        assert len(list(wl.iter_queries(5))) == 5


class TestGroundTruth:
    def test_matches_brute_force(self):
        sets = planted_clusters(3, 4, base_size=20, universe=500, seed=10)
        query = RangeQuery(0, 0.3, 1.0)
        expected = {
            i for i, s in enumerate(sets) if 0.3 <= jaccard(s, sets[0]) <= 1.0
        }
        assert ground_truth(sets, query) == expected

    def test_with_precomputed_similarities(self):
        sets = [frozenset({1, 2}), frozenset({2, 3}), frozenset({9})]
        sims = np.array([1.0, 1 / 3, 0.0])
        assert ground_truth(sets, RangeQuery(0, 0.3, 1.0), sims) == {0, 1}
