"""Tests for weighted Jaccard and the weighted index adapter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.similarity import jaccard
from repro.core.weighted import (
    WeightedSetSimilarityIndex,
    quantize,
    weighted_jaccard,
)

weight_maps = st.dictionaries(
    st.integers(0, 20), st.floats(0.0, 10.0, allow_nan=False), max_size=8
)


class TestWeightedJaccard:
    def test_binary_weights_match_jaccard(self):
        a = {1: 1, 2: 1, 3: 1}
        b = {2: 1, 3: 1, 4: 1}
        assert weighted_jaccard(a, b) == pytest.approx(
            jaccard({1, 2, 3}, {2, 3, 4})
        )

    def test_known_value(self):
        a = {"x": 2.0, "y": 1.0}
        b = {"x": 1.0, "z": 1.0}
        # min: x->1; max: x->2, y->1, z->1.
        assert weighted_jaccard(a, b) == pytest.approx(1.0 / 4.0)

    def test_identical(self):
        a = {1: 3.5, 2: 0.5}
        assert weighted_jaccard(a, a) == 1.0

    def test_disjoint(self):
        assert weighted_jaccard({1: 2.0}, {2: 2.0}) == 0.0

    def test_empty(self):
        assert weighted_jaccard({}, {}) == 1.0
        assert weighted_jaccard({}, {1: 1.0}) == 0.0

    def test_zero_weights_ignored(self):
        assert weighted_jaccard({1: 0.0, 2: 1.0}, {2: 1.0}) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            weighted_jaccard({1: -1.0}, {})

    @given(weight_maps, weight_maps)
    @settings(max_examples=100)
    def test_bounds_and_symmetry(self, a, b):
        s = weighted_jaccard(a, b)
        assert 0.0 <= s <= 1.0
        assert s == weighted_jaccard(b, a)

    @given(weight_maps)
    @settings(max_examples=50)
    def test_scale_invariance(self, a):
        """Weighted Jaccard is invariant to scaling both arguments."""
        scaled = {k: v * 3.0 for k, v in a.items()}
        assert weighted_jaccard(a, a) == pytest.approx(
            weighted_jaccard(scaled, scaled)
        )


class TestQuantize:
    def test_replica_counts(self):
        replicas = quantize({1: 3.0, 2: 1.0}, quantum=1.0)
        assert replicas == {(1, 0), (1, 1), (1, 2), (2, 0)}

    def test_zero_weight_no_replicas(self):
        assert quantize({1: 0.0}, 1.0) == frozenset()

    def test_quantum_scaling(self):
        assert len(quantize({1: 3.0}, quantum=0.5)) == 6

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            quantize({1: 1.0}, 0.0)

    @given(weight_maps, weight_maps)
    @settings(max_examples=100)
    def test_replica_jaccard_equals_quantized_weighted(self, a, b):
        """The exactness property the adapter relies on."""
        quantum = 0.5
        qa = {k: round(v / quantum) for k, v in a.items()}
        qb = {k: round(v / quantum) for k, v in b.items()}
        replica = jaccard(quantize(a, quantum), quantize(b, quantum))
        expected = weighted_jaccard(qa, qb)
        assert replica == pytest.approx(expected)

    def test_quantization_error_small_for_fine_quantum(self):
        rng = np.random.default_rng(0)
        a = {i: float(rng.uniform(1, 10)) for i in range(20)}
        b = {i: float(rng.uniform(1, 10)) for i in range(10, 30)}
        exact = weighted_jaccard(a, b)
        approx = jaccard(quantize(a, 0.01), quantize(b, 0.01))
        assert approx == pytest.approx(exact, abs=0.01)


class TestWeightedIndex:
    @pytest.fixture(scope="class")
    def weighted_collection(self):
        rng = np.random.default_rng(5)
        base = {i: float(rng.integers(1, 6)) for i in range(30)}
        collection = []
        for _ in range(40):
            member = dict(base)
            for key in list(member)[:8]:
                if rng.random() < 0.5:
                    member[key] = float(rng.integers(1, 6))
            collection.append(member)
        for _ in range(40):
            collection.append(
                {int(k): float(rng.integers(1, 6)) for k in rng.integers(100, 200, size=20)}
            )
        return collection

    def test_build_and_query(self, weighted_collection):
        index = WeightedSetSimilarityIndex.build(
            weighted_collection, quantum=1.0, budget=40, recall_target=0.8, k=32, seed=2
        )
        assert index.n_sets == len(weighted_collection)
        result = index.query_above(weighted_collection[0], 0.5)
        assert 0 in result.answer_sids
        # Reported similarities equal the quantized weighted Jaccard.
        q = {k: round(v) for k, v in weighted_collection[0].items()}
        for sid, sim in result.answers:
            stored = {k: round(v) for k, v in weighted_collection[sid].items()}
            assert sim == pytest.approx(weighted_jaccard(q, stored))

    def test_recall_on_similar_group(self, weighted_collection):
        index = WeightedSetSimilarityIndex.build(
            weighted_collection, quantum=1.0, budget=40, recall_target=0.8, k=32, seed=2
        )
        truth = {
            sid
            for sid, w in enumerate(weighted_collection)
            if weighted_jaccard(weighted_collection[0], w) >= 0.5
        }
        got = index.query_above(weighted_collection[0], 0.5).answer_sids
        assert len(got & truth) / len(truth) > 0.6

    def test_insert_delete(self, weighted_collection):
        index = WeightedSetSimilarityIndex.build(
            weighted_collection[:20], quantum=1.0, budget=20, k=16, seed=3
        )
        sid = index.insert({999: 5.0, 998: 2.0})
        found = index.query_above({999: 5.0, 998: 2.0}, 0.9)
        assert sid in found.answer_sids
        index.delete(sid)
        assert index.n_sets == 20
