"""Shared infrastructure for the benchmark suite.

Each ``bench_*.py`` regenerates one evaluation artifact of the paper
(see DESIGN.md's experiment index): it runs the corresponding driver
from :mod:`repro.eval.experiments`, prints the resulting table (visible
in ``pytest benchmarks/ --benchmark-only`` output), writes it under
``benchmarks/results/`` and feeds a representative kernel to
pytest-benchmark for wall-clock numbers.

Scale: the paper used 200,000-set collections and 1,000 queries per
bucket on a 2001 testbed.  Defaults here are laptop-scale (see
``BenchScale``); set ``REPRO_BENCH_SCALE=large`` for a heavier run.
Response "time" inside the tables is simulated I/O cost (the shared
cost model with random/sequential = 8), so the *shape* of every figure
is scale-stable; pytest-benchmark adds real wall-clock per kernel.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@dataclass(frozen=True)
class BenchScale:
    n_sets: int
    n_queries: int
    sample_pairs: int
    k: int


_SCALES = {
    "small": BenchScale(n_sets=1200, n_queries=120, sample_pairs=60_000, k=64),
    # Probe cost is budget-sized while scan cost is collection-sized;
    # n_sets must sit comfortably above the table budget (1000 in the
    # Fig. 7 setup) for the paper's crossover shape to be visible.
    "default": BenchScale(n_sets=3000, n_queries=150, sample_pairs=100_000, k=100),
    "large": BenchScale(n_sets=6000, n_queries=300, sample_pairs=200_000, k=100),
}


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "default")
    if name not in _SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}")
    return _SCALES[name]


@pytest.fixture
def emit(capfd):
    """Print a result table past pytest's capture and persist it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(experiment_id: str, text: str) -> None:
        block = f"\n=== {experiment_id} ===\n{text}\n"
        with capfd.disabled():
            print(block)
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(block)

    return _emit
