"""Always-on coalescing query server over a mapped snapshot.

:class:`QueryServer` is the "millions of users" entry point: an
asyncio TCP server speaking the newline-delimited JSON protocol
(:mod:`repro.serve.protocol`) that

- opens one :class:`~repro.exec.snapfile.MappedSnapshot` (O(ms), page
  cache shared with every other consumer of the directory),
- admits concurrent single queries from many connections, rejecting
  with a typed ``overloaded`` response once ``max_pending`` requests
  wait (explicit backpressure, never a silent drop),
- coalesces admitted requests into ``query_batch`` micro-batches per
  ``(low, high, strategy)`` key under a tunable, arrival-rate-adaptive
  window (:mod:`repro.serve.coalescer`),
- dispatches each micro-batch to a
  :class:`~repro.exec.parallel.ParallelExecutor` (thread or process
  backend) on a dedicated dispatch thread -- the event loop never
  blocks on query work, and batches are serialized because the
  executor mutates shared cost-model state,
- demultiplexes per-request answers back to their connections.  Each
  request's response is written by its own connection task under a
  per-connection lock, so one slow client can only stall itself.

Robustness is part of the contract: malformed JSON, invalid requests
and oversized lines are answered with typed errors and the connection
keeps serving (an oversized line is consumed through its terminating
newline so framing resynchronizes); half-closed sockets get their
answers before the connection winds down; client disconnects cancel
only that client's pending requests.  ``SIGTERM``/``SIGINT`` trigger a
graceful drain: stop accepting, answer everything pending, flush
writes, then close.

Serving is instrumented end to end: ``serve.*`` counters/gauges, HDR
latency and queue-wait histograms (:mod:`repro.obs.hdr`), a batch-size
histogram showing the sizes the coalescer discovers, and one
``record_query`` event per request alongside the executor's per-batch
events -- ``repro top`` over the exported event log shows the service
live.
"""

from __future__ import annotations

import asyncio
import logging
import signal
import socket
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any

from repro.obs import events, metrics
from repro.serve import protocol
from repro.serve.coalescer import Coalescer, DrainingError, OverloadedError

logger = logging.getLogger("repro.serve")

_CONNECTIONS = metrics.counter("serve.connections")
_OPEN_CONNECTIONS = metrics.gauge("serve.open_connections")
_REQUESTS = metrics.counter("serve.requests")
_RESPONSES = metrics.counter("serve.responses")
_ERRORS = metrics.counter("serve.errors")
_OVERLOADS = metrics.counter("serve.overloads")
_BATCHES = metrics.counter("serve.batches")
_BATCH_SIZE = metrics.histogram("serve.batch_size")
_QUEUE_DEPTH = metrics.gauge("serve.queue_depth")
_LATENCY_MS = metrics.hdr("serve.request_latency_ms")
_QUEUE_WAIT_MS = metrics.hdr("serve.queue_wait_ms")

_READ_CHUNK = 1 << 16


@dataclass
class ServeConfig:
    """Tunables for :class:`QueryServer`; CLI flags map 1:1."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 -> ephemeral; read QueryServer.port after start()
    workers: int = 1
    backend: str = "thread"
    max_batch: int = 64
    max_wait_ms: float = 2.0
    max_pending: int = 1024
    adaptive: bool = True
    route: str = "safe"  # shard routing mode (sharded snapshots only)
    max_line_bytes: int = protocol.MAX_LINE_BYTES
    drain_grace_s: float = 5.0


class QueryServer:
    """One snapshot, one coalescer, many connections.

    ``snapshot`` is a saved snapshot directory path or an opened
    :class:`~repro.exec.snapfile.MappedSnapshot`.  Use as::

        server = QueryServer(snap_dir, ServeConfig(port=7407))
        await server.start()
        await server.serve_forever()   # returns after drain
    """

    def __init__(self, snapshot, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self._snapshot_ref = snapshot
        self._server: asyncio.AbstractServer | None = None
        self._executor = None
        self._dispatch_pool: ThreadPoolExecutor | None = None
        self._coalescer: Coalescer | None = None
        self._conns: set[asyncio.StreamWriter] = set()
        self._active_requests: set[asyncio.Task] = set()
        self._stop = asyncio.Event()
        self._draining = False
        self._drained = False
        self.port: int | None = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Open the snapshot, spin up the executor pool, bind the
        socket.  ``self.port`` holds the bound port afterwards."""
        from repro.exec import ParallelExecutor, open_snapshot
        from repro.exec.shard import (
            ShardedExecutor,
            ShardedSnapshot,
            is_sharded,
            open_sharded,
        )
        from repro.exec.snapfile import MappedSnapshot

        cfg = self.config
        snapshot = self._snapshot_ref
        if not isinstance(snapshot, (MappedSnapshot, ShardedSnapshot)):
            if is_sharded(snapshot):
                snapshot = open_sharded(snapshot)
            else:
                snapshot = open_snapshot(snapshot)
        self.snapshot = snapshot
        if isinstance(snapshot, ShardedSnapshot):
            # Scatter-gather over the shard fleet; per-shard telemetry
            # lands under serve.shard.* (latency HDRs, candidate and
            # routing counters, wall-skew gauge).
            self._executor = ShardedExecutor(
                snapshot, workers=cfg.workers, backend=cfg.backend,
                metric_prefix="serve.shard", route=cfg.route,
            )
        elif cfg.backend == "process":
            self._executor = ParallelExecutor(
                snapshot, workers=cfg.workers, backend="process"
            )
        else:
            self._executor = ParallelExecutor(snapshot, workers=cfg.workers)
        # One dispatch thread: query_batch mutates shared cost-model
        # state, so micro-batches are serialized here while new arrivals
        # keep coalescing behind them.
        self._dispatch_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-dispatch"
        )
        self._coalescer = Coalescer(
            self._dispatch_batch,
            max_batch=cfg.max_batch,
            max_wait=cfg.max_wait_ms / 1e3,
            max_pending=cfg.max_pending,
            adaptive=cfg.adaptive,
            on_batch=self._on_batch_start,
        )
        self._server = await asyncio.start_server(
            self._handle_conn, cfg.host, cfg.port,
            family=socket.AF_INET if ":" not in cfg.host else socket.AF_UNSPEC,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info(
            "serving snapshot (%d sets) on %s:%d -- backend=%s workers=%d "
            "max_batch=%d max_wait=%.1fms max_pending=%d",
            snapshot.n_sets, cfg.host, self.port, cfg.backend, cfg.workers,
            cfg.max_batch, cfg.max_wait_ms, cfg.max_pending,
        )

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> graceful drain (call from the loop)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, self.request_drain)

    def request_drain(self) -> None:
        """Begin a graceful shutdown (idempotent, signal-safe)."""
        self._stop.set()

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_drain`, then drain and return."""
        await self._stop.wait()
        await self.drain()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, answer every admitted
        request, flush responses, close connections and pools."""
        if self._drained:
            return
        self._draining = True
        logger.info("drain: closing listener, flushing pending requests")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._coalescer is not None:
            await self._coalescer.drain()
        # Let every in-flight request task write its response.
        if self._active_requests:
            await asyncio.wait(
                list(self._active_requests), timeout=self.config.drain_grace_s
            )
        for writer in list(self._conns):
            writer.close()
        # Connection handlers exit on the EOF the close produces.
        await asyncio.sleep(0)
        if self._dispatch_pool is not None:
            self._dispatch_pool.shutdown(wait=True)
        if self._executor is not None:
            self._executor.close()
        self._drained = True
        logger.info("drain: complete")

    # -- dispatch ----------------------------------------------------------

    def _on_batch_start(self, batch) -> None:
        """Coalescer hook at dispatch start: batch/queue telemetry and
        per-request metadata (batch size, queue wait)."""
        now = asyncio.get_running_loop().time()
        _BATCHES.inc()
        _BATCH_SIZE.observe(len(batch.items))
        _QUEUE_DEPTH.set(self._coalescer.core.n_pending)
        for item in batch.items:
            queue_ms = max(0.0, (now - item.enqueued_at) * 1e3)
            _QUEUE_WAIT_MS.observe(queue_ms)
            item.payload["queue_ms"] = queue_ms
            item.payload["batch_size"] = len(batch.items)

    async def _dispatch_batch(self, key, payloads) -> list[dict[str, Any]]:
        """Run one micro-batch on the executor's dispatch thread and
        slice the batch result back into per-request answers."""
        low, high, strategy = key
        loop = asyncio.get_running_loop()
        batch = await loop.run_in_executor(
            self._dispatch_pool,
            partial(
                self._executor.query_batch,
                [p["set"] for p in payloads],
                low, high, strategy=strategy,
            ),
        )
        n = len(payloads)
        sim_share = batch.total_time / n if n else 0.0
        results = []
        for payload, result in zip(payloads, batch.results):
            results.append({
                "answers": result.answers,
                "n_candidates": result.n_candidates,
                "candidates": result.candidates,
                "batch_size": payload.get("batch_size", n),
                "queue_ms": payload.get("queue_ms", 0.0),
                "sim_share": sim_share,
            })
        return results

    # -- connection handling -----------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        _CONNECTIONS.inc()
        self._conns.add(writer)
        _OPEN_CONNECTIONS.set(len(self._conns))
        write_lock = asyncio.Lock()
        conn_tasks: set[asyncio.Task] = set()

        async def send(obj: dict) -> None:
            async with write_lock:
                if writer.is_closing():
                    return
                writer.write(protocol.encode_line(obj))
                await writer.drain()

        try:
            async for line in self._read_frames(reader, send):
                task = asyncio.create_task(self._handle_line(line, send))
                conn_tasks.add(task)
                self._active_requests.add(task)
                task.add_done_callback(conn_tasks.discard)
                task.add_done_callback(self._active_requests.discard)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            # Half-closed socket: the client stopped writing but still
            # reads -- finish its outstanding answers before closing.
            if conn_tasks:
                await asyncio.gather(*list(conn_tasks), return_exceptions=True)
            self._conns.discard(writer)
            _OPEN_CONNECTIONS.set(len(self._conns))
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_frames(self, reader: asyncio.StreamReader, send):
        """Yield newline-delimited frames with explicit oversize
        handling: a line beyond ``max_line_bytes`` is answered with a
        typed ``too_large`` error and consumed through its terminating
        newline, so the connection resynchronizes instead of dying."""
        max_bytes = self.config.max_line_bytes
        buf = bytearray()
        discarding = False
        while True:
            chunk = await reader.read(_READ_CHUNK)
            if not chunk:
                return
            buf += chunk
            while True:
                i = buf.find(b"\n")
                if i < 0:
                    break
                line = bytes(buf[:i])
                del buf[: i + 1]
                if discarding:
                    discarding = False  # tail of an already-errored line
                    continue
                yield line
            if not discarding and len(buf) > max_bytes:
                _ERRORS.inc()
                await send(protocol.response_error(
                    None, "too_large",
                    f"request line exceeds {max_bytes} bytes",
                ))
                buf.clear()
                discarding = True
            elif discarding:
                buf.clear()

    async def _handle_line(self, line: bytes, send) -> None:
        if not line.strip():
            return
        _REQUESTS.inc()
        t0 = time.perf_counter()
        try:
            request = protocol.decode_request(line, self.config.max_line_bytes)
        except protocol.ProtocolError as exc:
            _ERRORS.inc()
            rid = getattr(exc, "request_id", None)
            await send(protocol.response_error(rid, exc.etype, str(exc)))
            return
        if request.op == "ping":
            await send({"id": request.id, "ok": True, "pong": True})
            return
        if request.op == "stats":
            await send({"id": request.id, "ok": True, "stats": self.stats()})
            return
        if self._draining:
            _ERRORS.inc()
            await send(protocol.response_error(
                request.id, "shutting_down", "server is draining"
            ))
            return
        try:
            result = await self._coalescer.submit(
                request.key, {"set": request.elements}
            )
        except OverloadedError as exc:
            _ERRORS.inc()
            _OVERLOADS.inc()
            await send(protocol.response_error(request.id, "overloaded", str(exc)))
            return
        except DrainingError as exc:
            _ERRORS.inc()
            await send(protocol.response_error(
                request.id, "shutting_down", str(exc)
            ))
            return
        except Exception as exc:  # dispatch failure: typed, connection survives
            _ERRORS.inc()
            logger.exception("dispatch failed")
            await send(protocol.response_error(
                request.id, "internal", f"{type(exc).__name__}: {exc}"
            ))
            return
        latency_ms = (time.perf_counter() - t0) * 1e3
        _LATENCY_MS.observe(latency_ms)
        _RESPONSES.inc()
        answer = protocol.QueryAnswer(
            answers=result["answers"],
            n_candidates=result["n_candidates"],
            batch_size=result["batch_size"],
            queue_ms=result["queue_ms"],
            candidates=(
                sorted(result["candidates"]) if request.return_candidates else None
            ),
        )
        events.record_query(
            "serve",
            latency_ms=latency_ms,
            sim_time=result["sim_share"],
            n_queries=1,
            n_candidates=result["n_candidates"],
            n_verified=len(result["answers"]),
            pages_read=0,  # charged on the batch event the executor records
            cache_hits=0,
            backend=self.config.backend,
            workers=self.config.workers,
            strategy=request.strategy,
            sigma_low=request.low,
            sigma_high=request.high,
            timings={"queue": result["queue_ms"]},
        )
        await send(protocol.response_ok(request.id, answer))

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Service-level stats for the ``stats`` op and the CLI."""
        from repro.exec.shard import ShardedSnapshot

        core = self._coalescer.core
        stats = core.stats
        sizes = list(stats.batch_sizes)
        shard_info = {}
        if isinstance(self.snapshot, ShardedSnapshot):
            shard_info = {
                "sharded": True,
                "n_shards": self.snapshot.n_shards,
                "live_shards": len(self.snapshot.live_shards),
                "tune": self.snapshot.manifest["tune"],
                "route": self.config.route,
                "routing_summaries": self.snapshot.routing is not None,
                "n_replicas": sum(
                    len(r) for r in self.snapshot.replicas.values()
                ),
            }
        return {
            "n_sets": self.snapshot.n_sets,
            **shard_info,
            "backend": self.config.backend,
            "workers": self.config.workers,
            "max_batch": core.max_batch,
            "max_wait_ms": core.max_wait * 1e3,
            "max_pending": core.max_pending,
            "adaptive": core.adaptive,
            "pending": core.n_pending,
            "in_flight": core.in_flight,
            "draining": self._draining,
            "submitted": stats.submitted,
            "dispatched": stats.dispatched,
            "batches": stats.batches,
            "rejected_overload": stats.rejected_overload,
            "cancelled": stats.cancelled,
            "mean_batch_size": (sum(sizes) / len(sizes)) if sizes else 0.0,
            "max_batch_size": max(sizes, default=0),
            "connections": len(self._conns),
        }


async def run_server(snapshot, config: ServeConfig | None = None) -> QueryServer:
    """CLI helper: start, install signal handlers, serve until drain."""
    server = QueryServer(snapshot, config)
    await server.start()
    server.install_signal_handlers()
    await server.serve_forever()
    return server
