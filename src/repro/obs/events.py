"""Structured query events: ring buffer, sampling, slow-query log.

Metrics aggregate; events *explain*.  A p99 regression in
``query.latency_ms`` says something got slow -- the matching
:class:`QueryEvent` says which query: its range, strategy, backend,
candidate funnel (``n_candidates`` -> ``n_verified``), pages read,
buffer-pool hits and per-phase latency breakdown.

The subsystem is built to stay on in production:

- **Ring buffer.**  Events land in a bounded ``deque``; memory is
  O(capacity) forever, old events fall off the back.
- **Probabilistic sampling.**  ``sample`` is the probability an event
  is kept (default 1.0).  At high QPS set it to 0.01 and the ring
  holds a uniform sample; the decision is one RNG draw.
- **Slow-query log.**  Events at or above ``slow_ms`` wall latency are
  *always* captured (marked ``slow=True``) into a separate ring,
  regardless of sampling -- outliers are the events you can least
  afford to drop.
- **JSONL export.**  :meth:`EventLog.export_jsonl` writes one JSON
  object per line; ``repro top`` and the trace tooling read it back
  with :func:`read_jsonl`.

One module-level default log (:data:`log`) is recorded into by the
query paths via :func:`record_query`, which also feeds the latency
HDR histograms -- a single call site per path keeps sequential, batch
and parallel execution reporting through identical instruments.
:func:`set_enabled` turns the whole layer off (benchmarking the
telemetry overhead itself).
"""

from __future__ import annotations

import json
import random
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Iterable, Iterator

from repro.obs import metrics

#: Default ring capacities (events; slow events are rarer and kept
#: in a smaller, unsampled ring).
DEFAULT_CAPACITY = 4096
DEFAULT_SLOW_CAPACITY = 512

#: Default slow-query threshold (wall milliseconds).
DEFAULT_SLOW_MS = 100.0

# The latency instruments every query path records into.  Simulated
# time is the paper's cost unit and is bit-identical across the
# sequential / thread / process backends, so its quantiles are the
# cross-backend equivalence surface; wall-clock instruments describe
# the host.
_QUERY_SIM = metrics.hdr("query.sim_time")
_QUERY_WALL = metrics.hdr("query.latency_ms")
_BATCH_WALL = metrics.hdr("query_batch.latency_ms")
_PHASE_HDR = {
    phase: metrics.hdr(f"query.phase.{phase}_ms")
    for phase in ("embed", "probe", "fetch", "verify")
}


@dataclass
class QueryEvent:
    """One query (or query batch) as the event log records it."""

    ts: float                      #: Unix timestamp at completion.
    kind: str                      #: ``"query"`` or ``"query_batch"``.
    latency_ms: float              #: End-to-end wall latency.
    sim_time: float                #: Simulated cost (I/O + CPU model).
    n_queries: int                 #: 1, or the batch size.
    n_candidates: int              #: Funnel in: candidates fetched.
    n_verified: int                #: Funnel out: exact in-range answers.
    pages_read: int                #: Simulated pages (random + sequential).
    cache_hits: int                #: Buffer-pool hits during the query.
    backend: str                   #: ``sequential`` / ``thread`` / ``process``.
    workers: int                   #: Worker-pool width (1 = sequential).
    strategy: str                  #: ``index`` / ``scan``.
    sigma_low: float
    sigma_high: float
    timings: dict[str, float] = field(default_factory=dict)
    #: Captured by the slow-query log (>= the configured threshold).
    slow: bool = False
    #: Kept by the probabilistic sampler (False for slow-only captures).
    sampled: bool = True

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


#: The JSONL schema: every exported event carries at least these keys
#: (the format checker and ``repro top`` both validate against it).
EVENT_FIELDS = (
    "ts", "kind", "latency_ms", "sim_time", "n_queries", "n_candidates",
    "n_verified", "pages_read", "cache_hits", "backend", "workers",
    "strategy", "sigma_low", "sigma_high", "timings", "slow", "sampled",
)


class EventLog:
    """Bounded, sampled, thread-safe store of :class:`QueryEvent`.

    Parameters
    ----------
    capacity / slow_capacity:
        Ring sizes for sampled events and for the always-captured
        slow-query log.
    sample:
        Probability in [0, 1] that a (non-slow) event is kept.
    slow_ms:
        Wall-latency threshold above which an event bypasses sampling
        and is recorded in both rings.  ``float("inf")`` disables the
        slow log.
    seed:
        Seeds the sampling RNG (deterministic tests); None draws from
        the OS.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        slow_capacity: int = DEFAULT_SLOW_CAPACITY,
        sample: float = 1.0,
        slow_ms: float = DEFAULT_SLOW_MS,
        seed: int | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        self._lock = threading.Lock()
        self._ring: deque[QueryEvent] = deque(maxlen=capacity)
        self._slow_ring: deque[QueryEvent] = deque(maxlen=slow_capacity)
        self._rng = random.Random(seed)
        self.sample = sample
        self.slow_ms = slow_ms
        self.enabled = True
        self.n_seen = 0
        self.n_kept = 0
        self.n_slow = 0

    def configure(
        self,
        sample: float | None = None,
        slow_ms: float | None = None,
        enabled: bool | None = None,
        seed: int | None = None,
    ) -> None:
        """Adjust sampling/thresholds in place (rings are preserved)."""
        if sample is not None:
            if not 0.0 <= sample <= 1.0:
                raise ValueError(f"sample must be in [0, 1], got {sample}")
            self.sample = sample
        if slow_ms is not None:
            self.slow_ms = slow_ms
        if enabled is not None:
            self.enabled = enabled
        if seed is not None:
            self._rng = random.Random(seed)

    def record(self, event: QueryEvent) -> bool:
        """Offer one event; returns whether any ring kept it."""
        if not self.enabled:
            return False
        slow = event.latency_ms >= self.slow_ms
        keep = self.sample >= 1.0 or self._rng.random() < self.sample
        if not (slow or keep):
            with self._lock:
                self.n_seen += 1
            return False
        event.slow = slow
        event.sampled = keep
        with self._lock:
            self.n_seen += 1
            if keep:
                self.n_kept += 1
                self._ring.append(event)
            if slow:
                self.n_slow += 1
                self._slow_ring.append(event)
        return True

    def events(self) -> list[QueryEvent]:
        """Sampled events, oldest first (a stable copy)."""
        with self._lock:
            return list(self._ring)

    def slow_events(self) -> list[QueryEvent]:
        """Slow-query log, oldest first (a stable copy)."""
        with self._lock:
            return list(self._slow_ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._slow_ring.clear()
            self.n_seen = 0
            self.n_kept = 0
            self.n_slow = 0

    def stats(self) -> dict[str, int]:
        """Sampler accounting: events offered / kept / slow-captured."""
        with self._lock:
            return {
                "seen": self.n_seen,
                "kept": self.n_kept,
                "slow": self.n_slow,
                "buffered": len(self._ring),
                "slow_buffered": len(self._slow_ring),
            }

    def export_jsonl(self, path, which: str = "events") -> int:
        """Write events as JSON Lines; returns the number written.

        ``which`` selects ``"events"`` (the sampled ring), ``"slow"``
        (the slow-query log) or ``"all"`` (both, de-duplicated, in
        timestamp order).
        """
        if which == "events":
            selected = self.events()
        elif which == "slow":
            selected = self.slow_events()
        elif which == "all":
            merged = {id(e): e for e in self.events()}
            for e in self.slow_events():
                merged.setdefault(id(e), e)
            selected = sorted(merged.values(), key=lambda e: e.ts)
        else:
            raise ValueError(f"unknown selection: {which!r}")
        with open(path, "w") as f:
            for event in selected:
                f.write(json.dumps(event.to_dict(), sort_keys=True))
                f.write("\n")
        return len(selected)


def read_jsonl(path) -> Iterator[dict[str, Any]]:
    """Yield the event dicts of a JSONL export (blank lines skipped)."""
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                yield json.loads(line)


def events_from_dicts(records: Iterable[dict[str, Any]]) -> list[QueryEvent]:
    """Rebuild :class:`QueryEvent` objects from exported dicts,
    tolerating extra keys from newer writers."""
    names = set(EVENT_FIELDS)
    return [
        QueryEvent(**{k: v for k, v in record.items() if k in names})
        for record in records
    ]


#: The default process-wide event log the query paths record into.
log = EventLog()


def configure(
    sample: float | None = None,
    slow_ms: float | None = None,
    enabled: bool | None = None,
    seed: int | None = None,
) -> EventLog:
    """Configure the default event log; returns it."""
    log.configure(sample=sample, slow_ms=slow_ms, enabled=enabled, seed=seed)
    return log


def set_enabled(flag: bool) -> None:
    """Globally enable/disable query-event *and* latency-histogram
    recording (the telemetry-overhead benchmark's off switch)."""
    log.enabled = bool(flag)


def is_enabled() -> bool:
    return log.enabled


def record_query(
    kind: str,
    *,
    latency_ms: float,
    sim_time: float,
    n_queries: int,
    n_candidates: int,
    n_verified: int,
    pages_read: int,
    cache_hits: int,
    backend: str,
    workers: int,
    strategy: str,
    sigma_low: float,
    sigma_high: float,
    timings: dict[str, float] | None = None,
) -> QueryEvent | None:
    """The single telemetry call every query path makes on completion.

    Feeds the latency HDR histograms (per-phase and end-to-end wall
    clock; per-query simulated time -- for a batch, the batch total is
    amortized evenly over its queries, mirroring the harness's
    convention) and offers a :class:`QueryEvent` to the default log.
    Returns the event, or None when telemetry is disabled.
    """
    if not log.enabled:
        return None
    timings = timings or {}
    if kind == "query_batch":
        _BATCH_WALL.observe(latency_ms)
    else:
        _QUERY_WALL.observe(latency_ms)
    share = sim_time / n_queries if n_queries else sim_time
    cell = _QUERY_SIM
    for _ in range(n_queries):
        cell.observe(share)
    for phase, hist in _PHASE_HDR.items():
        value = timings.get(phase)
        if value is not None:
            hist.observe(value)
    event = QueryEvent(
        ts=time.time(),
        kind=kind,
        latency_ms=latency_ms,
        sim_time=sim_time,
        n_queries=n_queries,
        n_candidates=n_candidates,
        n_verified=n_verified,
        pages_read=pages_read,
        cache_hits=cache_hits,
        backend=backend,
        workers=workers,
        strategy=strategy,
        sigma_low=sigma_low,
        sigma_high=sigma_high,
        timings=dict(timings),
    )
    log.record(event)
    return event
