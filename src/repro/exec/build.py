"""Bulk index construction: parallel planning, deterministic apply.

The build-side counterpart of :mod:`repro.exec.parallel`.  Loading a
filter index is one independent unit of work per (filter, hash table):
extract the table's keys from the embedded corpus matrix, fingerprint
them, and lay the entries out page by page.  All of that is pure CPU
over arrays (:meth:`~repro.storage.hashtable.BucketHashTable.plan_bulk_load`
touches no pages), so the units fan out over a thread pool; the pager
replay (:meth:`~repro.storage.hashtable.BucketHashTable.apply_bulk_load`)
then runs on the calling thread in a fixed filter-major, table-major
order -- the exact order the sequential per-insert build walks the
tables.

Determinism follows the PR-3 playbook: worker tasks mutate nothing
shared (counter updates go to per-thread shards), every pager touch
happens in the sequential apply phase, and page ids come out of the
plans' sequential-equivalent allocation schedules.  Consequently
``bulk_load_filters(..., workers=w)`` produces chains, page contents,
directories and I/O accounting bit-identical to the per-entry insert
loop for every ``w``.

Wall-clock parallel speedup is *modeled*, not promised: a unit's plan
is numpy kernels (bit extraction, splitmix64 word mixing, argsort)
which release the GIL for large corpora but interleave with Python
glue at small ones, so the report carries per-unit plan times plus an
LPT-packed makespan (:func:`lpt_makespan`) -- what a ``workers``-wide
pool delivers where the kernels overlap.
"""

from __future__ import annotations

import gc
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

import numpy as np

from repro.core.filter_index import DissimilarityFilterIndex
from repro.obs import metrics, trace
from repro.storage.hashtable import UnresolvedTailError, hash_words

_BUILD_UNITS = metrics.counter("build.units")
_BUILD_ENTRIES = metrics.counter("build.entries")
#: Units whose plan needed a sequential re-plan because a target
#: bucket's tail-page fill state was unknown at fan-out time.
_BUILD_REPLANS = metrics.counter("build.tail_replans")


class BuildUnit:
    """One (filter, table) slice of a bulk build.

    Carries the unit through both phases: the worker fills ``plan``
    (or, when the table has buckets with unread tails, leaves the raw
    ``fingerprints`` for a sequential re-plan), the apply phase fills
    ``report``.
    """

    __slots__ = ("label", "sampler", "table", "plan", "fingerprints",
                 "seconds", "thread", "report")

    def __init__(self, label: str, sampler, table):
        self.label = label
        self.sampler = sampler
        self.table = table
        self.plan = None
        self.fingerprints = None
        self.seconds = 0.0
        self.thread = ""
        self.report = None


def build_units(filters) -> list[BuildUnit]:
    """Flatten filters into their independent (sampler, table) units.

    Order is load-bearing: filter-major, table-major is the order the
    sequential per-insert build touches the pager, and the apply phase
    replays plans in exactly this order so page ids match.
    """
    units: list[BuildUnit] = []
    for fi in filters:
        kind = "dfi" if isinstance(fi, DissimilarityFilterIndex) else "sfi"
        point = getattr(fi, "sigma_point", None)
        tag = f"{kind}({point:.3f})" if point is not None else kind
        for t, (sampler, table) in enumerate(fi.table_units()):
            units.append(BuildUnit(f"{tag}[t{t}]", sampler, table))
    return units


def lpt_makespan(task_seconds: Sequence[float], workers: int) -> float:
    """Longest-processing-time-first packing of tasks onto lanes.

    Same model as the query-side bench: the makespan a ``workers``-wide
    pool achieves on these task durations where the kernels overlap.
    """
    if not task_seconds or workers <= 1:
        return sum(task_seconds)
    lanes = [0.0] * workers
    for seconds in sorted(task_seconds, reverse=True):
        lanes[lanes.index(min(lanes))] += seconds
    return max(lanes)


def _plan_unit(unit: BuildUnit, matrix: np.ndarray, sids: Sequence[int]) -> None:
    """Phase-1 body: keys -> fingerprints -> page-layout plan.

    Runs on a worker thread; touches no pages and nothing shared (the
    key-extraction counter uses the calling thread's shard).
    """
    t0 = time.perf_counter()
    sampler = unit.sampler
    fps = hash_words(sampler.key_words(matrix), sampler.key_bytes)
    try:
        unit.plan = unit.table.plan_bulk_load(fps, sids)
    except UnresolvedTailError:
        # A target bucket's tail is unread (e.g. the table saw deletes
        # since its last write); keep the fingerprints and re-plan in
        # the apply phase, after the charged tail reads.
        unit.fingerprints = fps
    unit.seconds = time.perf_counter() - t0
    unit.thread = threading.current_thread().name


def bulk_load_filters(
    filters, matrix: np.ndarray, sids: Sequence[int], workers: int = 1
) -> dict:
    """Load every filter's hash tables from one embedded corpus matrix.

    Equivalent -- chains, page ids and contents, directories, counter
    and I/O-accounting totals -- to the per-entry loop

    .. code-block:: python

        for fi in filters:
            fi.insert_many(matrix, sids, method="insert")

    at any ``workers`` value; only wall clock changes.  Returns the
    build report: totals, per-unit plan timings, and the LPT-modeled
    plan-phase makespan at the given worker count.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    units = build_units(filters)
    with trace.span(
        "filter_build", n_units=len(units), n_sets=len(sids), workers=workers
    ) as sp:
        # Nearly every object a bulk load allocates (page entry tuples,
        # directory lists) is still live when the load finishes, so the
        # generational collector's mid-load passes only re-scan a
        # growing heap for garbage that is not there.  Suspend cyclic
        # GC for the load; the normal schedule resumes afterwards.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            plan_wall0 = time.perf_counter()
            if workers > 1 and len(units) > 1:
                with ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-build"
                ) as pool:
                    futures = [
                        pool.submit(_plan_unit, unit, matrix, sids)
                        for unit in units
                    ]
                    for future in futures:
                        future.result()
            else:
                for unit in units:
                    _plan_unit(unit, matrix, sids)
            plan_wall = time.perf_counter() - plan_wall0
            # Apply phase: sequential, in unit order, so pager
            # allocations interleave across tables exactly as the
            # per-insert path's.
            apply_wall0 = time.perf_counter()
            entries = new_pages = tail_reads = replans = 0
            for unit in units:
                if unit.plan is None:
                    fps = unit.fingerprints
                    touched = np.unique(
                        fps % np.uint64(unit.table.n_buckets)
                    ).astype(np.int64)
                    tail_reads += unit.table.resolve_tails(touched.tolist())
                    unit.plan = unit.table.plan_bulk_load(fps, sids)
                    replans += 1
                unit.report = unit.table.apply_bulk_load(unit.plan)
                entries += unit.report["entries"]
                new_pages += unit.report["new_pages"]
            apply_wall = time.perf_counter() - apply_wall0
        finally:
            if gc_was_enabled:
                gc.enable()
        _BUILD_UNITS.inc(len(units))
        _BUILD_ENTRIES.inc(entries)
        if replans:
            _BUILD_REPLANS.inc(replans)
        unit_seconds = [unit.seconds for unit in units]
        report = {
            "workers": workers,
            "n_units": len(units),
            "entries": entries,
            "new_pages": new_pages,
            "tail_reads": tail_reads,
            "tail_replans": replans,
            "plan_wall_seconds": round(plan_wall, 6),
            "plan_busy_seconds": round(sum(unit_seconds), 6),
            "apply_wall_seconds": round(apply_wall, 6),
            "modeled_plan_makespan": round(
                lpt_makespan(unit_seconds, workers), 6
            ),
            "units": [
                {
                    "label": unit.label,
                    "entries": unit.report["entries"],
                    "new_pages": unit.report["new_pages"],
                    "plan_seconds": round(unit.seconds, 6),
                    "thread": unit.thread,
                }
                for unit in units
            ],
        }
        if sp.recording:
            sp.set(
                entries=entries,
                new_pages=new_pages,
                tail_reads=tail_reads,
                plan_busy_seconds=report["plan_busy_seconds"],
                modeled_plan_makespan=report["modeled_plan_makespan"],
            )
        return report
