"""Unit tests for the signature codec layer (b-bit minwise, SuperMinHash)."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codec import (
    SUPPORTED_BBITS,
    BBitPacker,
    CodecError,
    CodecSpec,
    make_hasher,
    make_packer,
    parse_codec,
)
from repro.core.ecc import HadamardCode
from repro.core.embedding import SetEmbedder
from repro.core.index import SetSimilarityIndex
from repro.core.maintenance import rebuild
from repro.core.minhash import MinHasher, SuperMinHasher


def _jaccard(a, b):
    a, b = frozenset(a), frozenset(b)
    return len(a & b) / len(a | b) if a | b else 1.0


class TestParseCodec:
    def test_default_full64(self):
        spec = parse_codec("full64")
        assert spec == CodecSpec("full64", "minhash", "full64", None)

    def test_bbit(self):
        for bits in SUPPORTED_BBITS:
            spec = parse_codec(f"bbit:{bits}")
            assert spec.name == f"bbit:{bits}"
            assert spec.generator == "minhash"
            assert spec.packing == "bbit"
            assert spec.bits == bits

    def test_superminhash(self):
        spec = parse_codec("superminhash")
        assert spec == CodecSpec("superminhash", "superminhash", "full64", None)

    def test_combined(self):
        spec = parse_codec("superminhash+bbit:2")
        assert spec.name == "superminhash+bbit:2"
        assert spec.generator == "superminhash"
        assert spec.packing == "bbit"
        assert spec.bits == 2

    def test_order_insensitive(self):
        assert parse_codec("bbit:2+superminhash") == parse_codec(
            "superminhash+bbit:2"
        )

    def test_defaults_elide_in_canonical_name(self):
        assert parse_codec("minhash+full64").name == "full64"
        assert parse_codec("minhash").name == "full64"
        assert parse_codec("superminhash+full64").name == "superminhash"
        assert parse_codec("minhash+bbit:4").name == "bbit:4"

    def test_case_and_whitespace(self):
        assert parse_codec("  Full64 ").name == "full64"
        assert parse_codec("SuperMinHash + BBIT:2").name == "superminhash+bbit:2"

    def test_spec_passthrough(self):
        spec = parse_codec("bbit:2")
        assert parse_codec(spec) is spec

    def test_idempotent_on_canonical_name(self):
        for s in ("full64", "bbit:1", "superminhash", "superminhash+bbit:8"):
            assert parse_codec(parse_codec(s).name).name == s

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "zstd",
            "bbit",
            "bbit:",
            "bbit:3",
            "bbit:0",
            "bbit:64",
            "bbit:two",
            "full64+bbit:2",
            "minhash+superminhash",
            "full64+full64",
            "full64+",
            "+full64",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(CodecError):
            parse_codec(bad)

    def test_rejects_non_string(self):
        with pytest.raises(CodecError):
            parse_codec(42)

    def test_codec_error_is_value_error(self):
        assert issubclass(CodecError, ValueError)

    def test_bias_bits(self):
        """full64 keeps the Hadamard bias b; bbit plans uncorrected."""
        assert parse_codec("full64").bias_bits(6) == 6
        assert parse_codec("superminhash").bias_bits(5) == 5
        assert parse_codec("bbit:2").bias_bits(6) is None
        assert parse_codec("superminhash+bbit:1").bias_bits(6) is None

    def test_factories(self):
        assert isinstance(make_hasher("minhash", 8, 0), MinHasher)
        assert isinstance(make_hasher("superminhash", 8, 0), SuperMinHasher)
        with pytest.raises(CodecError):
            make_hasher("sha256", 8, 0)
        assert isinstance(make_packer(parse_codec("full64"), 6), HadamardCode)
        packer = make_packer(parse_codec("bbit:4"), 6)
        assert isinstance(packer, BBitPacker)
        assert packer.m == 4


class TestBBitPacker:
    def test_rejects_bad_width(self):
        for bad in (0, 3, 5, 16, 64):
            with pytest.raises(CodecError):
                BBitPacker(bad)

    def test_slot_layout(self):
        """Slot i occupies bits [i*b, (i+1)*b), little-endian."""
        for bits in SUPPORTED_BBITS:
            packer = BBitPacker(bits)
            k = packer.slots_per_word + 3  # spills into a second word
            values = np.arange(k, dtype=np.uint64) % np.uint64(1 << bits)
            words = packer.encode(values)
            assert words.shape == ((k + packer.slots_per_word - 1)
                                   // packer.slots_per_word,)
            for i in range(k):
                word = int(words[i // packer.slots_per_word])
                shift = (i % packer.slots_per_word) * bits
                got = (word >> shift) & ((1 << bits) - 1)
                assert got == int(values[i])

    def test_truncates_high_bits(self):
        """Only the low b bits of each value survive packing."""
        packer = BBitPacker(2)
        full = np.array([0b1111, 0b0100, 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        low = full & np.uint64(0b11)
        assert np.array_equal(packer.encode(full), packer.encode(low))

    def test_padding_slots_are_zero(self):
        packer = BBitPacker(8)
        values = np.full(9, 0xFF, dtype=np.uint64)  # 9 slots, 2 words
        words = packer.encode(values)
        assert words.shape == (2,)
        assert int(words[1]) == 0xFF  # slots 9..15 of word 1 are zero

    def test_encode_matches_encode_many(self):
        rng = np.random.default_rng(3)
        for bits in SUPPORTED_BBITS:
            packer = BBitPacker(bits)
            matrix = rng.integers(0, 1 << bits, size=(7, 50), dtype=np.uint64)
            many = packer.encode_many(matrix)
            for i in range(7):
                assert np.array_equal(many[i], packer.encode(matrix[i]))

    def test_interface_parity_with_hadamard(self):
        """Both packers expose m / encode / encode_many; D = m * k."""
        k = 10
        values = np.arange(k, dtype=np.uint64)
        for code in (HadamardCode(6), BBitPacker(2)):
            words = code.encode(values)
            assert words.shape == ((code.m * k + 63) // 64,)
            assert np.array_equal(
                code.encode_many(values[np.newaxis, :])[0], words
            )

    @given(
        st.sampled_from(SUPPORTED_BBITS),
        st.integers(1, 4),
        st.integers(1, 130),
        st.integers(0, 2**32),
    )
    @settings(max_examples=40)
    def test_roundtrip_via_bit_unpack(self, bits, n_rows, k, seed):
        """Unpacking the packed words recovers every truncated slot."""
        from repro.hamming.bitvector import unpack_bits

        rng = np.random.default_rng(seed)
        packer = BBitPacker(bits)
        matrix = rng.integers(0, 1 << 63, size=(n_rows, k), dtype=np.uint64)
        words = packer.encode_many(matrix)
        n_slots_padded = words.shape[1] * packer.slots_per_word
        unpacked = unpack_bits(words, n_slots_padded * bits)
        weights = (1 << np.arange(bits, dtype=np.uint64))
        slots = (
            unpacked.reshape(n_rows, n_slots_padded, bits) * weights
        ).sum(axis=2)
        assert np.array_equal(
            slots[:, :k], matrix & np.uint64((1 << bits) - 1)
        )
        assert not slots[:, k:].any()


class TestSuperMinHasher:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            SuperMinHasher(k=0)

    def test_deterministic(self):
        s = {"a", "b", "c", 7, ("t", 1)}
        a = SuperMinHasher(k=32, seed=5).signature(s)
        b = SuperMinHasher(k=32, seed=5).signature(s)
        assert np.array_equal(a, b)

    def test_seed_changes_signature(self):
        s = {"a", "b", "c", "d"}
        a = SuperMinHasher(k=64, seed=0).signature(s)
        b = SuperMinHasher(k=64, seed=1).signature(s)
        assert not np.array_equal(a, b)

    def test_order_invariant(self):
        h = SuperMinHasher(k=16, seed=0)
        assert np.array_equal(
            h.signature(["x", "y", "z"]), h.signature(["z", "x", "y"])
        )

    def test_duplicates_ignored(self):
        h = SuperMinHasher(k=16, seed=0)
        assert np.array_equal(
            h.signature(["x", "y", "x", "y"]), h.signature(["x", "y"])
        )

    def test_empty_set_raises(self):
        h = SuperMinHasher(k=8)
        with pytest.raises(ValueError):
            h.signature([])
        with pytest.raises(ValueError):
            h.signature_matrix([{"a"}, set()])

    def test_every_slot_filled(self):
        """Each element's value vector covers all k slots (FY permutation)."""
        h = SuperMinHasher(k=20, seed=0)
        vals = h._element_values(h.hash_elements(["only"]))
        js = (vals[0] >> np.uint64(32)).astype(np.int64)
        assert sorted(js.tolist()) == sorted(set(js.tolist()))  # one j per slot
        assert js.min() >= 0 and js.max() < 20

    def test_matrix_matches_scalar(self):
        sets = [
            {"a", "b"},
            {"b", "c", "d"},
            {f"e{i}" for i in range(40)},
            {"a"},
        ]
        h = SuperMinHasher(k=24, seed=2)
        matrix = h.signature_matrix(sets)
        for i, s in enumerate(sets):
            assert np.array_equal(matrix[i], h.signature(s))

    def test_matrix_chunk_boundaries(self):
        """Tiny chunk budget must not change any signature."""
        sets = [{f"s{i}e{j}" for j in range(5 + i % 7)} for i in range(30)]
        h = SuperMinHasher(k=16, seed=1)
        full = h.signature_matrix(sets)
        for chunk in (1, 6, 17):
            assert np.array_equal(
                h.signature_matrix(sets, chunk_elements=chunk), full
            )

    def test_estimator_accuracy(self):
        """Agreement fraction tracks true Jaccard at large k."""
        a = {f"x{i}" for i in range(60)}
        b = {f"x{i}" for i in range(30, 90)}  # Jaccard 30/90 = 1/3
        h = SuperMinHasher(k=2048, seed=0)
        est = h.estimate_similarity(h.signature(a), h.signature(b))
        assert abs(est - _jaccard(a, b)) < 0.05

    def test_identical_sets_agree_exactly(self):
        h = SuperMinHasher(k=64, seed=0)
        s = {"p", "q", "r"}
        assert h.estimate_similarity(h.signature(s), h.signature(s)) == 1.0


class TestSetEmbedderCodecs:
    def test_default_is_full64(self):
        emb = SetEmbedder(k=8, b=4)
        assert emb.codec == "full64"
        assert isinstance(emb.code, HadamardCode)
        assert isinstance(emb.hasher, MinHasher)
        assert emb.bias_bits == 4

    def test_full64_bit_identical_to_manual_composition(self):
        """codec='full64' reproduces MinHasher + HadamardCode exactly."""
        emb = SetEmbedder(k=12, b=5, seed=3, codec="full64")
        hasher, code = MinHasher(k=12, seed=3), HadamardCode(5)
        sets = [{"a", "b"}, {"b", "c", "d"}, {f"e{i}" for i in range(9)}]
        for s in sets:
            assert np.array_equal(emb.embed(s), code.encode(hasher.signature(s)))
        assert np.array_equal(
            emb.embed_many(sets), code.encode_many(hasher.signature_matrix(sets))
        )

    def test_bbit_dimension_and_bias(self):
        emb = SetEmbedder(k=32, b=6, seed=0, codec="bbit:2")
        assert emb.codec == "bbit:2"
        assert emb.m == 2
        assert emb.dimension == 64  # 2 bits x 32 slots
        assert emb.n_words == 1
        assert emb.bias_bits is None  # planner uses uncorrected curves

    def test_bbit_shrinks_vectors(self):
        full = SetEmbedder(k=64, b=6, seed=0)
        small = SetEmbedder(k=64, b=6, seed=0, codec="bbit:2")
        s = {f"x{i}" for i in range(20)}
        assert full.embed(s).nbytes // small.embed(s).nbytes == 32

    def test_superminhash_generator(self):
        emb = SetEmbedder(k=16, b=4, seed=0, codec="superminhash")
        assert isinstance(emb.hasher, SuperMinHasher)
        assert isinstance(emb.code, HadamardCode)
        assert emb.bias_bits == 4

    def test_codec_name_normalized(self):
        assert SetEmbedder(codec="MINHASH+Full64").codec == "full64"

    def test_unknown_codec_raises(self):
        with pytest.raises(CodecError):
            SetEmbedder(codec="zstd")

    def test_estimate_pairs_identical_and_disjoint(self):
        for codec in ("full64", "bbit:2", "superminhash+bbit:1"):
            emb = SetEmbedder(k=256, b=6, seed=0, codec=codec)
            a = {f"a{i}" for i in range(40)}
            b = {f"b{i}" for i in range(40)}
            va, vb = emb.embed(a), emb.embed(b)
            pairs = emb.estimate_pairs(
                np.stack([va, va, vb]), np.stack([va, vb, vb])
            )
            assert pairs[0] == pytest.approx(1.0)
            assert pairs[2] == pytest.approx(1.0)
            assert pairs[1] < 0.15  # disjoint, corrected toward 0

    def test_estimate_pairs_calibrated(self):
        """Variance-corrected estimates track true Jaccard for every codec."""
        a = {f"x{i}" for i in range(80)}
        b = {f"x{i}" for i in range(40, 120)}  # Jaccard 1/3
        true = _jaccard(a, b)
        for codec in ("full64", "bbit:1", "bbit:2", "superminhash+bbit:2"):
            emb = SetEmbedder(k=1024, b=6, seed=0, codec=codec)
            va, vb = emb.embed(a), emb.embed(b)
            est = float(emb.estimate_pairs(va[np.newaxis], vb[np.newaxis])[0])
            assert abs(est - true) < 0.1, codec

    def test_estimate_many_matches_pairs(self):
        for codec in ("full64", "bbit:4"):
            emb = SetEmbedder(k=64, b=6, seed=0, codec=codec)
            sets = [{f"s{i}{j}" for j in range(6 + i)} for i in range(5)]
            matrix = emb.embed_many(sets)
            q = emb.embed({"s00", "s01", "zz"})
            many = emb.estimate_many(matrix, q)
            pairs = emb.estimate_pairs(
                matrix, np.tile(q, (matrix.shape[0], 1))
            )
            assert np.allclose(many, pairs)

    def test_unpickle_without_codec_defaults_to_full64(self):
        """Pre-codec pickles (old snapshots) must open as full64."""
        emb = SetEmbedder(k=8, b=4, seed=1)
        state = dict(emb.__dict__)
        del state["codec"]
        revived = SetEmbedder.__new__(SetEmbedder)
        revived.__setstate__(state)
        assert revived.codec == "full64"
        s = {"a", "b", "c"}
        assert np.array_equal(revived.embed(s), emb.embed(s))

    def test_pickle_roundtrip_preserves_codec(self):
        emb = SetEmbedder(k=8, b=4, seed=1, codec="bbit:2")
        revived = pickle.loads(pickle.dumps(emb))
        assert revived.codec == "bbit:2"
        s = {"a", "b"}
        assert np.array_equal(revived.embed(s), emb.embed(s))

    def test_repr_mentions_codec(self):
        assert "bbit:2" in repr(SetEmbedder(codec="bbit:2"))


def _clustered_sets(n_clusters=12, per_cluster=4, seed=0):
    """Small planted-cluster collection: members overlap heavily."""
    rng = np.random.default_rng(seed)
    sets = []
    for c in range(n_clusters):
        core = [f"c{c}:{i}" for i in range(14)]
        for m in range(per_cluster):
            extra = [f"c{c}m{m}:{i}" for i in range(rng.integers(2, 6))]
            sets.append(frozenset(core[: rng.integers(9, 15)]) | frozenset(extra))
    return sets


class TestIndexWithCodecs:
    def test_full64_codec_is_bit_identical_to_default(self):
        """codec='full64' must not change a single answer or candidate."""
        sets = _clustered_sets()
        default = SetSimilarityIndex.build(sets, budget=60, k=24, b=4, seed=0)
        tagged = SetSimilarityIndex.build(
            sets, budget=60, k=24, b=4, seed=0, codec="full64"
        )
        queries = [sets[0], sets[5], {"c3:0", "c3:1", "novel"}]
        got_d = default.query_batch(queries, 0.4, 1.0)
        got_t = tagged.query_batch(queries, 0.4, 1.0)
        for rd, rt in zip(got_d.results, got_t.results):
            assert rd.answers == rt.answers
            assert rd.candidates == rt.candidates

    @pytest.mark.parametrize("codec", ["bbit:2", "superminhash", "superminhash+bbit:2"])
    def test_compressed_answers_are_exact(self, codec):
        """Verification is exact, so codec answers have no false positives."""
        sets = _clustered_sets()
        index = SetSimilarityIndex.build(
            sets, budget=60, recall_target=0.95, k=48, b=4, seed=0, codec=codec
        )
        assert index.embedder.codec == parse_codec(codec).name
        result = index.query(sets[0], 0.5, 1.0)
        assert result.answers  # the query's own cluster must surface
        for sid, sim in result.answers:
            true = _jaccard(sets[0], index.store.get(sid))
            assert sim == pytest.approx(true)
            assert 0.5 <= true <= 1.0

    def test_bbit_recall_on_clusters(self):
        """b-bit candidates still find most truly-similar sets."""
        sets = _clustered_sets()
        index = SetSimilarityIndex.build(
            sets, budget=80, recall_target=0.95, k=64, b=4, seed=0, codec="bbit:2"
        )
        expected = {
            frozenset(s) for s in sets if 0.5 <= _jaccard(sets[0], s) <= 1.0
        }
        # sids are store-assigned; map answers back through contents.
        answered = {
            frozenset(index.store.get(sid))
            for sid, _ in index.query(sets[0], 0.5, 1.0).answers
        }
        assert len(answered & expected) >= 0.8 * len(expected)

    def test_rebuild_preserves_codec(self):
        sets = _clustered_sets(n_clusters=6)
        index = SetSimilarityIndex.build(
            sets, budget=40, k=24, b=4, seed=0, codec="bbit:4"
        )
        fresh = rebuild(index, sample_pairs=2_000)
        assert fresh.embedder.codec == "bbit:4"

    def test_insert_delete_roundtrip_under_bbit(self):
        sets = _clustered_sets(n_clusters=6)
        index = SetSimilarityIndex.build(
            sets, budget=40, k=24, b=4, seed=0, codec="bbit:2"
        )
        sid = index.insert({"new:1", "new:2", "new:3"})
        got = index.query({"new:1", "new:2", "new:3"}, 0.9, 1.0)
        assert sid in {s for s, _ in got.answers}
        index.delete(sid)
        got = index.query({"new:1", "new:2", "new:3"}, 0.9, 1.0)
        assert sid not in {s for s, _ in got.answers}
