"""Exporters: Prometheus text exposition and Chrome trace events.

Two one-way bridges from the in-process telemetry to standard
tooling, plus the validators the CI smoke job and the tests use to
keep the formats honest:

:func:`prometheus_text`
    Renders a :class:`~repro.obs.metrics.MetricsRegistry` in the
    Prometheus text exposition format (version 0.0.4): counters and
    gauges as single samples, fixed-bucket histograms as native
    ``histogram`` families (cumulative ``le`` buckets), HDR histograms
    as ``summary`` families (p50/p90/p99/p999 quantile samples).  The
    output of an HTTP ``/metrics`` handler is exactly this string.
:func:`chrome_trace`
    Converts a completed :class:`~repro.obs.trace.Span` tree to the
    Chrome trace-event JSON format (``chrome://tracing`` /
    https://ui.perfetto.dev): one complete ("X") event per span, with
    real start offsets (spans carry their ``perf_counter`` entry
    timestamps) and the span attributes as ``args``.

Everything is stdlib-only and pure (no sockets, no files): callers
decide where the bytes go.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any

from repro.obs.metrics import MetricsRegistry, registry as default_registry
from repro.obs.trace import Span, _jsonable

#: Prometheus metric-name grammar (exposition format 0.0.4).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Prefix for every exported metric family.
PROMETHEUS_PREFIX = "repro"

#: Quantiles exported per HDR histogram.
SUMMARY_QUANTILES = (0.5, 0.9, 0.99, 0.999)


def prometheus_name(name: str) -> str:
    """Map an instrument name to a legal Prometheus family name
    (``query.latency_ms`` -> ``repro_query_latency_ms``)."""
    sanitized = _SANITIZE_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{PROMETHEUS_PREFIX}_{sanitized}"


def _fmt(value: float | int | None) -> str:
    """A Prometheus sample value (floats exactly, specials spelled)."""
    if value is None:
        return "NaN"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def prometheus_text(registry: MetricsRegistry | None = None) -> str:
    """The full registry in Prometheus text exposition format."""
    registry = registry if registry is not None else default_registry
    snapshot = registry.registry_values()
    lines: list[str] = []

    def family(name: str, kind: str, help_text: str) -> str:
        fam = prometheus_name(name)
        lines.append(f"# HELP {fam} {help_text}")
        lines.append(f"# TYPE {fam} {kind}")
        return fam

    for name in sorted(snapshot["counters"]):
        fam = family(name, "counter", f"repro counter {name}")
        lines.append(f"{fam} {_fmt(snapshot['counters'][name])}")
    for name in sorted(snapshot["gauges"]):
        fam = family(name, "gauge", f"repro gauge {name}")
        lines.append(f"{fam} {_fmt(snapshot['gauges'][name])}")
    for name in sorted(snapshot["histograms"]):
        state = snapshot["histograms"][name]
        fam = family(name, "histogram", f"repro histogram {name}")
        cumulative = 0
        for bound, count in zip(state["bounds"], state["counts"]):
            cumulative += count
            lines.append(f'{fam}_bucket{{le="{_fmt(float(bound))}"}} {cumulative}')
        lines.append(f'{fam}_bucket{{le="+Inf"}} {state["count"]}')
        lines.append(f"{fam}_sum {_fmt(state['sum'])}")
        lines.append(f"{fam}_count {state['count']}")
    hdr_histograms = registry.hdr_histograms()
    for name in sorted(snapshot["hdr"]):
        fam = family(name, "summary", f"repro hdr histogram {name}")
        hist = hdr_histograms.get(name)
        state = snapshot["hdr"][name]
        for q in SUMMARY_QUANTILES:
            value = hist.quantile(q) if hist is not None and state["count"] else 0.0
            lines.append(f'{fam}{{quantile="{_fmt(q)}"}} {_fmt(value)}')
        lines.append(f"{fam}_sum {_fmt(state['sum'])}")
        lines.append(f"{fam}_count {state['count']}")
    return "\n".join(lines) + "\n"


def validate_prometheus_text(text: str) -> dict[str, str]:
    """Check a text exposition against the 0.0.4 grammar.

    Returns the ``{family: type}`` mapping on success; raises
    :class:`ValueError` naming the first offending line otherwise.
    Validated invariants: every sample belongs to a ``# TYPE``-declared
    family, sample values parse as floats, histogram ``le`` buckets are
    cumulative and end at ``+Inf`` equal to ``_count``.
    """
    types: dict[str, str] = {}
    buckets: dict[str, list[tuple[float, int]]] = {}
    counts: dict[str, int] = {}
    sample_re = re.compile(
        r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
        r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)(?:\s+\d+)?$"
    )
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            if not _NAME_RE.match(parts[2]):
                raise ValueError(f"line {lineno}: bad family name {parts[2]!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = sample_re.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: unparseable sample: {line!r}")
        name = m.group("name")
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if family not in types and name not in types:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE")
        value_text = m.group("value")
        try:
            value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value {value_text!r}"
            ) from None
        if name.endswith("_bucket"):
            labels = m.group("labels") or ""
            le = re.search(r'le="([^"]+)"', labels)
            if le is None:
                raise ValueError(f"line {lineno}: bucket sample without le label")
            bound = float(le.group(1).replace("+Inf", "inf"))
            buckets.setdefault(family, []).append((bound, int(value)))
        elif name.endswith("_count"):
            counts[family] = int(value)
    for family, series in buckets.items():
        values = [count for _, count in series]
        if values != sorted(values):
            raise ValueError(f"histogram {family!r}: buckets not cumulative")
        if not series or not math.isinf(series[-1][0]):
            raise ValueError(f"histogram {family!r}: missing le=\"+Inf\" bucket")
        if family in counts and series[-1][1] != counts[family]:
            raise ValueError(
                f"histogram {family!r}: +Inf bucket {series[-1][1]} "
                f"!= _count {counts[family]}"
            )
    return types


# -- Chrome trace-event export -------------------------------------------


def chrome_trace(
    root: Span, pid: int = 1, tid: int = 1, process_name: str = "repro"
) -> dict[str, Any]:
    """A completed span tree as Chrome trace-event JSON.

    One complete ("X") event per span; timestamps are microseconds
    relative to the root span's entry, taken from the spans' real
    ``perf_counter`` entry times (children of a sequential pipeline
    therefore lay out exactly as executed).  Load the serialized dict
    in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    origin = root.start
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for span in root.walk():
        args = {
            k: _jsonable(v) for k, v in span.attrs.items()
            if not k.startswith("_")
        }
        if span.io_delta is not None:
            args["io"] = span.io_delta.as_dict()
        events.append({
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "name": span.name,
            "ts": round((span.start - origin) * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(root: Span, path, **kwargs) -> None:
    """Serialize :func:`chrome_trace` output to a JSON file."""
    with open(path, "w") as f:
        json.dump(chrome_trace(root, **kwargs), f, indent=1)


def validate_chrome_trace(payload: dict[str, Any] | str) -> int:
    """Check a trace-event payload; returns the number of "X" events.

    Accepts the :func:`chrome_trace` dict or its serialized JSON text.
    Raises :class:`ValueError` on the first malformed event.  Checked
    invariants: a ``traceEvents`` list, every event carries ``ph`` /
    ``pid`` / ``tid`` / ``name``, duration events carry non-negative
    numeric ``ts`` and ``dur``, and the payload survives a JSON
    round-trip.
    """
    if isinstance(payload, str):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace is not JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    json.loads(json.dumps(payload))  # must be JSON-safe end to end
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    n_complete = 0
    for i, event in enumerate(events):
        for key in ("ph", "pid", "tid", "name"):
            if key not in event:
                raise ValueError(f"event {i}: missing {key!r}")
        if event["ph"] == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(f"event {i}: bad {key!r}: {value!r}")
            n_complete += 1
    if n_complete == 0:
        raise ValueError("no complete (ph='X') events")
    return n_complete


def validate_events_jsonl(path) -> int:
    """Check a query-event JSONL export; returns the line count.

    Every line must parse as a JSON object carrying the full
    :data:`repro.obs.events.EVENT_FIELDS` schema with sane types.
    """
    from repro.obs.events import EVENT_FIELDS

    n = 0
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"line {lineno}: not JSON: {exc}") from None
            if not isinstance(record, dict):
                raise ValueError(f"line {lineno}: not an object")
            missing = [k for k in EVENT_FIELDS if k not in record]
            if missing:
                raise ValueError(f"line {lineno}: missing fields {missing}")
            if record["kind"] not in ("query", "query_batch"):
                raise ValueError(
                    f"line {lineno}: bad kind {record['kind']!r}"
                )
            for key in ("latency_ms", "sim_time", "sigma_low", "sigma_high"):
                if not isinstance(record[key], (int, float)):
                    raise ValueError(f"line {lineno}: non-numeric {key!r}")
            for key in ("n_queries", "n_candidates", "n_verified",
                        "pages_read", "cache_hits", "workers"):
                if not isinstance(record[key], int):
                    raise ValueError(f"line {lineno}: non-integer {key!r}")
            if not isinstance(record["timings"], dict):
                raise ValueError(f"line {lineno}: timings must be an object")
            n += 1
    if n == 0:
        raise ValueError("no events in file")
    return n
