"""Unit tests for the index optimizer (Section 5, Figs. 4-5)."""

import numpy as np
import pytest

from repro.core.distribution import SimilarityDistribution
from repro.core.optimizer import (
    DFI,
    SFI,
    CaptureModel,
    PlannedFilter,
    average_precision,
    average_recall,
    default_range_workload,
    evaluate_plan,
    evaluate_ranges,
    greedy_allocate,
    place_filters,
    plan_index,
    uniform_allocate,
    worst_precision,
    worst_recall,
)


def _spread_dist(seed=0, n_bins=50):
    """A distribution with mass across the whole similarity range."""
    rng = np.random.default_rng(seed)
    mass = rng.random(n_bins) * 100 + 10
    return SimilarityDistribution(mass, 200)


def _bimodal_dist():
    mass = np.zeros(50)
    mass[:5] = 1000.0   # dissimilar bulk
    mass[30:35] = 200.0  # similar tail
    return SimilarityDistribution(mass, 100)


class TestPlaceFilters:
    def test_kinds_by_delta(self):
        filters = place_filters([0.1, 0.3, 0.7, 0.9], delta=0.5)
        kinds = {(f.point, f.kind) for f in filters}
        assert (0.1, DFI) in kinds
        assert (0.9, SFI) in kinds

    def test_pivot_gets_both(self):
        filters = place_filters([0.1, 0.45, 0.9], delta=0.5)
        at_pivot = [f.kind for f in filters if f.point == 0.45]
        assert sorted(at_pivot) == [DFI, SFI]

    def test_empty(self):
        assert place_filters([], 0.5) == []

    def test_single_point_gets_both(self):
        filters = place_filters([0.4], delta=0.5)
        assert sorted(f.kind for f in filters) == [DFI, SFI]

    def test_all_above_delta(self):
        filters = place_filters([0.6, 0.8], delta=0.1)
        # Closest to delta is 0.6 -> both kinds; 0.8 -> SFI.
        assert sorted(f.kind for f in filters if f.point == 0.6) == [DFI, SFI]
        assert [f.kind for f in filters if f.point == 0.8] == [SFI]


class TestPlannedFilter:
    def test_collision_probability_zero_without_tables(self):
        f = PlannedFilter(0.5, SFI, n_tables=0)
        grid = np.linspace(0, 1, 11)
        assert not f.collision_probability(grid).any()

    def test_sfi_collision_increasing(self):
        f = PlannedFilter(0.5, SFI, n_tables=10)
        grid = np.linspace(0, 1, 21)
        p = f.collision_probability(grid, b=6)
        assert np.all(np.diff(p) >= -1e-12)

    def test_dfi_collision_decreasing(self):
        f = PlannedFilter(0.5, DFI, n_tables=10)
        grid = np.linspace(0, 1, 21)
        p = f.collision_probability(grid, b=6)
        assert np.all(np.diff(p) <= 1e-12)

    def test_expected_error_no_tables_is_retrieve_mass(self):
        dist = _spread_dist()
        f = PlannedFilter(0.5, SFI, n_tables=0)
        above = dist.centers >= 0.5
        assert f.expected_error(dist) == pytest.approx(float(dist.mass[above].sum()))

    def test_error_band_excludes_neighbourhood(self):
        dist = _spread_dist()
        f = PlannedFilter(0.5, SFI, n_tables=5)
        assert f.expected_error(dist, band=0.2) <= f.expected_error(dist, band=0.0)

    def test_hamming_threshold(self):
        f = PlannedFilter(0.4, SFI)
        assert f.hamming_threshold() == pytest.approx(0.7)


class TestAllocators:
    def test_greedy_respects_budget(self):
        dist = _spread_dist()
        filters = place_filters([0.2, 0.5, 0.8], delta=0.45)
        used = greedy_allocate(filters, 50, dist, b=6)
        assert used == sum(f.n_tables for f in filters)
        assert used <= 50
        assert all(f.n_tables >= 1 for f in filters)

    def test_greedy_insufficient_budget(self):
        dist = _spread_dist()
        filters = place_filters([0.2, 0.5, 0.8], delta=0.45)
        assert greedy_allocate(filters, len(filters) - 1, dist, b=6) == 0
        assert all(f.n_tables == 0 for f in filters)

    def test_greedy_empty(self):
        assert greedy_allocate([], 10, _spread_dist()) == 0

    def test_greedy_uses_most_of_generous_budget(self):
        dist = _spread_dist()
        filters = place_filters([0.3, 0.7], delta=0.5)
        used = greedy_allocate(filters, 100, dist, b=6)
        assert used >= 50  # steepness keeps paying on spread mass

    def test_greedy_reduces_error_vs_single_table(self):
        dist = _spread_dist()
        filters = place_filters([0.3, 0.7], delta=0.5)
        greedy_allocate(filters, 80, dist, b=6)
        allocated_error = sum(f.expected_error(dist, 6, band=0.05) for f in filters)
        for f in filters:
            f.n_tables = 1
        single_error = sum(f.expected_error(dist, 6, band=0.05) for f in filters)
        assert allocated_error < single_error

    def test_uniform_allocate_splits_evenly(self):
        filters = [PlannedFilter(0.2, DFI), PlannedFilter(0.5, SFI), PlannedFilter(0.8, SFI)]
        used = uniform_allocate(filters, 10)
        assert used == 10
        assert sorted(f.n_tables for f in filters) == [3, 3, 4]

    def test_uniform_allocate_empty(self):
        assert uniform_allocate([], 10) == 0


class TestCaptureModel:
    def test_no_filters_full_scan(self):
        model = CaptureModel([], [], b=6)
        grid = np.linspace(0, 1, 5)
        assert np.all(model.capture(0.2, 0.8, grid) == 1.0)

    def test_enclosing_points(self):
        model = CaptureModel([0.2, 0.5, 0.8], [], b=6)
        assert model.enclosing(0.3, 0.6) == (0.2, 0.8)
        assert model.enclosing(0.5, 0.5) == (0.5, 0.5)
        assert model.enclosing(0.05, 0.9) == (None, None)
        assert model.enclosing(0.25, 0.95) == (0.2, None)

    def test_sfi_difference_plan(self):
        filters = [
            PlannedFilter(0.4, SFI, n_tables=20),
            PlannedFilter(0.8, SFI, n_tables=20),
        ]
        model = CaptureModel([0.4, 0.8], filters, b=6)
        grid = np.array([0.6])
        p = model.capture(0.5, 0.7, grid)
        p_lo = filters[0].collision_probability(grid, 6)
        p_up = filters[1].collision_probability(grid, 6)
        assert p == pytest.approx(p_lo * (1 - p_up))

    def test_dfi_difference_plan(self):
        filters = [
            PlannedFilter(0.1, DFI, n_tables=20),
            PlannedFilter(0.3, DFI, n_tables=20),
        ]
        model = CaptureModel([0.1, 0.3], filters, b=6)
        grid = np.array([0.2])
        p = model.capture(0.15, 0.25, grid)
        p_lo = filters[0].collision_probability(grid, 6)
        p_up = filters[1].collision_probability(grid, 6)
        assert p == pytest.approx(p_up * (1 - p_lo))

    def test_mixed_plan_uses_pivot(self):
        filters = [
            PlannedFilter(0.2, DFI, n_tables=10),
            PlannedFilter(0.5, DFI, n_tables=10),
            PlannedFilter(0.5, SFI, n_tables=10),
            PlannedFilter(0.8, SFI, n_tables=10),
        ]
        model = CaptureModel([0.2, 0.5, 0.8], filters, b=6)
        grid = np.linspace(0, 1, 11)
        p = model.capture(0.25, 0.75, grid)
        assert np.all((p >= 0) & (p <= 1))

    def test_half_open_low_range(self):
        filters = [PlannedFilter(0.3, DFI, n_tables=10)]
        model = CaptureModel([0.3], filters, b=6)
        grid = np.array([0.0, 0.5])
        p = model.capture(0.0, 0.3, grid)
        assert p[0] > p[1]  # dissimilar more likely captured

    def test_half_open_high_range(self):
        filters = [PlannedFilter(0.3, SFI, n_tables=10)]
        model = CaptureModel([0.3], filters, b=6)
        grid = np.array([0.1, 0.9])
        p = model.capture(0.3, 1.0, grid)
        assert p[1] > p[0]

    def test_fallback_plans_complement(self):
        """SFI-only low range: capture = 1 - p_sfi (all minus SimVector)."""
        filters = [PlannedFilter(0.3, SFI, n_tables=10)]
        model = CaptureModel([0.3], filters, b=6)
        grid = np.array([0.1, 0.9])
        p = model.capture(0.0, 0.3, grid)
        p_sfi = filters[0].collision_probability(grid, 6)
        assert np.allclose(p, 1 - p_sfi)


class TestEvaluate:
    def test_full_scan_plan_perfect_recall(self):
        dist = _spread_dist()
        stats = evaluate_ranges([], [], dist, b=6)
        assert average_recall(stats) == pytest.approx(1.0)

    def test_ranges_skip_empty_answers(self):
        mass = np.zeros(10)
        mass[9] = 5.0  # only very similar pairs exist
        dist = SimilarityDistribution(mass, 10)
        stats = evaluate_ranges([], [], dist, b=6, ranges=[(0.0, 0.1), (0.9, 1.0)])
        assert len(stats) == 1

    def test_evaluate_plan_intervals(self):
        dist = _spread_dist()
        filters = place_filters([0.5], 0.5)
        greedy_allocate(filters, 20, dist, b=6)
        stats = evaluate_plan([0.5], filters, dist, b=6)
        assert len(stats) == 2
        assert stats[0].sigma_low == 0.0 and stats[1].sigma_high == 1.0

    def test_worst_metrics_respect_floor(self):
        dist = _spread_dist()
        stats = evaluate_ranges([], [], dist, b=6)
        assert worst_recall(stats) <= average_recall(stats) + 1e-12
        assert worst_recall(stats, min_answer=dist.total_mass + 1) == 1.0
        assert worst_precision(stats, min_answer=dist.total_mass + 1) == 1.0

    def test_default_range_workload_grid(self):
        ranges = default_range_workload(step=0.25)
        assert (0.0, 1.0) in ranges
        assert all(a < b for a, b in ranges)
        assert len(ranges) == 10  # C(5, 2)


class TestPlanIndex:
    def test_meets_target_on_spread_distribution(self):
        dist = _spread_dist()
        plan = plan_index(dist, budget=100, recall_target=0.8, b=6)
        assert plan.met_target
        assert plan.expected_recall >= 0.8
        assert plan.tables_used <= 100
        assert len(plan.filters) >= 1

    def test_impossible_target_returns_fallback(self):
        dist = _bimodal_dist()
        plan = plan_index(dist, budget=20, recall_target=0.999, b=6)
        assert not plan.met_target
        assert plan.cut_points  # still a usable plan

    def test_zero_budget_degenerate(self):
        dist = _spread_dist()
        plan = plan_index(dist, budget=0, recall_target=0.9, b=6)
        assert plan.filters == []
        assert plan.n_intervals == 1

    def test_more_budget_no_worse_precision(self):
        dist = _spread_dist()
        small = plan_index(dist, budget=20, recall_target=0.8, b=6)
        large = plan_index(dist, budget=200, recall_target=0.8, b=6)
        assert large.expected_precision >= small.expected_precision - 0.05

    def test_uniform_placement_option(self):
        dist = _spread_dist()
        plan = plan_index(dist, budget=50, recall_target=0.5, b=6, placement="uniform")
        if plan.cut_points:
            gaps = np.diff([0.0, *plan.cut_points, 1.0])
            assert np.allclose(gaps, gaps[0], atol=1e-6)

    def test_invalid_arguments(self):
        dist = _spread_dist()
        with pytest.raises(ValueError):
            plan_index(dist, budget=-1)
        with pytest.raises(ValueError):
            plan_index(dist, budget=10, recall_target=0.0)
        with pytest.raises(ValueError):
            plan_index(dist, budget=10, placement="magic")

    def test_plan_properties(self):
        dist = _spread_dist()
        plan = plan_index(dist, budget=60, recall_target=0.8, b=6)
        assert plan.n_intervals == len(plan.cut_points) + 1
        for point in plan.cut_points:
            assert plan.kind_at(point) <= {SFI, DFI}
        assert plan.tables_used == sum(f.n_tables for f in plan.filters)

    def test_equidepth_cuts_balance_mass(self):
        dist = _spread_dist()
        plan = plan_index(dist, budget=60, recall_target=0.8, b=6)
        bounds = [0.0, *plan.cut_points, 1.0]
        masses = [
            dist.mass_between(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)
        ]
        assert max(masses) / max(1e-9, min(masses)) < 1.5
