"""Equivalence tests: ``query_batch`` vs a ``query()`` loop.

The batched execution path is an *optimization*, not a different
algorithm: for any workload it must return exactly the same answer
lists and candidate sets as looping the scalar path, charge the same
accounted CPU, and never read more pages.  These tests pin that
contract over randomized workloads (collections, query mixes and
similarity ranges all drawn from per-seed RNGs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.index import BatchQueryResult, SetSimilarityIndex
from repro.data.generators import planted_clusters, uniform_random_sets

#: Randomized-equivalence coverage: one workload per seed.
SEEDS = range(24)

#: Similarity ranges cycled through by the randomized workloads --
#: above-only, below-only, interior and degenerate-wide, so every plan
#: family (sfi, dfi, complements, differences, full collection) comes up.
RANGES = [(0.5, 1.0), (0.0, 0.4), (0.2, 0.8), (0.0, 1.0), (0.7, 0.9)]


def _pages(delta) -> int:
    return delta.random_reads + delta.sequential_reads


def _build_workload(seed: int):
    """A small index plus a mixed query batch, all derived from ``seed``."""
    rng = np.random.default_rng(seed)
    if seed % 2:
        sets = planted_clusters(
            n_clusters=6,
            per_cluster=8,
            base_size=24,
            universe=1500,
            mutation_rate=0.2,
            seed=seed,
        )
    else:
        sets = uniform_random_sets(
            n_sets=48, set_size=16, universe=800, seed=seed
        )
    index = SetSimilarityIndex.build(
        sets, budget=40, recall_target=0.8, k=24, b=4, seed=seed,
        sample_pairs=2_000,
    )
    # Query mix: indexed sets, perturbed variants, and one unseen set.
    queries = []
    for _ in range(6):
        queries.append(sets[int(rng.integers(len(sets)))])
    for _ in range(3):
        base = set(sets[int(rng.integers(len(sets)))])
        for element in list(base)[: len(base) // 3]:
            base.discard(element)
        base.add(10_000 + int(rng.integers(1000)))
        queries.append(frozenset(base))
    queries.append(frozenset(int(x) for x in rng.integers(0, 800, size=10)))
    lo, hi = RANGES[seed % len(RANGES)]
    return index, queries, lo, hi


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_equals_query_loop(seed):
    """Identical answers/candidates/CPU; never more page reads."""
    index, queries, lo, hi = _build_workload(seed)

    before = index.io.snapshot()
    singles = [index.query(q, lo, hi) for q in queries]
    single_delta = index.io.snapshot() - before
    single_cpu = sum(r.cpu_time for r in singles)

    before = index.io.snapshot()
    batch = index.query_batch(queries, lo, hi)
    batch_delta = index.io.snapshot() - before

    assert batch.n_queries == len(queries)
    for single, batched in zip(singles, batch.results):
        assert batched.answers == single.answers
        assert batched.candidates == single.candidates
        assert batched.n_candidates == single.n_candidates
        assert batched.n_verified == single.n_verified
    # Accounted CPU is identical work (embedding + verification)...
    assert batch.cpu_time == pytest.approx(single_cpu)
    # ...while the batch never reads more pages, and its own savings
    # accounting is consistent with the observed page delta.
    assert _pages(batch_delta) <= _pages(single_delta)
    assert _pages(single_delta) - _pages(batch_delta) >= batch.pages_saved


@pytest.mark.parametrize("seed", [3, 7])
def test_scan_strategy_equivalence(seed):
    index, queries, lo, hi = _build_workload(seed)
    singles = [index.query(q, lo, hi, strategy="scan") for q in queries]
    batch = index.query_batch(queries, lo, hi, strategy="scan")
    for single, batched in zip(singles, batch.results):
        assert batched.answers == single.answers
        assert batched.candidates == single.candidates
    # One shared scan pass: strictly fewer reads than a per-query scan.
    assert batch.pages_saved > 0


def test_above_below_wrappers_match_query_batch():
    index, queries, _, _ = _build_workload(5)
    above = index.query_above_batch(queries, 0.6)
    below = index.query_below_batch(queries, 0.3)
    direct_above = index.query_batch(queries, 0.6, 1.0)
    direct_below = index.query_batch(queries, 0.0, 0.3)
    for got, want in ((above, direct_above), (below, direct_below)):
        for batched, single in zip(got.results, want.results):
            assert batched.answers == single.answers


def test_batch_result_container_protocol():
    index, queries, lo, hi = _build_workload(2)
    batch = index.query_batch(queries, lo, hi)
    assert isinstance(batch, BatchQueryResult)
    assert len(batch) == len(queries)
    assert list(iter(batch)) == batch.results
    assert batch[0] is batch.results[0]
    assert batch.n_candidates == sum(r.n_candidates for r in batch.results)
    assert batch.n_verified == sum(r.n_verified for r in batch.results)
    # Batch-level I/O lives on the batch; inner results carry zeros.
    for result in batch.results:
        assert result.io_time == 0.0
        assert result.cpu_time == 0.0


def test_empty_batch_and_empty_query_sets():
    index, queries, _, _ = _build_workload(4)
    empty = index.query_batch([], 0.5, 1.0)
    assert empty.n_queries == 0
    assert empty.results == []

    mixed = index.query_batch([frozenset(), queries[0]], 0.5, 1.0)
    assert mixed.results[0].answers == index.query(frozenset(), 0.5, 1.0).answers
    assert mixed.results[1].answers == index.query(queries[0], 0.5, 1.0).answers


def test_invalid_range_rejected():
    index, queries, _, _ = _build_workload(6)
    with pytest.raises(ValueError):
        index.query_batch(queries, 0.9, 0.4)
    with pytest.raises(ValueError):
        index.query_batch(queries, -0.1, 0.5)


def test_duplicate_queries_share_work():
    """Repeating one query set must not change its answers, and the
    candidate-fetch dedup must kick in."""
    index, queries, lo, hi = _build_workload(8)
    single = index.query(queries[0], lo, hi)
    batch = index.query_batch([queries[0]] * 6, lo, hi)
    for result in batch.results:
        assert result.answers == single.answers
    if single.n_candidates:
        assert batch.fetches_saved >= 5 * single.n_candidates - 5
