"""Execution engine: frozen index snapshots and parallel batch queries.

The live :class:`~repro.core.index.SetSimilarityIndex` mutates shared
storage structures (bucket-directory memos, page chains, counters) even
on read paths, so it cannot be probed from several threads at once.
This package provides the serving-side counterpart:

- :class:`~repro.exec.snapshot.IndexSnapshot` -- an immutable image of
  a built index (``index.freeze()``) with every bucket directory
  pre-built, vectors packed into one matrix, and stored sets in a
  columnar CSR hash layout;
- :class:`~repro.exec.parallel.ParallelExecutor` -- shards a query
  batch over a worker thread pool against a snapshot, with
  deterministic merges so answers, page counts and CPU accounting are
  bit-identical to the sequential ``query_batch`` at any worker count;
- :mod:`~repro.exec.columnar` -- the vectorized sorted-hash-array
  kernels behind exact Jaccard verification (shared with the live
  sequential path);
- :mod:`~repro.exec.build` -- the build-side counterpart: bulk filter
  construction with parallel per-table planning and a deterministic
  sequential apply, bit-identical to the per-insert path at any worker
  count;
- :mod:`~repro.exec.snapfile` -- zero-copy persistence for snapshots:
  :func:`~repro.exec.snapfile.save_snapshot` writes a directory of
  aligned raw arrays + a checksummed JSON manifest,
  :func:`~repro.exec.snapfile.open_snapshot` maps it back in O(ms)
  with ``np.memmap`` (a :class:`~repro.exec.snapfile.MappedSnapshot`),
  the substrate of ``ParallelExecutor(..., backend="process")``;
- :mod:`~repro.exec.shard` -- scatter-gather over a K-shard fleet:
  :func:`~repro.exec.shard.build_sharded` partitions a collection
  (hash or minhash-clustered), builds each shard with the bulk
  pipeline under one global plan (or a workload-tuned per-shard
  allocation of the global table budget) and saves each as its own
  snapshot under a checksummed shard manifest;
  :class:`~repro.exec.shard.ShardedExecutor` fans batches out to
  per-shard ``ParallelExecutor``s and merges deterministically --
  bit-identical to the unsharded answers on mirror-built manifests.
"""

from repro.exec.build import bulk_load_filters, lpt_makespan
from repro.exec.columnar import build_csr, hash_set, intersect_counts, jaccard_values
from repro.exec.parallel import ParallelExecutor
from repro.exec.shard import (
    ShardedExecutor,
    ShardedSnapshot,
    ShardError,
    build_sharded,
    is_sharded,
    open_sharded,
    partition_sets,
    verify_sharded,
)
from repro.exec.snapshot import IndexSnapshot
from repro.exec.snapfile import (
    MappedSnapshot,
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    open_snapshot,
    save_snapshot,
    verify_snapshot,
)

__all__ = [
    "IndexSnapshot",
    "MappedSnapshot",
    "ParallelExecutor",
    "ShardError",
    "ShardedExecutor",
    "ShardedSnapshot",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotIntegrityError",
    "build_sharded",
    "bulk_load_filters",
    "is_sharded",
    "lpt_makespan",
    "build_csr",
    "hash_set",
    "intersect_counts",
    "jaccard_values",
    "open_sharded",
    "open_snapshot",
    "partition_sets",
    "save_snapshot",
    "verify_sharded",
    "verify_snapshot",
]
