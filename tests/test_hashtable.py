"""Unit tests for the paged bucket hash table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.hashtable import BucketHashTable, hash_key
from repro.storage.iomodel import IOCostModel
from repro.storage.pager import PageManager


def _table(n_buckets=8, page_size=4096):
    return BucketHashTable(PageManager(IOCostModel(), page_size=page_size), n_buckets)


class TestHashKey:
    def test_deterministic(self):
        assert hash_key(b"abc") == hash_key(b"abc")

    def test_distinct_keys_differ(self):
        assert hash_key(b"abc") != hash_key(b"abd")

    def test_64_bit(self):
        assert 0 <= hash_key(b"x") < 2**64


class TestBucketHashTable:
    def test_insert_probe(self):
        table = _table()
        table.insert(b"k1", 10)
        table.insert(b"k1", 11)
        table.insert(b"k2", 20)
        assert sorted(table.probe(b"k1")) == [10, 11]
        assert table.probe(b"k2") == [20]
        assert table.probe(b"nope") == []
        assert table.n_entries == 3

    def test_no_bucket_cross_talk(self):
        """Keys sharing a bucket must not leak into each other's probes."""
        table = _table(n_buckets=1)
        for i in range(20):
            table.insert(f"key-{i}".encode(), i)
        for i in range(20):
            assert table.probe(f"key-{i}".encode()) == [i]

    def test_overflow_chains(self):
        table = _table(n_buckets=1, page_size=64)  # 4 entries per page
        for i in range(20):
            table.insert(b"same", i)
        assert table.n_pages == 5
        assert sorted(table.probe(b"same")) == list(range(20))

    def test_probe_io_chain_accounting(self):
        table = _table(n_buckets=1, page_size=64)
        for i in range(8):  # two pages in the chain
            table.insert(b"k", i)
        io = table.pager.io
        before = io.snapshot()
        table.probe(b"k")
        delta = io.snapshot() - before
        assert delta.random_reads == 1  # head page
        assert delta.sequential_reads == 1  # overflow page

    def test_delete_existing(self):
        table = _table()
        table.insert(b"a", 1)
        table.insert(b"a", 2)
        assert table.delete(b"a", 1)
        assert table.probe(b"a") == [2]
        assert table.n_entries == 1

    def test_delete_missing(self):
        table = _table()
        table.insert(b"a", 1)
        assert not table.delete(b"a", 99)
        assert not table.delete(b"zzz", 1)
        assert table.n_entries == 1

    def test_delete_last_entry_of_last_page(self):
        """The swap-remove edge case: hole == popped entry."""
        table = _table(n_buckets=1, page_size=64)
        for i in range(4):
            table.insert(b"k", i)
        assert table.delete(b"k", 3)  # last entry of the only page
        assert sorted(table.probe(b"k")) == [0, 1, 2]

    def test_delete_frees_empty_pages(self):
        table = _table(n_buckets=1, page_size=64)
        for i in range(5):  # 2 pages
            table.insert(b"k", i)
        assert table.n_pages == 2
        for i in range(5):
            table.delete(b"k", i)
        assert table.n_pages == 0
        assert table.probe(b"k") == []

    def test_duplicate_entries_supported(self):
        table = _table()
        table.insert(b"k", 7)
        table.insert(b"k", 7)
        assert table.probe(b"k") == [7, 7]
        table.delete(b"k", 7)
        assert table.probe(b"k") == [7]

    def test_items_iterates_everything(self):
        table = _table(n_buckets=4)
        for i in range(10):
            table.insert(str(i).encode(), i)
        assert len(list(table.items())) == 10

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            BucketHashTable(PageManager(IOCostModel()), 0)

    @given(
        st.lists(
            st.tuples(st.sampled_from([b"a", b"b", b"c", b"d"]), st.integers(0, 5)),
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_model(self, operations):
        """Insert/delete sequences behave like a multiset dictionary."""
        table = _table(n_buckets=2, page_size=64)
        model: dict[bytes, list[int]] = {}
        rng = np.random.default_rng(0)
        for key, sid in operations:
            if rng.random() < 0.7:
                table.insert(key, sid)
                model.setdefault(key, []).append(sid)
            else:
                expected = sid in model.get(key, [])
                assert table.delete(key, sid) == expected
                if expected:
                    model[key].remove(sid)
        for key in (b"a", b"b", b"c", b"d"):
            assert sorted(table.probe(key)) == sorted(model.get(key, []))
        assert table.n_entries == sum(len(v) for v in model.values())


class TestDirectoryInvalidation:
    """The per-bucket fingerprint directory is a memo over page chains;
    any mutation of a bucket must drop its memo or probes serve stale
    (or ghost) entries."""

    def test_delete_invalidates_bucket_directory(self):
        table = _table(n_buckets=2)
        table.insert(b"k1", 1)
        table.insert(b"k1", 2)
        bucket, _ = table._bucket_of(b"k1")
        assert sorted(table.probe(b"k1")) == [1, 2]  # memo built
        assert table._directory[bucket] is not None
        assert table.delete(b"k1", 1)
        assert table._directory[bucket] is None  # memo dropped
        assert table.probe(b"k1") == [2]  # no ghost entry

    def test_insert_invalidates_bucket_directory(self):
        table = _table(n_buckets=2)
        table.insert(b"k1", 1)
        table.probe(b"k1")
        bucket, _ = table._bucket_of(b"k1")
        assert table._directory[bucket] is not None
        table.insert(b"k1", 9)
        assert table._directory[bucket] is None
        assert sorted(table.probe(b"k1")) == [1, 9]

    def test_delete_only_invalidates_its_own_bucket(self):
        table = _table(n_buckets=64)
        keys = [f"key-{i}".encode() for i in range(32)]
        for i, key in enumerate(keys):
            table.insert(key, i)
        for key in keys:
            table.probe(key)  # warm every touched bucket's memo
        victim = keys[0]
        victim_bucket, _ = table._bucket_of(victim)
        warmed = {
            b for b in range(64)
            if table._directory[b] is not None and b != victim_bucket
        }
        assert warmed  # 32 keys over 64 buckets: others got warmed
        assert table.delete(victim, 0)
        assert table._directory[victim_bucket] is None
        for b in warmed:
            assert table._directory[b] is not None
