"""FIG6A -- paper Fig. 6(a): precision & recall per result-size bucket,
hash-table budget 500, both datasets.

Paper shape to reproduce: the construction-time recall goal (~0.9
average) is met, and precision decreases as result size grows (big
results come from low-similarity ranges, where the similarity
distribution is densest and the filters least selective).
"""

import numpy as np
import pytest

from repro.data.queries import QueryWorkload
from repro.eval.experiments import ExperimentConfig, build_harness, run_fig6

BUDGET = 500


@pytest.fixture(scope="module")
def config(scale):
    return ExperimentConfig(
        n_sets=scale.n_sets,
        budget=BUDGET,
        n_queries=scale.n_queries,
        sample_pairs=scale.sample_pairs,
        k=scale.k,
    )


def test_fig6a(benchmark, config, emit):
    result = benchmark.pedantic(
        run_fig6, args=(config,), kwargs={"budget": BUDGET}, rounds=1, iterations=1
    )
    from repro.eval.plots import fig6_ascii

    bars = "\n\n".join(
        f"[{name}]\n{fig6_ascii(buckets)}" for name, buckets in result.summaries.items()
    )
    emit(
        "FIG6A",
        result.table()
        + "\nexpected (construction-time) recall: "
        + ", ".join(f"{k}={v:.3f}" for k, v in result.expected_recall.items())
        + "\n\n" + bars,
    )
    for name, buckets in result.summaries.items():
        populated = [s for s in buckets if s.n_queries > 0]
        assert populated, f"{name}: no bucket received queries"
        for s in populated:
            assert 0.0 <= s.recall <= 1.0
            assert 0.0 <= s.precision <= 1.0
        # Paper shape: recall holds up across buckets on average.
        weighted = np.average(
            [s.recall for s in populated], weights=[s.n_queries for s in populated]
        )
        assert weighted > 0.7


def test_fig6a_query_kernel(benchmark, config):
    """Wall-clock of one indexed range query at the Fig. 6(a) setup."""
    harness = build_harness("set1", config)
    queries = QueryWorkload(len(harness.sets), seed=99).sample(10)
    sets = harness.sets
    state = {"i": 0}

    def run_one():
        q = queries[state["i"] % len(queries)]
        state["i"] += 1
        return harness.index.query(sets[q.set_index], q.sigma_low, q.sigma_high)

    benchmark(run_one)
