"""Shard routing: sound bounds, safe-mode bit-identity, replicas.

The routing layer (:mod:`repro.exec.route`) prunes (query, shard)
pairs whose Jaccard upper bound falls below ``sigma_low``.  The
load-bearing guarantee is soundness: the bound dominates the true
Jaccard of *every* set in the shard, so ``route="safe"`` -- which only
masks verification for pruned pairs while dispatching every probe --
answers bit-identically to full fan-out, candidates and ordering
included.  These tests pin the bound's math directly, the bit-identity
across 12 seeds x K in {2, 4, 8} on the thread backend (plus a process
-backend pass), the degenerate ranges (empty query, ``sigma_low ==
sigma_high``, ``sigma_low = 0`` never prunes), the opt-in sketch
mode's measured recall, replica cloning/balancing, and the executor's
error paths (closed executor, dead shard).
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro.core.distribution import SimilarityDistribution
from repro.core.index import SetSimilarityIndex
from repro.core.optimizer import plan_index
from repro.core.similarity import jaccard
from repro.data.generators import planted_clusters
from repro.exec import ParallelExecutor
from repro.exec.route import (
    RoutingInfo,
    ShardRouter,
    ShardSummary,
    build_routing,
    jaccard_upper_bound,
)
from repro.exec.shard import (
    SHARD_MANIFEST_FILE,
    ShardError,
    ShardedExecutor,
    build_sharded,
    open_sharded,
    replicate_shards,
    verify_sharded,
)

RANGE = (0.3, 0.9)


def _workload(seed: int, n_sets: int = 90, n_queries: int = 6):
    rng = np.random.default_rng(seed)
    sets = planted_clusters(
        n_clusters=5, per_cluster=n_sets // 5, base_size=16, universe=900,
        mutation_rate=0.25, seed=seed,
    )
    queries = [sets[int(rng.integers(len(sets)))] for _ in range(n_queries - 2)]
    queries.append(frozenset(int(x) for x in rng.integers(0, 900, size=10)))
    queries.append(frozenset())
    return sets, queries


def _disjoint_workload(seed: int, n_clusters: int = 4, per: int = 20):
    """Clusters over pairwise-disjoint element universes: a query drawn
    from one cluster provably has J = 0 against every other cluster's
    sets, so a cluster-partitioned fleet is maximally prunable."""
    rng = random.Random(seed)
    sets, queries = [], []
    for c in range(n_clusters):
        base = [f"c{c}_{j}" for j in range(48)]
        proto = rng.sample(base, 24)
        members = []
        for _ in range(per):
            # 3-element mutations of a prototype: within-cluster J is
            # high (>= ~0.7, enough for the minhash partitioner to
            # colocate the cluster), across clusters exactly 0.
            keep = rng.sample(proto, 21)
            fresh = rng.sample([e for e in base if e not in proto], 3)
            members.append(frozenset(keep + fresh))
        sets.extend(members)
        src = sorted(rng.choice(members))
        rng.shuffle(src)
        fresh = rng.sample([e for e in base if e not in src], 2)
        queries.append(frozenset(src[2:] + fresh))
    return sets, queries


def _build_plan(sets, seed: int):
    dist = SimilarityDistribution.from_sets(sets, sample_pairs=1_500, seed=seed)
    plan = plan_index(dist, 36, recall_target=0.85, b=4)
    return plan, dist


def _baseline(sets, plan, dist, queries, seed: int):
    index = SetSimilarityIndex.from_plan(sets, plan, dist, k=24, b=4, seed=seed)
    return ParallelExecutor(index.freeze(), workers=1).query_batch(
        queries, *RANGE
    )


def _assert_bit_identical(got, want):
    for g, w in zip(got.results, want.results):
        assert g.answers == w.answers        # sids, sims AND ordering
        assert g.candidates == w.candidates  # incl. fingerprint collisions
    assert got.n_queries == want.n_queries


# -- the bound itself ------------------------------------------------------


class TestJaccardUpperBound:
    def test_dominates_true_jaccard_exhaustively(self):
        """With exact inputs (c = |q ∩ U|, tight size range) the bound
        must dominate J(q, S) for every set S in the shard."""
        rng = random.Random(3)
        universe = list(range(120))
        for _ in range(60):
            shard = [
                frozenset(rng.sample(universe, rng.randint(0, 30)))
                for _ in range(rng.randint(1, 12))
            ]
            u = frozenset().union(*shard)
            sizes = [len(s) for s in shard]
            q = frozenset(rng.sample(universe, rng.randint(0, 40)))
            bound = jaccard_upper_bound(
                len(q), len(q & u), min(sizes), max(sizes)
            )
            for s in shard:
                assert jaccard(q, s) <= bound + 1e-12

    def test_empty_query_convention(self):
        # J(empty, empty) = 1 engine-wide; empty vs non-empty = 0.
        assert jaccard_upper_bound(0, 0, 0, 9) == 1.0
        assert jaccard_upper_bound(0, 0, 3, 9) == 0.0

    def test_degenerate_inputs(self):
        # Zero overlap cap: J = 0 whatever the sizes (the J = 1
        # empty-vs-empty convention needs the *query* empty too).
        assert jaccard_upper_bound(5, 0, 2, 9) == 0.0
        assert jaccard_upper_bound(5, 0, 0, 9) == 0.0
        # Full overlap with a matching size in range: perfect score.
        assert jaccard_upper_bound(5, 5, 1, 9) == 1.0
        # Size range forces supersets: 5/9 is the best case.
        assert jaccard_upper_bound(5, 5, 9, 12) == pytest.approx(5 / 9)
        # Size range forces subsets: 2/5.
        assert jaccard_upper_bound(5, 5, 1, 2) == pytest.approx(2 / 5)

    def test_bitset_collisions_only_loosen(self):
        # c is an upper bound on |q ∩ U|; inflating it (a hash
        # collision) must never lower the bound.
        for c in range(0, 8):
            assert jaccard_upper_bound(6, c + 1, 2, 10) >= jaccard_upper_bound(
                6, c, 2, 10
            )


# -- router decisions ------------------------------------------------------


class TestShardRouter:
    def _router(self, shard_sets, seed=0):
        # Build summaries in memory (open_sharded maps them from
        # routing.bin; the router only sees decoded arrays either way).
        meta, arrays = build_routing(shard_sets, seed=seed)
        summaries = []
        for i, entry in enumerate(meta["shards"]):
            if entry is None:
                summaries.append(None)
                continue
            summaries.append(ShardSummary(
                size_min=entry["size_min"], size_max=entry["size_max"],
                n_universe=entry["n_universe"],
                bits=arrays[f"route{i:03d}_bits"],
                signature=arrays.get(f"route{i:03d}_sig"),
            ))
        return ShardRouter(RoutingInfo(
            m_bits=meta["m_bits"], sig_k=meta["sig_k"],
            sig_seed=meta["sig_seed"], summaries=summaries,
        ))

    def test_sigma_low_zero_never_prunes(self):
        sets, queries = _disjoint_workload(seed=1)
        shard_sets = [sets[i::3] for i in range(3)]
        router = self._router(shard_sets)
        decision = router.route(queries, 0.0, [0, 1, 2])
        assert decision.pruned_pairs == 0
        assert decision.skipped_shards() == []

    def test_disjoint_clusters_fully_pruned(self):
        sets, queries = _disjoint_workload(seed=2, n_clusters=3)
        shard_sets = [sets[:20], sets[20:40], sets[40:]]  # one per cluster
        router = self._router(shard_sets)
        decision = router.route(queries, 0.5, [0, 1, 2])
        # Query c matches only shard c: 2 of 3 pairs pruned per query.
        assert decision.pruned_pairs == 2 * len(queries)
        for c, q in enumerate(queries):
            assert decision.kept[c].count(c) == 1

    def test_empty_query_prunes_shards_without_empty_sets(self):
        shard_sets = [[frozenset({1, 2})], [frozenset(), frozenset({3})]]
        router = self._router(shard_sets)
        decision = router.route([frozenset()], 0.5, [0, 1])
        assert decision.kept == {0: [], 1: [0]}

    def test_missing_summary_keeps_blind(self):
        sets, queries = _disjoint_workload(seed=3, n_clusters=2)
        router = self._router([sets[:20], sets[20:]])
        router.routing.summaries[1] = None  # simulate a foreign manifest
        decision = router.route(queries, 0.9, [0, 1])
        # No summary for shard 1: every query is kept for it, blind.
        assert decision.kept[1] == list(range(len(queries)))

    def test_sketch_prunes_at_least_as_much(self):
        sets, queries = _disjoint_workload(seed=4)
        shard_sets = [sets[:20], sets[20:40], sets[40:60], sets[60:]]
        router = self._router(shard_sets)
        safe = router.route(queries, 0.5, [0, 1, 2, 3])
        sketch = router.route(queries, 0.5, [0, 1, 2, 3], sketch=True)
        assert sketch.mode == "sketch" and safe.mode == "safe"
        assert sketch.pruned_pairs >= safe.pruned_pairs


# -- safe mode: bit-identity under routing ---------------------------------


class TestSafeModeBitIdentity:
    """``route="safe"`` must equal full fan-out bit for bit: answers,
    candidate sets and ordering -- the pruning only skips verification
    work that provably returns nothing."""

    pruned_counts: list = []  # aggregate evidence routing fired

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("n_shards", (2, 4, 8))
    def test_thread_backend_bit_identical(self, tmp_path, seed, n_shards):
        sets, queries = _workload(seed)
        plan, dist = _build_plan(sets, seed)
        want = _baseline(sets, plan, dist, queries, seed)
        build_sharded(
            sets, tmp_path / "s", n_shards=n_shards, partition="cluster",
            k=24, b=4, seed=seed, plan=plan, dist=dist,
        )
        sharded = open_sharded(tmp_path / "s")
        with ShardedExecutor(
            sharded, workers=2, backend="thread", route="full"
        ) as full_exec:
            full = full_exec.query_batch(queries, *RANGE)
        with ShardedExecutor(
            sharded, workers=2, backend="thread", route="safe"
        ) as safe_exec:
            assert safe_exec.route_active
            safe = safe_exec.query_batch(queries, *RANGE)
        _assert_bit_identical(safe, want)
        _assert_bit_identical(safe, full)
        stats = safe.exec_stats["route"]
        assert stats["mode"] == "safe" and stats["active"]
        # Safe mode dispatches every live shard regardless of pruning.
        assert stats["shards_skipped"] == 0
        self.pruned_counts.append(stats["subqueries_pruned"])

    def test_routing_actually_pruned_during_sweep(self):
        # The sweep above is only meaningful evidence if the router
        # pruned real work somewhere across the 36 builds.
        assert sum(self.pruned_counts) > 0

    @pytest.mark.parametrize("seed", (0, 7))
    @pytest.mark.parametrize("n_shards", (2, 8))
    def test_process_backend_bit_identical(self, tmp_path, seed, n_shards):
        sets, queries = _workload(seed)
        plan, dist = _build_plan(sets, seed)
        want = _baseline(sets, plan, dist, queries, seed)
        build_sharded(
            sets, tmp_path / "s", n_shards=n_shards, partition="cluster",
            k=24, b=4, seed=seed, plan=plan, dist=dist,
        )
        with ShardedExecutor(
            open_sharded(tmp_path / "s"), workers=1, backend="process",
            route="safe",
        ) as executor:
            got = executor.query_batch(queries, *RANGE)
        _assert_bit_identical(got, want)

    def test_degenerate_sigma_range_bit_identical(self, tmp_path):
        sets, queries = _workload(seed=3)
        plan, dist = _build_plan(sets, 3)
        index = SetSimilarityIndex.from_plan(sets, plan, dist, k=24, b=4,
                                             seed=3)
        build_sharded(sets, tmp_path / "s", n_shards=4, partition="cluster",
                      k=24, b=4, seed=3, plan=plan, dist=dist)
        sharded = open_sharded(tmp_path / "s")
        base_exec = ParallelExecutor(index.freeze(), workers=1)
        for lo, hi in ((0.5, 0.5), (1.0, 1.0), (0.0, 1.0), (0.0, 0.0)):
            want = base_exec.query_batch(queries, lo, hi)
            with ShardedExecutor(sharded, route="safe") as executor:
                got = executor.query_batch(queries, lo, hi)
            _assert_bit_identical(got, want)
            if lo == 0.0:
                # sigma_low = 0 keeps every pair: nothing to prune.
                assert got.exec_stats["route"]["subqueries_pruned"] == 0

    def test_scan_and_auto_fan_out_fully(self, tmp_path):
        sets, queries = _workload(seed=6)
        plan, dist = _build_plan(sets, 6)
        build_sharded(sets, tmp_path / "s", n_shards=3, k=24, b=4, seed=6,
                      plan=plan, dist=dist)
        with ShardedExecutor(open_sharded(tmp_path / "s"),
                             route="sketch") as executor:
            got = executor.query_batch(queries, *RANGE, strategy="scan")
            assert got.exec_stats["route"]["subqueries_pruned"] == 0
            assert "route" not in got.timings

    def test_explain_carries_routing_decision(self, tmp_path):
        sets, queries = _disjoint_workload(seed=8)
        build_sharded(sets, tmp_path / "s", n_shards=4, partition="cluster",
                      k=16, b=4, seed=8, budget=24, sample_pairs=400)
        with ShardedExecutor(open_sharded(tmp_path / "s"),
                             route="safe") as executor:
            got = executor.query_batch(queries, 0.5, 1.0, explain=True)
        assert got.trace.attrs["route"] == "safe"
        assert got.trace.attrs["route_mode"] == "safe"
        assert got.trace.attrs["route_pruned_subqueries"] > 0
        assert got.timings["route"] >= 0.0


# -- sketch mode -----------------------------------------------------------


class TestSketchMode:
    def test_disjoint_clusters_skip_shards_with_full_recall(self, tmp_path):
        sets, queries = _disjoint_workload(seed=11)
        # Query two of the four clusters: the other two clusters'
        # shards have no surviving query, so sketch mode undispatches
        # them outright.
        queries = queries[:2]
        build_sharded(sets, tmp_path / "s", n_shards=4, partition="cluster",
                      k=24, b=4, seed=11, budget=36, sample_pairs=800)
        sharded = open_sharded(tmp_path / "s")
        with ShardedExecutor(sharded, route="full") as executor:
            want = executor.query_batch(queries, 0.5, 1.0)
        with ShardedExecutor(sharded, route="sketch") as executor:
            got = executor.query_batch(queries, 0.5, 1.0)
        stats = got.exec_stats["route"]
        assert stats["mode"] == "sketch"
        assert stats["shards_skipped"] > 0  # genuinely undispatched
        want_pairs = {
            (r, sid) for r, res in enumerate(want.results)
            for sid, _ in res.answers
        }
        got_pairs = {
            (r, sid) for r, res in enumerate(got.results)
            for sid, _ in res.answers
        }
        recall = len(got_pairs & want_pairs) / max(1, len(want_pairs))
        assert want_pairs  # the workload must produce answers to measure
        assert recall == 1.0  # disjoint universes: pruning is provable

    def test_sketch_recall_measured_on_overlapping_clusters(self, tmp_path):
        sets, queries = _workload(seed=10, n_queries=8)
        plan, dist = _build_plan(sets, 10)
        build_sharded(sets, tmp_path / "s", n_shards=4, partition="cluster",
                      k=24, b=4, seed=10, plan=plan, dist=dist)
        sharded = open_sharded(tmp_path / "s")
        with ShardedExecutor(sharded, route="full") as executor:
            want = executor.query_batch(queries, *RANGE)
        with ShardedExecutor(sharded, route="sketch") as executor:
            got = executor.query_batch(queries, *RANGE)
        want_pairs = {
            (r, sid) for r, res in enumerate(want.results)
            for sid, _ in res.answers
        }
        got_pairs = {
            (r, sid) for r, res in enumerate(got.results)
            for sid, _ in res.answers
        }
        assert got_pairs <= want_pairs  # sketch can only lose answers
        recall = len(got_pairs & want_pairs) / max(1, len(want_pairs))
        assert recall >= 0.9  # measured, with 1/sqrt(k) UCB slack


# -- replication -----------------------------------------------------------


class TestReplication:
    def _build(self, tmp_path, seed=12):
        sets, queries = _disjoint_workload(seed=seed)
        build_sharded(sets, tmp_path / "s", n_shards=4, partition="cluster",
                      k=16, b=4, seed=seed, budget=24, sample_pairs=400)
        return tmp_path / "s", queries

    def test_replicate_roundtrip_and_answers_identical(self, tmp_path):
        path, queries = self._build(tmp_path)
        with ShardedExecutor(open_sharded(path), route="full") as executor:
            want = executor.query_batch(queries, 0.5, 1.0)
        manifest = replicate_shards(path, top=2, copies=2)
        assert sum(bool(e.get("replicas")) for e in manifest["shards"]) == 2
        sharded = open_sharded(path)
        assert sum(len(r) for r in sharded.replicas.values()) == 2
        assert verify_sharded(path)["n_replicas"] == 2
        with ShardedExecutor(sharded, route="full") as executor:
            got = executor.query_batch(queries, 0.5, 1.0)
        _assert_bit_identical(got, want)

    def test_replicate_idempotent(self, tmp_path):
        path, _ = self._build(tmp_path)
        first = replicate_shards(path, top=1, copies=3)
        second = replicate_shards(path, top=1, copies=3)
        assert first["shards"] == second["shards"]
        open_sharded(path, verify=True)  # replica arrays checksum clean

    def test_replica_dispatch_balanced(self, tmp_path):
        path, queries = self._build(tmp_path)
        replicate_shards(path, top=4, copies=2)  # every shard x2
        with ShardedExecutor(open_sharded(path), route="full") as executor:
            for _ in range(30):
                executor.query_batch(queries, 0.5, 1.0)
            counts = executor.replica_dispatch_counts()
        assert set(counts) == {0, 1, 2, 3}
        for slots in counts.values():
            mean = sum(slots) / len(slots)
            assert max(slots) / mean <= 1.5  # the BENCH-ROUTE gate

    def test_drifted_replica_rejected(self, tmp_path):
        path, _ = self._build(tmp_path)
        replicate_shards(path, top=1, copies=2)
        manifest = json.loads((path / SHARD_MANIFEST_FILE).read_text())
        name = next(e["replicas"][0] for e in manifest["shards"]
                    if e.get("replicas"))
        replica_manifest = path / name / "manifest.json"
        replica_manifest.write_text(
            replica_manifest.read_text().replace("{", "{ ", 1)
        )
        with pytest.raises(ShardError, match="not identical"):
            open_sharded(path)

    def test_validation(self, tmp_path):
        path, _ = self._build(tmp_path)
        with pytest.raises(ValueError, match="top"):
            replicate_shards(path, top=0)
        with pytest.raises(ValueError, match="copies"):
            replicate_shards(path, copies=1)


# -- fallbacks and error paths ---------------------------------------------


class TestFallbacksAndErrors:
    def test_routing_disabled_build_falls_back_to_full(self, tmp_path):
        sets, queries = _workload(seed=5)
        plan, dist = _build_plan(sets, 5)
        want = _baseline(sets, plan, dist, queries, 5)
        build_sharded(sets, tmp_path / "s", n_shards=3, k=24, b=4, seed=5,
                      plan=plan, dist=dist, routing=False)
        sharded = open_sharded(tmp_path / "s")
        assert sharded.routing is None
        with ShardedExecutor(sharded, route="safe") as executor:
            assert not executor.route_active
            got = executor.query_batch(queries, *RANGE)
            assert got.exec_stats["route"]["active"] is False
        _assert_bit_identical(got, want)

    def test_v1_manifest_opens_and_fans_out(self, tmp_path):
        sets, queries = _workload(seed=7)
        plan, dist = _build_plan(sets, 7)
        want = _baseline(sets, plan, dist, queries, 7)
        build_sharded(sets, tmp_path / "s", n_shards=3, k=24, b=4, seed=7,
                      plan=plan, dist=dist)
        mpath = tmp_path / "s" / SHARD_MANIFEST_FILE
        manifest = json.loads(mpath.read_text())
        manifest["version"] = 1
        manifest.pop("routing")
        mpath.write_text(json.dumps(manifest))
        sharded = open_sharded(tmp_path / "s")
        assert sharded.manifest["version"] == 1
        assert sharded.routing is None
        with ShardedExecutor(sharded, route="sketch") as executor:
            assert not executor.route_active
            got = executor.query_batch(queries, *RANGE)
        _assert_bit_identical(got, want)

    def test_unsupported_version_rejected(self, tmp_path):
        sets, _ = _workload(seed=1, n_sets=30)
        build_sharded(sets, tmp_path / "s", n_shards=2, k=16, b=4, seed=1,
                      budget=12, sample_pairs=200)
        mpath = tmp_path / "s" / SHARD_MANIFEST_FILE
        manifest = json.loads(mpath.read_text())
        manifest["version"] = 99
        mpath.write_text(json.dumps(manifest))
        with pytest.raises(ShardError, match="version"):
            open_sharded(tmp_path / "s")

    def test_unknown_route_mode_rejected(self, tmp_path):
        sets, _ = _workload(seed=1, n_sets=30)
        build_sharded(sets, tmp_path / "s", n_shards=2, k=16, b=4, seed=1,
                      budget=12, sample_pairs=200)
        with pytest.raises(ValueError, match="route"):
            ShardedExecutor(open_sharded(tmp_path / "s"), route="fastest")

    def test_query_delegates_to_query_batch(self, tmp_path):
        sets, queries = _workload(seed=2)
        build_sharded(sets, tmp_path / "s", n_shards=2, k=24, b=4, seed=2,
                      budget=36, sample_pairs=1_500)
        with ShardedExecutor(open_sharded(tmp_path / "s"),
                             route="safe") as executor:
            batch = executor.query_batch([queries[0]], *RANGE)
            single = executor.query(queries[0], *RANGE)
        assert single.answers == batch.results[0].answers
        assert single.candidates == batch.results[0].candidates

    def test_closed_executor_raises(self, tmp_path):
        sets, queries = _workload(seed=1, n_sets=30)
        build_sharded(sets, tmp_path / "s", n_shards=2, k=16, b=4, seed=1,
                      budget=12, sample_pairs=200)
        executor = ShardedExecutor(open_sharded(tmp_path / "s"))
        executor.close()
        with pytest.raises(ShardError, match="closed"):
            executor.query_batch(queries, *RANGE)

    def test_dead_shard_surfaces_as_shard_error(self, tmp_path):
        sets, queries = _workload(seed=1, n_sets=30)
        build_sharded(sets, tmp_path / "s", n_shards=2, k=16, b=4, seed=1,
                      budget=12, sample_pairs=200)
        with ShardedExecutor(open_sharded(tmp_path / "s")) as executor:
            victim = max(executor._replica_execs)

            def boom(*args, **kwargs):
                raise RuntimeError("mmap torn away")

            executor._replica_execs[victim][0].query_batch = boom
            with pytest.raises(ShardError,
                               match=f"shard {victim} failed"):
                executor.query_batch(queries, *RANGE)
