"""Serving equivalence and robustness: the live server vs. the library.

The always-on server adds concurrency (many connections), framing (a
wire codec) and scheduling (micro-batch coalescing) on top of
``query_batch`` -- none of which may change a single answer.  The
equivalence suite pins that: for seeded workloads, answers returned
through a live :class:`repro.serve.server.QueryServer` -- under any
coalescing window, workers 1/2/4, thread and process backends -- are
bit-identical to a direct ``query_batch`` on the same snapshot,
including exact D_S similarity values and per-request answer ordering
(floats survive the JSON round trip exactly because ``json``
serializes via ``repr``).

The robustness half attacks the protocol: malformed JSON, invalid
requests, oversized lines, half-closed sockets, pipelining, slow
clients and overload must all produce *typed* errors (or correct
answers) and leave the server serving.  A regression test pins the
*removal* of the one-shot ``snapshot serve`` CLI invocation: old
command lines still parse but get an error pointing at this service.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.index import SetSimilarityIndex
from repro.data.generators import planted_clusters
from repro.serve import QueryServer, ServeConfig, protocol, run_loadgen

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    sets = planted_clusters(
        n_clusters=5, per_cluster=7, base_size=20, universe=1200,
        mutation_rate=0.2, seed=23,
    )
    index = SetSimilarityIndex.build(
        sets, budget=36, recall_target=0.8, k=24, b=4, seed=23,
        sample_pairs=2_000,
    )
    rng = np.random.default_rng(23)
    queries = [sets[int(rng.integers(len(sets)))] for _ in range(8)]
    queries.append(frozenset(int(x) for x in rng.integers(0, 1200, size=10)))
    queries.append(frozenset())
    path = tmp_path_factory.mktemp("serve") / "snapdir"
    index.save_snapshot(path)
    return index, queries, path


def run(coro):
    return asyncio.run(coro)


async def _serve_burst(path, queries, low, high, config, *, connections=6,
                       total=None, return_candidates=True):
    server = QueryServer(path, config)
    await server.start()
    try:
        result = await run_loadgen(
            "127.0.0.1", server.port, queries, low, high,
            connections=connections,
            total=total if total is not None else 3 * len(queries),
            return_candidates=return_candidates,
        )
    finally:
        server.request_drain()
        await server.drain()
    return result, server


def _assert_equivalent(result, direct, queries):
    """Every served answer matches the direct batch bit-for-bit."""
    assert not result.errors, result.errors
    assert set(result.answers) == set(range(len(queries)))
    for qidx, answers in result.answers.items():
        want = [(int(sid), float(sim)) for sid, sim in
                direct.results[qidx].answers]
        assert answers == want, f"query {qidx} diverged through the server"
    for qidx, candidates in result.candidates.items():
        want = sorted(int(s) for s in direct.results[qidx].candidates)
        assert candidates == want


# ---------------------------------------------------------------------------
# Equivalence: served == direct query_batch
# ---------------------------------------------------------------------------


class TestServingEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_thread_backend_workers(self, workload, workers):
        index, queries, path = workload
        direct = index.query_batch(queries, 0.4, 1.0)
        config = ServeConfig(workers=workers, max_batch=8, max_wait_ms=2.0)
        result, _ = run(_serve_burst(path, queries, 0.4, 1.0, config))
        _assert_equivalent(result, direct, queries)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_process_backend_workers(self, workload, workers):
        index, queries, path = workload
        direct = index.query_batch(queries, 0.4, 1.0)
        config = ServeConfig(
            workers=workers, backend="process", max_batch=8, max_wait_ms=2.0,
        )
        result, _ = run(_serve_burst(
            path, queries, 0.4, 1.0, config, total=2 * len(queries),
        ))
        _assert_equivalent(result, direct, queries)

    @pytest.mark.parametrize("max_batch,max_wait_ms,adaptive", [
        (1, 0.0, False),     # no coalescing at all
        (4, 0.5, False),     # tight window
        (64, 10.0, True),    # wide adaptive window
    ])
    def test_any_coalescing_window(self, workload, max_batch, max_wait_ms,
                                   adaptive):
        index, queries, path = workload
        direct = index.query_batch(queries, 0.3, 0.9)
        config = ServeConfig(
            max_batch=max_batch, max_wait_ms=max_wait_ms, adaptive=adaptive,
        )
        result, server = run(_serve_burst(path, queries, 0.3, 0.9, config))
        _assert_equivalent(result, direct, queries)
        stats = server.stats()
        assert max(
            stats["max_batch_size"], 1
        ) <= max_batch, "coalescer exceeded its batch cap"

    def test_mixed_ranges_coalesce_by_key(self, workload):
        """Requests with different (low, high) windows interleave on
        the same server and each comes back equivalent to its own
        direct batch."""
        index, queries, path = workload
        ranges = [(0.5, 1.0), (0.0, 0.4), (0.2, 0.8)]
        directs = {r: index.query_batch(queries, *r) for r in ranges}

        async def main():
            server = QueryServer(path, ServeConfig(max_batch=16, max_wait_ms=3.0))
            await server.start()
            try:
                results = await asyncio.gather(*[
                    run_loadgen(
                        "127.0.0.1", server.port, queries, lo, hi,
                        connections=3, total=2 * len(queries),
                    )
                    for lo, hi in ranges
                ])
            finally:
                server.request_drain()
                await server.drain()
            return results

        for (lo, hi), result in zip(ranges, run(main())):
            assert not result.errors
            for qidx, answers in result.answers.items():
                want = [(int(s), float(v)) for s, v in
                        directs[(lo, hi)].results[qidx].answers]
                assert answers == want

    def test_batches_actually_coalesce(self, workload):
        """Concurrent closed-loop clients produce multi-query batches
        (the whole point), visible in loadgen's observed batch sizes."""
        _, queries, path = workload
        config = ServeConfig(max_batch=32, max_wait_ms=5.0, adaptive=False)
        result, server = run(_serve_burst(
            path, queries, 0.4, 1.0, config, connections=8,
            total=8 * len(queries), return_candidates=False,
        ))
        assert max(result.batch_sizes) > 1
        assert server.stats()["batches"] < result.n_ok


# ---------------------------------------------------------------------------
# Protocol robustness: typed errors, the server keeps serving
# ---------------------------------------------------------------------------


async def _raw_session(port, payloads: list[bytes], n_responses: int,
                       *, close_write=False, timeout=10.0):
    """Write raw bytes, read n response lines, return parsed objects."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    for p in payloads:
        writer.write(p)
    await writer.drain()
    if close_write:
        writer.write_eof()
    out = []
    for _ in range(n_responses):
        line = await asyncio.wait_for(reader.readline(), timeout)
        assert line, "server closed before answering"
        out.append(json.loads(line))
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass
    return out


@pytest.fixture(scope="module")
def live_server(workload):
    """One long-lived server shared by the robustness tests -- which
    double as a check that none of the abuse kills it."""
    _, _, path = workload
    loop = asyncio.new_event_loop()
    server = QueryServer(path, ServeConfig(
        max_batch=8, max_wait_ms=1.0, max_line_bytes=4096,
    ))
    loop.run_until_complete(server.start())

    def call(coro):
        return loop.run_until_complete(coro)

    yield server, call
    server.request_drain()
    loop.run_until_complete(server.drain())
    loop.close()


def _query_line(rid, elements, low=0.4, high=1.0):
    return protocol.encode_request(rid, elements, low, high)


class TestProtocolRobustness:
    def test_malformed_json_is_typed_and_survivable(self, live_server, workload):
        server, call = live_server
        _, queries, _ = workload
        (bad, good) = call(_raw_session(server.port, [
            b"this is not json\n",
            _query_line(1, queries[0]),
        ], 2))
        by_id = {r.get("id"): r for r in (bad, good)}
        assert by_id[None]["ok"] is False
        assert by_id[None]["error"]["type"] == "bad_json"
        assert by_id[1]["ok"] is True

    @pytest.mark.parametrize("line,etype", [
        (b'[1,2,3]\n', "bad_request"),                          # not an object
        (b'{"op":"query","set":["a"]}\n', "bad_request"),        # missing id
        (b'{"id":1,"op":"nope"}\n', "bad_request"),              # unknown op
        (b'{"id":1,"set":"abc"}\n', "bad_request"),              # set not a list
        (b'{"id":1,"set":[["x"]]}\n', "bad_request"),            # nested element
        (b'{"id":1,"set":[],"low":0.9,"high":0.1}\n', "bad_request"),
        (b'{"id":1,"set":[],"low":"x"}\n', "bad_request"),
        (b'{"id":1,"set":[],"strategy":"magic"}\n', "bad_request"),
    ])
    def test_invalid_requests_are_typed(self, live_server, line, etype):
        server, call = live_server
        (resp,) = call(_raw_session(server.port, [line], 1))
        assert resp["ok"] is False
        assert resp["error"]["type"] == etype

    def test_bad_request_echoes_id_when_salvageable(self, live_server):
        server, call = live_server
        (resp,) = call(_raw_session(
            server.port, [b'{"id":"req-9","set":"oops"}\n'], 1,
        ))
        assert resp["id"] == "req-9"
        assert resp["error"]["type"] == "bad_request"

    def test_oversized_line_resynchronizes(self, live_server, workload):
        """A line beyond max_line_bytes gets a typed too_large error
        and the *next* line on the same connection is served normally."""
        server, call = live_server
        _, queries, _ = workload
        huge = b'{"id":1,"set":[' + b'"x",' * 5000 + b'"x"]}\n'
        assert len(huge) > server.config.max_line_bytes
        (err, ok) = call(_raw_session(server.port, [
            huge, _query_line(2, queries[1]),
        ], 2))
        assert err["ok"] is False
        assert err["error"]["type"] == "too_large"
        assert ok["id"] == 2 and ok["ok"] is True

    def test_half_closed_socket_still_gets_answers(self, live_server, workload):
        """A client that shuts down its write side after sending still
        receives every response (EOF is not an abort)."""
        server, call = live_server
        _, queries, _ = workload
        responses = call(_raw_session(
            server.port,
            [_query_line(i, queries[i]) for i in range(3)],
            3, close_write=True,
        ))
        assert sorted(r["id"] for r in responses) == [0, 1, 2]
        assert all(r["ok"] for r in responses)

    def test_pipelined_requests_demultiplex_by_id(self, live_server, workload):
        server, call = live_server
        index, queries, _ = workload
        n = len(queries)
        responses = call(_raw_session(
            server.port,
            [_query_line(i, queries[i]) for i in range(n)],
            n,
        ))
        direct = index.query_batch(queries, 0.4, 1.0)
        got = {r["id"]: r for r in responses}
        for i in range(n):
            want = [[int(s), float(v)] for s, v in direct.results[i].answers]
            assert got[i]["answers"] == want

    def test_ping_and_stats_ops(self, live_server):
        server, call = live_server
        (pong, stats) = call(_raw_session(server.port, [
            b'{"id":"p","op":"ping"}\n',
            b'{"id":"s","op":"stats"}\n',
        ], 2))
        by_id = {r["id"]: r for r in (pong, stats)}
        assert by_id["p"]["pong"] is True
        assert by_id["s"]["stats"]["n_sets"] > 0
        assert by_id["s"]["stats"]["max_batch"] == 8

    def test_slow_client_does_not_stall_others(self, live_server, workload):
        """A client that sends a request but never reads its response
        must not block other clients' answers (per-connection writes)."""
        server, call = live_server
        _, queries, _ = workload

        async def main():
            slow_r, slow_w = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            # Pipelines many requests and never reads a byte.
            for i in range(64):
                slow_w.write(_query_line(1000 + i, queries[i % len(queries)]))
            await slow_w.drain()
            # Meanwhile a well-behaved client must be served promptly.
            fast = await asyncio.wait_for(
                _raw_session(server.port, [_query_line(7, queries[0])], 1),
                timeout=5.0,
            )
            slow_w.close()
            try:
                await slow_w.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            return fast

        (resp,) = call(main())
        assert resp["id"] == 7 and resp["ok"] is True

    def test_empty_lines_are_ignored(self, live_server, workload):
        server, call = live_server
        _, queries, _ = workload
        (resp,) = call(_raw_session(server.port, [
            b"\n", b"  \n", _query_line(5, queries[2]),
        ], 1))
        assert resp["id"] == 5 and resp["ok"] is True


class TestOverloadAndDrain:
    def test_overload_is_explicit_and_recoverable(self, workload):
        """With a tiny admission bound and a gated dispatcher, excess
        requests get typed 'overloaded' responses -- and once the gate
        lifts, the server serves normally again."""
        _, queries, path = workload

        async def main():
            server = QueryServer(path, ServeConfig(
                max_batch=1, max_wait_ms=0.0, max_pending=2,
            ))
            await server.start()
            gate = asyncio.Event()
            real_dispatch = server._dispatch_batch

            async def gated(key, payloads):
                await gate.wait()
                return await real_dispatch(key, payloads)

            server._coalescer._dispatch = gated
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                for i in range(8):
                    writer.write(_query_line(i, queries[i % len(queries)]))
                await writer.drain()
                gate.set()
                responses = [
                    json.loads(await asyncio.wait_for(reader.readline(), 10))
                    for _ in range(8)
                ]
                writer.close()
                overloaded = [r for r in responses if not r["ok"]]
                served = [r for r in responses if r["ok"]]
                assert all(
                    r["error"]["type"] == "overloaded" for r in overloaded
                )
                assert overloaded, "admission bound never tripped"
                assert served, "server stopped serving entirely"
                # ...and it still answers a fresh request afterwards.
                (after,) = await _raw_session(
                    server.port, [_query_line(99, queries[0])], 1
                )
                assert after["ok"] is True
                stats = server.stats()
                assert stats["rejected_overload"] == len(overloaded)
            finally:
                server.request_drain()
                await server.drain()

        run(main())

    def test_drain_answers_pending_then_refuses(self, workload):
        index, queries, path = workload
        direct = index.query_batch(queries, 0.4, 1.0)

        async def main():
            server = QueryServer(path, ServeConfig(
                max_batch=64, max_wait_ms=500.0, adaptive=False,
            ))
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            n = len(queries)
            for i in range(n):
                writer.write(_query_line(i, queries[i]))
            await writer.drain()
            await asyncio.sleep(0.05)  # admitted, parked in the window
            server.request_drain()
            await server.drain()  # must flush, not abandon, the window
            responses = []
            while True:
                line = await reader.readline()
                if not line:
                    break
                responses.append(json.loads(line))
            got = {r["id"]: r for r in responses}
            assert set(got) == set(range(n))
            for i in range(n):
                want = [[int(s), float(v)] for s, v in direct.results[i].answers]
                assert got[i]["answers"] == want
            # The listener is gone: new connections are refused.
            with pytest.raises((ConnectionRefusedError, OSError)):
                await asyncio.open_connection("127.0.0.1", server.port)

        run(main())

    def test_serve_metrics_are_recorded(self, workload):
        from repro.obs import metrics

        _, queries, path = workload
        before = metrics.counter("serve.requests").value
        config = ServeConfig(max_batch=8, max_wait_ms=1.0)
        result, server = run(_serve_burst(
            path, queries, 0.4, 1.0, config, return_candidates=False,
        ))
        assert metrics.counter("serve.requests").value - before == result.n_sent
        assert metrics.hdr("serve.request_latency_ms").count > 0
        assert metrics.hdr("serve.queue_wait_ms").count > 0
        assert metrics.histogram("serve.batch_size").count >= server.stats()["batches"]


# ---------------------------------------------------------------------------
# Removed one-shot path: old invocations get a pointer, never answers
# ---------------------------------------------------------------------------


class TestOneShotSnapshotServeRemoved:
    def test_old_invocation_errors_with_pointer(self, workload, capsys):
        """`snapshot serve` is gone: the old flags still parse, but the
        command errors (rc 2) and points at the replacement service."""
        _, queries, path = workload
        probe = " ".join(str(e) for e in sorted(queries[0]))
        rc = cli_main([
            "snapshot", "serve", "--path", str(path),
            "--set", probe, "--low", "0.4",
        ])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.out == ""  # no answers from the removed path
        assert "removed" in captured.err
        assert "repro serve --snapshot" in captured.err
        assert "loadgen" in captured.err

    def test_json_lines_flag_also_errors(self, workload, capsys):
        _, _, path = workload
        rc = cli_main([
            "snapshot", "serve", "--path", str(path),
            "--set", "a b", "--json-lines",
        ])
        captured = capsys.readouterr()
        assert rc == 2
        assert "removed" in captured.err


# ---------------------------------------------------------------------------
# Codec round trips
# ---------------------------------------------------------------------------


class TestCodec:
    def test_float_exactness_round_trip(self):
        """Similarities must survive JSON bit-for-bit -- the foundation
        of the serving equivalence gate."""
        values = [1 / 3, 2 / 7, 0.1 + 0.2, 5 / 6, 1e-17, 0.9999999999999999]
        answer = protocol.QueryAnswer(
            answers=[(i, v) for i, v in enumerate(values)],
            n_candidates=len(values), batch_size=1,
        )
        line = protocol.encode_line(protocol.response_ok("x", answer))
        back = protocol.decode_response(line)
        assert [v for _, v in back["answers"]] == values  # == , not approx

    def test_request_round_trip(self):
        line = protocol.encode_request(
            "rid-1", frozenset({"a", "b"}), 0.25, 0.75, "scan",
            return_candidates=True,
        )
        req = protocol.decode_request(line)
        assert req.id == "rid-1"
        assert req.elements == frozenset({"a", "b"})
        assert (req.low, req.high, req.strategy) == (0.25, 0.75, "scan")
        assert req.return_candidates is True
        assert req.key == (0.25, 0.75, "scan")

    def test_int_elements_survive(self):
        req = protocol.decode_request(b'{"id":1,"set":[3,1,2]}')
        assert req.elements == frozenset({1, 2, 3})

    def test_too_large_guard(self):
        with pytest.raises(protocol.ProtocolError) as exc:
            protocol.decode_request(b"x" * 100, max_bytes=50)
        assert exc.value.etype == "too_large"
