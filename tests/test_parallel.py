"""Parallel executor equivalence: bit-identical to sequential at any width.

The parallel engine (:class:`repro.exec.ParallelExecutor` over a
:meth:`~repro.core.index.SetSimilarityIndex.freeze` snapshot) is a
*scheduling* change only.  For every workload it must return exactly
the answers, candidate sets, simulated page counts and CPU accounting
of the sequential ``query_batch`` -- at 1, 2, 4 or 8 workers alike.
These tests pin that contract over randomized workloads and all three
execution strategies, plus the thread-safety of the sharded module
counters the engine leans on.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.index import FrozenIndexError, SetSimilarityIndex
from repro.data.generators import planted_clusters, uniform_random_sets
from repro.exec import ParallelExecutor
from repro.obs import metrics

#: Randomized-equivalence coverage: one workload per seed (>= 12 per
#: the acceptance bar), each checked at every worker count.
SEEDS = range(12)

WORKER_COUNTS = (1, 2, 4, 8)

#: Ranges cycled per seed so every plan family (sfi, dfi, complements,
#: differences, pivot union, full collection) comes up.
RANGES = [(0.5, 1.0), (0.0, 0.4), (0.2, 0.8), (0.0, 1.0), (0.7, 0.9), (0.3, 0.6)]

STRATEGIES = ("index", "scan", "auto")


def _build_workload(seed: int):
    """A small index plus a mixed query batch, all derived from ``seed``."""
    rng = np.random.default_rng(seed)
    if seed % 2:
        sets = planted_clusters(
            n_clusters=5,
            per_cluster=7,
            base_size=20,
            universe=1200,
            mutation_rate=0.2,
            seed=seed,
        )
    else:
        sets = uniform_random_sets(
            n_sets=40, set_size=14, universe=700, seed=seed
        )
    index = SetSimilarityIndex.build(
        sets, budget=36, recall_target=0.8, k=24, b=4, seed=seed,
        sample_pairs=2_000,
    )
    queries = []
    for _ in range(5):
        queries.append(sets[int(rng.integers(len(sets)))])
    for _ in range(3):
        base = set(sets[int(rng.integers(len(sets)))])
        for element in list(base)[: len(base) // 3]:
            base.discard(element)
        base.add(10_000 + int(rng.integers(1000)))
        queries.append(frozenset(base))
    queries.append(frozenset(int(x) for x in rng.integers(0, 700, size=8)))
    queries.append(frozenset())  # empty query rides along
    lo, hi = RANGES[seed % len(RANGES)]
    return index, queries, lo, hi


def _assert_batches_identical(got, want):
    """Answers, candidates, and every simulated cost, bit for bit."""
    assert got.n_queries == want.n_queries
    for g, w in zip(got.results, want.results):
        assert g.answers == w.answers
        assert g.candidates == w.candidates
        assert g.n_candidates == w.n_candidates
        assert g.n_verified == w.n_verified
    assert got.io == want.io
    assert got.io_time == want.io_time  # == not approx: bit-identical
    assert got.cpu_time == want.cpu_time
    assert got.pages_saved == want.pages_saved
    assert got.fetches_saved == want.fetches_saved


@pytest.mark.parametrize("seed", SEEDS)
def test_parallel_matches_sequential(seed):
    """Every worker count reproduces sequential ``query_batch`` exactly."""
    index, queries, lo, hi = _build_workload(seed)
    strategy = STRATEGIES[seed % len(STRATEGIES)]

    before = index.io.snapshot()
    sequential = index.query_batch(queries, lo, hi, strategy=strategy)
    seq_delta = index.io.snapshot() - before

    snapshot = index.freeze()
    try:
        for workers in WORKER_COUNTS:
            with ParallelExecutor(snapshot, workers=workers) as ex:
                before = index.io.snapshot()
                parallel = ex.query_batch(queries, lo, hi, strategy=strategy)
                par_delta = index.io.snapshot() - before
            _assert_batches_identical(parallel, sequential)
            assert par_delta == seq_delta
            stats = parallel.exec_stats
            assert stats is not None and stats["workers"] == workers
            assert stats["strategy"] in ("index", "scan")
    finally:
        index.thaw()


@pytest.mark.parametrize("seed", [1, 4])
def test_parallel_explain_matches_sequential_summaries(seed):
    """Traced runs produce the same per-filter EXPLAIN summaries."""
    from repro.obs.explain import filter_summaries

    index, queries, lo, hi = _build_workload(seed)
    sequential = index.query_batch(queries, lo, hi, explain=True)
    snapshot = index.freeze()
    try:
        with ParallelExecutor(snapshot, workers=4) as ex:
            parallel = ex.query_batch(queries, lo, hi, explain=True)
    finally:
        index.thaw()
    _assert_batches_identical(parallel, sequential)

    seq_sum = filter_summaries(sequential.trace)
    par_sum = filter_summaries(parallel.trace)
    assert len(par_sum) == len(seq_sum)
    for p, s in zip(par_sum, seq_sum):
        for key in ("kind", "tables_probed", "buckets_read",
                    "candidates", "pages_saved"):
            assert p.get(key) == s.get(key), key
    # Worker activity is surfaced in the parallel trace.
    names = set()

    def walk(span):
        names.add(span.name)
        for child in span.children:
            walk(child)

    walk(parallel.trace)
    assert "parallel_exec" in names
    assert "worker" in names
    assert "shard_merge" in names


def test_parallel_wrappers_and_validation():
    index, queries, _, _ = _build_workload(2)
    snapshot = index.freeze()
    try:
        with ParallelExecutor(snapshot, workers=2) as ex:
            above = ex.query_above_batch(queries, 0.6)
            below = ex.query_below_batch(queries, 0.3)
            with pytest.raises(ValueError):
                ex.query_batch(queries, 0.9, 0.4)
            with pytest.raises(ValueError):
                ex.query_batch(queries, -0.1, 0.5)
            with pytest.raises(ValueError):
                ex.query_batch(queries, 0.2, 0.8, strategy="bogus")
    finally:
        index.thaw()
    _assert_batches_identical(above, index.query_batch(queries, 0.6, 1.0))
    _assert_batches_identical(below, index.query_batch(queries, 0.0, 0.3))


def test_parallel_empty_batch():
    index, _, _, _ = _build_workload(3)
    snapshot = index.freeze()
    try:
        with ParallelExecutor(snapshot, workers=4) as ex:
            empty = ex.query_batch([], 0.5, 1.0)
    finally:
        index.thaw()
    assert empty.n_queries == 0
    _assert_batches_identical(empty, index.query_batch([], 0.5, 1.0))


def test_executor_rejects_nonpositive_workers():
    index, _, _, _ = _build_workload(0)
    snapshot = index.freeze()
    try:
        with pytest.raises(ValueError):
            ParallelExecutor(snapshot, workers=0)
    finally:
        index.thaw()


def test_mutation_during_parallel_service_raises():
    """A frozen index refuses writes while an executor serves it."""
    index, queries, lo, hi = _build_workload(5)
    snapshot = index.freeze()
    try:
        with ParallelExecutor(snapshot, workers=2) as ex:
            ex.query_batch(queries, lo, hi)
            with pytest.raises(FrozenIndexError):
                index.insert(frozenset({"x", "y"}))
            with pytest.raises(FrozenIndexError):
                index.delete(next(iter(index.sids)))
    finally:
        index.thaw()
    # Thawed: mutation works again and queries see it.
    sid = index.insert(frozenset({"freshly", "inserted"}))
    assert sid in index.sids


# -- sharded counter thread safety (satellite) -------------------------


def test_sharded_counters_exact_under_threads():
    """N threads hammering ``inc``/``shard()`` lose no increments."""
    counter = metrics.counter("test.parallel.hammer")
    counter._reset()
    n_threads, n_incs = 8, 5_000
    barrier = threading.Barrier(n_threads)

    def hammer():
        barrier.wait()
        shard = counter.shard()
        for i in range(n_incs):
            if i % 3 == 0:
                counter.inc(2)
            else:
                shard.count += 1

    threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    per_thread = 2 * ((n_incs + 2) // 3) + (n_incs - (n_incs + 2) // 3)
    assert counter.value == n_threads * per_thread


def test_sharded_counter_local_value_is_thread_local():
    counter = metrics.counter("test.parallel.local")
    counter._reset()
    counter.inc(7)
    seen = {}

    def other():
        seen["before"] = counter.local_value
        counter.inc(5)
        seen["after"] = counter.local_value

    t = threading.Thread(target=other)
    t.start()
    t.join()
    assert seen == {"before": 0, "after": 5}
    assert counter.local_value == 7
    assert counter.value == 12


def test_module_counters_consistent_under_concurrent_probes():
    """Live probe counters aggregate exactly across worker threads."""
    index, queries, lo, hi = _build_workload(7)
    probes = metrics.counter("hashtable.probes")
    pages = metrics.counter("hashtable.probe_pages")
    base_probes, base_pages = probes.value, pages.value

    sequential = index.query_batch(queries, lo, hi)
    seq_probes = probes.value - base_probes
    seq_pages = pages.value - base_pages

    snapshot = index.freeze()
    try:
        with ParallelExecutor(snapshot, workers=8) as ex:
            parallel = ex.query_batch(queries, lo, hi)
    finally:
        index.thaw()
    _assert_batches_identical(parallel, sequential)
    assert probes.value - base_probes == 2 * seq_probes
    assert pages.value - base_pages == 2 * seq_pages
