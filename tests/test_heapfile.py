"""Unit tests for the heap file."""

from repro.storage.heapfile import HeapFile
from repro.storage.iomodel import IOCostModel
from repro.storage.pager import PageManager


def _heap(record_pages=None):
    pager = PageManager(IOCostModel())
    return HeapFile(pager, record_pages=record_pages), pager


class TestHeapFile:
    def test_append_get_roundtrip(self):
        heap, _ = _heap()
        rid = heap.append({"payload": 1})
        assert heap.get(rid) == {"payload": 1}

    def test_record_count(self):
        heap, _ = _heap()
        for i in range(5):
            heap.append(i)
        assert heap.n_records == 5
        assert heap.n_pages == 5

    def test_scan_order(self):
        heap, _ = _heap()
        rids = [heap.append(f"r{i}") for i in range(4)]
        scanned = list(heap.scan())
        assert [r for r, _ in scanned] == rids
        assert [v for _, v in scanned] == ["r0", "r1", "r2", "r3"]

    def test_scan_is_sequential_io(self):
        heap, pager = _heap()
        for i in range(6):
            heap.append(i)
        before = pager.io.snapshot()
        list(heap.scan())
        delta = pager.io.snapshot() - before
        assert delta.sequential_reads == 6
        assert delta.random_reads == 0

    def test_get_is_random_io(self):
        heap, pager = _heap()
        rid = heap.append("x")
        before = pager.io.snapshot()
        heap.get(rid)
        delta = pager.io.snapshot() - before
        assert delta.random_reads == 1

    def test_multi_page_records(self):
        heap, pager = _heap(record_pages=lambda r: r["pages"])
        rid = heap.append({"pages": 3})
        assert rid.n_pages == 3
        assert heap.n_pages == 3
        before = pager.io.snapshot()
        heap.get(rid)
        delta = pager.io.snapshot() - before
        assert delta.random_reads == 1
        assert delta.sequential_reads == 2

    def test_multi_page_scan_charges_span(self):
        heap, pager = _heap(record_pages=lambda r: 2)
        heap.append("a")
        heap.append("b")
        before = pager.io.snapshot()
        list(heap.scan())
        delta = pager.io.snapshot() - before
        assert delta.sequential_reads == 4

    def test_record_pages_floor_one(self):
        heap, _ = _heap(record_pages=lambda r: 0)
        rid = heap.append("tiny")
        assert rid.n_pages == 1

    def test_interleaved_spans_keep_addresses(self):
        heap, _ = _heap(record_pages=lambda r: len(r))
        rids = [heap.append("ab"), heap.append("x"), heap.append("wxyz")]
        assert heap.get(rids[0]) == "ab"
        assert heap.get(rids[1]) == "x"
        assert heap.get(rids[2]) == "wxyz"
        assert heap.n_pages == 2 + 1 + 4
