"""Unit tests for Hamming distance/similarity (Definitions 3, 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hamming.bitvector import complement, pack_bits
from repro.hamming.distance import (
    hamming_distance,
    hamming_distance_many,
    hamming_similarity,
    hamming_similarity_many,
)


def _pair(n):
    return st.tuples(
        st.lists(st.integers(0, 1), min_size=n, max_size=n),
        st.lists(st.integers(0, 1), min_size=n, max_size=n),
    )


pairs = st.integers(min_value=1, max_value=200).flatmap(_pair)


class TestHammingDistance:
    def test_identical(self):
        v = pack_bits(np.array([1, 0, 1, 1], dtype=np.uint8))
        assert hamming_distance(v, v) == 0

    def test_known_value(self):
        a = pack_bits(np.array([1, 0, 1, 0], dtype=np.uint8))
        b = pack_bits(np.array([0, 0, 1, 1], dtype=np.uint8))
        assert hamming_distance(a, b) == 2

    def test_shape_mismatch(self):
        a = pack_bits(np.zeros(64, dtype=np.uint8))
        b = pack_bits(np.zeros(128, dtype=np.uint8))
        with pytest.raises(ValueError):
            hamming_distance(a, b)

    def test_complement_distance_is_n(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1], dtype=np.uint8)
        v = pack_bits(bits)
        assert hamming_distance(v, complement(v, 7)) == 7

    @given(pairs)
    @settings(max_examples=50)
    def test_matches_naive(self, pair):
        a_bits, b_bits = pair
        a = pack_bits(np.array(a_bits, dtype=np.uint8))
        b = pack_bits(np.array(b_bits, dtype=np.uint8))
        naive = sum(x != y for x, y in zip(a_bits, b_bits))
        assert hamming_distance(a, b) == naive

    @given(pairs)
    @settings(max_examples=30)
    def test_symmetry(self, pair):
        a_bits, b_bits = pair
        a = pack_bits(np.array(a_bits, dtype=np.uint8))
        b = pack_bits(np.array(b_bits, dtype=np.uint8))
        assert hamming_distance(a, b) == hamming_distance(b, a)


class TestHammingDistanceMany:
    def test_rows(self):
        matrix = pack_bits(
            np.array([[1, 0, 1], [0, 0, 0], [1, 1, 1]], dtype=np.uint8)
        )
        query = pack_bits(np.array([1, 1, 1], dtype=np.uint8))
        assert hamming_distance_many(matrix, query).tolist() == [1, 3, 0]

    def test_empty_matrix(self):
        matrix = np.empty((0, 1), dtype=np.uint64)
        query = np.zeros(1, dtype=np.uint64)
        assert hamming_distance_many(matrix, query).shape == (0,)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            hamming_distance_many(np.zeros(3, dtype=np.uint64), np.zeros(3, dtype=np.uint64))


class TestHammingSimilarity:
    def test_identical_is_one(self):
        v = pack_bits(np.array([1, 0, 1], dtype=np.uint8))
        assert hamming_similarity(v, v, 3) == 1.0

    def test_complement_is_zero(self):
        v = pack_bits(np.array([1, 0, 1, 0, 1], dtype=np.uint8))
        assert hamming_similarity(v, complement(v, 5), 5) == 0.0

    def test_half(self):
        a = pack_bits(np.array([1, 1, 0, 0], dtype=np.uint8))
        b = pack_bits(np.array([1, 0, 1, 0], dtype=np.uint8))
        assert hamming_similarity(a, b, 4) == 0.5

    def test_invalid_n_bits(self):
        v = pack_bits(np.array([1], dtype=np.uint8))
        with pytest.raises(ValueError):
            hamming_similarity(v, v, 0)

    def test_many_matches_scalar(self):
        bits = np.array([[1, 0, 1, 1], [0, 0, 0, 0]], dtype=np.uint8)
        matrix = pack_bits(bits)
        query = pack_bits(np.array([1, 1, 1, 1], dtype=np.uint8))
        many = hamming_similarity_many(matrix, query, 4)
        singles = [hamming_similarity(matrix[i], query, 4) for i in range(2)]
        assert many.tolist() == singles

    @given(pairs)
    @settings(max_examples=30)
    def test_bounds(self, pair):
        a_bits, b_bits = pair
        a = pack_bits(np.array(a_bits, dtype=np.uint8))
        b = pack_bits(np.array(b_bits, dtype=np.uint8))
        s = hamming_similarity(a, b, len(a_bits))
        assert 0.0 <= s <= 1.0

    @given(pairs)
    @settings(max_examples=30)
    def test_definition_4(self, pair):
        """S_H = 1 - d_H / t exactly."""
        a_bits, b_bits = pair
        t = len(a_bits)
        a = pack_bits(np.array(a_bits, dtype=np.uint8))
        b = pack_bits(np.array(b_bits, dtype=np.uint8))
        assert hamming_similarity(a, b, t) == pytest.approx(
            1.0 - hamming_distance(a, b) / t
        )
