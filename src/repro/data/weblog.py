"""Synthetic HTTP-log set collections (surrogates for Set1/Set2).

The paper parsed web-server logs and recorded, per unique IP address,
the set of log strings (pages) requested.  Two structural facts about
such data drive all of its experiments:

1. *Zipf page popularity.*  Every visitor hits the hot pages, so even
   unrelated visitors share a little -- the pairwise similarity
   distribution has broad low-similarity mass rather than a point mass
   at zero.
2. *Shared browsing paths.*  Visitors following the same navigation
   template (the schedule pages during the Olympics, the same product
   area on a corporate site) produce a decaying tail of genuinely
   similar pairs, all the way up to near-duplicates (the same user
   behind two IPs).

``make_weblog_collection`` reproduces both: each synthetic visitor
draws a browsing template (a page subset kept with per-page
probability) and tops it up with personal Zipf-popular draws.  The
resulting ``D_S`` decays sharply with similarity -- the shape the paper
reports for its datasets -- while keeping usable mass across [0, 1].

``make_set1`` / ``make_set2`` are presets tuned to the two datasets'
reported statistics (Set1: fewer, hotter pages and tighter templates;
Set2: a broader universe with looser sessions), scaled by ``n_sets``.
"""

from __future__ import annotations

import numpy as np


def _zipf_probabilities(n_urls: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n_urls + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def make_weblog_collection(
    n_sets: int = 2000,
    n_urls: int = 20000,
    zipf_exponent: float = 1.2,
    n_templates: int | None = None,
    template_size: int = 60,
    template_keep: float | tuple[float, float] = (0.55, 0.9),
    personal_pages: int = 35,
    seed: int = 0,
) -> list[frozenset[int]]:
    """Generate a synthetic web-log set collection.

    Parameters
    ----------
    n_sets:
        Number of visitors (sets) to generate.
    n_urls:
        Size of the page universe; elements are integer page ids.
    zipf_exponent:
        Popularity skew of personal page draws.
    n_templates:
        Number of shared browsing templates; visitors are assigned to
        templates uniformly, so ``n_sets / n_templates`` visitors share
        each path.  Defaults to ``max(4, min(40, n_sets // 20))``: a
        site has a *fixed* population of hot navigation paths, so as
        traffic grows each path gains visitors and the similar tail
        keeps a constant ~``1 / n_templates`` share of the pair mass
        (with per-visitor template membership, ``t * C(n/t, 2)`` of
        ``C(n, 2)`` pairs are intra-template).
    template_size / template_keep:
        Pages per template and the probability a visitor retains each
        template page (lower keep = looser sessions = lower intra-
        template similarity).  ``template_keep`` may be a single float
        or a ``(low, high)`` range: with a range, each template draws
        its own keep rate, so intra-template similarities spread over
        a band instead of clustering at one value -- the heterogeneity
        real logs show (some navigation paths are rigid, others loose),
        and what gives the optimizer distinct cut points to buy with a
        bigger budget.
    personal_pages:
        Zipf-popular pages added per visitor on top of the template.

    Returns
    -------
    A list of frozensets of page ids.  Every set is non-empty.
    """
    if n_sets <= 0:
        raise ValueError(f"n_sets must be positive, got {n_sets}")
    if n_templates is None:
        n_templates = max(4, min(40, n_sets // 20))
    rng = np.random.default_rng(seed)
    probabilities = _zipf_probabilities(n_urls, zipf_exponent)
    templates = [
        rng.choice(n_urls, size=template_size, replace=False, p=None)
        for _ in range(n_templates)
    ]
    if isinstance(template_keep, tuple):
        keep_low, keep_high = template_keep
        keeps = rng.uniform(keep_low, keep_high, size=n_templates)
    else:
        keeps = np.full(n_templates, float(template_keep))
    sets: list[frozenset[int]] = []
    for _ in range(n_sets):
        which = int(rng.integers(0, n_templates))
        template = templates[which]
        kept = template[rng.random(template.size) < keeps[which]]
        personal = rng.choice(n_urls, size=personal_pages, replace=True, p=probabilities)
        pages = frozenset(kept.tolist()) | frozenset(personal.tolist())
        if not pages:
            pages = frozenset({int(rng.integers(0, n_urls))})
        sets.append(pages)
    return sets


def make_set1(n_sets: int = 2000, seed: int = 1) -> list[frozenset[int]]:
    """Surrogate for the paper's Set1 (Nagano Olympics logs).

    An event site: a compact, extremely hot core (results/schedule
    pages everybody reloads) and tight browsing templates -- higher
    cross-visitor overlap, more near-duplicate pairs.
    """
    return make_weblog_collection(
        n_sets=n_sets,
        n_urls=8000,
        zipf_exponent=1.35,
        n_templates=max(4, min(36, n_sets // 25)),
        template_size=50,
        template_keep=(0.65, 0.95),
        personal_pages=30,
        seed=seed,
    )


def make_set2(n_sets: int = 2000, seed: int = 2) -> list[frozenset[int]]:
    """Surrogate for the paper's Set2 (large-corporation site logs).

    A broad site: a bigger universe, flatter popularity and looser
    sessions -- lower typical similarity, larger sets.
    """
    return make_weblog_collection(
        n_sets=n_sets,
        n_urls=30000,
        zipf_exponent=1.15,
        n_templates=max(4, min(48, n_sets // 18)),
        template_size=75,
        template_keep=(0.5, 0.85),
        personal_pages=45,
        seed=seed,
    )
