"""Nestable tracing spans with I/O-delta accounting.

A *trace* is a tree of :class:`Span` objects recording, per pipeline
stage, wall-clock duration, the :class:`~repro.storage.iomodel.IOStats`
delta observed while the span was open, and arbitrary key/value
attributes (``s_star``, tables probed, candidates contributed, ...).

Usage at an instrumentation site::

    with trace.span("sfi_probe", s_star=0.8, l=32) as sp:
        sids = ...
        sp.set(candidates=len(sids))

and at a trace boundary (one query)::

    with trace.capture("query", io=index.io) as root:
        ...
    if root is not None:
        print(render_trace(root))

Design constraints, in order:

1. **Free when off.**  ``span()`` is called on every probe of every
   query; with no active capture it returns a shared immutable no-op
   span after one thread-local attribute lookup.  Instrumentation can
   therefore live in hot paths unconditionally.
2. **Thread-local.**  The active trace is per-thread state, so
   concurrent queries on different threads trace independently.
3. **Zero dependencies.**  Pure stdlib; the only repro import is the
   ``IOStats`` type for snapshots.

Captures nest: a ``capture()`` inside an active trace does not start a
new trace but opens a child span in the enclosing one and yields it,
so a traced harness wrapping ``index.query`` (which captures its own
root) produces one coherent tree.

Attribute keys starting with ``_`` are in-process annotations (e.g.
the raw candidate sid set a later stage intersects against) and are
excluded from :meth:`Span.to_dict` serialization.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Iterator

from repro.storage.iomodel import IOCostModel, IOStats

_state = threading.local()
_enabled = False


def set_enabled(flag: bool) -> None:
    """Globally enable/disable tracing (``capture`` honors this)."""
    global _enabled
    _enabled = bool(flag)


def is_enabled() -> bool:
    """Whether tracing is globally enabled."""
    return _enabled


def is_active() -> bool:
    """Whether the calling thread currently has an open trace."""
    return getattr(_state, "ctx", None) is not None


class _TraceContext:
    """Per-thread open-trace state: the span stack and the I/O model."""

    __slots__ = ("io", "stack")

    def __init__(self, io: IOCostModel | None):
        self.io = io
        self.stack: list[Span] = []


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of an attribute value to JSON-safe form."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, IOStats):
        return value.as_dict()
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    # Numpy scalars/arrays, without importing numpy: duck-typing on an
    # ``item`` attribute is too loose (it would call ``.item()`` on any
    # object that happens to have one, e.g. a 0-d array's would be fine
    # but an arbitrary object's may not return a JSON-safe value), so
    # check the real types -- but only if numpy is already loaded.
    np = sys.modules.get("numpy")
    if np is not None:
        if isinstance(value, np.generic):
            return value.item()
        if isinstance(value, np.ndarray):
            return _jsonable(value.tolist())
    return repr(value)


class Span:
    """One timed, attributed node of a trace tree.

    Spans are context managers; entering pushes onto the thread's span
    stack (attaching to the current parent), exiting records duration
    and the I/O counter delta observed in between.
    """

    __slots__ = ("name", "attrs", "children", "duration", "io_delta",
                 "_ctx", "_t0", "_io_before")

    #: Real spans record; the shared no-op span reports False, letting
    #: call sites skip expensive attribute collection entirely.
    recording = True

    def __init__(self, name: str, ctx: _TraceContext, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.duration = 0.0
        self.io_delta: IOStats | None = None
        self._ctx = ctx
        self._t0 = 0.0
        self._io_before: IOStats | None = None

    def __enter__(self) -> "Span":
        ctx = self._ctx
        if ctx.stack:
            ctx.stack[-1].children.append(self)
        ctx.stack.append(self)
        if ctx.io is not None:
            self._io_before = ctx.io.snapshot()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._t0
        ctx = self._ctx
        if self._io_before is not None:
            self.io_delta = ctx.io.snapshot() - self._io_before
        if ctx.stack and ctx.stack[-1] is self:
            ctx.stack.pop()
        return False

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes after the fact; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def walk(self) -> Iterator["Span"]:
        """Yield this span and all descendants, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Iterator["Span"]:
        """Yield every span named ``name`` in this subtree."""
        for span in self.walk():
            if span.name == name:
                yield span

    @property
    def duration_ms(self) -> float:
        return self.duration * 1e3

    @property
    def start(self) -> float:
        """``perf_counter`` timestamp at span entry.

        Monotonic within the process, so span starts are mutually
        comparable -- the timeline basis for the Chrome-trace exporter
        (:func:`repro.obs.export.chrome_trace`).
        """
        return self._t0

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation (``_``-prefixed attrs omitted)."""
        d: dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 3),
        }
        attrs = {
            k: _jsonable(v) for k, v in self.attrs.items()
            if not k.startswith("_")
        }
        if attrs:
            d["attrs"] = attrs
        if self.io_delta is not None:
            d["io"] = self.io_delta.as_dict()
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, attrs={self.attrs}, "
            f"children={len(self.children)})"
        )


class _NullSpan:
    """Shared inert span: every operation is a no-op.

    Returned by :func:`span` when no trace is active so instrumented
    code pays only the disabled-path check.
    """

    __slots__ = ()
    recording = False
    name = ""
    attrs: dict[str, Any] = {}
    children: list = []
    duration = 0.0
    duration_ms = 0.0
    start = 0.0
    io_delta = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def walk(self):
        return iter(())

    def find(self, name: str):
        return iter(())

    def to_dict(self) -> dict[str, Any]:
        return {}

    def __repr__(self) -> str:
        return "NullSpan()"


#: The singleton no-op span (also useful as an identity check in tests).
NULL_SPAN = _NullSpan()


def span(name: str, **attrs: Any) -> Span | _NullSpan:
    """Open a child span of the current trace, or a no-op if none.

    The fast path -- no active capture on this thread -- is a single
    ``getattr`` plus a ``None`` check.
    """
    ctx = getattr(_state, "ctx", None)
    if ctx is None:
        return NULL_SPAN
    return Span(name, ctx, attrs)


def current() -> Span | None:
    """The innermost open span of this thread's trace, if any."""
    ctx = getattr(_state, "ctx", None)
    if ctx is None or not ctx.stack:
        return None
    return ctx.stack[-1]


class _Capture:
    """Context manager that opens (or joins) a trace for its duration."""

    __slots__ = ("name", "attrs", "io", "force", "span", "_installed")

    def __init__(self, name: str, io: IOCostModel | None, force: bool,
                 attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.io = io
        self.force = force
        self.span: Span | None = None
        self._installed = False

    def __enter__(self) -> Span | None:
        ctx = getattr(_state, "ctx", None)
        if ctx is None:
            if not (_enabled or self.force):
                return None
            ctx = _TraceContext(self.io)
            _state.ctx = ctx
            self._installed = True
        elif ctx.io is None and self.io is not None:
            ctx.io = self.io
        self.span = Span(self.name, ctx, self.attrs)
        self.span.__enter__()
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.span is not None:
            self.span.__exit__(exc_type, exc, tb)
            self.span = None
        if self._installed:
            del _state.ctx
            self._installed = False
        return False


def capture(name: str = "trace", io: IOCostModel | None = None,
            force: bool = False, **attrs: Any) -> _Capture:
    """Start a trace rooted at ``name`` (if enabled) and yield its root.

    Yields ``None`` when tracing is globally disabled and ``force`` is
    not set.  Inside an already-active trace this opens a child span
    instead of a new root, so nested captures compose into one tree.

    ``io`` attaches an :class:`IOCostModel` whose counters every span
    of the trace snapshots on entry/exit; the first capture to provide
    one wins for the whole trace.
    """
    return _Capture(name, io, force, attrs)
