"""Append-only heap file with cheap sequential scans.

The sequential-scan baseline of Section 6 "simply scans the entire set
collection" -- i.e. reads the heap file front to back at sequential
I/O cost.  Individual records are also addressable by record id for
the index's candidate-fetch step (at random I/O cost).

Records may span multiple slots (a large set occupies several pages'
worth of elements); the record id addresses the first page and the
reader charges for every page the record covers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.storage.pager import PageManager


@dataclass(frozen=True)
class RecordId:
    """Address of a record: first page and slot, plus page span."""

    page_id: int
    slot: int
    n_pages: int


class HeapFile:
    """Sequentially laid out record storage.

    Parameters
    ----------
    pager:
        Page source and I/O accounting.
    record_pages:
        Callable mapping a record to the number of pages it occupies
        (at least 1).  Defaults to one page per record.
    """

    def __init__(self, pager: PageManager, record_pages=None):
        self.pager = pager
        self._record_pages = record_pages or (lambda record: 1)
        self._page_ids: list[int] = []
        self._records: list[RecordId] = []
        # Records are stored one per logical slot; multi-page records
        # are represented by padding pages that carry no slots.
        self._slots_per_page = 1

    def append(self, record: Any) -> RecordId:
        """Store a record at the end of the file, returning its id."""
        span = max(1, int(self._record_pages(record)))
        first = self.pager.allocate(self._slots_per_page)
        first.append(record)
        self._page_ids.append(first.page_id)
        for _ in range(span - 1):
            pad = self.pager.allocate(self._slots_per_page)
            self._page_ids.append(pad.page_id)
        rid = RecordId(first.page_id, 0, span)
        self._records.append(rid)
        self.pager.write(first.page_id)
        return rid

    def get(self, rid: RecordId) -> Any:
        """Fetch one record: one random read, then sequential follow-ons."""
        page = self.pager.read(rid.page_id, sequential=False)
        if rid.n_pages > 1:
            self.pager.io.read_sequential(rid.n_pages - 1)
        return page.slots[rid.slot]

    def scan(self) -> Iterator[tuple[RecordId, Any]]:
        """Yield every record in file order at sequential I/O cost."""
        for rid in self._records:
            page = self.pager.read(rid.page_id, sequential=True)
            if rid.n_pages > 1:
                self.pager.io.read_sequential(rid.n_pages - 1)
            yield rid, page.slots[rid.slot]

    @property
    def n_records(self) -> int:
        """Number of stored records."""
        return len(self._records)

    @property
    def n_pages(self) -> int:
        """Total pages, including multi-page record spans."""
        return len(self._page_ids)
