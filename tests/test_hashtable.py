"""Unit tests for the paged bucket hash table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import metrics
from repro.storage.hashtable import (
    BucketHashTable,
    UnresolvedTailError,
    hash_key,
    hash_keys,
)
from repro.storage.iomodel import IOCostModel
from repro.storage.pager import PageManager


def _table(n_buckets=8, page_size=4096):
    return BucketHashTable(PageManager(IOCostModel(), page_size=page_size), n_buckets)


class TestHashKey:
    def test_deterministic(self):
        assert hash_key(b"abc") == hash_key(b"abc")

    def test_distinct_keys_differ(self):
        assert hash_key(b"abc") != hash_key(b"abd")

    def test_64_bit(self):
        assert 0 <= hash_key(b"x") < 2**64


class TestBucketHashTable:
    def test_insert_probe(self):
        table = _table()
        table.insert(b"k1", 10)
        table.insert(b"k1", 11)
        table.insert(b"k2", 20)
        assert sorted(table.probe(b"k1")) == [10, 11]
        assert table.probe(b"k2") == [20]
        assert table.probe(b"nope") == []
        assert table.n_entries == 3

    def test_no_bucket_cross_talk(self):
        """Keys sharing a bucket must not leak into each other's probes."""
        table = _table(n_buckets=1)
        for i in range(20):
            table.insert(f"key-{i}".encode(), i)
        for i in range(20):
            assert table.probe(f"key-{i}".encode()) == [i]

    def test_overflow_chains(self):
        table = _table(n_buckets=1, page_size=64)  # 4 entries per page
        for i in range(20):
            table.insert(b"same", i)
        assert table.n_pages == 5
        assert sorted(table.probe(b"same")) == list(range(20))

    def test_probe_io_chain_accounting(self):
        table = _table(n_buckets=1, page_size=64)
        for i in range(8):  # two pages in the chain
            table.insert(b"k", i)
        io = table.pager.io
        before = io.snapshot()
        table.probe(b"k")
        delta = io.snapshot() - before
        assert delta.random_reads == 1  # head page
        assert delta.sequential_reads == 1  # overflow page

    def test_delete_existing(self):
        table = _table()
        table.insert(b"a", 1)
        table.insert(b"a", 2)
        assert table.delete(b"a", 1)
        assert table.probe(b"a") == [2]
        assert table.n_entries == 1

    def test_delete_missing(self):
        table = _table()
        table.insert(b"a", 1)
        assert not table.delete(b"a", 99)
        assert not table.delete(b"zzz", 1)
        assert table.n_entries == 1

    def test_delete_last_entry_of_last_page(self):
        """The swap-remove edge case: hole == popped entry."""
        table = _table(n_buckets=1, page_size=64)
        for i in range(4):
            table.insert(b"k", i)
        assert table.delete(b"k", 3)  # last entry of the only page
        assert sorted(table.probe(b"k")) == [0, 1, 2]

    def test_delete_frees_empty_pages(self):
        table = _table(n_buckets=1, page_size=64)
        for i in range(5):  # 2 pages
            table.insert(b"k", i)
        assert table.n_pages == 2
        for i in range(5):
            table.delete(b"k", i)
        assert table.n_pages == 0
        assert table.probe(b"k") == []

    def test_duplicate_entries_supported(self):
        table = _table()
        table.insert(b"k", 7)
        table.insert(b"k", 7)
        assert table.probe(b"k") == [7, 7]
        table.delete(b"k", 7)
        assert table.probe(b"k") == [7]

    def test_items_iterates_everything(self):
        table = _table(n_buckets=4)
        for i in range(10):
            table.insert(str(i).encode(), i)
        assert len(list(table.items())) == 10

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            BucketHashTable(PageManager(IOCostModel()), 0)

    @given(
        st.lists(
            st.tuples(st.sampled_from([b"a", b"b", b"c", b"d"]), st.integers(0, 5)),
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_model(self, operations):
        """Insert/delete sequences behave like a multiset dictionary."""
        table = _table(n_buckets=2, page_size=64)
        model: dict[bytes, list[int]] = {}
        rng = np.random.default_rng(0)
        for key, sid in operations:
            if rng.random() < 0.7:
                table.insert(key, sid)
                model.setdefault(key, []).append(sid)
            else:
                expected = sid in model.get(key, [])
                assert table.delete(key, sid) == expected
                if expected:
                    model[key].remove(sid)
        for key in (b"a", b"b", b"c", b"d"):
            assert sorted(table.probe(key)) == sorted(model.get(key, []))
        assert table.n_entries == sum(len(v) for v in model.values())


class TestDirectoryInvalidation:
    """The per-bucket fingerprint directory is a memo over page chains;
    any mutation of a bucket must drop its memo or probes serve stale
    (or ghost) entries."""

    def test_delete_invalidates_bucket_directory(self):
        table = _table(n_buckets=2)
        table.insert(b"k1", 1)
        table.insert(b"k1", 2)
        bucket, _ = table._bucket_of(b"k1")
        assert sorted(table.probe(b"k1")) == [1, 2]  # memo built
        assert table._directory[bucket] is not None
        assert table.delete(b"k1", 1)
        assert table._directory[bucket] is None  # memo dropped
        assert table.probe(b"k1") == [2]  # no ghost entry

    def test_insert_invalidates_bucket_directory(self):
        table = _table(n_buckets=2)
        table.insert(b"k1", 1)
        table.probe(b"k1")
        bucket, _ = table._bucket_of(b"k1")
        assert table._directory[bucket] is not None
        table.insert(b"k1", 9)
        assert table._directory[bucket] is None
        assert sorted(table.probe(b"k1")) == [1, 9]

    def test_delete_only_invalidates_its_own_bucket(self):
        table = _table(n_buckets=64)
        keys = [f"key-{i}".encode() for i in range(32)]
        for i, key in enumerate(keys):
            table.insert(key, i)
        for key in keys:
            table.probe(key)  # warm every touched bucket's memo
        victim = keys[0]
        victim_bucket, _ = table._bucket_of(victim)
        warmed = {
            b for b in range(64)
            if table._directory[b] is not None and b != victim_bucket
        }
        assert warmed  # 32 keys over 64 buckets: others got warmed
        assert table.delete(victim, 0)
        assert table._directory[victim_bucket] is None
        for b in warmed:
            assert table._directory[b] is not None


def _keyed_workload(n, seed):
    """Random (keys, sids) with plenty of bucket and key repetition."""
    rng = np.random.default_rng(seed)
    keys = [f"key-{int(k)}".encode() for k in rng.integers(0, max(2, n // 3), size=n)]
    return keys, list(range(n))


class TestBulkLoadEquivalence:
    """The bulk path must be indistinguishable from the insert loop:
    same chains (page ids included), same page contents, same
    load_stats, same I/O accounting."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("n_buckets", [1, 7])
    def test_load_stats_regression(self, seed, n_buckets):
        keys, sids = _keyed_workload(60, seed)
        seq = _table(n_buckets=n_buckets, page_size=64)
        for key, sid in zip(keys, sids):
            seq.insert(key, sid)
        bulk = _table(n_buckets=n_buckets, page_size=64)
        bulk.bulk_load(keys, sids)
        assert bulk.load_stats() == seq.load_stats()
        assert bulk._chains == seq._chains
        assert bulk.bucket_occupancies() == seq.bucket_occupancies()
        for chain in seq._chains:
            for pid in chain:
                assert bulk.pager.peek(pid).slots == seq.pager.peek(pid).slots
        assert bulk.pager.io.snapshot().as_dict() == seq.pager.io.snapshot().as_dict()

    def test_probe_equivalence(self):
        keys, sids = _keyed_workload(40, 3)
        seq = _table(n_buckets=4, page_size=64)
        for key, sid in zip(keys, sids):
            seq.insert(key, sid)
        bulk = _table(n_buckets=4, page_size=64)
        bulk.bulk_load(keys, sids)
        for key in set(keys):
            assert bulk.probe(key) == seq.probe(key)

    def test_fresh_buckets_get_eager_directories(self):
        keys, sids = _keyed_workload(30, 4)
        bulk = _table(n_buckets=4, page_size=64)
        bulk.bulk_load(keys, sids)
        for bucket, chain in enumerate(bulk._chains):
            if chain:
                assert bulk._directory[bucket] is not None

    def test_bulk_load_onto_existing_entries(self):
        keys, sids = _keyed_workload(50, 5)
        seq = _table(n_buckets=2, page_size=64)
        mixed = _table(n_buckets=2, page_size=64)
        for key, sid in zip(keys[:20], sids[:20]):
            seq.insert(key, sid)
            mixed.insert(key, sid)
        for key, sid in zip(keys[20:], sids[20:]):
            seq.insert(key, sid)
        mixed.bulk_load(keys[20:], sids[20:])
        assert mixed._chains == seq._chains
        assert mixed.load_stats() == seq.load_stats()
        assert mixed.pager.io.snapshot().as_dict() == seq.pager.io.snapshot().as_dict()

    def test_unresolved_tail_raises_then_resolves(self):
        table = _table(n_buckets=1, page_size=64)
        for i in range(5):  # two pages: 4 + 1
            table.insert(b"k", i)
        assert table.delete(b"k", 4)  # frees the tail page -> state unknown
        fps = hash_keys([b"k2"])
        with pytest.raises(UnresolvedTailError):
            table.plan_bulk_load(fps, [99])
        before = table.pager.io.snapshot()
        report = table.bulk_load([b"k2"], [99])
        delta = table.pager.io.snapshot() - before
        assert report["tail_reads"] == 1
        assert delta.random_reads == 1  # the one charged tail resolve
        assert table.probe(b"k2") == [99]

    def test_empty_bulk_load(self):
        table = _table()
        report = table.bulk_load([], [])
        assert report["entries"] == 0
        assert table.n_entries == 0
        assert table.pager.io.snapshot().as_dict()["page_writes"] == 0

    def test_length_mismatch_raises(self):
        table = _table()
        with pytest.raises(ValueError):
            table.plan_bulk_load(hash_keys([b"a", b"b"]), [1])


class TestTailReadAccounting:
    """insert() must not re-read a tail page whose fill state it wrote
    itself; only genuinely unknown tails (post-delete) cost a read."""

    def test_consecutive_inserts_charge_no_reads(self):
        table = _table(n_buckets=1, page_size=64)
        skipped = metrics.counter("hashtable.tail_reads_skipped")
        skipped_before = skipped.local_value
        before = table.pager.io.snapshot()
        for i in range(10):  # 3 pages: 4 + 4 + 2
            table.insert(b"k", i)
        delta = table.pager.io.snapshot() - before
        assert delta.random_reads == 0
        assert delta.sequential_reads == 0
        # One entry write per insert plus one write per allocated page.
        assert delta.page_writes == 10 + 3
        assert table.n_pages == 3
        # Every insert after the first knew the tail from its own write.
        assert skipped.local_value - skipped_before == 9

    def test_delete_freeing_tail_forces_one_reread(self):
        table = _table(n_buckets=1, page_size=64)
        for i in range(5):  # pages of 4 + 1
            table.insert(b"k", i)
        assert table.delete(b"k", 4)  # tail page freed, survivor unread
        before = table.pager.io.snapshot()
        table.insert(b"k", 5)
        delta = table.pager.io.snapshot() - before
        assert delta.random_reads == 1  # the unavoidable tail re-read

    def test_delete_keeping_tail_tracks_state(self):
        table = _table(n_buckets=1, page_size=64)
        for i in range(6):  # pages of 4 + 2
            table.insert(b"k", i)
        assert table.delete(b"k", 0)  # tail shrinks to 1, state tracked
        before = table.pager.io.snapshot()
        table.insert(b"k", 6)
        delta = table.pager.io.snapshot() - before
        assert delta.random_reads == 0
        assert sorted(table.probe(b"k")) == [1, 2, 3, 4, 5, 6]
