"""ABL-CACHE -- what a warm buffer pool does to the scan/index duel.

The paper's cost analysis assumes cold reads at ran/seq = 8.  A buffer
pool absorbs repeated page touches (hash-table buckets shared across
probes, hot heap pages), shaving the index's probe overhead; the scan
still has to touch every page once per pass, so caching helps the
index disproportionately.

Shape to confirm: simulated index query cost is non-increasing in the
pool size, and a large pool recovers most of the probe overhead.
"""

import numpy as np
import pytest

from repro.core.index import SetSimilarityIndex
from repro.data.queries import QueryWorkload
from repro.data.weblog import make_set1
from repro.eval.report import format_table
from repro.storage.iomodel import IOCostModel
from repro.storage.pager import PageManager


def _mean_query_cost(sets, queries, cache_pages, k):
    io = IOCostModel()
    index = SetSimilarityIndex.build(
        sets, budget=150, recall_target=0.85, k=k, seed=7, sample_pairs=40_000, io=io
    )
    index.pager.cache_pages = cache_pages
    times = []
    for q in queries:
        result = index.query(sets[q.set_index], q.sigma_low, q.sigma_high)
        times.append(result.total_time)
    return float(np.mean(times)), index.pager.cache_hits


def test_buffer_pool(benchmark, emit, scale):
    sets = make_set1(min(scale.n_sets, 800), seed=51)
    queries = QueryWorkload(len(sets), seed=52).sample(30)
    k = min(scale.k, 64)

    def run():
        rows = []
        for cache in (0, 64, 512, 4096):
            cost, hits = _mean_query_cost(sets, queries, cache, k)
            rows.append([cache, cost, hits])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ABL-CACHE",
        format_table(["buffer pool pages", "avg query cost", "cache hits"], rows),
    )
    costs = [r[1] for r in rows]
    # Non-increasing in pool size (allowing float noise).
    for a, b in zip(costs, costs[1:]):
        assert b <= a * 1.001
    # A big pool must actually help.
    assert costs[-1] < costs[0]
