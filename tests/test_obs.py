"""Tests for the observability subsystem (repro.obs)."""

from __future__ import annotations

import io as io_module
import json
import logging

import pytest

from repro.core.index import SetSimilarityIndex
from repro.obs import configure_logging, explain_json, metrics, render_trace, trace
from repro.obs.explain import filter_summaries, probe_spans
from repro.obs.logs import ROOT_LOGGER
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.storage.iomodel import IOCostModel, IOStats


@pytest.fixture(scope="module")
def traced_query(clustered_sets):
    """One real query executed with tracing; returns (index, result)."""
    index = SetSimilarityIndex.build(
        clustered_sets, budget=60, recall_target=0.8, k=32, b=4, seed=11
    )
    result = index.query(clustered_sets[0], 0.5, 1.0, explain=True)
    return index, result


class TestSpan:
    def test_disabled_path_is_null_span(self):
        assert trace.span("anything", key="value") is trace.NULL_SPAN
        assert not trace.is_active()

    def test_null_span_is_inert(self):
        sp = trace.NULL_SPAN
        with sp as entered:
            assert entered is sp
        assert sp.set(a=1) is sp
        assert not sp.recording
        assert list(sp.walk()) == []
        assert sp.to_dict() == {}

    def test_capture_disabled_yields_none(self):
        assert not trace.is_enabled()
        with trace.capture("query") as root:
            assert root is None
        assert not trace.is_active()

    def test_capture_forced_yields_root(self):
        with trace.capture("query", force=True) as root:
            assert root is not None
            assert root.recording
            assert trace.is_active()
            assert trace.current() is root
        assert not trace.is_active()

    def test_set_enabled_global_switch(self):
        trace.set_enabled(True)
        try:
            with trace.capture("query") as root:
                assert root is not None
        finally:
            trace.set_enabled(False)
        with trace.capture("query") as root:
            assert root is None

    def test_spans_nest(self):
        with trace.capture("root", force=True) as root:
            with trace.span("outer", depth=1) as outer:
                with trace.span("inner", depth=2) as inner:
                    pass
        assert root.children == [outer]
        assert outer.children == [inner]
        assert [s.name for s in root.walk()] == ["root", "outer", "inner"]
        assert list(root.find("inner")) == [inner]

    def test_nested_captures_join_one_tree(self):
        with trace.capture("harness", force=True) as harness:
            with trace.capture("query", force=True) as inner:
                assert inner is not harness
        assert inner in harness.children
        assert not trace.is_active()

    def test_io_delta_snapshots(self):
        io = IOCostModel()
        io.read_random(1)  # pre-capture traffic must not be charged
        with trace.capture("root", io=io, force=True) as root:
            with trace.span("probe") as sp:
                io.read_random(2)
                io.read_sequential(3)
            io.write(1)
        assert sp.io_delta == IOStats(3, 2, 0, 0)
        assert root.io_delta == IOStats(3, 2, 1, 0)

    def test_durations_recorded(self):
        with trace.capture("root", force=True) as root:
            with trace.span("child"):
                pass
        assert root.duration > 0
        assert root.duration_ms == root.duration * 1e3

    def test_to_dict_excludes_private_attrs(self):
        with trace.capture("root", force=True) as root:
            with trace.span("probe", candidates=3, _sids={1, 2, 3}):
                pass
        d = root.to_dict()
        probe = d["children"][0]
        assert probe["attrs"] == {"candidates": 3}
        assert "_sids" not in json.dumps(d)

    def test_to_dict_is_json_serializable(self):
        with trace.capture("root", force=True, sids={3, 1}, rng=(0.5, 1.0)) as root:
            pass
        payload = json.loads(json.dumps(root.to_dict()))
        assert payload["attrs"]["sids"] == [1, 3]

    def test_exception_still_closes_trace(self):
        with pytest.raises(RuntimeError):
            with trace.capture("root", force=True):
                with trace.span("child"):
                    raise RuntimeError("boom")
        assert not trace.is_active()


class TestJsonableAttrs:
    """Serialization of span attributes (the ``_jsonable`` helper).

    Regression coverage for the duck-typing bug where *any* object
    with an ``item`` attribute was mistaken for a numpy scalar and had
    ``.item()`` called on it during serialization.
    """

    @staticmethod
    def _serialize(**attrs):
        with trace.capture("root", force=True, **attrs) as root:
            pass
        return json.loads(json.dumps(root.to_dict()))["attrs"]

    def test_object_with_item_method_is_not_called(self):
        class Itemful:
            def item(self):  # pragma: no cover - must never run
                raise AssertionError("item() must not be called")

            def __repr__(self):
                return "Itemful()"

        attrs = self._serialize(value=Itemful())
        assert attrs["value"] == "Itemful()"

    def test_numpy_scalar_unwrapped(self):
        import numpy as np

        attrs = self._serialize(count=np.int64(7), share=np.float32(0.25))
        assert attrs["count"] == 7
        assert attrs["share"] == pytest.approx(0.25)

    def test_numpy_array_becomes_list(self):
        import numpy as np

        attrs = self._serialize(
            vec=np.array([1, 2, 3], dtype=np.int64),
            zero_d=np.array(5.0),
        )
        assert attrs["vec"] == [1, 2, 3]
        assert attrs["zero_d"] == 5.0

    def test_containers_recurse(self):
        import numpy as np

        attrs = self._serialize(
            nested={"a": np.int32(1), "b": [np.float64(2.0), {3, 1}]}
        )
        assert attrs["nested"] == {"a": 1, "b": [2.0, [1, 3]]}


class TestMetrics:
    def test_counter(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge(self):
        g = Gauge("g")
        g.set(0.75)
        assert g.value == 0.75

    def test_histogram_buckets(self):
        h = Histogram("h", bounds=(1, 10, 100))
        for v in (0, 1, 5, 10, 11, 1000):
            h.observe(v)
        assert h.count == 6
        assert h.min == 0 and h.max == 1000
        assert h.mean == pytest.approx(1027 / 6)
        d = h.to_dict()
        assert d["buckets"] == {"<=1": 2, "<=10": 2, "<=100": 1, ">100": 1}

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(10, 1))

    def test_registry_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("x") is reg.gauge("x")
        assert reg.histogram("x") is reg.histogram("x")

    def test_registry_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("probes").inc(3)
        reg.gauge("load").set(0.5)
        reg.histogram("occ").observe(7)
        snap = reg.snapshot()
        assert snap["counters"] == {"probes": 3}
        assert snap["gauges"] == {"load": 0.5}
        assert snap["histograms"]["occ"]["count"] == 1

    def test_reset_zeroes_in_place(self):
        """Module-cached instrument references survive a reset."""
        reg = MetricsRegistry()
        cached = reg.counter("probes")
        cached.inc(9)
        reg.reset()
        assert cached.value == 0
        assert reg.counter("probes") is cached
        cached.inc()
        assert reg.snapshot()["counters"]["probes"] == 1

    def test_default_registry_instrumented_by_query(self, traced_query):
        index, _ = traced_query
        before = metrics.snapshot()["counters"].get("sfi.probes", 0)
        index.query({1, 2, 3}, 0.5, 1.0)
        after = metrics.snapshot()["counters"]["sfi.probes"]
        assert after > before

    def test_counter_values_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.counter("b")  # untouched counters are reported too
        assert reg.counter_values() == {"a": 3, "b": 0}

    def test_apply_counter_deltas_folds_in(self):
        """The cross-process fold: worker deltas land in this registry."""
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        before = reg.counter_values()
        reg.apply_counter_deltas({"a": 5, "new": 7, "zero": 0})
        values = reg.counter_values()
        assert values["a"] == before["a"] + 5
        assert values["new"] == 7
        assert "zero" not in values  # zero deltas create nothing

    def test_counter_roundtrip_through_values_and_deltas(self):
        """before/after bracketing reproduces exactly what a task moved."""
        reg = MetricsRegistry()
        reg.counter("x").inc(4)
        before = reg.counter_values()
        reg.counter("x").inc(6)
        reg.counter("y").inc(1)
        after = reg.counter_values()
        deltas = {
            name: after[name] - before.get(name, 0)
            for name in after
            if after[name] != before.get(name, 0)
        }
        sink = MetricsRegistry()
        sink.apply_counter_deltas(deltas)
        assert sink.counter_values() == {"x": 6, "y": 1}


class TestExplain:
    def test_query_result_carries_trace(self, traced_query):
        _, result = traced_query
        assert result.trace is not None
        assert result.trace.name == "query"

    def test_untraced_query_has_no_trace(self, traced_query):
        index, _ = traced_query
        result = index.query({1, 2, 3}, 0.5, 1.0)
        assert result.trace is None

    def test_filter_summaries_schema(self, traced_query):
        _, result = traced_query
        summaries = filter_summaries(result.trace)
        assert summaries
        for s in summaries:
            assert s["kind"] in ("SFI", "DFI")
            assert 0.0 < s["s_star"] < 1.0
            assert s["r"] >= 1 and s["l"] >= 1
            assert s["tables_probed"] == s["l"]
            assert s["buckets_read"] >= s["l"]  # >=1 page per table probed
            assert s["candidates"] >= 0
            assert 0 <= s["survived"] <= s["candidates"]

    def test_probe_spans_skip_inner_sfi_of_dfi(self):
        with trace.capture("query", force=True) as root:
            with trace.span("candidates"):
                with trace.span("dfi_probe", s_star=0.3):
                    with trace.span("sfi_probe", s_star=0.7):
                        pass
                with trace.span("sfi_probe", s_star=0.9):
                    pass
        names = [(s.name, s.attrs["s_star"]) for s in probe_spans(root)]
        assert names == [("dfi_probe", 0.3), ("sfi_probe", 0.9)]

    def test_explain_json_schema(self, traced_query):
        _, result = traced_query
        payload = explain_json(result.trace)
        payload = json.loads(json.dumps(payload))  # must be JSON-safe
        assert set(payload) == {"query", "filters", "io", "duration_ms", "trace"}
        assert payload["query"]["sigma_low"] == 0.5
        assert payload["query"]["n_candidates"] == result.n_candidates
        assert payload["query"]["n_verified"] == result.n_verified
        assert payload["io"]["random_reads"] > 0
        assert payload["trace"]["name"] == "query"
        assert payload["filters"] == filter_summaries(result.trace)

    def test_render_trace_plan_tree(self, traced_query):
        _, result = traced_query
        text = render_trace(result.trace)
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert any("probe SFI" in l or "probe DFI" in l for l in lines)
        assert "s*=" in text and "(r=" in text
        assert "buckets=" in text and "candidates=" in text
        assert "survived=" in text
        assert any(l.startswith(("├─", "└─")) for l in lines)

    def test_scan_strategy_traced(self, traced_query):
        index, _ = traced_query
        result = index.query({1, 2, 3}, 0.0, 1.0, strategy="scan", explain=True)
        assert list(result.trace.find("scan"))
        assert filter_summaries(result.trace) == []


class TestLogging:
    def test_configure_is_idempotent(self):
        logger = configure_logging(1)
        n_before = len(logger.handlers)
        configure_logging(2)
        assert len(logger.handlers) == n_before
        assert logger.level == logging.DEBUG

    def test_verbosity_levels(self):
        assert configure_logging(0).level == logging.WARNING
        assert configure_logging(1).level == logging.INFO
        assert configure_logging(5).level == logging.DEBUG

    def test_build_and_query_log(self, clustered_sets):
        stream = io_module.StringIO()
        configure_logging(2, stream=stream)
        try:
            index = SetSimilarityIndex.build(
                clustered_sets[:30], budget=20, k=16, b=4, seed=2
            )
            index.query(clustered_sets[0], 0.6, 1.0)
        finally:
            configure_logging(0)
        out = stream.getvalue()
        assert "building index" in out
        assert "query [0.600, 1.000]" in out

    def test_loggers_under_repro_hierarchy(self):
        from repro.obs.logs import get_logger

        assert get_logger("core.index").name == f"{ROOT_LOGGER}.core.index"
        assert get_logger("repro.core.index").name == "repro.core.index"
