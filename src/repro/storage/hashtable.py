"""Paged bucket hash table -- the filter indices' building block.

Section 4.1 builds each filter index out of plain hash tables: keys are
the ``r`` sampled bits of a vector, values are set identifiers, and a
bucket holds up to ``sid_count`` identifiers per page.  The paper sizes
the table so bucket overflows are rare; we nevertheless support
overflow chains so the structure stays correct for any input.

The table is fully dynamic (insert and delete), which is what lets the
paper claim the overall index "readily supports dynamic operations".

Each stored entry is a ``(fingerprint, sid)`` pair of 16 bytes.  The
fingerprint is a 64-bit hash of the full key; matching on it avoids
returning sids that merely share a bucket (a modulo collision) while
keeping entries fixed-size.  Probes charge one random read for the
first bucket page and sequential reads for overflow pages, which are
assumed to be allocated adjacently.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.obs import metrics
from repro.storage.pager import PageManager

#: Bytes per (fingerprint, sid) entry; determines slots per page.
ENTRY_BYTES = 16

# Hot-path instruments, resolved once at import (see repro.obs.metrics).
# Candidate counts are deliberately NOT tracked here: the filter index
# already accounts them (sfi.candidates + sfi.duplicate_candidates is
# the sum of per-table bucket sizes), and probe() is the innermost loop.
_PROBES = metrics.counter("hashtable.probes")
_PROBE_PAGES = metrics.counter("hashtable.probe_pages")
#: Bucket pages a batched probe did NOT read because several keys of
#: the batch resolved to the same bucket (read once, served to all).
_PROBE_PAGES_SAVED = metrics.counter("hashtable.probe_pages_saved")
#: Chain-tail reads :meth:`BucketHashTable.insert` skipped because the
#: tail page's fill state was still known from this table's own last
#: write to the bucket (the page is logically in the writer's buffer).
_TAIL_READS_SKIPPED = metrics.counter("hashtable.tail_reads_skipped")
#: Entries and fresh pages loaded through the bulk (build-time) path.
_BULK_ENTRIES = metrics.counter("hashtable.bulk_entries")
_BULK_PAGES = metrics.counter("hashtable.bulk_pages")


# The key fingerprint is a splitmix64 fold: the splitmix64 finalizer
# (Vigna's full-avalanche 64-bit mixer) applied over the key's
# little-endian 64-bit words, seeded by the key length so zero padding
# of the last word cannot alias keys of different lengths.  Unlike a
# cryptographic digest this is pure word arithmetic, so the bulk build
# can fingerprint a whole key matrix with numpy (:func:`hash_words`)
# while the scalar :func:`hash_key` stays bit-identical word for word.
_SPLIT_GOLDEN = 0x9E3779B97F4A7C15
_SPLIT_MIX1 = 0xBF58476D1CE4E5B9
_SPLIT_MIX2 = 0x94D049BB133111EB
_MASK64 = (1 << 64) - 1
# uint64 copies for the vectorized form (numpy wraps mod 2**64, which
# is exactly the & _MASK64 of the scalar form).
_V30, _V27, _V31 = np.uint64(30), np.uint64(27), np.uint64(31)
_VMIX1, _VMIX2 = np.uint64(_SPLIT_MIX1), np.uint64(_SPLIT_MIX2)


def _mix64(z: int) -> int:
    """The splitmix64 finalizer on one Python int (mod 2**64)."""
    z = ((z ^ (z >> 30)) * _SPLIT_MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _SPLIT_MIX2) & _MASK64
    return z ^ (z >> 31)


def hash_key(key: bytes) -> int:
    """Stable 64-bit hash of a key (independent of PYTHONHASHSEED)."""
    h = _mix64((len(key) * _SPLIT_GOLDEN) & _MASK64)
    for i in range(0, len(key), 8):
        h = _mix64(h ^ int.from_bytes(key[i : i + 8], "little"))
    return h


def hash_words(words: np.ndarray, key_bytes: int) -> np.ndarray:
    """Vectorized :func:`hash_key` over a key-word matrix.

    ``words`` holds one key per row as little-endian 64-bit words with
    the last word zero-padded; every key must be ``key_bytes`` long
    (fixed-width keys are what bit samplers emit).  Equals
    ``[hash_key(k) for k in keys]`` bit for bit, but each mixing round
    is one numpy pass over a column, which is what makes bulk
    fingerprinting array arithmetic instead of a per-key digest loop.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    h = np.full(
        words.shape[0],
        _mix64((key_bytes * _SPLIT_GOLDEN) & _MASK64),
        dtype=np.uint64,
    )
    for j in range(words.shape[1]):
        z = h ^ words[:, j]
        z = (z ^ (z >> _V30)) * _VMIX1
        z = (z ^ (z >> _V27)) * _VMIX2
        h = z ^ (z >> _V31)
    return h


def _key_word_matrix(keys: Sequence[bytes], width: int) -> np.ndarray:
    """Pack same-width byte keys into a little-endian uint64 word matrix."""
    n_words = -(-width // 8)
    if width == 0:
        return np.zeros((len(keys), 0), dtype=np.uint64)
    raw = np.frombuffer(b"".join(keys), dtype=np.uint8).reshape(len(keys), width)
    if width == n_words * 8:
        return raw.view("<u8")
    padded = np.zeros((len(keys), n_words * 8), dtype=np.uint8)
    padded[:, :width] = raw
    return padded.view("<u8")


def hash_keys(keys: Sequence[bytes]) -> np.ndarray:
    """:func:`hash_key` over many keys, as a uint64 array.

    Same-width keys (the filter-index case: one bit sampler emits
    fixed-width keys) take the vectorized :func:`hash_words` path;
    mixed widths fall back to the scalar loop.
    """
    n = len(keys)
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    width = len(keys[0])
    if any(len(k) != width for k in keys):
        return np.fromiter(map(hash_key, keys), dtype=np.uint64, count=n)
    return hash_words(_key_word_matrix(keys, width), width)


class UnresolvedTailError(RuntimeError):
    """A bulk-load plan needs a tail page whose fill state is unknown.

    Raised by :meth:`BucketHashTable.plan_bulk_load` when a target
    bucket has a chain but no tracked tail occupancy (e.g. after a
    delete).  Call :meth:`BucketHashTable.resolve_tails` first -- it
    charges the same reads the per-insert path would have charged.
    """


class _BulkGroup:
    """One bucket's slice of a bulk-load plan."""

    __slots__ = ("bucket", "entries", "tail_take", "directory")

    def __init__(self, bucket, entries, tail_take, directory):
        self.bucket = bucket
        #: (fingerprint, sid) tuples in insertion order.
        self.entries = entries
        #: How many lead entries the existing tail page absorbs.
        self.tail_take = tail_take
        #: Eagerly built fingerprint -> sids map (fresh buckets only;
        #: None means the bucket had prior entries and stays lazy).
        self.directory = directory


class BulkLoadPlan:
    """Pager-free image of one bulk load (see ``plan_bulk_load``).

    Computing a plan touches no pages and mutates nothing, so plans for
    independent tables can be prepared concurrently; ``apply_bulk_load``
    then replays them against the pager on one thread.
    """

    __slots__ = ("n_entries", "groups", "alloc_buckets")

    def __init__(self, n_entries, groups, alloc_buckets):
        self.n_entries = n_entries
        self.groups = groups
        #: Bucket per page allocation, in the exact order the
        #: sequential per-insert path would have allocated.
        self.alloc_buckets = alloc_buckets


class BucketHashTable:
    """A disk-simulated hash table from byte keys to set identifiers.

    Parameters
    ----------
    pager:
        Page source; also supplies the I/O accounting.
    n_buckets:
        Number of hash buckets.  The paper chooses enough buckets that
        no overflows occur; a sensible choice is
        ``ceil(expected_entries / slots_per_page)``.
    """

    def __init__(self, pager: PageManager, n_buckets: int):
        if n_buckets <= 0:
            raise ValueError(f"n_buckets must be positive, got {n_buckets}")
        self.pager = pager
        self.n_buckets = n_buckets
        self.slots_per_page = pager.capacity_for(ENTRY_BYTES)
        # Chains of page ids per bucket; pages allocated lazily.
        self._chains: list[list[int]] = [[] for _ in range(n_buckets)]
        self._n_entries = 0
        # Memoized fingerprint -> sids image of each bucket's slots,
        # rebuilt lazily after the bucket mutates (None = stale).  It
        # is a pure CPU-side accelerator: probes still charge the same
        # page reads, the directory only replaces re-scanning a slot
        # list that has not changed since the last probe.
        self._directory: list[dict[int, list[int]] | None] = [None] * n_buckets
        # Occupied slots on each bucket's tail page, when known from
        # this table's own last write (-1 = unknown, must read).  Lets
        # consecutive inserts into one bucket skip re-reading a page
        # that is logically still in the writer's buffer.
        self._tail_slots: list[int] = [-1] * n_buckets

    @property
    def n_entries(self) -> int:
        """Number of stored (key, sid) entries."""
        return self._n_entries

    @property
    def n_pages(self) -> int:
        """Pages across all bucket chains."""
        return sum(len(chain) for chain in self._chains)

    def _bucket_of(self, key: bytes) -> tuple[int, int]:
        fingerprint = hash_key(key)
        return fingerprint % self.n_buckets, fingerprint

    def insert(self, key: bytes, sid: int) -> None:
        """Add a (key, sid) entry.  Duplicates are stored as given.

        The chain-tail page is re-read (one charged random read) only
        when its fill state is unknown; consecutive inserts into one
        bucket know the tail from their own last write and skip the
        redundant read entirely.
        """
        bucket, fingerprint = self._bucket_of(key)
        chain = self._chains[bucket]
        last = None
        if chain:
            known = self._tail_slots[bucket]
            if known < 0:
                last = self.pager.read(chain[-1], sequential=False)
                if last.is_full:
                    last = None
            elif known < self.slots_per_page:
                last = self.pager.peek(chain[-1])
                _TAIL_READS_SKIPPED.shard().count += 1
            else:
                # Tail known full: allocate without touching it.
                _TAIL_READS_SKIPPED.shard().count += 1
        if last is None:
            last = self.pager.allocate(self.slots_per_page)
            chain.append(last.page_id)
        last.append((fingerprint, sid))
        self.pager.write(last.page_id)
        self._tail_slots[bucket] = len(last.slots)
        self._n_entries += 1
        self._directory[bucket] = None

    # -- bulk loading ------------------------------------------------------

    def resolve_tails(self, buckets) -> int:
        """Read (charged) the tail page of every listed bucket whose
        fill state is unknown; returns the number of reads charged.

        One random read per such bucket -- exactly what the per-insert
        path would charge on its first insert into that bucket.
        """
        reads = 0
        for bucket in buckets:
            chain = self._chains[bucket]
            if chain and self._tail_slots[bucket] < 0:
                page = self.pager.read(chain[-1], sequential=False)
                self._tail_slots[bucket] = len(page.slots)
                reads += 1
        return reads

    def plan_bulk_load(
        self, fingerprints: np.ndarray, sids: Sequence[int]
    ) -> BulkLoadPlan:
        """Vectorized bucket-partitioned layout of a bulk insertion.

        Entries are grouped by bucket with one stable argsort, each
        group's page layout (existing-tail absorption, new-page count)
        is array arithmetic, and the page-allocation *order* is derived
        so it matches the sequential per-insert path exactly: a page is
        opened at the first entry (in input order) that lands on it.
        Fresh buckets also get their fingerprint directory built here,
        eagerly.

        Touches no pages and mutates nothing -- plans for independent
        tables may be computed concurrently -- but requires every
        target bucket's tail state to be known
        (:class:`UnresolvedTailError` otherwise; see
        :meth:`resolve_tails`).
        """
        fps = np.ascontiguousarray(fingerprints, dtype=np.uint64)
        n = len(fps)
        if n != len(sids):
            raise ValueError(
                f"{n} fingerprints but {len(sids)} sids given"
            )
        if n == 0:
            return BulkLoadPlan(0, [], [])
        slots = self.slots_per_page
        buckets = (fps % np.uint64(self.n_buckets)).astype(np.int64)
        order = np.argsort(buckets, kind="stable")
        sorted_buckets = buckets[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_buckets[1:] != sorted_buckets[:-1]]
        )
        bounds = np.append(starts, n)
        sizes = np.diff(bounds)
        group_buckets = sorted_buckets[starts].tolist()
        # Free slots on each group's existing tail page (0 for fresh
        # buckets: their first entry opens a page, as in insert()).
        rems = np.zeros(len(group_buckets), dtype=np.int64)
        for g, bucket in enumerate(group_buckets):
            if self._chains[bucket]:
                occupied = self._tail_slots[bucket]
                if occupied < 0:
                    raise UnresolvedTailError(
                        f"bucket {bucket} has an unread tail page; "
                        "call resolve_tails() before planning"
                    )
                rems[g] = slots - occupied
        # Within-bucket rank of every entry, then the page-opening
        # entries: rank == rem, rem + slots, rem + 2*slots, ...
        ranks = np.arange(n, dtype=np.int64) - np.repeat(starts, sizes)
        rem_rep = np.repeat(rems, sizes)
        opens = (ranks >= rem_rep) & ((ranks - rem_rep) % slots == 0)
        # Allocation schedule in original input order -- the order the
        # sequential path reaches each page-opening entry.
        open_orig = order[opens]
        alloc_buckets = sorted_buckets[opens][np.argsort(open_orig)].tolist()
        # Materialize entries as the exact Python objects the
        # per-insert path stores: int fingerprints, caller's sids.
        sids_arr = np.asarray(sids, dtype=np.int64)
        all_entries = list(
            zip(fps[order].tolist(), sids_arr[order].tolist())
        )
        sizes_list = sizes.tolist()
        rems_list = rems.tolist()
        # Directory runs for fresh buckets: a second stable sort by
        # (bucket, fingerprint) makes every directory list a contiguous
        # slice (stable, so slices keep input order).  Bucket is the
        # primary key, so group boundaries coincide with ``bounds`` and
        # every group's runs are a contiguous run-index range -- each
        # directory then assembles at C speed from slice objects,
        # one dict store per distinct fingerprint instead of a
        # per-entry append loop.
        run_keys: list[int] = []
        run_s: list[int] = []
        run_e: list[int] = []
        grp_run = [0] * (len(group_buckets) + 1)
        get_run = [].__getitem__
        if any(not self._chains[b] for b in group_buckets):
            order2 = np.lexsort((fps, buckets))
            fp2 = fps[order2]
            get_run = sids_arr[order2].tolist().__getitem__
            b2 = buckets[order2]
            run_starts = np.flatnonzero(
                np.r_[True, (b2[1:] != b2[:-1]) | (fp2[1:] != fp2[:-1])]
            )
            run_keys = fp2[run_starts].tolist()
            run_s = run_starts.tolist()
            run_e = np.append(run_starts[1:], n).tolist()
            # Every group boundary starts a run, so side="left" lands
            # exactly on each group's first run index.
            grp_run = np.searchsorted(run_starts, bounds).tolist()
        groups: list[_BulkGroup] = []
        pos = 0
        for g, bucket in enumerate(group_buckets):
            size = sizes_list[g]
            entries = all_entries[pos : pos + size]
            pos += size
            directory: dict[int, list[int]] | None = None
            if not self._chains[bucket]:
                a, b = grp_run[g], grp_run[g + 1]
                directory = dict(
                    zip(
                        run_keys[a:b],
                        map(get_run, map(slice, run_s[a:b], run_e[a:b])),
                    )
                )
            tail_take = rems_list[g]
            if tail_take > size:
                tail_take = size
            groups.append(_BulkGroup(bucket, entries, tail_take, directory))
        return BulkLoadPlan(n, groups, alloc_buckets)

    def apply_bulk_load(self, plan: BulkLoadPlan) -> dict:
        """Replay a :meth:`plan_bulk_load` against the pager.

        Produces chains, page contents, directories, ``n_pages`` and
        write accounting identical to inserting the plan's entries one
        by one (one charged write per entry plus one per allocated
        page); fresh buckets come out with their directories already
        built.  Returns a small load report.
        """
        pager = self.pager
        slots = self.slots_per_page
        cursors: dict[int, int] = {}
        by_bucket: dict[int, _BulkGroup] = {}
        for group in plan.groups:
            take = group.tail_take
            if take:
                pager.peek(self._chains[group.bucket][-1]).slots.extend(
                    group.entries[:take]
                )
            cursors[group.bucket] = take
            by_bucket[group.bucket] = group
        for bucket in plan.alloc_buckets:
            page = pager.allocate(slots)
            self._chains[bucket].append(page.page_id)
            group = by_bucket[bucket]
            start = cursors[bucket]
            end = min(start + slots, len(group.entries))
            page.slots.extend(group.entries[start:end])
            cursors[bucket] = end
        # One charged write per entry, exactly as the per-insert loop
        # charges them (allocation writes were charged by allocate()).
        pager.io.write(plan.n_entries)
        for group in plan.groups:
            bucket = group.bucket
            self._tail_slots[bucket] = len(
                pager.peek(self._chains[bucket][-1]).slots
            )
            # Fresh buckets: install the eagerly built directory (a new
            # dict, so any frozen view keeps its own).  Buckets with
            # prior entries follow insert() and go stale.
            self._directory[bucket] = group.directory
        self._n_entries += plan.n_entries
        _BULK_ENTRIES.shard().count += plan.n_entries
        _BULK_PAGES.shard().count += len(plan.alloc_buckets)
        return {
            "entries": plan.n_entries,
            "new_pages": len(plan.alloc_buckets),
            "buckets": len(plan.groups),
        }

    def bulk_load(self, keys: Sequence[bytes], sids: Sequence[int]) -> dict:
        """Bulk-insert many (key, sid) entries in one partitioned pass.

        Equivalent -- in chains, page ids and contents, directories and
        I/O accounting -- to ``for key, sid in zip(keys, sids):
        self.insert(key, sid)``, but the keys are fingerprinted in one
        pass, partitioned by bucket with a single argsort, and each
        bucket's page chain is appended in one sweep with its
        fingerprint directory built eagerly.
        """
        return self.bulk_load_hashed(hash_keys(keys), sids)

    def bulk_load_hashed(
        self, fingerprints: np.ndarray, sids: Sequence[int]
    ) -> dict:
        """:meth:`bulk_load` for pre-computed ``hash_key`` fingerprints."""
        fps = np.ascontiguousarray(fingerprints, dtype=np.uint64)
        touched = np.unique(fps % np.uint64(self.n_buckets)).astype(np.int64)
        tail_reads = self.resolve_tails(touched.tolist())
        report = self.apply_bulk_load(self.plan_bulk_load(fps, sids))
        report["tail_reads"] = tail_reads
        return report

    def _bucket_directory(self, bucket: int) -> dict[int, list[int]]:
        """The bucket's fingerprint -> sids map, rebuilt if stale.

        Built from uncharged page peeks: the caller is responsible for
        charging the chain's reads (probes do), so the accounting is
        identical whether the memo is warm or cold.
        """
        directory = self._directory[bucket]
        if directory is None:
            directory = {}
            for page_id in self._chains[bucket]:
                for fp, sid in self.pager.peek(page_id).slots:
                    if fp in directory:
                        directory[fp].append(sid)
                    else:
                        directory[fp] = [sid]
            self._directory[bucket] = directory
        return directory

    def probe(self, key: bytes) -> list[int]:
        """Return the sids stored under ``key``.

        Charges one random read for the bucket's head page and one
        sequential read per overflow page.
        """
        bucket, fingerprint = self._bucket_of(key)
        chain = self._chains[bucket]
        for rank, page_id in enumerate(chain):
            self.pager.read(page_id, sequential=rank > 0)
        got = self._bucket_directory(bucket).get(fingerprint)
        # Per-thread shard adds, not .inc(): this runs once per table
        # per filter probe, and the extra method-call overhead is
        # measurable at query granularity.
        _PROBES.shard().count += 1
        _PROBE_PAGES.shard().count += len(chain)
        # Copy: callers own their result lists, the memo owns its own.
        return list(got) if got else []

    def probe_many(self, keys: list[bytes]) -> list[list[int]]:
        """Probe many keys, reading each touched bucket page once.

        The batch counterpart of :meth:`probe`: keys are grouped by
        bucket, every distinct bucket chain is read exactly once (head
        page random, overflow pages sequential, as in :meth:`probe`)
        and its entries are served to all keys of the group.  Result
        ``i`` equals ``probe(keys[i])``; the page-read total is never
        greater than the equivalent probe loop, and strictly smaller
        whenever two keys of the batch share a bucket.
        """
        results: list[list[int]] = [[] for _ in keys]
        by_bucket: dict[int, list[tuple[int, int]]] = {}
        # _bucket_of unrolled to a local alias: this loop runs once per
        # key per table and the extra call frame is measurable at batch
        # granularity.
        hk, n_buckets = hash_key, self.n_buckets
        for i, key in enumerate(keys):
            fingerprint = hk(key)
            bucket = fingerprint % n_buckets
            if bucket in by_bucket:
                by_bucket[bucket].append((i, fingerprint))
            else:
                by_bucket[bucket] = [(i, fingerprint)]
        pages_cell = _PROBE_PAGES.shard()
        saved_cell = _PROBE_PAGES_SAVED.shard()
        for bucket, members in by_bucket.items():
            chain = self._chains[bucket]
            for rank, page_id in enumerate(chain):
                self.pager.read(page_id, sequential=rank > 0)
            directory = self._bucket_directory(bucket)
            pages_cell.count += len(chain)
            saved_cell.count += len(chain) * (len(members) - 1)
            for i, fingerprint in members:
                got = directory.get(fingerprint)
                # Copy so callers own their lists (two keys of the batch
                # may share a fingerprint).
                results[i] = list(got) if got else []
        _PROBES.shard().count += len(keys)
        return results

    def delete(self, key: bytes, sid: int) -> bool:
        """Remove one (key, sid) entry; returns whether one was found."""
        bucket, fingerprint = self._bucket_of(key)
        chain = self._chains[bucket]
        target = (fingerprint, sid)
        for rank, page_id in enumerate(chain):
            page = self.pager.read(page_id, sequential=rank > 0)
            if target not in page.slots:
                continue
            index = page.slots.index(target)
            # Compact: move the chain's globally last entry into the hole.
            last_page = self.pager.read(chain[-1], sequential=True)
            moved = last_page.slots.pop()
            if not (page is last_page and index == len(last_page.slots)):
                # Unless the popped entry *was* the hole, fill the hole.
                page.slots[index] = moved
                self.pager.write(page.page_id)
            if not last_page.slots:
                self.pager.free(chain.pop())
                # The surviving tail was not touched here; forget its
                # fill state so the next insert re-reads it.
                self._tail_slots[bucket] = -1
            else:
                self.pager.write(last_page.page_id)
                self._tail_slots[bucket] = len(last_page.slots)
            self._n_entries -= 1
            self._directory[bucket] = None
            return True
        return False

    def bucket_occupancies(self) -> list[int]:
        """Entries stored per bucket (uncharged; statistics only)."""
        return [
            sum(len(self.pager.peek(page_id)) for page_id in chain)
            for chain in self._chains
        ]

    def load_stats(self) -> dict:
        """Occupancy and load-factor statistics for this table.

        Uses uncharged page peeks so reporting does not perturb the
        I/O accounting.  ``load_factor`` is entries over provisioned
        slots (buckets x slots per page); under the paper's
        "no bucket overflows" provisioning it stays below 1 and
        ``max_chain_pages`` stays at 1.
        """
        occupancies = self.bucket_occupancies()
        return {
            "n_buckets": self.n_buckets,
            "n_entries": self._n_entries,
            "n_pages": self.n_pages,
            "slots_per_page": self.slots_per_page,
            "load_factor": self._n_entries / (self.n_buckets * self.slots_per_page),
            "avg_occupancy": self._n_entries / self.n_buckets,
            "max_occupancy": max(occupancies, default=0),
            "nonempty_buckets": sum(1 for n in occupancies if n),
            "max_chain_pages": max(
                (len(chain) for chain in self._chains), default=0
            ),
        }

    def items(self):
        """Iterate over all (fingerprint, sid) entries (testing aid)."""
        for chain in self._chains:
            for page_id in chain:
                page = self.pager.read(page_id, sequential=True)
                yield from page.slots

    def freeze(self) -> "FrozenTableView":
        """A read-only probe view with every bucket directory pre-built.

        Warms the full fingerprint-directory memo (uncharged, like the
        memo itself) and snapshots the per-bucket chain lengths.  The
        view answers probes without touching the pager, charging the
        exact page reads :meth:`probe`/:meth:`probe_many` would have
        charged into a caller-supplied :class:`~repro.storage.iomodel.IOStats`
        -- the building block of a frozen index snapshot.  The view is
        only valid while the table does not mutate (frozen indexes
        refuse mutation, which is what makes sharing the directory
        dicts safe).
        """
        for bucket in range(self.n_buckets):
            self._bucket_directory(bucket)
        return FrozenTableView(
            self.n_buckets,
            [len(chain) for chain in self._chains],
            list(self._directory),
        )


class FrozenTableView:
    """Immutable bucket-directory image of one :class:`BucketHashTable`.

    Probes are pure dictionary lookups over the pre-built directories;
    page reads are *accounted* (into the ``io`` argument) rather than
    performed, with charges identical to the live table: per distinct
    bucket touched, one random read for the head page and sequential
    reads for overflow pages.  Safe for concurrent probing from many
    threads -- nothing is mutated except the caller's ``io`` and the
    calling thread's counter shards.
    """

    __slots__ = ("n_buckets", "chain_pages", "directories")

    def __init__(
        self,
        n_buckets: int,
        chain_pages: list[int],
        directories: list[dict[int, list[int]] | None],
    ):
        self.n_buckets = n_buckets
        self.chain_pages = chain_pages
        self.directories = directories

    def probe_many(self, keys: list[bytes], io) -> list[list[int]]:
        """Grouped batch probe, bit-equivalent to the live table's.

        Result ``i`` equals ``BucketHashTable.probe(keys[i])``; the
        reads charged to ``io`` (an :class:`~repro.storage.iomodel.IOStats`)
        and the module counters move exactly as
        :meth:`BucketHashTable.probe_many` would move them.
        """
        results: list[list[int]] = [[] for _ in keys]
        by_bucket: dict[int, list[tuple[int, int]]] = {}
        hk, n_buckets = hash_key, self.n_buckets
        for i, key in enumerate(keys):
            fingerprint = hk(key)
            bucket = fingerprint % n_buckets
            if bucket in by_bucket:
                by_bucket[bucket].append((i, fingerprint))
            else:
                by_bucket[bucket] = [(i, fingerprint)]
        pages_cell = _PROBE_PAGES.shard()
        saved_cell = _PROBE_PAGES_SAVED.shard()
        for bucket, members in by_bucket.items():
            pages = self.chain_pages[bucket]
            if pages:
                io.random_reads += 1
                io.sequential_reads += pages - 1
            directory = self.directories[bucket]
            pages_cell.count += pages
            saved_cell.count += pages * (len(members) - 1)
            for i, fingerprint in members:
                got = directory.get(fingerprint) if directory else None
                results[i] = list(got) if got else []
        _PROBES.shard().count += len(keys)
        return results
