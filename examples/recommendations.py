"""Collaborative-filtering recommendations over set-valued attributes.

The paper's motivating application (Section 1): a store tracks the set
of books each user bought; for a target user, retrieve users with
similar baskets and recommend what they bought that the target hasn't.

This example synthesizes users with genre-driven baskets, then:

1. finds the target's neighbourhood with ``query_above`` (high
   similarity -> taste twins);
2. scores candidate books by how many similar users own them;
3. runs the paper's *sale-mailing* variant: users 40-70% similar to
   the sale bundle own some, but not most, of it -- the right audience.

Run:  python examples/recommendations.py
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro import SetSimilarityIndex

N_USERS = 500
N_BOOKS = 960
N_GENRES = 12
BOOKS_PER_GENRE = N_BOOKS // N_GENRES
NEIGHBOUR_SIMILARITY = 0.2


def synthesize_users(rng: np.random.Generator) -> list[frozenset[int]]:
    """Users buy mostly within 1-2 favourite genres plus bestsellers."""
    bestsellers = rng.choice(N_BOOKS, size=40, replace=False)
    users = []
    for _ in range(N_USERS):
        genres = rng.choice(N_GENRES, size=rng.integers(1, 3), replace=False)
        basket: set[int] = set()
        for genre in genres:
            start = genre * BOOKS_PER_GENRE
            count = int(rng.integers(20, 45))
            basket.update(
                int(b) for b in start + rng.integers(0, BOOKS_PER_GENRE, size=count)
            )
        basket.update(int(b) for b in rng.choice(bestsellers, size=5, replace=False))
        users.append(frozenset(basket))
    return users


def main() -> None:
    rng = np.random.default_rng(42)
    users = synthesize_users(rng)
    index = SetSimilarityIndex.build(users, budget=200, recall_target=0.85, k=64, seed=3)
    print(f"indexed {len(users)} users "
          f"({index.plan.tables_used} hash tables, "
          f"expected recall {index.plan.expected_recall:.2f})")

    # --- 1. neighbourhood of a target user -------------------------------
    target = 0
    basket = users[target]
    neighbours = index.query_above(basket, NEIGHBOUR_SIMILARITY)
    peer_sids = [sid for sid, _ in neighbours.answers if sid != target]
    print(f"\nuser {target} owns {len(basket)} books; "
          f"{len(peer_sids)} peers at >= {NEIGHBOUR_SIMILARITY} similarity "
          f"({len(neighbours.candidates)} candidates fetched)")

    # --- 2. recommend unowned books popular among peers ------------------
    votes: Counter[int] = Counter()
    for sid in peer_sids:
        votes.update(users[sid] - basket)
    print("top recommendations (book id: peer owners):")
    for book, count in votes.most_common(5):
        print(f"  book {book}: {count}")

    # --- 3. the sale-mailing query ---------------------------------------
    # Promote one genre's catalogue; mail users who own SOME of it
    # (interested) but not MOST of it (they'd already have the books).
    sale_genre = 3
    sale_bundle = frozenset(
        range(sale_genre * BOOKS_PER_GENRE, sale_genre * BOOKS_PER_GENRE + 60)
    )
    audience = index.query(sale_bundle, 0.05, 0.40)
    print(f"\nsale bundle of {len(sale_bundle)} genre-{sale_genre} books: "
          f"{len(audience.answers)} users in the 5-40% similarity band")
    already_own = index.query_above(sale_bundle, 0.40)
    print(f"(skipped {len(already_own.answers)} users who own too much of it)")


if __name__ == "__main__":
    main()
