"""Zero-copy on-disk snapshots of a frozen index.

A pickle of the whole index (:mod:`repro.core.persistence`) costs a
full deserialization pass on every cold start -- O(index size) before
the first query can run, with every byte copied onto the Python heap.
This module instead serializes an
:class:`~repro.exec.snapshot.IndexSnapshot` as a **directory of aligned
raw numpy arrays** plus a small JSON manifest, so that
:func:`open_snapshot` only parses the manifest, unpickles a few small
parameter objects (embedder, plan, planner, bit samplers) and builds
``np.memmap`` views over one arrays file.  Opening is O(milliseconds)
regardless of collection size; array bytes are paged in lazily by the
OS as queries touch them, and every process that opens the same
snapshot shares one page cache -- the substrate of the
``backend="process"`` executor (:mod:`repro.exec.parallel`).

Layout of a snapshot directory::

    manifest.json   format name + version, per-array dtype/shape/
                    offset/crc32, cost-model constants, filter summary
    arrays.bin      every array, 64-byte aligned, in manifest order
    objects.pkl     small Python state: embedder, plan, planner,
                    per-filter samplers/thresholds (crc-checked)
    sets.pkl        only when set elements defy a columnar encoding

The arrays cover everything the hot path touches: the packed ``(N,
words)`` uint64 vector matrix, the CSR sorted-hash set arrays and set
sizes, the per-row measured fetch costs, per-table bucket directories
(chain page counts plus fingerprint runs in CSR form, served by
:class:`MmapTableView` with page charges identical to the live table),
and the set elements themselves (int64 or utf-8 CSR when the elements
allow it).  ``frozenset`` objects needed by the exact-verification
fallback are materialized lazily, one set at a time, memoized
(``snapshot.sets_materialized`` counts them -- a proxy for element
pages actually faulted in).

Integrity: structural checks (format, version, file sizes, offsets)
always run at open and catch truncation; per-array crc32 verification
is opt-in (``verify=True`` / :func:`verify_snapshot`) to keep opening
O(ms).  ``objects.pkl`` is always crc-checked before unpickling --- but
as with the pickle persistence, only open snapshots you trust.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import zlib
from pathlib import Path

import numpy as np

from repro.core.codec import CodecError, parse_codec
from repro.core.filter_index import FrozenFilterProbe
from repro.exec.snapshot import IndexSnapshot
from repro.obs import metrics, trace
from repro.storage.hashtable import hash_key
from repro.storage.iomodel import IOCostModel

FORMAT_NAME = "repro-ssi-snapshot"
#: v1: original layout.  v2: adds the ``codec`` manifest key (signature
#: codec of the vector matrix); v1 snapshots predate codecs and open as
#: ``full64``, which is bit-identical to the v1 layout.
FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

#: Byte alignment of every array in ``arrays.bin`` (cache-line sized,
#: and a multiple of every dtype's itemsize so views never misalign).
ALIGNMENT = 64

MANIFEST_FILE = "manifest.json"
ARRAYS_FILE = "arrays.bin"
OBJECTS_FILE = "objects.pkl"
SETS_FILE = "sets.pkl"

_SAVES = metrics.counter("snapshot.saves")
_OPENS = metrics.counter("snapshot.opens")
_ARRAYS_MAPPED = metrics.counter("snapshot.arrays_mapped")
_BYTES_MAPPED = metrics.counter("snapshot.bytes_mapped")
#: Lazy ``frozenset`` materializations -- each one touches (faults in)
#: that set's slice of the element arrays, so this is the mmap
#: page-fault proxy for the exact-verification fallback path.
_SETS_MATERIALIZED = metrics.counter("snapshot.sets_materialized")

# The same probe instruments the live and frozen tables move, so a
# mapped table's counter movements are indistinguishable from theirs.
_PROBES = metrics.counter("hashtable.probes")
_PROBE_PAGES = metrics.counter("hashtable.probe_pages")
_PROBE_PAGES_SAVED = metrics.counter("hashtable.probe_pages_saved")


class SnapshotError(RuntimeError):
    """A path is not a usable snapshot (missing/garbled files)."""


class SnapshotFormatError(SnapshotError):
    """The snapshot's format name or version is not one this build reads."""


class SnapshotIntegrityError(SnapshotError):
    """Stored bytes disagree with the manifest (truncation/corruption)."""


# -- the array pack layer (exposed for property tests) ---------------------


def write_arrays(path, arrays: dict[str, np.ndarray]) -> dict[str, dict]:
    """Write arrays back-to-back, ``ALIGNMENT``-aligned, to one file.

    Returns the manifest specs: per array name its dtype string, shape,
    byte offset, byte length and crc32, in file order.
    """
    specs: dict[str, dict] = {}
    offset = 0
    with open(path, "wb") as f:
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            pad = (-offset) % ALIGNMENT
            if pad:
                f.write(b"\x00" * pad)
                offset += pad
            data = array.tobytes()
            f.write(data)
            specs[name] = {
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": len(data),
                "crc32": zlib.crc32(data),
            }
            offset += len(data)
        f.flush()
        os.fsync(f.fileno())
    return specs


def open_arrays(path, specs: dict[str, dict], verify: bool = False) -> dict[str, np.ndarray]:
    """Map every spec'd array as a read-only view over one ``np.memmap``.

    Structural validation (offsets/lengths fit the file, lengths match
    dtype x shape) always runs; ``verify=True`` additionally checks
    every array's crc32 (reads all bytes -- no longer O(ms)).
    """
    size = os.path.getsize(path)
    buf = np.memmap(path, dtype=np.uint8, mode="r") if size else None
    arrays: dict[str, np.ndarray] = {}
    for name, spec in specs.items():
        dtype = np.dtype(spec["dtype"])
        shape = tuple(spec["shape"])
        nbytes = int(spec["nbytes"])
        offset = int(spec["offset"])
        want = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes != want:
            raise SnapshotFormatError(
                f"array {name!r}: {nbytes} bytes cannot hold "
                f"shape {shape} of {dtype} ({want} bytes)"
            )
        if offset + nbytes > size:
            raise SnapshotIntegrityError(
                f"array {name!r} extends to byte {offset + nbytes} but "
                f"{path} holds only {size}: truncated arrays file"
            )
        if nbytes == 0:
            arrays[name] = np.empty(shape, dtype=dtype)
            continue
        raw = buf[offset: offset + nbytes]
        if verify and zlib.crc32(raw) != spec["crc32"]:
            raise SnapshotIntegrityError(
                f"array {name!r} fails its checksum: snapshot is corrupt"
            )
        arrays[name] = raw.view(dtype).reshape(shape)
    return arrays


# -- mapped bucket directories ---------------------------------------------


class MmapTableView:
    """One hash table's bucket directory served from mapped arrays.

    The drop-in counterpart of
    :class:`~repro.storage.hashtable.FrozenTableView`: per bucket a
    chain page count, plus the bucket's fingerprint *runs* in CSR form
    -- ``run_fps[bucket_indptr[b]:bucket_indptr[b+1]]`` are the
    bucket's fingerprints sorted ascending, and run ``p`` owns sids
    ``run_sids[run_indptr[p]:run_indptr[p+1]]`` in insertion order.
    ``probe_many`` groups keys by bucket, binary-searches each
    fingerprint within its bucket's run slice, and charges page reads
    and module counters exactly as the live/frozen tables do.
    """

    __slots__ = (
        "n_buckets", "chain_pages", "bucket_indptr",
        "run_fps", "run_indptr", "run_sids",
    )

    def __init__(self, n_buckets, chain_pages, bucket_indptr,
                 run_fps, run_indptr, run_sids):
        self.n_buckets = n_buckets
        self.chain_pages = chain_pages
        self.bucket_indptr = bucket_indptr
        self.run_fps = run_fps
        self.run_indptr = run_indptr
        self.run_sids = run_sids

    def probe_many(self, keys: list[bytes], io) -> list[list[int]]:
        """Grouped batch probe, bit-equivalent to ``FrozenTableView``'s."""
        results: list[list[int]] = [[] for _ in keys]
        by_bucket: dict[int, list[tuple[int, int]]] = {}
        hk, n_buckets = hash_key, self.n_buckets
        for i, key in enumerate(keys):
            fingerprint = hk(key)
            bucket = fingerprint % n_buckets
            if bucket in by_bucket:
                by_bucket[bucket].append((i, fingerprint))
            else:
                by_bucket[bucket] = [(i, fingerprint)]
        pages_cell = _PROBE_PAGES.shard()
        saved_cell = _PROBE_PAGES_SAVED.shard()
        chain_pages, indptr = self.chain_pages, self.bucket_indptr
        run_fps, run_indptr, run_sids = self.run_fps, self.run_indptr, self.run_sids
        for bucket, members in by_bucket.items():
            pages = int(chain_pages[bucket])
            if pages:
                io.random_reads += 1
                io.sequential_reads += pages - 1
            pages_cell.count += pages
            saved_cell.count += pages * (len(members) - 1)
            a, b = int(indptr[bucket]), int(indptr[bucket + 1])
            if a == b:
                continue
            fps = run_fps[a:b]
            for i, fingerprint in members:
                pos = int(np.searchsorted(fps, np.uint64(fingerprint)))
                if pos < b - a and int(fps[pos]) == fingerprint:
                    run = a + pos
                    results[i] = run_sids[
                        int(run_indptr[run]): int(run_indptr[run + 1])
                    ].tolist()
        _PROBES.shard().count += len(keys)
        return results


def _table_arrays(view) -> dict[str, np.ndarray]:
    """Flatten one ``FrozenTableView``'s directories into the CSR run
    arrays :class:`MmapTableView` serves from."""
    n_buckets = view.n_buckets
    bucket_indptr = np.zeros(n_buckets + 1, dtype=np.int64)
    run_fps: list[int] = []
    run_lens: list[int] = []
    run_sids: list[int] = []
    for bucket in range(n_buckets):
        directory = view.directories[bucket] or {}
        items = sorted(directory.items())
        bucket_indptr[bucket + 1] = bucket_indptr[bucket] + len(items)
        for fingerprint, sids in items:
            run_fps.append(fingerprint)
            run_lens.append(len(sids))
            run_sids.extend(sids)
    run_indptr = np.zeros(len(run_fps) + 1, dtype=np.int64)
    if run_lens:
        np.cumsum(run_lens, out=run_indptr[1:])
    return {
        "chain_pages": np.asarray(view.chain_pages, dtype=np.int64),
        "bucket_indptr": bucket_indptr,
        "run_fps": np.array(run_fps, dtype=np.uint64),
        "run_indptr": run_indptr,
        "run_sids": np.array(run_sids, dtype=np.int64),
    }


_TABLE_FIELDS = ("chain_pages", "bucket_indptr", "run_fps", "run_indptr", "run_sids")


# -- set-element encodings -------------------------------------------------


def _encode_sets(sets_in_order: list[frozenset]):
    """Columnar encoding of the stored sets, if their elements allow it.

    Returns ``(encoding, arrays, sets_obj)``: ``"int64"``/``"utf8"``
    with CSR arrays when every element is a builtin int in int64 range
    / a builtin str, else ``"pickle"`` with the original dict shipped
    in ``sets.pkl`` (loaded lazily at serve time).
    """
    if all(
        type(e) is int and -(2 ** 63) <= e < 2 ** 63
        for s in sets_in_order for e in s
    ):
        indptr = np.zeros(len(sets_in_order) + 1, dtype=np.int64)
        if sets_in_order:
            np.cumsum([len(s) for s in sets_in_order], out=indptr[1:])
        data = np.empty(int(indptr[-1]), dtype=np.int64)
        for row, s in enumerate(sets_in_order):
            data[int(indptr[row]): int(indptr[row + 1])] = sorted(s)
        return "int64", {"elem_indptr": indptr, "elem_data": data}, None
    if all(type(e) is str for s in sets_in_order for e in s):
        indptr = np.zeros(len(sets_in_order) + 1, dtype=np.int64)
        if sets_in_order:
            np.cumsum([len(s) for s in sets_in_order], out=indptr[1:])
        encoded = [e.encode("utf-8") for s in sets_in_order for e in sorted(s)]
        str_indptr = np.zeros(len(encoded) + 1, dtype=np.int64)
        if encoded:
            np.cumsum([len(b) for b in encoded], out=str_indptr[1:])
        str_data = np.frombuffer(b"".join(encoded), dtype=np.uint8).copy()
        return "utf8", {
            "elem_indptr": indptr,
            "str_indptr": str_indptr,
            "str_data": str_data,
        }, None
    return "pickle", {}, dict(
        zip(range(len(sets_in_order)), sets_in_order)
    )


class _LazySets:
    """``sid -> frozenset`` mapping that materializes (and memoizes)
    each set on first access -- the exact-verification fallback touches
    only the sets it needs, so cold serving never pages in the whole
    element file."""

    __slots__ = ("_load", "_memo")

    def __init__(self, load):
        self._load = load
        self._memo: dict[int, frozenset] = {}

    def __getitem__(self, sid: int) -> frozenset:
        got = self._memo.get(sid)
        if got is None:
            got = self._memo[sid] = self._load(sid)
            _SETS_MATERIALIZED.inc()
        return got


# -- the mapped snapshot ---------------------------------------------------


class MappedSnapshot(IndexSnapshot):
    """An :class:`~repro.exec.snapshot.IndexSnapshot` whose bulk state
    lives in ``np.memmap`` views over one snapshot directory.

    Query semantics, page charges and counter movements are identical
    to a live ``index.freeze()`` snapshot -- the executor equivalence
    suites run unchanged over either.  Derived Python objects the hot
    path needs (`row_of`, `all_sids`, the fallback ``frozenset``
    objects) are built lazily on first use and cached; concurrent first
    touches from the thread backend may build one twice, but the
    results are identical so the race is benign.
    """

    @property
    def n_sets(self) -> int:
        return int(self.sid_array.shape[0])

    @property
    def sids(self) -> list[int]:
        got = self.__dict__.get("_sids")
        if got is None:
            got = self.__dict__["_sids"] = self.sid_array.tolist()
        return got

    @property
    def row_of(self) -> dict[int, int]:
        got = self.__dict__.get("_row_of")
        if got is None:
            got = self.__dict__["_row_of"] = {
                sid: row for row, sid in enumerate(self.sids)
            }
        return got

    @property
    def all_sids(self) -> frozenset:
        got = self.__dict__.get("_all_sids")
        if got is None:
            got = self.__dict__["_all_sids"] = frozenset(self.sids)
        return got

    @property
    def fallback_sids(self) -> frozenset:
        got = self.__dict__.get("_fallback_sids")
        if got is None:
            got = self.__dict__["_fallback_sids"] = frozenset(
                self.fallback_array.tolist()
            )
        return got

    @property
    def sets(self) -> _LazySets:
        got = self.__dict__.get("_sets")
        if got is None:
            got = self.__dict__["_sets"] = _LazySets(self._set_loader())
        return got

    def _set_loader(self):
        encoding = self.sets_encoding
        if encoding == "int64":
            indptr, data, row_of = self.elem_indptr, self.elem_data, self.row_of

            def load(sid: int) -> frozenset:
                row = row_of[sid]
                return frozenset(
                    data[int(indptr[row]): int(indptr[row + 1])].tolist()
                )
        elif encoding == "utf8":
            indptr, row_of = self.elem_indptr, self.row_of
            str_indptr, str_data = self.str_indptr, self.str_data

            def load(sid: int) -> frozenset:
                row = row_of[sid]
                return frozenset(
                    str_data[int(str_indptr[e]): int(str_indptr[e + 1])]
                    .tobytes().decode("utf-8")
                    for e in range(int(indptr[row]), int(indptr[row + 1]))
                )
        elif encoding == "pickle":
            path, row_of = self.path, self.row_of
            memo: dict = {}

            def load(sid: int) -> frozenset:
                if not memo:
                    blob = (Path(path) / SETS_FILE).read_bytes()
                    memo.update(pickle.loads(blob))
                return memo[row_of[sid]]
        else:
            raise SnapshotFormatError(f"unknown sets encoding: {encoding!r}")
        return load

    def __repr__(self) -> str:
        return (
            f"MappedSnapshot(path={str(self.path)!r}, n_sets={self.n_sets}, "
            f"sfis={len(self.sfis)}, dfis={len(self.dfis)})"
        )


# -- save / open -----------------------------------------------------------


def save_snapshot(snapshot: IndexSnapshot, path) -> Path:
    """Serialize a frozen snapshot as a mapped-array directory.

    ``snapshot`` is an ``index.freeze()`` image (a
    :class:`MappedSnapshot` cannot be re-saved; save from the live
    index it came from).  The manifest is written last, atomically, so
    a crashed save never leaves an openable half-snapshot.
    """
    if isinstance(snapshot, MappedSnapshot):
        raise SnapshotError(
            "cannot re-save a mapped snapshot; save from a live index.freeze()"
        )
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    with trace.span("snapshot_save", path=str(path)) as sp:
        sids = snapshot.sids
        arrays: dict[str, np.ndarray] = {
            "sid_array": np.asarray(sids, dtype=np.int64),
            "vector_matrix": snapshot.vector_matrix,
            "set_indptr": snapshot.set_indptr,
            "set_data": snapshot.set_data,
            "set_sizes": snapshot.set_sizes,
            "fetch_random": snapshot.fetch_random,
            "fetch_seq": snapshot.fetch_seq,
            "fallback_array": np.asarray(
                sorted(snapshot.fallback_sids), dtype=np.int64
            ),
        }
        filters = (
            [("sfi", p) for p in sorted(snapshot.sfis)]
            + [("dfi", p) for p in sorted(snapshot.dfis)]
        )
        filter_meta: list[dict] = []
        filter_objects: list[dict] = []
        for i, (kind, point) in enumerate(filters):
            fp = snapshot.filter_probe(kind, point)
            n_buckets: list[int] = []
            for t, view in enumerate(fp.tables):
                for field, array in _table_arrays(view).items():
                    arrays[f"f{i:03d}_t{t:03d}_{field}"] = array
                n_buckets.append(view.n_buckets)
            filter_meta.append({
                "kind": kind, "point": point, "threshold": fp.threshold,
                "sigma_point": fp.sigma_point, "r": fp.r, "l": fp.n_tables,
            })
            filter_objects.append({
                "kind": kind, "point": point, "threshold": fp.threshold,
                "sigma_point": fp.sigma_point, "r": fp.r,
                "n_bits": fp.n_bits, "complement_query": fp.complement_query,
                "samplers": fp.samplers, "n_buckets": n_buckets,
            })
        encoding, set_arrays, sets_obj = _encode_sets(
            [snapshot.sets[sid] for sid in sids]
        )
        arrays.update(set_arrays)
        specs = write_arrays(path / ARRAYS_FILE, arrays)
        objects_blob = pickle.dumps(
            {
                "embedder": snapshot.embedder,
                "plan": snapshot.plan,
                "planner": snapshot.planner,
                "filters": filter_objects,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        (path / OBJECTS_FILE).write_bytes(objects_blob)
        manifest = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "codec": getattr(snapshot.embedder, "codec", "full64"),
            "n_sets": len(sids),
            "n_bits": snapshot.n_bits,
            "scan_pages": snapshot.scan_pages,
            "cost": {
                "seq_cost": snapshot.cost.seq_cost,
                "random_cost": snapshot.cost.random_cost,
                "cpu_cost": snapshot.cost.cpu_cost,
            },
            "sets_encoding": encoding,
            "objects_crc32": zlib.crc32(objects_blob),
            "arrays_bytes": os.path.getsize(path / ARRAYS_FILE),
            "filters": filter_meta,
            "arrays": specs,
        }
        if sets_obj is not None:
            sets_blob = pickle.dumps(sets_obj, protocol=pickle.HIGHEST_PROTOCOL)
            (path / SETS_FILE).write_bytes(sets_blob)
            manifest["sets_crc32"] = zlib.crc32(sets_blob)
        # Commit point: the manifest names everything, so a snapshot
        # either opens completely or (no/partial manifest) not at all.
        fd, tmp = tempfile.mkstemp(dir=path, prefix=MANIFEST_FILE + ".", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(manifest, f, indent=1)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path / MANIFEST_FILE)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if sp.recording:
            sp.set(
                n_arrays=len(specs),
                arrays_bytes=manifest["arrays_bytes"],
                n_sets=len(sids),
                sets_encoding=encoding,
            )
    _SAVES.inc()
    return path


def open_snapshot(path, verify: bool = False) -> MappedSnapshot:
    """Map a snapshot directory written by :func:`save_snapshot`.

    O(ms) regardless of collection size: only the manifest and the
    small object pickle are read eagerly; every array is an
    ``np.memmap`` view paged in on use.  ``verify=True`` additionally
    checksums every array (reads everything).
    """
    path = Path(path)
    manifest_path = path / MANIFEST_FILE
    if not manifest_path.is_file():
        raise SnapshotError(
            f"{path} is not a snapshot directory (no {MANIFEST_FILE})"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotFormatError(f"{manifest_path} is not valid JSON: {exc}") from exc
    if manifest.get("format") != FORMAT_NAME:
        raise SnapshotFormatError(
            f"{path} is not a {FORMAT_NAME} snapshot "
            f"(format={manifest.get('format')!r})"
        )
    if manifest.get("version") not in _SUPPORTED_VERSIONS:
        raise SnapshotFormatError(
            f"{path} has snapshot format version {manifest.get('version')}; "
            f"this build reads {_SUPPORTED_VERSIONS}"
        )
    # v1 snapshots predate the codec layer; their vector matrix is the
    # full64 layout by construction.  Unknown tags fail loudly here so
    # a stale reader never misinterprets packed bytes.
    codec_tag = manifest.get("codec", "full64")
    try:
        codec_spec = parse_codec(codec_tag)
    except CodecError as exc:
        raise SnapshotFormatError(
            f"{path} uses unsupported signature codec {codec_tag!r}: {exc}"
        ) from exc
    with trace.span("snapshot_open", path=str(path), verify=verify) as sp:
        arrays_path = path / ARRAYS_FILE
        if not arrays_path.is_file():
            raise SnapshotIntegrityError(f"{path} is missing {ARRAYS_FILE}")
        size = os.path.getsize(arrays_path)
        if size != manifest["arrays_bytes"]:
            raise SnapshotIntegrityError(
                f"{arrays_path} holds {size} bytes, manifest expects "
                f"{manifest['arrays_bytes']}: truncated or rewritten"
            )
        arrays = open_arrays(arrays_path, manifest["arrays"], verify=verify)
        objects_blob = (path / OBJECTS_FILE).read_bytes()
        if zlib.crc32(objects_blob) != manifest["objects_crc32"]:
            raise SnapshotIntegrityError(
                f"{path / OBJECTS_FILE} fails its checksum: snapshot is corrupt"
            )
        objects = pickle.loads(objects_blob)
        embedder_codec = getattr(objects["embedder"], "codec", "full64")
        if parse_codec(embedder_codec).name != codec_spec.name:
            raise SnapshotFormatError(
                f"{path} manifest declares codec {codec_spec.name!r} but its "
                f"embedder uses {embedder_codec!r}: snapshot is inconsistent"
            )
        if manifest["sets_encoding"] == "pickle":
            sets_path = path / SETS_FILE
            if not sets_path.is_file():
                raise SnapshotIntegrityError(f"{path} is missing {SETS_FILE}")
            if verify and zlib.crc32(sets_path.read_bytes()) != manifest["sets_crc32"]:
                raise SnapshotIntegrityError(
                    f"{sets_path} fails its checksum: snapshot is corrupt"
                )
        cost_spec = manifest["cost"]
        sfis: dict[float, FrozenFilterProbe] = {}
        dfis: dict[float, FrozenFilterProbe] = {}
        for i, fo in enumerate(objects["filters"]):
            tables = []
            for t, n_buckets in enumerate(fo["n_buckets"]):
                prefix = f"f{i:03d}_t{t:03d}_"
                tables.append(MmapTableView(
                    n_buckets, *(arrays[prefix + field] for field in _TABLE_FIELDS)
                ))
            probe = FrozenFilterProbe(
                fo["kind"], fo["threshold"], fo["sigma_point"], fo["r"],
                fo["n_bits"], fo["samplers"], tables, fo["complement_query"],
            )
            (sfis if fo["kind"] == "sfi" else dfis)[fo["point"]] = probe
        state = {
            "path": path,
            "manifest": manifest,
            "sets_encoding": manifest["sets_encoding"],
            "embedder": objects["embedder"],
            "plan": objects["plan"],
            "planner": objects["planner"],
            "cost": IOCostModel(
                seq_cost=cost_spec["seq_cost"],
                random_cost=cost_spec["random_cost"],
                cpu_cost=cost_spec["cpu_cost"],
            ),
            "n_bits": manifest["n_bits"],
            "scan_pages": manifest["scan_pages"],
            "sfis": sfis,
            "dfis": dfis,
            "sid_array": arrays["sid_array"],
            "vector_matrix": arrays["vector_matrix"],
            "set_indptr": arrays["set_indptr"],
            "set_data": arrays["set_data"],
            "set_sizes": arrays["set_sizes"],
            "fetch_random": arrays["fetch_random"],
            "fetch_seq": arrays["fetch_seq"],
            "fallback_array": arrays["fallback_array"],
        }
        for field in ("elem_indptr", "elem_data", "str_indptr", "str_data"):
            if field in arrays:
                state[field] = arrays[field]
        snap = MappedSnapshot(**state)
        mapped_bytes = sum(int(s["nbytes"]) for s in manifest["arrays"].values())
        if sp.recording:
            sp.set(
                n_arrays=len(arrays),
                bytes_mapped=mapped_bytes,
                n_sets=snap.n_sets,
                sets_encoding=manifest["sets_encoding"],
            )
    _OPENS.inc()
    _ARRAYS_MAPPED.inc(len(arrays))
    _BYTES_MAPPED.inc(mapped_bytes)
    return snap


def verify_snapshot(path) -> dict:
    """Fully checksum a snapshot; returns a summary dict or raises."""
    snap = open_snapshot(path, verify=True)
    manifest = snap.manifest
    return {
        "path": str(path),
        "n_sets": snap.n_sets,
        "n_arrays": len(manifest["arrays"]),
        "arrays_bytes": manifest["arrays_bytes"],
        "sets_encoding": manifest["sets_encoding"],
        "filters": len(manifest["filters"]),
    }


#: ``byte_breakdown`` group of each fixed-name array.  Bucket directory
#: arrays (``f###_t###_*``) are grouped by prefix instead.
_BREAKDOWN_GROUPS = {
    "vector_matrix": "signatures",
    "set_indptr": "verify_csr",
    "set_data": "verify_csr",
    "set_sizes": "verify_csr",
    "elem_indptr": "verify_csr",
    "elem_data": "verify_csr",
    "str_indptr": "verify_csr",
    "str_data": "verify_csr",
    "fallback_array": "verify_csr",
    "sid_array": "other",
    "fetch_random": "other",
    "fetch_seq": "other",
}


def byte_breakdown(manifest: dict) -> dict:
    """Per-group byte accounting of a snapshot's mapped arrays.

    Groups the manifest's array specs into the buckets that matter for
    capacity planning -- the packed signature matrix (what the codec
    compresses), the CSR verify arrays (exact columnar verification),
    and the bucket directories (filter tables) -- and derives
    bytes-per-set figures.  Pure manifest arithmetic; nothing is
    mapped or read.
    """
    groups = {"signatures": 0, "verify_csr": 0, "buckets": 0, "other": 0}
    for name, spec in manifest["arrays"].items():
        group = _BREAKDOWN_GROUPS.get(name)
        if group is None:
            group = "buckets" if name.startswith("f") and "_t" in name else "other"
        groups[group] += int(spec["nbytes"])
    n_sets = int(manifest["n_sets"])
    total = int(manifest["arrays_bytes"])
    # Alignment padding between arrays is real file bytes; charge it to
    # "other" so the groups partition the total exactly.
    groups["other"] += total - sum(groups.values())
    return {
        "codec": manifest.get("codec", "full64"),
        "n_sets": n_sets,
        "total_bytes": total,
        "groups": groups,
        "bytes_per_set": total / n_sets if n_sets else 0.0,
        "signature_bytes_per_set": (
            groups["signatures"] / n_sets if n_sets else 0.0
        ),
    }
