"""Unit tests for the SFI and DFI structures (Sections 4.1-4.2)."""

import numpy as np
import pytest

from repro.core.filter_index import DissimilarityFilterIndex, SimilarityFilterIndex
from repro.hamming.bitvector import complement, pack_bits
from repro.storage.iomodel import IOCostModel
from repro.storage.pager import PageManager


def _pager():
    return PageManager(IOCostModel())


def _random_vectors(n, n_bits, seed=0):
    rng = np.random.default_rng(seed)
    return pack_bits(rng.integers(0, 2, size=(n, n_bits)).astype(np.uint8))


def _perturb(vector, n_bits, flips, seed=0):
    rng = np.random.default_rng(seed)
    bits = np.unpackbits(
        vector.view(np.uint8), bitorder="little"
    )[:n_bits].copy()
    for pos in rng.choice(n_bits, size=flips, replace=False):
        bits[pos] ^= 1
    return pack_bits(bits)


class TestSimilarityFilterIndex:
    def test_identical_vector_always_found(self):
        """A stored vector equal to the query collides in every table."""
        n_bits = 256
        sfi = SimilarityFilterIndex(0.8, 4, n_bits, _pager(), seed=1)
        vectors = _random_vectors(10, n_bits)
        for sid in range(10):
            sfi.insert(vectors[sid], sid)
        for sid in range(10):
            assert sid in sfi.probe(vectors[sid])

    def test_r_solves_threshold(self):
        sfi = SimilarityFilterIndex(0.9, 16, 512, _pager())
        assert sfi.r >= 1
        assert sfi.filter.l == 16

    def test_similar_found_dissimilar_not(self):
        n_bits = 1024
        sfi = SimilarityFilterIndex(0.85, 24, n_bits, _pager(), seed=3)
        base = _random_vectors(1, n_bits, seed=4)[0]
        near = _perturb(base, n_bits, flips=20, seed=5)    # ~0.98 similar
        far = _perturb(base, n_bits, flips=512, seed=6)    # ~0.5 similar
        sfi.insert(near, 1)
        sfi.insert(far, 2)
        hits = sfi.probe(base)
        assert 1 in hits
        assert 2 not in hits

    def test_insert_many_matches_inserts(self):
        n_bits = 128
        vectors = _random_vectors(6, n_bits, seed=7)
        a = SimilarityFilterIndex(0.7, 8, n_bits, _pager(), seed=9)
        b = SimilarityFilterIndex(0.7, 8, n_bits, _pager(), seed=9)
        a.insert_many(vectors, list(range(6)))
        for sid in range(6):
            b.insert(vectors[sid], sid)
        for sid in range(6):
            assert a.probe(vectors[sid]) == b.probe(vectors[sid])

    def test_insert_many_validates_lengths(self):
        sfi = SimilarityFilterIndex(0.7, 2, 64, _pager())
        with pytest.raises(ValueError):
            sfi.insert_many(_random_vectors(3, 64), [1, 2])

    def test_insert_many_empty(self):
        sfi = SimilarityFilterIndex(0.7, 2, 64, _pager())
        sfi.insert_many(np.empty((0, 1), dtype=np.uint64), [])
        assert sfi.n_entries == 0

    def test_delete_removes(self):
        n_bits = 256
        sfi = SimilarityFilterIndex(0.8, 6, n_bits, _pager(), seed=11)
        v = _random_vectors(1, n_bits, seed=12)[0]
        sfi.insert(v, 42)
        assert 42 in sfi.probe(v)
        sfi.delete(v, 42)
        assert 42 not in sfi.probe(v)
        assert sfi.n_entries == 0

    def test_probe_accounts_io(self):
        pager = _pager()
        n_bits = 128
        sfi = SimilarityFilterIndex(0.8, 5, n_bits, pager, seed=13)
        v = _random_vectors(1, n_bits, seed=14)[0]
        sfi.insert(v, 0)
        before = pager.io.snapshot()
        sfi.probe(v)
        delta = pager.io.snapshot() - before
        # One bucket (>= its head page) per table.
        assert delta.random_reads >= 5

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SimilarityFilterIndex(0.0, 4, 64, _pager())
        with pytest.raises(ValueError):
            SimilarityFilterIndex(1.0, 4, 64, _pager())
        with pytest.raises(ValueError):
            SimilarityFilterIndex(0.5, 0, 64, _pager())

    def test_collision_rate_matches_filter_function(self):
        """Empirical hit rate ~ p_{r,l}(s) for vectors at similarity s."""
        n_bits = 2048
        threshold, l = 0.75, 8
        sfi = SimilarityFilterIndex(threshold, l, n_bits, _pager(), seed=15)
        base = _random_vectors(1, n_bits, seed=16)[0]
        s = 0.9
        flips = int(n_bits * (1 - s))
        n_vectors = 300
        for sid in range(n_vectors):
            sfi.insert(_perturb(base, n_bits, flips, seed=100 + sid), sid)
        hits = len(sfi.probe(base))
        expected = sfi.filter(s)
        assert abs(hits / n_vectors - expected) < 0.12


class TestDissimilarityFilterIndex:
    def test_dissimilar_found_similar_not(self):
        n_bits = 1024
        dfi = DissimilarityFilterIndex(0.6, 24, n_bits, _pager(), seed=21)
        base = _random_vectors(1, n_bits, seed=22)[0]
        near = _perturb(base, n_bits, flips=50, seed=23)    # ~0.95 similar
        far = _perturb(base, n_bits, flips=900, seed=24)    # ~0.12 similar
        dfi.insert(near, 1)
        dfi.insert(far, 2)
        hits = dfi.probe(base)
        assert 2 in hits
        assert 1 not in hits

    def test_complement_always_found(self):
        """The complement of the query is maximally dissimilar."""
        n_bits = 256
        dfi = DissimilarityFilterIndex(0.3, 6, n_bits, _pager(), seed=25)
        q = _random_vectors(1, n_bits, seed=26)[0]
        dfi.insert(complement(q, n_bits), 7)
        assert 7 in dfi.probe(q)

    def test_theorem2_equivalence(self):
        """DFI(s*).probe(q) == SFI(1-s*).probe(~q) with matching seeds."""
        n_bits = 512
        pager_a, pager_b = _pager(), _pager()
        dfi = DissimilarityFilterIndex(0.4, 8, n_bits, pager_a, seed=31)
        sfi = SimilarityFilterIndex(0.6, 8, n_bits, pager_b, seed=31)
        vectors = _random_vectors(20, n_bits, seed=32)
        for sid in range(20):
            dfi.insert(vectors[sid], sid)
            sfi.insert(vectors[sid], sid)
        q = _random_vectors(1, n_bits, seed=33)[0]
        assert dfi.probe(q) == sfi.probe(complement(q, n_bits))

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DissimilarityFilterIndex(0.0, 4, 64, _pager())

    def test_insert_delete_roundtrip(self):
        n_bits = 256
        dfi = DissimilarityFilterIndex(0.5, 4, n_bits, _pager(), seed=41)
        v = _random_vectors(1, n_bits, seed=42)[0]
        dfi.insert(v, 5)
        dfi.delete(v, 5)
        assert 5 not in dfi.probe(complement(v, n_bits))
        assert dfi.n_entries == 0

    def test_properties_exposed(self):
        dfi = DissimilarityFilterIndex(0.4, 8, 128, _pager())
        assert dfi.n_tables == 8
        assert dfi.r == dfi.filter.r
        assert "0.4" in repr(dfi)


class TestInsertMany:
    """Validation and equivalence of the vectorized bulk entry point."""

    def _pair(self, n_bits=256, n_tables=4, seed=51):
        a = SimilarityFilterIndex(0.6, n_tables, n_bits, _pager(), seed=seed)
        b = SimilarityFilterIndex(0.6, n_tables, n_bits, _pager(), seed=seed)
        return a, b

    def test_bulk_equals_insert_method(self):
        n_bits = 256
        a, b = self._pair(n_bits)
        matrix = _random_vectors(30, n_bits, seed=52)
        sids = list(range(30))
        a.insert_many(matrix, sids, method="bulk")
        b.insert_many(matrix, sids, method="insert")
        io_a = a._tables[0].pager.io.snapshot()
        io_b = b._tables[0].pager.io.snapshot()
        assert io_a.as_dict() == io_b.as_dict()
        q = _random_vectors(1, n_bits, seed=53)[0]
        assert a.probe(q) == b.probe(q)
        assert a.n_entries == b.n_entries

    def test_duplicate_sids_raise(self):
        sfi, _ = self._pair()
        matrix = _random_vectors(3, 256, seed=54)
        with pytest.raises(ValueError, match="duplicate sids"):
            sfi.insert_many(matrix, [1, 2, 1])
        assert sfi.n_entries == 0  # nothing was half-applied

    def test_shape_mismatch_raises(self):
        sfi, _ = self._pair()
        matrix = _random_vectors(3, 256, seed=55)
        with pytest.raises(ValueError, match="rows"):
            sfi.insert_many(matrix, [1, 2])

    def test_unknown_method_raises(self):
        sfi, _ = self._pair()
        matrix = _random_vectors(2, 256, seed=56)
        with pytest.raises(ValueError, match="method"):
            sfi.insert_many(matrix, [1, 2], method="turbo")

    def test_empty_matrix_is_a_noop(self):
        sfi, _ = self._pair()
        matrix = _random_vectors(4, 256, seed=57)[:0]
        before = sfi._tables[0].pager.io.snapshot()
        sfi.insert_many(matrix, [])
        assert sfi.n_entries == 0
        assert sfi._tables[0].pager.io.snapshot().as_dict() == before.as_dict()

    def test_non_contiguous_matrix_accepted(self):
        n_bits = 256
        a, b = self._pair(n_bits)
        full = _random_vectors(20, n_bits, seed=58)
        strided = full[::2]
        assert not strided.flags["C_CONTIGUOUS"]
        a.insert_many(strided, list(range(10)))
        b.insert_many(np.ascontiguousarray(strided), list(range(10)))
        q = _random_vectors(1, n_bits, seed=59)[0]
        assert a.probe(q) == b.probe(q)
        fortran = np.asfortranarray(full[:10])
        c = SimilarityFilterIndex(0.6, 4, n_bits, _pager(), seed=51)
        c.insert_many(fortran, list(range(10)))
        d = SimilarityFilterIndex(0.6, 4, n_bits, _pager(), seed=51)
        d.insert_many(np.ascontiguousarray(full[:10]), list(range(10)))
        assert c.probe(q) == d.probe(q)

    def test_dfi_delegates(self):
        n_bits = 256
        dfi = DissimilarityFilterIndex(0.4, 4, n_bits, _pager(), seed=61)
        matrix = _random_vectors(5, n_bits, seed=62)
        with pytest.raises(ValueError, match="duplicate sids"):
            dfi.insert_many(matrix, [0, 0, 1, 2, 3])
        dfi.insert_many(matrix, list(range(5)))
        assert dfi.n_entries == 5
        units = dfi.table_units()
        assert len(units) == 4
