"""Experiment harness reproducing the paper's evaluation (Section 6).

* :mod:`repro.eval.harness` -- runs a query workload against the index
  and the sequential-scan baseline, scoring recall/precision against an
  exact oracle and bucketing by candidate-result size.
* :mod:`repro.eval.experiments` -- one driver per paper artifact
  (Fig. 6(a), Fig. 6(b), Fig. 7(a), Fig. 7(b), the crossover estimate,
  Example 1) plus the ablations DESIGN.md calls out.
* :mod:`repro.eval.report` -- plain-text table formatting shared by the
  drivers and the benchmark harness.
"""

from repro.eval.harness import BucketSummary, ExperimentHarness, QueryRecord
from repro.eval.report import format_table

__all__ = [
    "BucketSummary",
    "ExperimentHarness",
    "QueryRecord",
    "format_table",
]
