"""ASCII rendering of the paper's bar figures.

The evaluation tables are the data; these helpers render them the way
the paper presents them -- grouped bars per result-size bucket -- using
nothing but text, so benchmark output and EXPERIMENTS.md can show the
*shape* of Fig. 6 and Fig. 7 without a plotting dependency.
"""

from __future__ import annotations

from typing import Sequence

#: Width of the bar area in characters.
BAR_WIDTH = 40


def ascii_bars(
    labels: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = BAR_WIDTH,
    fmt: str = "{:.3f}",
) -> str:
    """Grouped horizontal bar chart.

    ``labels`` name the groups (rows); ``series`` maps a series name to
    one value per group.  Bars share a common scale (the max across all
    series), NaNs render as empty groups.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for {len(labels)} labels"
            )
    finite = [
        v
        for values in series.values()
        for v in values
        if v == v  # filters NaN
    ]
    peak = max(finite, default=0.0)
    label_width = max((len(l) for l in labels), default=0)
    name_width = max((len(n) for n in series), default=0)
    lines = []
    for i, label in enumerate(labels):
        for j, (name, values) in enumerate(series.items()):
            value = values[i]
            prefix = (label if j == 0 else "").ljust(label_width)
            if value != value:  # NaN
                lines.append(f"{prefix}  {name.ljust(name_width)}  (no queries)")
                continue
            filled = 0 if peak == 0 else round(width * value / peak)
            bar = "#" * filled
            lines.append(
                f"{prefix}  {name.ljust(name_width)}  {bar} {fmt.format(value)}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def fig6_ascii(summaries) -> str:
    """Fig. 6-style precision/recall bars from BucketSummary rows."""
    labels = [s.label for s in summaries]
    return ascii_bars(
        labels,
        {
            "precision": [s.precision for s in summaries],
            "recall": [s.recall for s in summaries],
        },
    )


def fig7_ascii(summaries) -> str:
    """Fig. 7-style response-time bars (scan vs index) per bucket."""
    labels = [s.label for s in summaries]
    return ascii_bars(
        labels,
        {
            "scan": [s.scan_time for s in summaries],
            "index": [s.index_time for s in summaries],
        },
        fmt="{:,.0f}",
    )
