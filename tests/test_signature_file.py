"""Tests for the signature-file baseline (Section 7 related work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.signature_file import SignatureFile
from repro.core.similarity import jaccard

small_sets = st.frozensets(st.integers(0, 50), min_size=1, max_size=12)


class TestEncoding:
    def test_signature_shape(self):
        sf = SignatureFile(f=512, w=4)
        assert sf.encode({1, 2, 3}).shape == (8,)

    def test_deterministic(self):
        sf = SignatureFile(f=256, w=3)
        assert np.array_equal(sf.encode({1, 2}), sf.encode({2, 1}))

    def test_superset_signature_covers_subset(self):
        sf = SignatureFile(f=256, w=3)
        small = sf.encode({1, 2})
        big = sf.encode({1, 2, 3, 4})
        assert np.all((big & small) == small)

    def test_at_most_w_bits_per_element(self):
        sf = SignatureFile(f=1024, w=5)
        signature = sf.encode({42})
        assert int(np.bitwise_count(signature).sum()) <= 5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SignatureFile(f=0)
        with pytest.raises(ValueError):
            SignatureFile(w=0)


class TestSubsetQueries:
    def test_no_false_negatives(self):
        """The defining guarantee of superimposed coding."""
        sf = SignatureFile(f=256, w=3)
        sets = [frozenset({1, 2, 3, 4}), frozenset({3, 4, 5}), frozenset({9})]
        sf.insert_many(sets)
        hits = sf.subset_candidates({3, 4})
        assert 0 in hits and 1 in hits  # both contain {3, 4}

    @given(st.lists(small_sets, min_size=1, max_size=10), small_sets)
    @settings(max_examples=40, deadline=None)
    def test_no_false_negatives_property(self, sets, query):
        sf = SignatureFile(f=512, w=4)
        sf.insert_many(sets)
        hits = set(sf.subset_candidates(query))
        for sid, stored in enumerate(sets):
            if query <= stored:
                assert sid in hits

    def test_false_positives_possible_with_tiny_signature(self):
        """Cramming many elements into few bits saturates signatures."""
        sf = SignatureFile(f=8, w=4)
        sf.insert(frozenset(range(100)))  # signature ~ all ones
        hits = sf.subset_candidates({123456})
        assert hits == [0]  # a false positive: 123456 is not stored

    def test_scan_charges_sequential_io(self):
        sf = SignatureFile(f=512, w=4)
        sf.insert_many([frozenset({i}) for i in range(100)])
        before = sf.io.snapshot()
        sf.subset_candidates({1})
        delta = sf.io.snapshot() - before
        assert delta.sequential_reads == sf.n_pages
        assert delta.random_reads == 0


class TestSimilarityScreen:
    def test_identical_sets_pass_any_threshold(self):
        sf = SignatureFile(f=512, w=4)
        sf.insert({1, 2, 3})
        assert sf.similarity_screen({1, 2, 3}, 1.0) == [0]

    def test_disjoint_sets_fail_high_threshold(self):
        sf = SignatureFile(f=2048, w=2)
        sf.insert(frozenset(range(10)))
        assert sf.similarity_screen(frozenset(range(100, 110)), 0.5) == []

    def test_screen_is_not_unbiased(self):
        """The Section 7 critique: the bit-overlap heuristic deviates
        from true Jaccard in a data-dependent way (here: superimposed
        collisions inflate the overlap of a dense pair)."""
        sf = SignatureFile(f=64, w=4)  # deliberately saturated
        a = frozenset(range(0, 40))
        b = frozenset(range(20, 60))
        sig_a, sig_b = sf.encode(a), sf.encode(b)
        inter = int(np.bitwise_count(sig_a & sig_b).sum())
        union = int(np.bitwise_count(sig_a | sig_b).sum())
        heuristic = inter / union
        assert abs(heuristic - jaccard(a, b)) > 0.1

    def test_invalid_threshold(self):
        sf = SignatureFile()
        with pytest.raises(ValueError):
            sf.similarity_screen({1}, 1.5)

    def test_page_count_grows_with_sets(self):
        sf = SignatureFile(f=4096, w=4)  # 512-byte signatures: 8/page
        sf.insert_many([frozenset({i}) for i in range(20)])
        assert sf.n_pages == 3
        assert sf.n_sets == 20
