"""Unit tests for the probabilistic filter function p_{r,l} (Eq. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filter_function import (
    FilterFunction,
    filter_probability,
    solve_r,
    turning_point,
)

r_values = st.integers(1, 50)
l_values = st.integers(1, 500)
sim_values = st.floats(0.0, 1.0)


class TestFilterProbability:
    def test_formula(self):
        assert filter_probability(0.5, 2, 3) == pytest.approx(1 - (1 - 0.25) ** 3)

    def test_endpoints(self):
        assert filter_probability(0.0, 3, 5) == 0.0
        assert filter_probability(1.0, 3, 5) == 1.0

    def test_array_input(self):
        out = filter_probability(np.array([0.0, 0.5, 1.0]), 1, 1)
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_r1_l1_is_identity(self):
        for s in (0.1, 0.4, 0.9):
            assert filter_probability(s, 1, 1) == pytest.approx(s)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            filter_probability(0.5, 0, 1)
        with pytest.raises(ValueError):
            filter_probability(0.5, 1, 0)

    def test_clips_out_of_range_similarity(self):
        assert filter_probability(1.5, 2, 2) == 1.0
        assert filter_probability(-0.5, 2, 2) == 0.0

    @given(sim_values, r_values, l_values)
    @settings(max_examples=100)
    def test_bounds(self, s, r, l):
        assert 0.0 <= filter_probability(s, r, l) <= 1.0

    @given(sim_values, sim_values, r_values, l_values)
    @settings(max_examples=100)
    def test_monotone_in_similarity(self, s1, s2, r, l):
        lo, hi = sorted((s1, s2))
        assert filter_probability(lo, r, l) <= filter_probability(hi, r, l) + 1e-12

    @given(sim_values, r_values, l_values)
    @settings(max_examples=50)
    def test_monotone_in_l(self, s, r, l):
        """More tables can only increase collision probability."""
        assert filter_probability(s, r, l) <= filter_probability(s, r, l + 1) + 1e-12

    @given(sim_values, r_values, l_values)
    @settings(max_examples=50)
    def test_antitone_in_r(self, s, r, l):
        """More sampled bits can only decrease collision probability."""
        assert filter_probability(s, r + 1, l) <= filter_probability(s, r, l) + 1e-12


class TestTurningPoint:
    @given(st.floats(0.05, 0.95), l_values)
    @settings(max_examples=100)
    def test_solve_r_places_turning_point_near_target(self, s_star, l):
        r = solve_r(s_star, l)
        # With integer r the turning point moves; the *real* solution
        # brackets the target between r and r+1 (or is clamped at 1).
        at_r = turning_point(r, l)
        if r > 1:
            lo, hi = sorted((turning_point(r + 1, l), turning_point(r - 1, l)))
            assert lo <= s_star <= hi or abs(at_r - s_star) < 0.2
        assert 0.0 < at_r < 1.0

    def test_probability_half_at_turning_point(self):
        for l in (1, 4, 32, 200):
            for r in (1, 3, 10):
                s = turning_point(r, l)
                assert filter_probability(s, r, l) == pytest.approx(0.5)

    def test_solve_r_increases_with_l(self):
        """Steeper filters: as l grows, r grows (the Section 4.1 tradeoff)."""
        rs = [solve_r(0.8, l) for l in (1, 10, 100, 1000)]
        assert rs == sorted(rs)
        assert rs[-1] > rs[0]

    def test_solve_r_minimum_one(self):
        assert solve_r(0.05, 1) >= 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            solve_r(0.0, 5)
        with pytest.raises(ValueError):
            solve_r(1.0, 5)
        with pytest.raises(ValueError):
            solve_r(0.5, 0)
        with pytest.raises(ValueError):
            turning_point(0, 5)


class TestFilterFunctionObject:
    def test_for_threshold(self):
        ff = FilterFunction.for_threshold(0.7, 20)
        assert ff.l == 20
        assert ff.r == solve_r(0.7, 20)
        assert ff(turning_point(ff.r, ff.l)) == pytest.approx(0.5)

    def test_callable_matches_function(self):
        ff = FilterFunction(r=4, l=10)
        s = np.linspace(0, 1, 11)
        assert np.allclose(ff(s), filter_probability(s, 4, 10))

    def test_error_integrals_manual(self):
        """FP/FN integrals against a tiny hand-computed histogram."""
        ff = FilterFunction(r=1, l=1)  # p(s) = s
        grid = np.array([0.25, 0.75])
        mass = np.array([10.0, 20.0])
        s_star = 0.5
        # FP: mass below * p = 10 * 0.25; FN: mass above * (1-p) = 20 * 0.25
        assert ff.expected_false_positives(grid, mass, s_star) == pytest.approx(2.5)
        assert ff.expected_false_negatives(grid, mass, s_star) == pytest.approx(5.0)
        assert ff.expected_error(grid, mass, s_star) == pytest.approx(7.5)

    def test_steeper_filter_less_error_far_from_point(self):
        """With mass far from the turning point, more tables help."""
        grid = np.array([0.2, 0.9])
        mass = np.array([100.0, 100.0])
        s_star = 0.6
        shallow = FilterFunction.for_threshold(s_star, 2)
        steep = FilterFunction.for_threshold(s_star, 100)
        assert steep.expected_error(grid, mass, s_star) < shallow.expected_error(
            grid, mass, s_star
        )

    def test_frozen(self):
        ff = FilterFunction(r=2, l=2)
        with pytest.raises(AttributeError):
            ff.r = 3


class TestEmpiricalConformance:
    """A real SFI's collision rate must track p_{r,l}(s) (Eq. 4).

    The analytical filter function is the load-bearing model: the
    optimizer sizes every filter with it.  Here we *measure* the
    collision probability of an actual
    :class:`~repro.core.filter_index.SimilarityFilterIndex` on pairs
    of packed vectors with controlled Hamming similarity and assert
    the empirical rate stays within a binomial confidence bound of the
    model (plus a small slack for sampling bit positions without
    replacement, which the s^r model idealizes).  Everything is
    seeded, so the test is deterministic.
    """

    N_BITS = 256
    N_PAIRS = 300
    SIM_POINTS = (0.30, 0.50, 0.70, 0.85, 0.95)

    @staticmethod
    def _controlled_pairs(n_bits, n_pairs, similarity, rng):
        """Query/stored bit matrices agreeing in an exact bit count."""
        d = int(round((1.0 - similarity) * n_bits))
        query_bits = rng.integers(0, 2, size=(n_pairs, n_bits), dtype=np.uint8)
        stored_bits = query_bits.copy()
        positions = rng.permuted(
            np.tile(np.arange(n_bits), (n_pairs, 1)), axis=1
        )[:, :d]
        rows = np.repeat(np.arange(n_pairs), d)
        stored_bits[rows, positions.ravel()] ^= 1
        return query_bits, stored_bits, 1.0 - d / n_bits

    def _measure(self, threshold, n_tables, seed):
        """Empirical collision rate per similarity point, plus (r, l)."""
        from repro.core.filter_index import SimilarityFilterIndex
        from repro.hamming.bitvector import pack_bits
        from repro.storage.iomodel import IOCostModel
        from repro.storage.pager import PageManager

        rng = np.random.default_rng(seed)
        rates = {}
        r = l = None
        for similarity in self.SIM_POINTS:
            sfi = SimilarityFilterIndex(
                threshold=threshold,
                n_tables=n_tables,
                n_bits=self.N_BITS,
                pager=PageManager(IOCostModel()),
                expected_entries=self.N_PAIRS,
                seed=seed,
            )
            r, l = sfi.filter.r, sfi.filter.l
            query_bits, stored_bits, s_exact = self._controlled_pairs(
                self.N_BITS, self.N_PAIRS, similarity, rng
            )
            sids = list(range(self.N_PAIRS))
            sfi.insert_many(pack_bits(stored_bits), sids)
            per_query = sfi.probe_batch(pack_bits(query_bits))
            hits = sum(1 for sid, got in enumerate(per_query) if sid in got)
            rates[s_exact] = hits / self.N_PAIRS
        return rates, r, l

    @pytest.mark.parametrize(
        "threshold,n_tables,seed", [(0.8, 8, 42), (0.6, 4, 99)]
    )
    def test_collision_rate_tracks_model(self, threshold, n_tables, seed):
        rates, r, l = self._measure(threshold, n_tables, seed)
        for s_exact, empirical in rates.items():
            expected = filter_probability(s_exact, r, l)
            # 4 sigma of the binomial estimator + modelling slack for
            # without-replacement bit sampling.
            bound = 4.0 * np.sqrt(
                max(expected * (1 - expected), 1e-4) / self.N_PAIRS
            ) + 0.03
            assert abs(empirical - expected) <= bound, (
                f"s={s_exact:.3f}: empirical {empirical:.3f} vs "
                f"p_{{{r},{l}}} = {expected:.3f} (bound {bound:.3f})"
            )

    def test_collision_rate_monotone_in_similarity(self):
        rates, _, _ = self._measure(0.8, 8, seed=7)
        ordered = [rates[s] for s in sorted(rates)]
        # Binomial noise allows tiny inversions; the trend must hold.
        for lower, upper in zip(ordered, ordered[1:]):
            assert upper >= lower - 0.05
        assert ordered[-1] > ordered[0]
