"""Exact inverted-index baseline.

Not part of the paper, but the natural exact competitor for similarity
search over sets: an element -> posting-list index.  For a query set
``q`` it merges the posting lists of ``q``'s elements to count
``|q & S|`` for every set sharing at least one element, then computes
Jaccard exactly from stored set sizes.

Two roles in the reproduction:

* a fast ground-truth oracle for experiments too large to brute-force
  (any query with ``sigma_low > 0`` only has answers among sets that
  share an element with the query);
* an honest exact baseline whose cost scales with posting-list volume,
  illustrating when approximate filtering pays off.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Hashable, Iterable, Sequence


class InvertedIndex:
    """Element-based exact Jaccard search over a set collection."""

    def __init__(self, sets: Sequence[Iterable] | None = None):
        self._postings: dict[Hashable, set[int]] = defaultdict(set)
        self._sizes: dict[int, int] = {}
        self._next_sid = 0
        if sets is not None:
            for s in sets:
                self.insert(s)

    def insert(self, elements: Iterable) -> int:
        """Index a set, returning its sid."""
        stored = frozenset(elements)
        sid = self._next_sid
        self._next_sid += 1
        self._sizes[sid] = len(stored)
        for element in stored:
            self._postings[element].add(sid)
        return sid

    def delete(self, sid: int, elements: Iterable) -> None:
        """Remove a previously indexed set (the elements must match)."""
        if sid not in self._sizes:
            raise KeyError(f"unknown sid: {sid}")
        for element in frozenset(elements):
            postings = self._postings.get(element)
            if postings is not None:
                postings.discard(sid)
                if not postings:
                    del self._postings[element]
        del self._sizes[sid]

    @property
    def n_sets(self) -> int:
        """Number of indexed sets."""
        return len(self._sizes)

    @property
    def n_postings(self) -> int:
        """Total posting-list entries (index size proxy)."""
        return sum(len(p) for p in self._postings.values())

    def similarities(self, elements: Iterable) -> dict[int, float]:
        """Exact Jaccard similarity to every set sharing an element.

        Also includes empty stored sets when the query itself is empty
        (two empty sets are identical: similarity 1).
        """
        query = frozenset(elements)
        overlap: Counter[int] = Counter()
        for element in query:
            for sid in self._postings.get(element, ()):
                overlap[sid] += 1
        result = {}
        for sid, inter in overlap.items():
            union = self._sizes[sid] + len(query) - inter
            result[sid] = inter / union
        if not query:
            result.update(
                (sid, 1.0) for sid, size in self._sizes.items() if size == 0
            )
        return result

    def query(
        self, elements: Iterable, sigma_low: float, sigma_high: float
    ) -> list[tuple[int, float]]:
        """Exact answers with similarity in ``[sigma_low, sigma_high]``.

        For ``sigma_low > 0`` this is complete: any set with positive
        similarity shares an element with the query.  For
        ``sigma_low == 0`` disjoint sets qualify too; they are appended
        with similarity 0 (unless the query is empty, in which case
        every non-empty stored set is 0-similar).
        """
        if not 0.0 <= sigma_low <= sigma_high <= 1.0:
            raise ValueError(f"invalid similarity range [{sigma_low}, {sigma_high}]")
        similarities = self.similarities(elements)
        answers = [
            (sid, sim)
            for sid, sim in similarities.items()
            if sigma_low <= sim <= sigma_high
        ]
        if sigma_low == 0.0:
            overlapping = set(similarities)
            answers.extend(
                (sid, 0.0) for sid in self._sizes if sid not in overlapping
            )
        answers.sort(key=lambda pair: (-pair[1], pair[0]))
        return answers
