"""Workload generation: dataset surrogates and query workloads.

The paper evaluates on two proprietary HTTP-log datasets (the Nagano
winter-Olympics site and a corporate site; 200,000 sets each).  Those
logs are not available, so :mod:`repro.data.weblog` synthesizes
collections with the same structural properties: Zipf-popular URLs
(every visitor shares the hot pages, giving broad low-level overlap)
plus shared browsing templates (sessions that visit largely the same
pages, giving a decaying tail of genuinely similar pairs).

:mod:`repro.data.generators` supplies simpler controlled collections
for tests and ablations, and :mod:`repro.data.queries` builds the
random-range query workloads and the result-size bucketing used by
every experiment in Section 6.
"""

from repro.data.documents import make_document_collection, shingles
from repro.data.generators import planted_clusters, uniform_random_sets, zipf_sets
from repro.data.queries import (
    PAPER_BUCKETS,
    QueryWorkload,
    RangeQuery,
    bucket_index,
    bucket_label,
    ground_truth,
)
from repro.data.weblog import make_set1, make_set2, make_weblog_collection

__all__ = [
    "PAPER_BUCKETS",
    "QueryWorkload",
    "RangeQuery",
    "bucket_index",
    "bucket_label",
    "ground_truth",
    "make_document_collection",
    "make_set1",
    "make_set2",
    "make_weblog_collection",
    "shingles",
    "planted_clusters",
    "uniform_random_sets",
    "zipf_sets",
]
