"""Sequential-scan baseline (Section 6).

"Sequential scan simply scans the entire set collection and evaluates
the similarity between the query set and the sets in the database,
reporting only those sets with similarity inside the target similarity
range."  It is exact (recall 1) but pays the full collection's
sequential I/O plus a similarity evaluation per set, which is the cost
the index has to beat.

The scan shares the :class:`~repro.storage.setstore.SetStore` (and its
I/O model) with the index, so Fig. 7-style comparisons are pure
accounting: ``N_pages`` sequential reads + per-set CPU for the scan vs
probe + random-fetch + verify costs for the index.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.index import BatchQueryResult, QueryResult
from repro.core.similarity import jaccard
from repro.obs import trace
from repro.storage.iomodel import IOStats
from repro.storage.setstore import SetStore


class SequentialScan:
    """Exact range-query evaluation by scanning the collection."""

    def __init__(self, store: SetStore):
        self.store = store
        self.io = store.pager.io

    def query(self, elements: Iterable, sigma_low: float, sigma_high: float) -> QueryResult:
        """All stored sets with similarity in ``[sigma_low, sigma_high]``."""
        if not 0.0 <= sigma_low <= sigma_high <= 1.0:
            raise ValueError(f"invalid similarity range [{sigma_low}, {sigma_high}]")
        with trace.capture(
            "seq_scan",
            io=self.io,
            sigma_low=sigma_low,
            sigma_high=sigma_high,
            n_pages=self.store.n_pages,
        ) as root:
            before = self.io.snapshot()
            query_set = frozenset(elements)
            answers: list[tuple[int, float]] = []
            candidates: set[int] = set()
            for sid, stored in self.store.scan():
                candidates.add(sid)
                self.io.cpu(len(stored) + len(query_set))
                similarity = jaccard(stored, query_set)
                if sigma_low <= similarity <= sigma_high:
                    answers.append((sid, similarity))
            answers.sort(key=lambda pair: (-pair[1], pair[0]))
            delta = self.io.snapshot() - before
            if root is not None:
                root.set(n_candidates=len(candidates), n_verified=len(answers))
            return QueryResult(
                answers=answers,
                candidates=candidates,
                io=delta,
                io_time=self.io.io_time(delta),
                cpu_time=self.io.cpu_time(delta),
                trace=root,
            )

    def query_batch(
        self, queries: Sequence[Iterable], sigma_low: float, sigma_high: float
    ) -> BatchQueryResult:
        """Answer many queries with ONE pass over the collection.

        The scan's sequential page reads are paid once for the whole
        batch instead of once per query; the per-set similarity
        evaluations (CPU) are unchanged.  Results are identical to
        looping :meth:`query`.
        """
        if not 0.0 <= sigma_low <= sigma_high <= 1.0:
            raise ValueError(f"invalid similarity range [{sigma_low}, {sigma_high}]")
        query_sets = [frozenset(q) for q in queries]
        n = len(query_sets)
        with trace.capture(
            "seq_scan_batch",
            io=self.io,
            sigma_low=sigma_low,
            sigma_high=sigma_high,
            n_pages=self.store.n_pages,
            n_queries=n,
        ) as root:
            before = self.io.snapshot()
            answers_list: list[list[tuple[int, float]]] = [[] for _ in range(n)]
            candidates_list: list[set[int]] = [set() for _ in range(n)]
            for sid, stored in self.store.scan():
                for i, query_set in enumerate(query_sets):
                    candidates_list[i].add(sid)
                    self.io.cpu(len(stored) + len(query_set))
                    similarity = jaccard(stored, query_set)
                    if sigma_low <= similarity <= sigma_high:
                        answers_list[i].append((sid, similarity))
            for answers in answers_list:
                answers.sort(key=lambda pair: (-pair[1], pair[0]))
            delta = self.io.snapshot() - before
            # Versus the query loop, n - 1 of the n full-file scans are
            # avoided entirely.
            pages_saved = self.store.n_pages * max(0, n - 1)
            if root is not None:
                root.set(
                    n_candidates=sum(len(c) for c in candidates_list),
                    n_verified=sum(len(a) for a in answers_list),
                    pages_saved=pages_saved,
                )
            return BatchQueryResult(
                results=[
                    QueryResult(
                        answers=answers,
                        candidates=candidates,
                        io=IOStats(),
                        io_time=0.0,
                        cpu_time=0.0,
                    )
                    for answers, candidates in zip(answers_list, candidates_list)
                ],
                io=delta,
                io_time=self.io.io_time(delta),
                cpu_time=self.io.cpu_time(delta),
                pages_saved=pages_saved,
                trace=root,
            )
