"""ABL-RL -- the Section 4.1 accuracy/space trade-off of p_{r,l}.

For a fixed turning point, increasing the number of hash tables ``l``
forces a larger ``r`` and a steeper filter: expected false positives
and negatives (Definitions 6-7, integrated against the dataset's
similarity distribution) fall with diminishing returns.

Paper shape to reproduce: total expected error decreases monotonically
(up to integer-r jitter) as l grows; r grows with l.
"""

from repro.eval.experiments import run_filter_tradeoff


def test_filter_tradeoff(benchmark, emit, scale):
    result = benchmark.pedantic(
        run_filter_tradeoff,
        kwargs={
            "dataset": "set1",
            "n_sets": min(scale.n_sets, 1500),
            "threshold": 0.5,
            "l_values": (1, 2, 5, 10, 20, 50, 100, 200, 500),
        },
        rounds=1,
        iterations=1,
    )
    emit("ABL-RL", result.table())
    errors = [row[4] for row in result.rows]
    rs = [row[1] for row in result.rows]
    assert errors[-1] < errors[0] * 0.9
    assert rs == sorted(rs)
    # Diminishing returns: the last doubling helps less than the first.
    first_gain = errors[0] - errors[1]
    last_gain = errors[-2] - errors[-1]
    assert last_gain < first_gain
