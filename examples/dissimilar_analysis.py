"""Dissimilarity analysis: correlating users with *unlike* behaviour.

Section 1: "one may retrieve and correlate users with highly dissimilar
buying patterns (with similarity say less than 0.1) to reason about
buying behavior based on other attributes of interest, such as
geographical location."  Low-similarity ranges are exactly what the
Dissimilarity Filter Index (Section 4.2) exists for: without it, a
query like [0, 0.1] would have to fetch nearly the whole collection.

This example builds profiles for two synthetic "regions" with distinct
page tastes, then uses ``query_below`` to pull the visitors most unlike
a region profile and checks they mostly belong to the other region.

Run:  python examples/dissimilar_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import SetSimilarityIndex

N_PER_REGION = 250
PAGES_PER_REGION = 600


def synthesize(rng: np.random.Generator) -> tuple[list[frozenset[int]], list[str]]:
    """Two regions browsing mostly disjoint page ranges."""
    sets, labels = [], []
    shared = rng.choice(10_000, size=30, replace=False) + 20_000  # global pages
    for region, base in (("north", 0), ("south", PAGES_PER_REGION)):
        for _ in range(N_PER_REGION):
            local = base + rng.integers(0, PAGES_PER_REGION, size=40)
            extra = rng.choice(shared, size=6, replace=False)
            sets.append(frozenset(int(p) for p in np.concatenate([local, extra])))
            labels.append(region)
    return sets, labels


def main() -> None:
    rng = np.random.default_rng(13)
    sets, labels = synthesize(rng)
    order = rng.permutation(len(sets))
    sets = [sets[i] for i in order]
    labels = [labels[i] for i in order]

    index = SetSimilarityIndex.build(sets, budget=200, recall_target=0.85, k=64, seed=2)
    dfis = [f for f in index.plan.filters if f.kind == "dfi"]
    print(f"indexed {len(sets)} visitors; plan has {len(dfis)} DFIs "
          f"at points {[round(f.point, 3) for f in dfis]}")

    # Build a region profile: the most common pages of a sample of
    # north visitors (the paper's "profile set" per user class).
    north_sample = [s for s, l in zip(sets, labels) if l == "north"][:50]
    from collections import Counter

    counts: Counter[int] = Counter()
    for s in north_sample:
        counts.update(s)
    # Keep region-specific pages only (ids < 20000); globally shared
    # pages would drag every visitor's similarity above zero.
    profile = frozenset(
        page for page, _ in counts.most_common(100) if page < 20_000
    )
    print(f"north profile: {len(profile)} pages")

    # Most dissimilar visitors to the north profile.  Query at the
    # plan's own DFI cut point so the dissimilarity probe (rather than
    # the everything-minus-SimVector fallback) answers it.
    cutoff = max((f.point for f in dfis), default=0.05)
    result = index.query_below(profile, cutoff)
    got = [labels[sid] for sid, _ in result.answers]
    south_share = got.count("south") / max(1, len(got))
    print(f"\n<= {cutoff:.3f}-similar to north profile: {len(got)} visitors, "
          f"{south_share:.0%} from the south region")
    print(f"candidates fetched: {len(result.candidates)} of {len(sets)}")

    # Contrast: similar visitors to the same profile are northern.
    result = index.query_above(profile, 0.15)
    got = [labels[sid] for sid, _ in result.answers]
    north_share = got.count("north") / max(1, len(got))
    print(f">= 0.15-similar: {len(got)} visitors, {north_share:.0%} northern")


if __name__ == "__main__":
    main()
