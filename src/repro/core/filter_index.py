"""Similarity and Dissimilarity Filter Indices (Sections 4.1, 4.2).

An ``SFI(s*)`` retrieves, with probability ``p_{r,l}(s)``, every stored
vector whose Hamming similarity ``s`` to the query exceeds the turning
point ``s*``.  It is ``l`` hash tables, each keyed on a fixed random
sample of ``r`` bit positions; the probe result ``SimVector(s*, q)`` is
the union of the ``l`` matching buckets, answered with ``O(l)`` bucket
accesses.

A ``DFI(s*)`` retrieves vectors *at most* ``s*``-similar.  By
Theorem 2, complementing the query flips similarity around 1/2:

    S_H(h, ~q) = 1 - S_H(h, q),

so a DFI is an ``SFI(1 - s*)`` probed with the complemented query;
data vectors are stored unmodified.

Both structures are dynamic: vectors can be inserted or deleted at any
time, which is what the hash-table primitive buys the paper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.filter_function import FilterFunction
from repro.hamming.bitvector import complement
from repro.hamming.sampling import BitSampler
from repro.storage.hashtable import BucketHashTable
from repro.storage.pager import PageManager


class SimilarityFilterIndex:
    """``SFI(s*)``: retrieves vectors at least ``s*``-Hamming-similar.

    Parameters
    ----------
    threshold:
        The turning point ``s*`` in Hamming similarity, in (0, 1).
    n_tables:
        The number of hash tables ``l``; together with ``threshold``
        this fixes ``r`` via the turning-point equation.
    n_bits:
        Dimensionality ``D`` of the stored vectors.
    pager:
        Storage backend (shared for I/O accounting).
    expected_entries:
        Sizing hint: buckets are provisioned so that, at this many
        entries, overflows are rare (the paper's "no bucket overflows"
        provisioning).
    seed:
        Freezes the random bit-position samples.
    """

    def __init__(
        self,
        threshold: float,
        n_tables: int,
        n_bits: int,
        pager: PageManager,
        expected_entries: int = 1024,
        seed: int = 0,
    ):
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        if n_tables <= 0:
            raise ValueError(f"n_tables must be positive, got {n_tables}")
        self.threshold = threshold
        self.n_bits = n_bits
        self.filter = FilterFunction.for_threshold(threshold, n_tables)
        rng = np.random.default_rng(seed)
        self._samplers = [
            BitSampler(n_bits, self.filter.r, rng) for _ in range(n_tables)
        ]
        slots = pager.capacity_for(16)
        n_buckets = max(1, -(-expected_entries // slots)) * 2
        self._tables = [BucketHashTable(pager, n_buckets) for _ in range(n_tables)]

    @property
    def n_tables(self) -> int:
        return len(self._tables)

    @property
    def r(self) -> int:
        """Sampled bits per table."""
        return self.filter.r

    @property
    def n_entries(self) -> int:
        """Entries per table (each vector appears once in every table)."""
        return self._tables[0].n_entries if self._tables else 0

    def insert(self, vector: np.ndarray, sid: int) -> None:
        """Index one packed vector under its set identifier."""
        for sampler, table in zip(self._samplers, self._tables):
            table.insert(sampler.key(vector), sid)

    def insert_many(self, matrix: np.ndarray, sids: Sequence[int]) -> None:
        """Bulk-index the rows of a packed matrix (vectorized keying)."""
        if matrix.shape[0] != len(sids):
            raise ValueError(
                f"matrix has {matrix.shape[0]} rows but {len(sids)} sids given"
            )
        if matrix.shape[0] == 0:
            return
        for sampler, table in zip(self._samplers, self._tables):
            for key, sid in zip(sampler.keys(matrix), sids):
                table.insert(key, sid)

    def delete(self, vector: np.ndarray, sid: int) -> None:
        """Remove a previously inserted (vector, sid) pair."""
        for sampler, table in zip(self._samplers, self._tables):
            table.delete(sampler.key(vector), sid)

    def probe(self, query: np.ndarray) -> set[int]:
        """``SimVector(s*, q)``: union of the matching bucket of each table."""
        sids: set[int] = set()
        for sampler, table in zip(self._samplers, self._tables):
            sids.update(table.probe(sampler.key(query)))
        return sids

    def __repr__(self) -> str:
        return (
            f"SimilarityFilterIndex(threshold={self.threshold:.3f}, "
            f"l={self.n_tables}, r={self.r})"
        )


class DissimilarityFilterIndex:
    """``DFI(s*)``: retrieves vectors at most ``s*``-Hamming-similar.

    Internally an ``SFI(1 - s*)``; probes complement the query vector
    per Theorem 2.  Data vectors are stored unchanged, so one insertion
    stream can feed SFIs and DFIs alike.
    """

    def __init__(
        self,
        threshold: float,
        n_tables: int,
        n_bits: int,
        pager: PageManager,
        expected_entries: int = 1024,
        seed: int = 0,
    ):
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        self.threshold = threshold
        self.n_bits = n_bits
        self._sfi = SimilarityFilterIndex(
            1.0 - threshold, n_tables, n_bits, pager, expected_entries, seed
        )

    @property
    def n_tables(self) -> int:
        return self._sfi.n_tables

    @property
    def r(self) -> int:
        return self._sfi.r

    @property
    def filter(self) -> FilterFunction:
        """The underlying ``p_{r,l}``, with turning point at ``1 - s*``."""
        return self._sfi.filter

    @property
    def n_entries(self) -> int:
        return self._sfi.n_entries

    def insert(self, vector: np.ndarray, sid: int) -> None:
        self._sfi.insert(vector, sid)

    def insert_many(self, matrix: np.ndarray, sids: Sequence[int]) -> None:
        self._sfi.insert_many(matrix, sids)

    def delete(self, vector: np.ndarray, sid: int) -> None:
        self._sfi.delete(vector, sid)

    def probe(self, query: np.ndarray) -> set[int]:
        """``DissimVector(s*, q)``: probe the inner SFI with ``~q``."""
        return self._sfi.probe(complement(query, self.n_bits))

    def __repr__(self) -> str:
        return (
            f"DissimilarityFilterIndex(threshold={self.threshold:.3f}, "
            f"l={self.n_tables}, r={self.r})"
        )
