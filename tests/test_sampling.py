"""Unit tests for random bit-position sampling (SFI keying)."""

import numpy as np
import pytest

from repro.hamming.bitvector import pack_bits
from repro.hamming.sampling import BitSampler


def _vec(bits):
    return pack_bits(np.array(bits, dtype=np.uint8))


class TestBitSampler:
    def test_key_is_deterministic(self):
        sampler = BitSampler(128, 10, np.random.default_rng(0))
        v = _vec([i % 2 for i in range(128)])
        assert sampler.key(v) == sampler.key(v)

    def test_same_seed_same_positions(self):
        a = BitSampler(64, 5, np.random.default_rng(7))
        b = BitSampler(64, 5, np.random.default_rng(7))
        assert np.array_equal(a.positions, b.positions)

    def test_identical_vectors_same_key(self):
        sampler = BitSampler(200, 16, np.random.default_rng(1))
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, size=200).astype(np.uint8)
        assert sampler.key(_vec(bits)) == sampler.key(_vec(bits.copy()))

    def test_key_depends_only_on_sampled_positions(self):
        sampler = BitSampler(100, 8, np.random.default_rng(3))
        rng = np.random.default_rng(4)
        bits = rng.integers(0, 2, size=100).astype(np.uint8)
        other = bits.copy()
        untouched = [i for i in range(100) if i not in set(sampler.positions.tolist())]
        for i in untouched:
            other[i] = 1 - other[i]
        assert sampler.key(_vec(bits)) == sampler.key(_vec(other))

    def test_key_changes_when_sampled_bit_flips(self):
        sampler = BitSampler(100, 8, np.random.default_rng(5))
        bits = np.zeros(100, dtype=np.uint8)
        flipped = bits.copy()
        flipped[int(sampler.positions[0])] = 1
        assert sampler.key(_vec(bits)) != sampler.key(_vec(flipped))

    def test_keys_matches_key(self):
        sampler = BitSampler(96, 12, np.random.default_rng(6))
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, size=(5, 96)).astype(np.uint8)
        matrix = pack_bits(bits)
        batch = sampler.keys(matrix)
        singles = [sampler.key(matrix[i]) for i in range(5)]
        assert batch == singles

    def test_r_larger_than_n_bits_allowed(self):
        """Sampling with replacement permits r > D."""
        sampler = BitSampler(8, 20, np.random.default_rng(8))
        assert sampler.r == 20
        v = _vec([1] * 8)
        assert isinstance(sampler.key(v), bytes)

    def test_positions_in_range(self):
        sampler = BitSampler(50, 200, np.random.default_rng(9))
        assert sampler.positions.min() >= 0
        assert sampler.positions.max() < 50

    def test_invalid_arguments(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            BitSampler(0, 1, rng)
        with pytest.raises(ValueError):
            BitSampler(10, 0, rng)

    def test_collision_probability_tracks_similarity(self):
        """Keys of s-similar vectors collide with probability ~ s**r."""
        rng = np.random.default_rng(10)
        n_bits, r, trials = 512, 4, 400
        base = rng.integers(0, 2, size=n_bits).astype(np.uint8)
        similarity = 0.9
        hits = 0
        for t in range(trials):
            sampler = BitSampler(n_bits, r, np.random.default_rng(1000 + t))
            other = base.copy()
            flips = rng.random(n_bits) > similarity
            other[flips] ^= 1
            actual_s = 1.0 - flips.mean()
            if sampler.key(_vec(base)) == sampler.key(_vec(other)):
                hits += 1
        expected = actual_s**r
        assert abs(hits / trials - expected) < 0.08
