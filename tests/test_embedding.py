"""Unit tests for the set -> Hamming embedding (Theorem 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.embedding import SetEmbedder, hamming_to_jaccard, jaccard_to_hamming
from repro.hamming.distance import hamming_distance, hamming_similarity


class TestConversions:
    def test_endpoints(self):
        assert jaccard_to_hamming(0.0) == 0.5
        assert jaccard_to_hamming(1.0) == 1.0

    def test_inverse_without_bias(self):
        for s in (0.0, 0.25, 0.6, 1.0):
            assert hamming_to_jaccard(jaccard_to_hamming(s)) == pytest.approx(s)

    def test_inverse_with_bias(self):
        for s in (0.0, 0.3, 0.9):
            assert hamming_to_jaccard(jaccard_to_hamming(s, 6), 6) == pytest.approx(s)

    def test_bias_increases_similarity(self):
        assert jaccard_to_hamming(0.2, 4) > jaccard_to_hamming(0.2)

    def test_clipping(self):
        assert hamming_to_jaccard(0.3) == 0.0
        assert hamming_to_jaccard(1.2) == 1.0

    @given(st.floats(0.0, 1.0), st.sampled_from([None, 4, 6, 8]))
    @settings(max_examples=50)
    def test_monotone(self, s, b):
        assert jaccard_to_hamming(s, b) <= jaccard_to_hamming(min(1.0, s + 0.1), b) + 1e-12


class TestSetEmbedder:
    def test_dimensions(self):
        embedder = SetEmbedder(k=10, b=6)
        assert embedder.m == 64
        assert embedder.dimension == 640
        assert embedder.n_words == 10

    def test_embed_shape(self):
        embedder = SetEmbedder(k=10, b=6)
        assert embedder.embed({1, 2, 3}).shape == (10,)

    def test_deterministic(self):
        a = SetEmbedder(k=8, b=5, seed=3).embed({1, 2})
        b = SetEmbedder(k=8, b=5, seed=3).embed({1, 2})
        assert np.array_equal(a, b)

    def test_embed_many_matches_embed(self):
        embedder = SetEmbedder(k=6, b=6, seed=1)
        sets = [frozenset({1, 2}), frozenset({3}), frozenset(range(20))]
        matrix = embedder.embed_many(sets)
        assert matrix.shape == (3, embedder.n_words)
        for i, s in enumerate(sets):
            assert np.array_equal(matrix[i], embedder.embed(s))

    def test_embed_many_empty(self):
        embedder = SetEmbedder(k=6, b=6)
        assert embedder.embed_many([]).shape == (0, 6)

    def test_identical_sets_identical_vectors(self):
        embedder = SetEmbedder(k=16, b=6, seed=0)
        assert hamming_distance(embedder.embed({5, 6}), embedder.embed({6, 5})) == 0

    def test_theorem1_exact(self):
        """d_H(h(V1), h(V2)) == (1 - s_hat)/2 * D *exactly*, where s_hat
        is the fraction of agreeing (b-bit reduced) signature values."""
        embedder = SetEmbedder(k=40, b=6, seed=5)
        a = frozenset(range(60))
        b = frozenset(range(30, 90))
        sig_a = embedder.signature(a) % np.uint64(64)
        sig_b = embedder.signature(b) % np.uint64(64)
        s_hat = float(np.mean(sig_a == sig_b))
        d = hamming_distance(embedder.embed(a), embedder.embed(b))
        assert d == round((1.0 - s_hat) / 2.0 * embedder.dimension)

    def test_hamming_similarity_tracks_jaccard(self):
        """Statistically, S_H ~= (1 + s)/2 (+ small reduction bias)."""
        embedder = SetEmbedder(k=400, b=8, seed=9)
        a = frozenset(range(100))
        b = frozenset(range(50, 150))  # jaccard = 50/150 = 1/3
        s_h = hamming_similarity(embedder.embed(a), embedder.embed(b), embedder.dimension)
        expected = jaccard_to_hamming(1 / 3, 8)
        assert abs(s_h - expected) < 0.03

    def test_disjoint_sets_near_half(self):
        embedder = SetEmbedder(k=400, b=8, seed=2)
        a = frozenset(range(100))
        b = frozenset(range(1000, 1100))
        s_h = hamming_similarity(embedder.embed(a), embedder.embed(b), embedder.dimension)
        assert abs(s_h - 0.5) < 0.03

    def test_embed_signature_matches_embed(self):
        embedder = SetEmbedder(k=12, b=6, seed=4)
        s = frozenset({10, 20, 30})
        assert np.array_equal(
            embedder.embed(s), embedder.embed_signature(embedder.signature(s))
        )

    def test_empty_set_raises(self):
        with pytest.raises(ValueError):
            SetEmbedder(k=4).embed(frozenset())

    @given(
        st.frozensets(st.integers(0, 200), min_size=1, max_size=40),
        st.frozensets(st.integers(0, 200), min_size=1, max_size=40),
    )
    @settings(max_examples=20, deadline=None)
    def test_similarity_in_upper_half(self, a, b):
        """MinHash embeddings always land at Hamming similarity >= ~1/2."""
        embedder = SetEmbedder(k=64, b=6, seed=1)
        s_h = hamming_similarity(embedder.embed(a), embedder.embed(b), embedder.dimension)
        assert s_h >= 0.5 - 0.12  # concentration tolerance for k=64
