"""Observability for the query pipeline: tracing, metrics, EXPLAIN.

The paper's contribution is a *tunable* trade-off, which makes the
system only as good as its visibility: without per-probe statistics
there is no way to tell which filter index contributed candidates,
how many buckets a probe touched, or where a query's simulated time
went.  This package is the measurement substrate the rest of the
system (and every future tuning experiment) builds on:

:mod:`repro.obs.trace`
    Nestable wall-clock + I/O-delta spans with a thread-local active
    trace and a no-op fast path when tracing is off.
:mod:`repro.obs.metrics`
    A process-wide registry of named counters, gauges and histograms
    (buckets probed, candidates per filter, verification hits, ...).
:mod:`repro.obs.hdr`
    Log-bucketed HDR-style histograms with bounded relative error and
    an exact merge/delta algebra (latency quantiles that survive
    thread sharding and process folding).
:mod:`repro.obs.events`
    Ring-buffered structured query events with probabilistic sampling
    and an always-capture slow-query log; JSONL export for
    ``repro top``.
:mod:`repro.obs.export`
    Prometheus text exposition of the metrics registry and Chrome
    trace-event export of span trees, with format validators.
:mod:`repro.obs.explain`
    Renders a completed query trace as a human-readable plan tree and
    as structured JSON (``repro query --explain`` / ``repro explain``).
:mod:`repro.obs.logs`
    ``logging`` wiring for the ``repro`` logger hierarchy
    (``configure_logging``; the CLI's ``-v/--verbose``).

Everything here is stdlib-only and adds near-zero overhead when
disabled, so instrumentation can stay in the hot paths permanently.
"""

from repro.obs import events, export, hdr, metrics, trace
from repro.obs.explain import build_summaries, explain_json, render_trace
from repro.obs.logs import configure_logging

__all__ = [
    "build_summaries",
    "configure_logging",
    "events",
    "explain_json",
    "export",
    "hdr",
    "metrics",
    "render_trace",
    "trace",
]
