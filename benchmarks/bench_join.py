"""ABL-JOIN -- the similarity self-join application (Section 1).

Joins are one of the workloads the paper motivates the index with.
This bench joins a clustered collection at a high threshold through
the index and compares recall and probe volume against the exact
inverted-index join.

Shape to confirm: join recall beats single-query recall (a pair can be
found from either endpoint), precision is 1 (answers are verified),
and the indexed join touches far fewer candidate pairs than the
quadratic worst case.
"""

import numpy as np
import pytest

from repro.core.index import SetSimilarityIndex
from repro.data.generators import planted_clusters
from repro.eval.report import format_table
from repro.mining.join import exact_self_join, join_recall, similarity_self_join

THRESHOLD = 0.45


def test_similarity_join(benchmark, emit, scale):
    sets = planted_clusters(
        n_clusters=20, per_cluster=10, base_size=40, universe=20_000,
        mutation_rate=0.15, seed=91,
    )

    def run():
        index = SetSimilarityIndex.build(
            sets, budget=200, recall_target=0.85, k=scale.k, seed=10,
            sample_pairs=60_000,
        )
        approx = similarity_self_join(index, sets, THRESHOLD)
        exact = exact_self_join(sets, THRESHOLD)
        return approx, exact

    approx, exact = benchmark.pedantic(run, rounds=1, iterations=1)
    recall = join_recall(approx, exact)
    n = len(sets)
    rows = [
        ["exact pairs", len(exact)],
        ["indexed pairs", len(approx)],
        ["join recall", recall],
        ["quadratic pair space", n * (n - 1) // 2],
    ]
    emit("ABL-JOIN", format_table(["metric", "value"], rows))
    assert recall > 0.85
    # Verified join: no pair below the threshold.
    assert all(p.similarity >= THRESHOLD for p in approx)