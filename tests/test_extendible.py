"""Tests for extendible hashing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.extendible import ExtendibleHashTable
from repro.storage.iomodel import IOCostModel
from repro.storage.pager import PageManager


def _table(page_size=64, initial_depth=1):
    # page_size 64 -> 4 entries per bucket: splits happen fast.
    pager = PageManager(IOCostModel(), page_size=page_size)
    return ExtendibleHashTable(pager, initial_depth=initial_depth)


class TestBasics:
    def test_insert_probe(self):
        table = _table()
        table.insert(b"a", 1)
        table.insert(b"b", 2)
        assert table.probe(b"a") == [1]
        assert table.probe(b"b") == [2]
        assert table.probe(b"c") == []
        assert table.n_entries == 2

    def test_duplicates(self):
        table = _table()
        table.insert(b"k", 1)
        table.insert(b"k", 1)
        assert table.probe(b"k") == [1, 1]

    def test_delete(self):
        table = _table()
        table.insert(b"k", 1)
        table.insert(b"k", 2)
        assert table.delete(b"k", 1)
        assert table.probe(b"k") == [2]
        assert not table.delete(b"k", 99)
        assert table.n_entries == 1

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            ExtendibleHashTable(PageManager(IOCostModel()), initial_depth=-1)


class TestSplitting:
    def test_directory_grows_under_load(self):
        table = _table(page_size=64)  # capacity 4
        for i in range(200):
            table.insert(str(i).encode(), i)
        assert table.directory_size > 2
        assert table.n_buckets > 1
        # Every key still findable after all the splits.
        for i in range(200):
            assert table.probe(str(i).encode()) == [i]

    def test_local_depths_bounded_by_global(self):
        table = _table(page_size=64)
        for i in range(100):
            table.insert(str(i).encode(), i)
        seen = set()
        for bucket in table._directory:
            if id(bucket) in seen:
                continue
            seen.add(id(bucket))
            assert bucket.local_depth <= table.global_depth

    def test_no_bucket_overflows_normal_load(self):
        table = _table(page_size=64)
        for i in range(300):
            table.insert(str(i).encode(), i)
        seen = set()
        for bucket in table._directory:
            if id(bucket) in seen:
                continue
            seen.add(id(bucket))
            assert len(bucket.entries) <= table.capacity

    def test_same_key_overflow_does_not_explode(self):
        """Duplicate keys cannot be split apart; the bucket must
        overflow softly instead of doubling the directory forever."""
        table = _table(page_size=64)
        for i in range(50):
            table.insert(b"hot", i)
        assert table.n_entries == 50
        assert sorted(table.probe(b"hot")) == list(range(50))
        assert table.directory_size <= 2 ** ExtendibleHashTable.MAX_GLOBAL_DEPTH

    def test_entries_preserved_through_splits(self):
        table = _table(page_size=64)
        inserted = {}
        rng = np.random.default_rng(0)
        for i in range(150):
            key = f"key-{int(rng.integers(0, 40))}".encode()
            table.insert(key, i)
            inserted.setdefault(key, []).append(i)
        for key, values in inserted.items():
            assert sorted(table.probe(key)) == sorted(values)

    def test_items_cover_everything(self):
        table = _table(page_size=64)
        for i in range(60):
            table.insert(str(i).encode(), i)
        assert len(list(table.items())) == 60


class TestIOAccounting:
    def test_probe_is_one_random_read(self):
        table = _table(page_size=64)
        for i in range(100):
            table.insert(str(i).encode(), i)
        io = table.pager.io
        before = io.snapshot()
        table.probe(b"17")
        delta = io.snapshot() - before
        assert delta.random_reads == 1
        assert delta.sequential_reads == 0


class TestAgainstModel:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([b"a", b"b", b"c", b"d", b"e", b"f", b"g", b"h"]),
                st.integers(0, 5),
                st.booleans(),
            ),
            max_size=80,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_model(self, operations):
        table = _table(page_size=64)
        model: dict[bytes, list[int]] = {}
        for key, value, is_insert in operations:
            if is_insert:
                table.insert(key, value)
                model.setdefault(key, []).append(value)
            else:
                expected = value in model.get(key, [])
                assert table.delete(key, value) == expected
                if expected:
                    model[key].remove(value)
        for key in (b"a", b"b", b"c", b"d", b"e", b"f", b"g", b"h"):
            assert sorted(table.probe(key)) == sorted(model.get(key, []))
