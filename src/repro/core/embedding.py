"""Set -> Hamming-space embedding (Sections 3.1 + 3.2, Theorem 1).

Composes the two embeddings of the paper:

1. ``S -> V``: a set becomes its length-``k`` min-hash signature.
2. ``V -> H``: each ``b``-bit (fixed-precision) min-hash value is
   encoded with the Hadamard code; the concatenation is a packed
   ``D = m * k``-bit vector.

For two sets of Jaccard similarity ``s``, the expected fraction of
agreeing signature coordinates is ``s``; agreeing coordinates share all
``m`` codeword bits, disagreeing ones share exactly ``m/2``.  Hence
(Theorem 1) the expected Hamming distance is ``(1 - s)/2 * D`` and the
expected Hamming similarity ``(1 + s) / 2``.

Reducing min-hash values to ``b`` bits makes *unequal* values collide
with probability about ``2**-b``, adding roughly ``(1 - s) / 2**b`` of
spurious agreement.  With the default ``b = 6`` that bias is under
1.6% of the disagreeing mass; :func:`jaccard_to_hamming` optionally
models it so analytic predictions match measurements.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.ecc import HadamardCode
from repro.core.minhash import MinHasher


def jaccard_to_hamming(s: float, b: int | None = None) -> float:
    """Expected Hamming similarity of the embeddings of ``s``-similar sets.

    With ``b`` given, includes the fixed-precision collision bias: a
    disagreeing coordinate still matches with probability ``2**-b``.
    """
    if b is None:
        return (1.0 + s) / 2.0
    collide = 2.0 ** (-b)
    agree = s + (1.0 - s) * collide
    return (1.0 + agree) / 2.0


def hamming_to_jaccard(s_h: float, b: int | None = None) -> float:
    """Inverse of :func:`jaccard_to_hamming` (clipped to [0, 1])."""
    agree = 2.0 * s_h - 1.0
    if b is not None:
        collide = 2.0 ** (-b)
        agree = (agree - collide) / (1.0 - collide)
    return float(min(1.0, max(0.0, agree)))


class SetEmbedder:
    """Embeds sets into a fixed-dimensional packed Hamming space.

    Parameters
    ----------
    k:
        Min-hash signature length.
    b:
        Bits of fixed precision per min-hash value; codewords have
        length ``m = 2**b`` and embeddings ``D = m * k`` bits.
    seed:
        Determines the min-hash permutations.  Queries must be embedded
        by an embedder with the same ``(k, b, seed)`` as the index.
    """

    def __init__(self, k: int = 100, b: int = 6, seed: int = 0):
        self.hasher = MinHasher(k=k, seed=seed)
        self.code = HadamardCode(b)
        self.k = k
        self.b = b
        self.seed = seed

    @property
    def m(self) -> int:
        """Codeword length per min-hash value."""
        return self.code.m

    @property
    def dimension(self) -> int:
        """Total embedded dimensionality ``D = m * k``."""
        return self.code.m * self.k

    @property
    def n_words(self) -> int:
        """Packed width of one embedded vector in uint64 words."""
        return (self.dimension + 63) // 64

    def signature(self, elements: Iterable) -> np.ndarray:
        """The intermediate min-hash signature (space ``V``)."""
        return self.hasher.signature(elements)

    def signature_matrix(self, sets: Iterable[Iterable]) -> np.ndarray:
        """Signatures of many sets in one vectorized pass, ``(N, k)``."""
        return self.hasher.signature_matrix(sets)

    def embed(self, elements: Iterable) -> np.ndarray:
        """Packed ``D``-bit embedding of one set (space ``H``)."""
        return self.code.encode(self.hasher.signature(elements))

    def embed_many(self, sets: Iterable[Iterable]) -> np.ndarray:
        """Packed embeddings of many sets, shape ``(N, n_words)``."""
        signatures = self.hasher.signature_matrix(sets)
        if signatures.shape[0] == 0:
            return np.empty((0, self.n_words), dtype=np.uint64)
        return self.code.encode_many(signatures)

    def embed_signature(self, signature: np.ndarray) -> np.ndarray:
        """Embed an existing signature (useful when both are needed)."""
        return self.code.encode(signature)

    def __repr__(self) -> str:
        return f"SetEmbedder(k={self.k}, b={self.b}, seed={self.seed}, D={self.dimension})"
