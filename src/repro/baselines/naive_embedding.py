"""The naive binary embedding of Example 1 -- and why it fails.

Section 3.2 shows that concatenating the raw binary representations of
min-hash values,

    u(V) = binary(v_1) binary(v_2) ... binary(v_k),

does *not* preserve similarity: signature coordinates on which two
vectors agree contribute all their bits, but disagreeing coordinates
contribute an *uncontrolled* number of equal bits (two different
integers share bits).  Example 1: signatures with similarity 0.5 whose
naive embeddings agree on 83% of bits.

This module implements that embedding so the distortion can be
measured and contrasted with the distortion-free ECC embedding
(`bench_embedding_distortion` reproduces Example 1 quantitatively).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.minhash import MinHasher
from repro.hamming.bitvector import pack_bits
from repro.hamming.distance import hamming_similarity


class NaiveBinaryEmbedder:
    """Embeds sets by concatenating raw ``b``-bit min-hash values.

    Same interface shape as :class:`repro.core.embedding.SetEmbedder`
    but with dimension ``b * k`` and *distorted* similarity: disagreeing
    min-hash coordinates still share, on average, about half their bits
    (more when values are numerically close), so Hamming similarity
    overestimates -- and varies for the same Jaccard similarity.
    """

    def __init__(self, k: int = 100, b: int = 6, seed: int = 0):
        self.hasher = MinHasher(k=k, seed=seed)
        self.k = k
        self.b = b

    @property
    def dimension(self) -> int:
        """Total embedded dimensionality ``b * k``."""
        return self.b * self.k

    def embed_signature(self, signature: np.ndarray) -> np.ndarray:
        """Packed naive embedding of a length-``k`` signature."""
        values = np.asarray(signature, dtype=np.uint64) % np.uint64(1 << self.b)
        shifts = np.arange(self.b, dtype=np.uint64)
        bits = ((values[:, np.newaxis] >> shifts) & np.uint64(1)).astype(np.uint8)
        return pack_bits(bits.reshape(-1))

    def embed(self, elements: Iterable) -> np.ndarray:
        """Naive embedding of a set (signature, then concatenation)."""
        return self.embed_signature(self.hasher.signature(elements))


def embedding_distortion(
    embedder,
    signature_a: np.ndarray,
    signature_b: np.ndarray,
) -> tuple[float, float]:
    """(signature similarity, embedded Hamming similarity) of a pair.

    For the ECC embedding the second value concentrates at
    ``(1 + s) / 2`` where ``s`` is the first; for the naive embedding
    it wanders above that line by a data-dependent amount -- the
    distortion Example 1 exhibits.
    """
    s = float(np.mean(signature_a == signature_b))
    h_a = embedder.embed_signature(signature_a)
    h_b = embedder.embed_signature(signature_b)
    s_h = hamming_similarity(h_a, h_b, embedder.dimension)
    return s, s_h
