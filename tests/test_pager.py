"""Unit tests for pages and the page manager."""

import pytest

from repro.storage.iomodel import IOCostModel
from repro.storage.pager import DEFAULT_PAGE_SIZE, Page, PageManager


class TestPage:
    def test_append_and_len(self):
        page = Page(0, capacity=3)
        assert page.append("a") == 0
        assert page.append("b") == 1
        assert len(page) == 2
        assert not page.is_full

    def test_full(self):
        page = Page(0, capacity=1)
        page.append("x")
        assert page.is_full
        with pytest.raises(ValueError):
            page.append("y")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Page(0, capacity=0)


class TestPageManager:
    def test_allocate_assigns_increasing_ids(self, pager):
        a = pager.allocate(4)
        b = pager.allocate(4)
        assert b.page_id == a.page_id + 1
        assert pager.n_pages == 2

    def test_allocate_counts_write(self):
        io = IOCostModel()
        pager = PageManager(io)
        pager.allocate(1)
        assert io.stats.page_writes == 1

    def test_read_random_vs_sequential(self, pager):
        page = pager.allocate(2)
        pager.read(page.page_id, sequential=False)
        pager.read(page.page_id, sequential=True)
        assert pager.io.stats.random_reads == 1
        assert pager.io.stats.sequential_reads == 1

    def test_read_returns_same_object(self, pager):
        page = pager.allocate(2)
        page.append("payload")
        again = pager.read(page.page_id)
        assert again is page

    def test_read_missing(self, pager):
        with pytest.raises(KeyError):
            pager.read(404)

    def test_write_missing(self, pager):
        with pytest.raises(KeyError):
            pager.write(404)

    def test_free(self, pager):
        page = pager.allocate(1)
        pager.free(page.page_id)
        assert pager.n_pages == 0
        with pytest.raises(KeyError):
            pager.read(page.page_id)

    def test_capacity_for(self):
        pager = PageManager(IOCostModel(), page_size=4096)
        assert pager.capacity_for(16) == 256
        assert pager.capacity_for(4096) == 1
        assert pager.capacity_for(8192) == 1  # at least one slot

    def test_capacity_for_invalid(self, pager):
        with pytest.raises(ValueError):
            pager.capacity_for(0)

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            PageManager(IOCostModel(), page_size=0)

    def test_default_page_size(self, pager):
        assert pager.page_size == DEFAULT_PAGE_SIZE
