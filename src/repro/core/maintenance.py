"""Index maintenance: distribution drift and re-optimization.

The optimizer's cut points, filter kinds and table allocation are all
functions of the pairwise-similarity distribution sampled at build
time (Section 5).  The structures stay *correct* under inserts and
deletes -- hash tables are dynamic -- but their *tuning* silently
degrades if the collection's similarity profile drifts (e.g. a burst
of near-duplicates shifts mass to the right of every cut point).

This module closes that loop:

* :func:`distribution_drift` -- total-variation distance between the
  build-time ``D_S`` and a fresh sample of the current collection;
* :class:`MaintenanceAdvisor` -- tracks update churn, re-samples on
  demand, and recommends a rebuild when drift or churn crosses
  configurable thresholds;
* :func:`rebuild` -- re-runs the Fig. 4 construction over the current
  contents and returns a freshly tuned index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distribution import SimilarityDistribution
from repro.core.index import SetSimilarityIndex


def distribution_drift(
    old: SimilarityDistribution, new: SimilarityDistribution
) -> float:
    """Total-variation distance between two similarity histograms.

    Both are normalized to probability mass first, so collections of
    different sizes compare on shape; the result lies in [0, 1].
    Empty distributions count as uniform agreement (drift 0 vs another
    empty, 1 vs anything with mass).
    """
    if old.n_bins != new.n_bins:
        raise ValueError(
            f"histograms have different resolutions: {old.n_bins} vs {new.n_bins}"
        )
    old_total, new_total = old.total_mass, new.total_mass
    if old_total == 0 and new_total == 0:
        return 0.0
    if old_total == 0 or new_total == 0:
        return 1.0
    return float(0.5 * np.abs(old.mass / old_total - new.mass / new_total).sum())


@dataclass
class MaintenanceReport:
    """The advisor's verdict."""

    churn_fraction: float
    drift: float
    should_rebuild: bool
    reason: str


class MaintenanceAdvisor:
    """Watches an index for tuning decay.

    Parameters
    ----------
    index:
        The index to watch; its plan's distribution is the baseline.
    churn_threshold:
        Recommend rebuilding once inserts+deletes since construction
        exceed this fraction of the collection size.
    drift_threshold:
        Recommend rebuilding once the re-sampled similarity histogram
        moves this far (total variation) from the build-time one.
    """

    def __init__(
        self,
        index: SetSimilarityIndex,
        churn_threshold: float = 0.25,
        drift_threshold: float = 0.15,
    ):
        if churn_threshold <= 0 or drift_threshold <= 0:
            raise ValueError("thresholds must be positive")
        self.index = index
        self.churn_threshold = churn_threshold
        self.drift_threshold = drift_threshold
        self._built_sids = set(index.sids)
        self._built_size = max(1, index.n_sets)

    @property
    def churn_fraction(self) -> float:
        """(inserts + deletes since build) / build-time size."""
        current = self.index.sids
        inserted = len(current - self._built_sids)
        deleted = len(self._built_sids - current)
        return (inserted + deleted) / self._built_size

    def sample_current_distribution(
        self, sample_pairs: int = 20_000, seed: int = 0
    ) -> SimilarityDistribution:
        """Re-estimate ``D_S`` over the index's current contents."""
        sets = [self.index.store.get(sid) for sid in sorted(self.index.sids)]
        return SimilarityDistribution.from_sets(
            sets,
            n_bins=self.index.distribution.n_bins,
            sample_pairs=sample_pairs,
            seed=seed,
        )

    def check(self, sample_pairs: int = 20_000, seed: int = 0) -> MaintenanceReport:
        """Assess churn and drift; recommend a rebuild if either trips."""
        churn = self.churn_fraction
        if churn >= self.churn_threshold:
            current = self.sample_current_distribution(sample_pairs, seed)
            drift = distribution_drift(self.index.distribution, current)
        else:
            drift = 0.0
        if churn >= self.churn_threshold and drift >= self.drift_threshold:
            verdict, reason = True, (
                f"churn {churn:.0%} and similarity drift {drift:.2f} "
                "exceed thresholds"
            )
        elif churn >= self.churn_threshold:
            verdict, reason = False, (
                f"churn {churn:.0%} is high but the similarity profile "
                f"is stable (drift {drift:.2f})"
            )
        else:
            verdict, reason = False, f"churn {churn:.0%} below threshold"
        return MaintenanceReport(
            churn_fraction=churn, drift=drift, should_rebuild=verdict, reason=reason
        )


def rebuild(
    index: SetSimilarityIndex,
    budget: int | None = None,
    recall_target: float = 0.9,
    seed: int = 0,
    sample_pairs: int | None = 100_000,
) -> SetSimilarityIndex:
    """Re-run construction over the index's current contents.

    Returns a new, freshly optimized index; the original is untouched
    (swap atomically at the call site).  ``budget`` defaults to the
    old plan's table usage.
    """
    sets = [index.store.get(sid) for sid in sorted(index.sids)]
    if budget is None:
        budget = max(1, index.plan.tables_used)
    return SetSimilarityIndex.build(
        sets,
        budget=budget,
        recall_target=recall_target,
        k=index.embedder.k,
        b=index.embedder.b,
        seed=seed,
        sample_pairs=sample_pairs,
        codec=getattr(index.embedder, "codec", "full64"),
    )
