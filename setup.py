"""Setup shim for environments without the `wheel` package.

Project metadata lives in pyproject.toml; this file exists so that
`pip install -e .` can take the legacy `setup.py develop` path when
PEP 660 editable builds are unavailable offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Efficient and Tunable Similar Set Retrieval' "
        "(Gionis, Gunopulos, Koudas; SIGMOD 2001)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=2.0"],
)
