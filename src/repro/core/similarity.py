"""Set similarity measures.

Definition 1 of the paper: the similarity of two sets is their Jaccard
coefficient ``|A & B| / |A | B|``, a value in [0, 1].  The coefficient
itself is not a metric, but ``1 - sim`` is, which is what makes the
distance-based reformulation in Hamming space legitimate.

Jaccard is the measure the whole index is built around; containment,
Dice and overlap are provided as companions because real workloads
(e.g. the sale-mailing example in the introduction) often phrase their
post-filters in those terms.
"""

from __future__ import annotations

from typing import Iterable


def jaccard(a: Iterable, b: Iterable) -> float:
    """Jaccard coefficient ``|A & B| / |A | B|`` (Definition 1).

    Two empty sets are defined to have similarity 1 (they are equal).
    """
    a, b = _as_sets(a, b)
    if not a and not b:
        return 1.0
    intersection = len(a & b)
    return intersection / (len(a) + len(b) - intersection)


def jaccard_distance(a: Iterable, b: Iterable) -> float:
    """``1 - jaccard``; unlike the similarity, this is a metric."""
    return 1.0 - jaccard(a, b)


def containment(a: Iterable, b: Iterable) -> float:
    """Fraction of A's elements that also appear in B."""
    a, b = _as_sets(a, b)
    if not a:
        return 1.0
    return len(a & b) / len(a)


def dice(a: Iterable, b: Iterable) -> float:
    """Dice coefficient ``2|A & B| / (|A| + |B|)``."""
    a, b = _as_sets(a, b)
    if not a and not b:
        return 1.0
    return 2 * len(a & b) / (len(a) + len(b))


def overlap(a: Iterable, b: Iterable) -> float:
    """Overlap coefficient ``|A & B| / min(|A|, |B|)``."""
    a, b = _as_sets(a, b)
    if not a or not b:
        return 1.0 if (not a and not b) else 0.0
    return len(a & b) / min(len(a), len(b))


def _as_sets(a: Iterable, b: Iterable) -> tuple[frozenset, frozenset]:
    a = a if isinstance(a, (set, frozenset)) else frozenset(a)
    b = b if isinstance(b, (set, frozenset)) else frozenset(b)
    return frozenset(a), frozenset(b)
