"""Reproduction of "Efficient and Tunable Similar Set Retrieval"
(Gionis, Gunopulos, Koudas; SIGMOD 2001).

The package indexes collections of sets for Jaccard-similarity *range*
queries: "return every stored set whose similarity with the query set
lies in [sigma_1, sigma_2]".  Sets are embedded into a Hamming space by
min-hash signatures plus an error-correcting code, the Hamming space is
probed by tunable hash-based filter indices, and an optimizer places
and sizes those filters under a space budget to maximize precision
subject to a recall floor.

Quick start::

    from repro import SetSimilarityIndex

    index = SetSimilarityIndex.build(my_sets, budget=500, recall_target=0.9)
    result = index.query(query_set, 0.4, 0.7)
    for sid, similarity in result.answers:
        ...

Subpackages: :mod:`repro.core` (the contribution), :mod:`repro.hamming`
(bit-level primitives), :mod:`repro.storage` (simulated disk engine),
:mod:`repro.data` (workload generators), :mod:`repro.baselines`
(sequential scan, naive embedding, exact inverted index), and
:mod:`repro.eval` (the experiment harness for the paper's figures).
"""

from repro.core import (
    DissimilarityFilterIndex,
    FilterFunction,
    HadamardCode,
    IndexPlan,
    MinHasher,
    QueryResult,
    SetEmbedder,
    SetSimilarityIndex,
    SimilarityDistribution,
    SimilarityFilterIndex,
    jaccard,
    jaccard_distance,
    plan_index,
)

__version__ = "1.0.0"

__all__ = [
    "DissimilarityFilterIndex",
    "FilterFunction",
    "HadamardCode",
    "IndexPlan",
    "MinHasher",
    "QueryResult",
    "SetEmbedder",
    "SetSimilarityIndex",
    "SimilarityDistribution",
    "SimilarityFilterIndex",
    "__version__",
    "jaccard",
    "jaccard_distance",
    "plan_index",
]
