"""Process-wide metrics registry: counters, gauges, histograms.

Storage and filter components report per-probe statistics here --
buckets probed, collisions per table, candidates per filter,
verification hits, bucket-occupancy distributions, query latencies --
so that tuning experiments (and ``repro stats`` / ``repro top``) can
see aggregate behavior without tracing individual queries.

The design mirrors the usual in-process metrics libraries but stays
stdlib-only and allocation-free on the hot path: instrumented modules
look their instruments up **once** at import time and then mutate a
plain attribute per event::

    _PROBES = metrics.counter("hashtable.probes")
    ...
    _PROBES.inc()
    # or, in an inner loop, hoist the calling thread's shard:
    cell = _PROBES.shard()
    for ...:
        cell.count += 1

:func:`MetricsRegistry.reset` therefore zeroes instruments *in place*
rather than discarding them, so cached references stay live.

Thread model: counters **and histograms** are sharded per thread --
each thread mutates a private cell and reads aggregate the cells, so
concurrent recording from a worker pool is exact without hot-path
locking (a cell is only ever mutated by its owning thread).  Gauges
are last-write-wins point samples and are not sharded.

Cross-process folding: :meth:`MetricsRegistry.registry_values`
snapshots every instrument (counters, gauges, histograms, HDR
histograms) in a picklable/JSON-safe form; :func:`registry_delta`
subtracts two snapshots; :meth:`MetricsRegistry.apply_deltas` replays
a delta into another registry.  A single-threaded worker process
brackets a task with two snapshots and ships the difference to the
parent -- integer bucket/count algebra makes the fold exact and
order-independent, so process-backend totals are indistinguishable
from thread-backend totals for every instrument kind (the historical
counter-only fold silently dropped histogram and gauge movement).

All instruments are registered in a module-level default registry
(:data:`registry`); tests that need isolation can construct their own
:class:`MetricsRegistry`.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Sequence

from repro.obs.hdr import DEFAULT_PRECISION, HdrHistogram, state_is_empty

#: Default histogram bucket upper bounds (counts-per-event scale).
DEFAULT_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)


class CounterShard:
    """One thread's private slice of a sharded :class:`Counter`.

    Only the owning thread mutates ``count``; aggregation reads it
    without a lock (int reads are atomic under the GIL, and a torn
    read at worst lags by in-flight increments).
    """

    __slots__ = ("count",)

    def __init__(self):
        self.count = 0


class Counter:
    """A monotonically increasing count of events, sharded per thread.

    ``inc()`` (or ``shard().count += n`` in hot loops) touches only the
    calling thread's :class:`CounterShard`; :attr:`value` aggregates
    all shards on read.  Shards of finished threads are kept so their
    contributions survive thread exit.
    """

    __slots__ = ("name", "_lock", "_shards", "_local")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._shards: list[CounterShard] = []
        self._local = threading.local()

    def shard(self) -> CounterShard:
        """The calling thread's private cell (created on first use)."""
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = CounterShard()
            with self._lock:
                self._shards.append(cell)
            self._local.cell = cell
        return cell

    def inc(self, n: int = 1) -> None:
        self.shard().count += n

    @property
    def value(self) -> int:
        """Total across all threads (aggregated on read)."""
        with self._lock:
            return sum(cell.count for cell in self._shards)

    @property
    def local_value(self) -> int:
        """The calling thread's contribution only.

        The right operand for before/after deltas taken around work
        that runs entirely on the calling thread: unlike ``value`` it
        cannot be perturbed by concurrent increments elsewhere.
        """
        cell = getattr(self._local, "cell", None)
        return 0 if cell is None else cell.count

    def _reset(self) -> None:
        with self._lock:
            for cell in self._shards:
                cell.count = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time value (load factor, entries per table, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def _reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class _HistogramShard:
    """One thread's private observation cell of a sharded histogram."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None


class Histogram:
    """A distribution of observed values in fixed buckets, sharded per
    thread.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything above the last bound.  Besides bucket counts the
    histogram tracks count/sum/min/max, so mean occupancy and tail
    behavior are both recoverable.

    Like :class:`Counter`, observations land in the calling thread's
    private :class:`_HistogramShard` and every read aggregates the
    shards -- a thread-pool worker observing (e.g. per-table candidate
    counts during a sharded probe) loses nothing to races.  For
    latency-style distributions that need accurate tail quantiles use
    :class:`~repro.obs.hdr.HdrHistogram` instead (log-spaced buckets,
    bounded relative error); this class keeps the hand-picked buckets
    that suit small-integer distributions.
    """

    __slots__ = ("name", "bounds", "_lock", "_shards", "_local")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted, got {bounds}")
        self.name = name
        self.bounds = tuple(bounds)
        self._lock = threading.Lock()
        self._shards: list[_HistogramShard] = []
        self._local = threading.local()

    def shard(self) -> _HistogramShard:
        """The calling thread's private cell (created on first use)."""
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = _HistogramShard(len(self.bounds) + 1)
            with self._lock:
                self._shards.append(cell)
            self._local.cell = cell
        return cell

    def observe(self, value: float) -> None:
        cell = self.shard()
        cell.counts[bisect_left(self.bounds, value)] += 1
        cell.count += 1
        cell.total += value
        if cell.min is None or value < cell.min:
            cell.min = value
        if cell.max is None or value > cell.max:
            cell.max = value

    def _aggregate(self) -> _HistogramShard:
        agg = _HistogramShard(len(self.bounds) + 1)
        with self._lock:
            shards = list(self._shards)
        for cell in shards:
            for i, n in enumerate(cell.counts):
                agg.counts[i] += n
            agg.count += cell.count
            agg.total += cell.total
            if cell.min is not None and (agg.min is None or cell.min < agg.min):
                agg.min = cell.min
            if cell.max is not None and (agg.max is None or cell.max > agg.max):
                agg.max = cell.max
        return agg

    @property
    def counts(self) -> list[int]:
        """Per-bucket totals across all threads (aggregated on read)."""
        return self._aggregate().counts

    @property
    def count(self) -> int:
        return self._aggregate().count

    @property
    def total(self) -> float:
        return self._aggregate().total

    @property
    def min(self) -> float | None:
        return self._aggregate().min

    @property
    def max(self) -> float | None:
        return self._aggregate().max

    @property
    def mean(self) -> float:
        agg = self._aggregate()
        return agg.total / agg.count if agg.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile resolved to a bucket upper edge.

        Coarse by construction (fixed buckets); the overflow bucket
        reports the observed max.  Returns 0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        agg = self._aggregate()
        if agg.count == 0:
            return 0.0
        rank = max(1, min(agg.count, math.ceil(q * agg.count)))
        seen = 0
        for i, n in enumerate(agg.counts):
            seen += n
            if seen >= rank:
                if i < len(self.bounds):
                    return float(self.bounds[i])
                return float(agg.max if agg.max is not None else self.bounds[-1])
        return float(agg.max if agg.max is not None else 0.0)

    def state(self) -> dict[str, Any]:
        """Picklable full state: the fold/persist primitive."""
        agg = self._aggregate()
        return {
            "bounds": list(self.bounds),
            "counts": list(agg.counts),
            "count": agg.count,
            "sum": agg.total,
            "min": agg.min,
            "max": agg.max,
        }

    def apply_delta(self, delta: dict[str, Any]) -> None:
        """Fold an externally measured state/delta into this histogram.

        ``delta`` is a :meth:`state` (or a count-wise difference of
        two states, see :func:`histogram_state_delta`) from an
        equal-bounds histogram; counts land in the calling thread's
        shard.
        """
        bounds = delta.get("bounds")
        if bounds is not None and tuple(bounds) != self.bounds:
            raise ValueError(
                f"cannot fold bounds={bounds} state into "
                f"bounds={self.bounds} histogram {self.name!r}"
            )
        if state_is_empty(delta):
            return
        cell = self.shard()
        for i, n in enumerate(delta.get("counts", ())):
            cell.counts[i] += n
        cell.count += delta.get("count", 0)
        cell.total += delta.get("sum", 0.0)
        dmin, dmax = delta.get("min"), delta.get("max")
        if dmin is not None and (cell.min is None or dmin < cell.min):
            cell.min = dmin
        if dmax is not None and (cell.max is None or dmax > cell.max):
            cell.max = dmax

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into self (exact); returns self."""
        self.apply_delta(other.state())
        return self

    def _reset(self) -> None:
        with self._lock:
            for cell in self._shards:
                cell.counts = [0] * (len(self.bounds) + 1)
                cell.count = 0
                cell.total = 0.0
                cell.min = None
                cell.max = None

    def to_dict(self) -> dict[str, Any]:
        agg = self._aggregate()
        return {
            "count": agg.count,
            "sum": agg.total,
            "min": agg.min,
            "max": agg.max,
            "mean": agg.total / agg.count if agg.count else 0.0,
            "buckets": {
                (f"<={bound}" if i < len(self.bounds) else
                 f">{self.bounds[-1]}"): n
                for i, (bound, n) in enumerate(
                    zip(self.bounds + (self.bounds[-1],), agg.counts)
                )
            },
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.2f})"


def histogram_state_delta(
    before: dict[str, Any], after: dict[str, Any]
) -> dict[str, Any]:
    """Count-wise ``after - before`` of two fixed-histogram states."""
    b_counts = before.get("counts", ())
    counts = [
        n - (b_counts[i] if i < len(b_counts) else 0)
        for i, n in enumerate(after.get("counts", ()))
    ]
    return {
        "bounds": after.get("bounds"),
        "counts": counts,
        "count": after.get("count", 0) - before.get("count", 0),
        "sum": after.get("sum", 0.0) - before.get("sum", 0.0),
        "min": after.get("min"),
        "max": after.get("max"),
    }


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    Creation is lock-protected (instrument lookups may race across
    threads at import time); the per-event mutations on the returned
    instruments are plain attribute updates.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._hdr: dict[str, HdrHistogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, bounds)
            return instrument

    def hdr(self, name: str, precision: float = DEFAULT_PRECISION) -> HdrHistogram:
        """Get-or-create a log-bucketed HDR histogram (latency-grade
        quantiles; see :class:`~repro.obs.hdr.HdrHistogram`)."""
        with self._lock:
            instrument = self._hdr.get(name)
            if instrument is None:
                instrument = self._hdr[name] = HdrHistogram(name, precision)
            return instrument

    def hdr_histograms(self) -> dict[str, HdrHistogram]:
        """The registered HDR histograms, by name (stable copy)."""
        with self._lock:
            return dict(sorted(self._hdr.items()))

    def histograms(self) -> dict[str, Histogram]:
        """The registered fixed-bucket histograms, by name (stable copy)."""
        with self._lock:
            return dict(sorted(self._histograms.items()))

    def snapshot(self) -> dict[str, Any]:
        """All current values, JSON-safe, grouped by instrument kind."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.to_dict() for n, h in sorted(self._histograms.items())
                },
                "hdr": {n: h.to_dict() for n, h in sorted(self._hdr.items())},
            }

    def counter_values(self) -> dict[str, int]:
        """Current aggregated value of every registered counter.

        The primitive behind cross-process counter folding: a
        single-threaded worker brackets a task with two calls and the
        difference is exactly that task's movements.
        """
        with self._lock:
            counters = list(self._counters.items())
        return {name: counter.value for name, counter in counters}

    def registry_values(self) -> dict[str, Any]:
        """Full-registry snapshot covering every instrument kind.

        The generalization of :meth:`counter_values` that the process
        backend brackets worker tasks with: counters and gauges as
        scalars, histograms (fixed and HDR) as full count states, all
        picklable.  :func:`registry_delta` subtracts two of these and
        :meth:`apply_deltas` replays the difference elsewhere, so
        non-counter movement is no longer dropped at the process
        boundary.
        """
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
            hdr = list(self._hdr.items())
        return {
            "counters": {name: c.value for name, c in counters},
            "gauges": {name: g.value for name, g in gauges},
            "histograms": {name: h.state() for name, h in histograms},
            "hdr": {name: h.state() for name, h in hdr},
        }

    def apply_counter_deltas(self, deltas: dict[str, int]) -> None:
        """Fold externally measured counter deltas into this registry.

        Used by the process-backend executor to replay each worker
        task's counter movements on the parent (counters are created on
        demand; deltas land in the calling thread's shard), so process
        totals match what the thread backend would have recorded.
        """
        for name, delta in deltas.items():
            if delta:
                self.counter(name).shard().count += delta

    def apply_deltas(self, deltas: dict[str, Any]) -> None:
        """Fold a full-registry delta (see :func:`registry_delta`).

        Counters add their deltas, gauges adopt the delta's value
        (last-write-wins point samples), histograms fold their count
        states -- instruments are created on demand, and integer count
        algebra keeps the result independent of fold order.  Accepts
        the bare counter-dict form too, for symmetry with
        :meth:`apply_counter_deltas`.
        """
        if not deltas:
            return
        if "counters" not in deltas and "histograms" not in deltas \
                and "hdr" not in deltas and "gauges" not in deltas:
            self.apply_counter_deltas(deltas)
            return
        self.apply_counter_deltas(deltas.get("counters", {}))
        for name, value in deltas.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, state in deltas.get("histograms", {}).items():
            if not state_is_empty(state):
                bounds = state.get("bounds") or DEFAULT_BUCKETS
                self.histogram(name, bounds).apply_delta(state)
        for name, state in deltas.get("hdr", {}).items():
            if not state_is_empty(state):
                precision = state.get("precision") or DEFAULT_PRECISION
                self.hdr(name, precision).apply_delta(state)

    def reset(self) -> None:
        """Zero every instrument in place (cached references stay valid)."""
        with self._lock:
            for group in (self._counters, self._gauges,
                          self._histograms, self._hdr):
                for instrument in group.values():
                    instrument._reset()


def registry_delta(
    before: dict[str, Any], after: dict[str, Any]
) -> dict[str, Any]:
    """Instrument-wise ``after - before`` of two ``registry_values()``.

    Counters subtract; gauges report ``after``'s value but only for
    gauges that *moved* (an unchanged point sample carries no
    information and must not clobber the parent's); histograms take
    count-wise state differences, dropping empty ones.  The result is
    the picklable payload a worker ships for one task.
    """
    from repro.obs import hdr as hdr_mod

    counters = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0)
        if delta:
            counters[name] = delta
    gauges = {}
    for name, value in after.get("gauges", {}).items():
        if value != before.get("gauges", {}).get(name):
            gauges[name] = value
    histograms = {}
    for name, state in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(name)
        delta = (
            histogram_state_delta(prior, state) if prior is not None else state
        )
        if not state_is_empty(delta):
            histograms[name] = delta
    hdr = {}
    for name, state in after.get("hdr", {}).items():
        prior = before.get("hdr", {}).get(name)
        delta = (
            hdr_mod.state_delta(prior, state) if prior is not None else state
        )
        if not state_is_empty(delta):
            hdr[name] = delta
    out: dict[str, Any] = {}
    if counters:
        out["counters"] = counters
    if gauges:
        out["gauges"] = gauges
    if histograms:
        out["histograms"] = histograms
    if hdr:
        out["hdr"] = hdr
    return out


def merge_registry_deltas(deltas: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Fold several task deltas into one (order-independent for
    counters and histogram counts; gauges last-write-wins)."""
    merged: dict[str, Any] = {
        "counters": {}, "gauges": {}, "histograms": {}, "hdr": {},
    }
    for delta in deltas:
        for name, value in delta.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        merged["gauges"].update(delta.get("gauges", {}))
        for group in ("histograms", "hdr"):
            for name, state in delta.get(group, {}).items():
                prior = merged[group].get(name)
                if prior is None:
                    # Copy: fold must not mutate the source delta.
                    merged[group][name] = _copy_state(state)
                else:
                    _fold_state(prior, state)
    return {k: v for k, v in merged.items() if v}


def _copy_state(state: dict[str, Any]) -> dict[str, Any]:
    copied = dict(state)
    counts = state.get("counts")
    if isinstance(counts, dict):
        copied["counts"] = dict(counts)
    elif counts is not None:
        copied["counts"] = list(counts)
    return copied


def _fold_state(into: dict[str, Any], state: dict[str, Any]) -> None:
    """Accumulate one histogram state into another, in place."""
    counts = state.get("counts")
    if isinstance(counts, dict):
        target = into["counts"]
        for key, n in counts.items():
            target[key] = target.get(key, 0) + n
        into["zero_count"] = into.get("zero_count", 0) + state.get("zero_count", 0)
    elif counts is not None:
        into["counts"] = [
            a + b for a, b in zip(into.get("counts", [0] * len(counts)), counts)
        ]
    into["count"] = into.get("count", 0) + state.get("count", 0)
    into["sum"] = into.get("sum", 0.0) + state.get("sum", 0.0)
    smin, smax = state.get("min"), state.get("max")
    if smin is not None and (into.get("min") is None or smin < into["min"]):
        into["min"] = smin
    if smax is not None and (into.get("max") is None or smax > into["max"]):
        into["max"] = smax


#: The default process-wide registry used by the instrumented modules.
registry = MetricsRegistry()


def counter(name: str) -> Counter:
    """Get-or-create a counter in the default registry."""
    return registry.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge in the default registry."""
    return registry.gauge(name)


def histogram(name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
    """Get-or-create a fixed-bucket histogram in the default registry."""
    return registry.histogram(name, bounds)


def hdr(name: str, precision: float = DEFAULT_PRECISION) -> HdrHistogram:
    """Get-or-create an HDR histogram in the default registry."""
    return registry.hdr(name, precision)


def snapshot() -> dict[str, Any]:
    """Snapshot of the default registry."""
    return registry.snapshot()


def counter_values() -> dict[str, int]:
    """Current counter values of the default registry."""
    return registry.counter_values()


def registry_values() -> dict[str, Any]:
    """Full-registry snapshot of the default registry."""
    return registry.registry_values()


def apply_counter_deltas(deltas: dict[str, int]) -> None:
    """Fold counter deltas into the default registry."""
    return registry.apply_counter_deltas(deltas)


def apply_deltas(deltas: dict[str, Any]) -> None:
    """Fold a full-registry delta into the default registry."""
    return registry.apply_deltas(deltas)


def reset() -> None:
    """Reset the default registry."""
    registry.reset()
