"""Tests for the experiment harness, report formatting and drivers."""

import math

import pytest

from repro.core.index import SetSimilarityIndex
from repro.data.queries import QueryWorkload, RangeQuery
from repro.eval.experiments import (
    ExperimentConfig,
    make_dataset,
    run_allocation_ablation,
    run_crossover,
    run_dfi_benefit,
    run_embedding_distortion,
    run_fig6,
    run_fig7,
    run_filter_tradeoff,
    run_placement_ablation,
)
from repro.eval.harness import ExperimentHarness
from repro.eval.report import format_table


@pytest.fixture(scope="module")
def harness(clustered_sets):
    index = SetSimilarityIndex.build(
        clustered_sets, budget=60, recall_target=0.8, k=32, b=6, seed=2
    )
    return ExperimentHarness(clustered_sets, index)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xxx", 0.333333]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "0.333" in lines[3]

    def test_large_floats_comma_formatted(self):
        out = format_table(["v"], [[12345.6]])
        assert "12,346" in out

    def test_empty_rows(self):
        out = format_table(["x"], [])
        assert out.splitlines()[0].strip() == "x"


class TestHarness:
    def test_run_query_scores_against_oracle(self, harness, clustered_sets):
        record = harness.run_query(RangeQuery(0, 0.4, 1.0))
        assert 0.0 <= record.recall <= 1.0
        assert 0.0 <= record.precision <= 1.0
        assert record.n_truth >= 1  # the query set itself
        assert record.scan_time > 0
        assert record.index_time == record.index_io_time + record.index_cpu_time

    def test_measure_scan_flag(self, harness):
        record = harness.run_query(RangeQuery(1, 0.5, 1.0), measure_scan=False)
        assert record.scan_time == 0.0

    def test_run_many(self, harness):
        queries = QueryWorkload(len(harness.sets), seed=4).sample(5)
        records = harness.run(queries, measure_scan=False)
        assert len(records) == 5

    def test_bucket_summaries_structure(self, harness):
        queries = QueryWorkload(len(harness.sets), seed=5).sample(15)
        records = harness.run(queries, measure_scan=False)
        summaries = harness.bucket_summaries(records)
        assert len(summaries) == 5
        populated = [s for s in summaries if s.n_queries > 0]
        assert populated, "at least one bucket should receive queries"
        for s in populated:
            assert 0.0 <= s.recall <= 1.0
            assert 0.0 <= s.precision <= 1.0

    def test_empty_buckets_are_nan(self, harness):
        summaries = harness.bucket_summaries([])
        assert all(s.n_queries == 0 for s in summaries)
        assert all(math.isnan(s.recall) for s in summaries)

    def test_run_batch_workers_match_sequential(self, harness):
        queries = QueryWorkload(len(harness.sets), seed=6).sample(6)
        sequential = harness.run_batch(queries, measure_scan=False)
        threaded = harness.run_batch(queries, measure_scan=False, workers=3)
        for s, t in zip(sequential, threaded):
            assert t.n_answers == s.n_answers
            assert t.n_candidates == s.n_candidates
            assert t.recall == s.recall
            assert t.index_time == s.index_time

    def test_run_batch_process_backend_matches_sequential(self, harness, tmp_path):
        queries = QueryWorkload(len(harness.sets), seed=7).sample(4)
        sequential = harness.run_batch(queries, measure_scan=False)
        processed = harness.run_batch(
            queries, measure_scan=False, workers=2, backend="process",
            snapshot_dir=tmp_path / "snap",
        )
        for s, p in zip(sequential, processed):
            assert p.n_answers == s.n_answers
            assert p.n_candidates == s.n_candidates
            assert p.recall == s.recall
            assert p.index_time == s.index_time
        assert not harness.index.frozen  # restored afterwards

    def test_run_batch_rejects_unknown_backend(self, harness):
        with pytest.raises(ValueError):
            harness.run_batch([], backend="fibers")

    def test_scan_recall_would_be_one(self, harness, clustered_sets):
        """Sanity: the oracle agrees with the scan baseline."""
        q = RangeQuery(3, 0.3, 0.9)
        scan_result = harness.scan.query(
            clustered_sets[3], q.sigma_low, q.sigma_high
        )
        oracle = {
            sid
            for sid, _ in harness.oracle.query(
                clustered_sets[3], q.sigma_low, q.sigma_high
            )
        }
        assert scan_result.answer_sids == oracle


class TestDrivers:
    def test_make_dataset_validates(self):
        with pytest.raises(ValueError):
            make_dataset("set3", 10)
        assert len(make_dataset("set1", 10)) == 10

    def test_config_scaled(self):
        cfg = ExperimentConfig().scaled(budget=7)
        assert cfg.budget == 7
        assert cfg.k == ExperimentConfig().k

    def test_embedding_distortion_shapes(self):
        res = run_embedding_distortion(n_pairs=30, k=32, b=5, seed=1)
        assert len(res.rows) == 30
        assert res.ecc_rmse < res.naive_rmse
        assert res.ecc_rmse < 1e-9
        assert "naive" in res.table()

    def test_filter_tradeoff_error_decreases(self):
        res = run_filter_tradeoff(n_sets=120, l_values=(1, 10, 100), seed=2)
        errors = [row[4] for row in res.rows]
        assert errors[-1] < errors[0]
        rs = [row[1] for row in res.rows]
        assert rs == sorted(rs)

    def test_placement_ablation_runs(self):
        res = run_placement_ablation(n_sets=150, budget=40, seed=3)
        assert len(res.rows) == 2
        names = [row[0] for row in res.rows]
        assert names == ["equidepth", "uniform"]
        assert "avg recall" in res.table()

    def test_allocation_ablation_greedy_no_worse(self):
        res = run_allocation_ablation(n_sets=150, budget=40, seed=4)
        greedy_row = next(r for r in res.rows if r[0] == "greedy")
        uniform_row = next(r for r in res.rows if r[0] == "uniform-alloc")
        assert greedy_row[1] >= uniform_row[1] - 0.1  # avg recall comparable+


class TestFigureDrivers:
    """Micro-scale runs of the per-figure drivers (full runs live in
    benchmarks/; these pin the drivers' contracts)."""

    @pytest.fixture(scope="class")
    def micro(self):
        return ExperimentConfig(
            n_sets=250, budget=60, n_queries=25, k=32, sample_pairs=20_000, seed=1
        )

    def test_run_fig6_structure(self, micro):
        result = run_fig6(micro, budget=60, datasets=("set1",))
        assert set(result.summaries) == {"set1"}
        assert len(result.summaries["set1"]) == 5
        assert "precision" in result.table()
        assert 0.0 < result.expected_recall["set1"] <= 1.0

    def test_run_fig7_structure(self, micro):
        result = run_fig7("set1", micro, budget=60)
        assert result.dataset == "set1"
        populated = [s for s in result.summaries if s.n_queries > 0]
        assert populated
        # Scan cost must be flat across buckets.
        scans = [s.scan_time for s in populated]
        assert max(scans) / min(scans) < 1.2
        assert "scan io" in result.table()

    def test_run_crossover_structure(self, micro):
        result = run_crossover("set1", micro)
        assert result.rows
        assert result.predicted_fraction > 0
        fractions = [row[0] for row in result.rows]
        assert fractions == sorted(fractions)
        assert "index wins" in result.table()

    def test_run_dfi_benefit_structure(self, micro):
        result = run_dfi_benefit("set1", micro, n_queries=8)
        labels = [row[0] for row in result.rows]
        assert labels == ["with DFIs", "SFI only"]
        for _, candidates, recall, time in result.rows:
            assert candidates >= 0
            assert 0.0 <= recall <= 1.0
            assert time >= 0
