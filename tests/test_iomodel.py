"""Unit tests for the I/O cost model."""

import pytest

from repro.storage.iomodel import IOCostModel, IOStats


class TestIOStats:
    def test_addition(self):
        a = IOStats(1, 2, 3, 4)
        b = IOStats(10, 20, 30, 40)
        assert a + b == IOStats(11, 22, 33, 44)

    def test_subtraction(self):
        a = IOStats(10, 20, 30, 40)
        b = IOStats(1, 2, 3, 4)
        assert a - b == IOStats(9, 18, 27, 36)

    def test_default_zero(self):
        assert IOStats() == IOStats(0, 0, 0, 0)

    def test_total_reads(self):
        assert IOStats(sequential_reads=3, random_reads=4).total_reads == 7
        assert IOStats().total_reads == 0

    def test_as_dict(self):
        stats = IOStats(1, 2, 3, 4)
        assert stats.as_dict() == {
            "sequential_reads": 1,
            "random_reads": 2,
            "page_writes": 3,
            "cpu_ops": 4,
        }

    def test_as_dict_round_trip(self):
        stats = IOStats(5, 6, 7, 8)
        assert IOStats(**stats.as_dict()) == stats


class TestIOCostModel:
    def test_counters_accumulate(self):
        io = IOCostModel()
        io.read_sequential(3)
        io.read_random(2)
        io.write(4)
        io.cpu(100)
        assert io.stats == IOStats(3, 2, 4, 100)

    def test_default_ratio_is_eight(self):
        """The paper's rtn = ran/seq ~= 8."""
        io = IOCostModel()
        assert io.random_cost / io.seq_cost == pytest.approx(8.0)

    def test_io_time(self):
        io = IOCostModel(seq_cost=1.0, random_cost=8.0)
        io.read_sequential(10)
        io.read_random(5)
        assert io.io_time() == pytest.approx(10 + 40)

    def test_cpu_time(self):
        io = IOCostModel(cpu_cost=0.01)
        io.cpu(500)
        assert io.cpu_time() == pytest.approx(5.0)

    def test_total_time(self):
        io = IOCostModel(seq_cost=1, random_cost=8, cpu_cost=0.5)
        io.read_random()
        io.cpu(2)
        assert io.total_time() == pytest.approx(9.0)

    def test_time_of_explicit_stats(self):
        io = IOCostModel()
        stats = IOStats(sequential_reads=2, random_reads=1)
        assert io.io_time(stats) == pytest.approx(10.0)

    def test_snapshot_is_independent_copy(self):
        io = IOCostModel()
        io.read_random()
        snap = io.snapshot()
        io.read_random()
        assert snap.random_reads == 1
        assert io.stats.random_reads == 2

    def test_delta_pattern(self):
        io = IOCostModel()
        io.read_sequential(5)
        before = io.snapshot()
        io.read_sequential(2)
        io.read_random(1)
        delta = io.snapshot() - before
        assert delta == IOStats(2, 1, 0, 0)

    def test_reset(self):
        io = IOCostModel()
        io.read_random(9)
        io.reset()
        assert io.stats == IOStats()

    def test_writes_do_not_enter_query_time(self):
        io = IOCostModel()
        io.write(100)
        assert io.total_time() == 0.0
