"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import planted_clusters
from repro.data.weblog import make_weblog_collection
from repro.storage.iomodel import IOCostModel
from repro.storage.pager import PageManager


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def pager():
    return PageManager(IOCostModel())


@pytest.fixture(scope="session")
def clustered_sets():
    """Small collection with planted high-similarity clusters."""
    return planted_clusters(
        n_clusters=12, per_cluster=10, base_size=30, universe=2000, mutation_rate=0.15, seed=3
    )


@pytest.fixture(scope="session")
def weblog_sets():
    """Small weblog surrogate with realistic similarity spread."""
    return make_weblog_collection(n_sets=240, seed=8)
