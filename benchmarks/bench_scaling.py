"""ABL-SCALE -- cost scaling with collection size.

The paper's headline economics: scan cost grows linearly with the
collection while the index's cost for a fixed-selectivity query grows
only with its (proportionally sized) answer -- so at any fixed result
*fraction*, both grow linearly, but the index's slope is smaller below
the crossover; and for fixed-size answers (e.g. a user's near
neighbours) index cost is nearly flat.

Shape to confirm: simulated scan cost ~ N; simulated index cost for
high-similarity queries grows much more slowly than the scan's.
"""

import numpy as np
import pytest

from repro.core.index import SetSimilarityIndex
from repro.data.weblog import make_weblog_collection
from repro.eval.report import format_table

SIZES = (400, 800, 1600)


def test_scaling(benchmark, emit, scale):
    def run():
        rows = []
        for n in SIZES:
            sets = make_weblog_collection(n_sets=n, seed=101)
            index = SetSimilarityIndex.build(
                sets, budget=150, recall_target=0.85, k=min(scale.k, 64),
                seed=11, sample_pairs=50_000,
            )
            rng = np.random.default_rng(2)
            index_costs, scan_costs = [], []
            for _ in range(8):
                q = sets[int(rng.integers(0, n))]
                index_costs.append(index.query(q, 0.6, 1.0).total_time)
                scan_costs.append(index.query(q, 0.6, 1.0, strategy="scan").total_time)
            rows.append(
                [n, float(np.mean(index_costs)), float(np.mean(scan_costs))]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ABL-SCALE",
        format_table(["n sets", "index cost (>=0.6 query)", "scan cost"], rows),
    )
    # Scan grows roughly linearly with N.
    assert rows[-1][2] / rows[0][2] > 0.6 * (SIZES[-1] / SIZES[0])
    # Index for high-similarity queries grows far more slowly.
    index_growth = rows[-1][1] / rows[0][1]
    scan_growth = rows[-1][2] / rows[0][2]
    assert index_growth < scan_growth
