"""ABL-EQ -- Lemma 4 ablation: equidepth vs uniform cut placement.

The paper places filter indices at equidepth quantiles of the pairwise
similarity distribution, arguing (Lemma 4) this optimizes expected
worst-case precision for queries with non-trivial answers.

Shape to reproduce: on a skewed distribution the equidepth plan's
worst-case precision (over ranges with at least 1% of the pair mass)
is at least as good as uniform spacing's.
"""

from repro.eval.experiments import run_placement_ablation


def test_placement(benchmark, emit, scale):
    result = benchmark.pedantic(
        run_placement_ablation,
        kwargs={"dataset": "set1", "n_sets": min(scale.n_sets, 1500), "budget": 300},
        rounds=1,
        iterations=1,
    )
    emit("ABL-EQ", result.table())
    by_name = {row[0]: row for row in result.rows}
    equidepth, uniform = by_name["equidepth"], by_name["uniform"]
    # (name, avg recall, avg precision, wc recall, wc precision, tables)
    assert equidepth[4] >= uniform[4] - 0.02  # worst-case precision
    assert 0.0 <= equidepth[1] <= 1.0
