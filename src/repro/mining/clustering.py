"""Clustering and classification over the similarity index.

Section 1: "a clustering operation based on set similarity could
identify clusters of web pages which are similar but not copies of
each other" and "classification algorithms based on set similarity".

* :func:`leader_clustering` -- single-pass leader-follower clustering:
  each unassigned set becomes a leader and absorbs everything at least
  ``threshold``-similar, using one index probe per cluster.
* :func:`classify_nearest` -- nearest-neighbour classification: label a
  query by majority vote over its top-k indexed neighbours.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Sequence

from repro.core.index import SetSimilarityIndex
from repro.mining.topk import top_k_similar


def leader_clustering(
    index: SetSimilarityIndex,
    sets: Sequence[frozenset],
    threshold: float,
) -> list[list[int]]:
    """Partition the indexed collection into similarity clusters.

    Greedy leader-follower: iterate sids in order; an unassigned sid
    leads a new cluster containing every unassigned set at least
    ``threshold``-similar to it.  One index probe per cluster, so the
    cost is ``O(n_clusters)`` probes rather than ``O(n^2)`` pairwise
    similarities.

    Clusters are returned largest-first; singleton clusters are sets
    the filters related to nothing (including genuine outliers).
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    unassigned = set(range(len(sets)))
    clusters: list[list[int]] = []
    for leader in range(len(sets)):
        if leader not in unassigned:
            continue
        result = index.query_above(sets[leader], threshold)
        members = ({sid for sid, _ in result.answers} | {leader}) & unassigned
        unassigned -= members
        clusters.append(sorted(members))
    clusters.sort(key=len, reverse=True)
    return clusters


def classify_nearest(
    index: SetSimilarityIndex,
    labels: Sequence[Hashable],
    elements: Iterable,
    k: int = 5,
    floor: float = 0.0,
) -> Hashable | None:
    """Label a query set by majority vote of its k nearest neighbours.

    ``labels[sid]`` is the class of indexed set ``sid``.  Returns None
    when the index finds no neighbour at or above ``floor`` (an
    "unclassifiable" outcome the caller can handle explicitly).
    Ties break toward the more similar class (first encountered in
    descending-similarity order).
    """
    neighbours = top_k_similar(index, elements, k=k, floor=floor)
    if not neighbours:
        return None
    votes: Counter = Counter()
    order: dict[Hashable, int] = {}
    for rank, (sid, _) in enumerate(neighbours):
        label = labels[sid]
        votes[label] += 1
        order.setdefault(label, rank)
    best = max(votes.items(), key=lambda item: (item[1], -order[item[0]]))
    return best[0]
