"""Synthetic documents as shingle sets.

The paper repeatedly motivates sets built from text: "documents
represented as sets of the words they contain", web pages for the
"what's related" feature, and the Min Hashing lineage (identifying
mirror pages) works on w-shingles.  This generator produces documents
from a topic mixture model and turns them into shingle sets, giving a
third workload family whose similarity structure differs from both
web logs (no hot-page floor) and planted clusters (smooth topical
similarity plus exact-mutation near-duplicates).
"""

from __future__ import annotations

import numpy as np


def shingles(tokens: list[int], width: int = 3) -> frozenset[tuple[int, ...]]:
    """The set of ``width``-grams of a token sequence.

    Documents shorter than ``width`` contribute their whole token tuple
    as a single shingle, so no document maps to the empty set.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if len(tokens) < width:
        return frozenset({tuple(tokens)})
    return frozenset(
        tuple(tokens[i : i + width]) for i in range(len(tokens) - width + 1)
    )


def make_document_collection(
    n_documents: int = 500,
    n_topics: int = 8,
    vocabulary: int = 3000,
    words_per_topic: int = 300,
    doc_length: int = 120,
    shingle_width: int = 3,
    near_duplicate_rate: float = 0.1,
    seed: int = 0,
) -> list[frozenset]:
    """Generate documents as shingle sets.

    Each document draws a topic and samples tokens from that topic's
    word distribution (Zipf within topic) plus a uniform background.
    With probability ``near_duplicate_rate`` a document is instead a
    light edit of an earlier one -- a few token substitutions -- which
    plants the near-duplicate pairs mirror-detection cares about.
    """
    if n_documents <= 0:
        raise ValueError(f"n_documents must be positive, got {n_documents}")
    if not 0.0 <= near_duplicate_rate < 1.0:
        raise ValueError(
            f"near_duplicate_rate must be in [0, 1), got {near_duplicate_rate}"
        )
    rng = np.random.default_rng(seed)
    topic_words = [
        rng.choice(vocabulary, size=words_per_topic, replace=False)
        for _ in range(n_topics)
    ]
    ranks = np.arange(1, words_per_topic + 1, dtype=np.float64)
    weights = ranks**-1.1
    weights /= weights.sum()
    token_lists: list[list[int]] = []
    documents: list[frozenset] = []
    for _ in range(n_documents):
        if token_lists and rng.random() < near_duplicate_rate:
            source = token_lists[int(rng.integers(0, len(token_lists)))]
            tokens = list(source)
            n_edits = max(1, int(0.03 * len(tokens)))
            for pos in rng.choice(len(tokens), size=n_edits, replace=False):
                tokens[pos] = int(rng.integers(0, vocabulary))
        else:
            topic = int(rng.integers(0, n_topics))
            tokens = [
                int(topic_words[topic][i])
                for i in rng.choice(words_per_topic, size=doc_length, p=weights)
            ]
            background = rng.integers(0, vocabulary, size=doc_length // 10)
            positions = rng.choice(len(tokens), size=background.size, replace=False)
            for pos, word in zip(positions, background):
                tokens[pos] = int(word)
        token_lists.append(tokens)
        documents.append(shingles(tokens, shingle_width))
    return documents
